// fig03_dtsmqr_dist — reproduces paper Figure 3: distribution of DTSMQR
// kernel execution times during a tile QR factorization, with fitted
// Normal / Gamma / LogNormal candidates.
#include "fig_dist_common.hpp"

int main(int argc, char** argv) {
  tasksim::bench::DistFigureConfig figure;
  figure.figure_id = "Figure 3";
  figure.kernel = "dtsmqr";
  figure.algorithm = tasksim::harness::Algorithm::qr;
  return tasksim::bench::run_distribution_figure(argc, argv, figure);
}
