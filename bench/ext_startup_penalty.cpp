// ext_startup_penalty — evaluates the start-up penalty extension
// (paper §VII: "The simulator may be improved in the future in order to
// accurately model this start-up penalty and improve the simulation
// accuracy for small problem sizes").
//
// Setup: real runs keep their first-invocation outliers (the effect the
// paper attributes to MKL per-thread initialization; here it is cold
// caches/page state).  We compare simulations without and with the fitted
// startup models across small problem sizes, where the penalty is the
// largest fraction of the makespan.
#include <cmath>
#include <cstdio>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/sysinfo.hpp"

using namespace tasksim;

int main(int argc, char** argv) {
  std::vector<int> sizes = {192, 288, 384, 576};
  int nb = 96;
  int workers = 4;
  int repeats = 3;
  std::string scheduler = "quark";
  std::string algorithm = "qr";
  CliParser cli("ext_startup_penalty",
                "startup-penalty modeling (paper §VII, implemented)");
  cli.add_int_list("sizes", &sizes, "matrix sizes (small = penalty visible)");
  cli.add_int("nb", &nb, "tile size");
  cli.add_int("workers", &workers, "worker threads");
  cli.add_int("repeats", &repeats, "simulations per configuration");
  cli.add_string("scheduler", &scheduler, "runtime spec");
  cli.add_string("algorithm", &algorithm, "cholesky or qr");
  if (!cli.parse(argc, argv)) return 0;

  harness::print_banner(
      "Extension: start-up penalty modeling (paper future work)");
  std::printf("%s\n%s on %s, nb=%d, %d workers\n\n", host_summary().c_str(),
              algorithm.c_str(), scheduler.c_str(), nb, workers);

  harness::TextTable table;
  table.set_headers({"n", "real ms", "sim err % (plain)",
                     "sim err % (+startup)", "mean startup/steady"});
  for (int n : sizes) {
    if (n % nb != 0) continue;
    harness::ExperimentConfig config;
    config.algorithm = harness::parse_algorithm(algorithm);
    config.scheduler = scheduler;
    config.n = n;
    config.nb = nb;
    config.workers = workers;

    sim::CalibrationObserver calibration;
    const harness::RunResult real = harness::run_real(config, &calibration);
    const sim::KernelModelSet models =
        calibration.fit(sim::ModelFamily::best);
    const sim::KernelModelSet startup =
        calibration.fit_startup(sim::ModelFamily::best);

    // How much larger is a first invocation than a steady-state one?
    double ratio_sum = 0.0;
    int ratio_count = 0;
    for (const auto& kernel : startup.kernel_names()) {
      if (models.has_model(kernel) && models.mean_us(kernel) > 0.0) {
        ratio_sum += startup.mean_us(kernel) / models.mean_us(kernel);
        ++ratio_count;
      }
    }

    double plain_err = 0.0, startup_err = 0.0;
    for (int r = 0; r < repeats; ++r) {
      config.seed = 3 + static_cast<std::uint64_t>(r);
      const harness::RunResult plain = harness::run_simulated(config, models);
      sim::SimEngineOptions options;
      options.startup_models = &startup;
      const harness::RunResult with_startup =
          harness::run_simulated(config, models, options);
      plain_err += 100.0 * std::fabs(plain.makespan_us - real.makespan_us) /
                   real.makespan_us;
      startup_err += 100.0 *
                     std::fabs(with_startup.makespan_us - real.makespan_us) /
                     real.makespan_us;
    }
    table.add_row(
        {std::to_string(n), strprintf("%.2f", real.makespan_us * 1e-3),
         strprintf("%.2f", plain_err / repeats),
         strprintf("%.2f", startup_err / repeats),
         ratio_count > 0 ? strprintf("%.2fx", ratio_sum / ratio_count)
                         : std::string("n/a")});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nnote: the real runs here *include* first-invocation "
              "outliers (these samples are\nexactly what the calibrator's "
              "warm-up filter removed from the steady-state models),\nso "
              "the startup-aware simulation should track small problems "
              "more closely whenever\nthe measured startup/steady ratio is "
              "substantially above 1.\n");
  return 0;
}
