// sweep_throughput — the K-engine concurrent sweep: fleet throughput,
// telemetry isolation, and aggregation coverage.
//
// The single-run benches answer "how fast is one scheduler-in-the-loop
// simulation"; this bench answers the sweep orchestrator's question: what
// happens when K of them share a process?  It runs the same simulated
// Cholesky under K engines — each with its own telemetry context
// (support/telemetry) — across a driver pool, then:
//
//   * measures fleet throughput (simulated tasks/s across the whole sweep)
//     against a sequential single-engine baseline and gates on
//     --min-speedup (concurrent engines must not be slower than one),
//   * checks telemetry isolation: every engine's own sim.tasks_executed
//     counter must equal the task count its run reported — any
//     cross-engine bleed shows up as a mismatch,
//   * checks aggregation coverage: the fleet-merged sim.tasks_executed
//     must equal the sum over engines (Snapshot::merge loses nothing),
//   * optionally streams the live "tasksim-sweep-v1" JSONL time series
//     (--stream) and writes the "tasksim-bench-sweep-v1" summary document
//     (--bench-json; uploaded by CI as BENCH_sweep.json) with the fleet
//     p50/p95/p99 makespan and queue-wait quantiles.
//
// Models are synthetic (log-normal around ~90 µs per kernel), so the bench
// is hermetic: no calibration run, no dependence on host BLAS speed.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"
#include "stats/distribution.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/sysinfo.hpp"

using namespace tasksim;

namespace {

sim::KernelModelSet synthetic_models() {
  sim::KernelModelSet models;
  // Log-normal spread (sigma 0.2 ≈ ±20%) keeps the queue-wait histogram
  // non-degenerate so the fleet quantiles exercise real merging.
  for (const char* kernel : {"dpotrf", "dtrsm", "dsyrk", "dgemm"}) {
    models.set_model(kernel,
                     std::make_unique<stats::LogNormalDist>(4.5, 0.2));
  }
  return models;
}

double tasks_per_s(std::size_t tasks, double wall_us) {
  return wall_us > 0.0 ? static_cast<double>(tasks) / (wall_us * 1e-6) : 0.0;
}

std::uint64_t counter_value(const metrics::Snapshot& snapshot,
                            const char* name) {
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? std::uint64_t{0} : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  int engines = 8;
  int concurrency = 0;
  int n = 480;
  int nb = 96;
  int workers = 2;
  long long seed = 42;
  std::string scheduler = "quark";
  double watchdog_us = 30e6;
  double min_speedup = 1.0;
  double stream_interval_us = 20000.0;
  std::string stream_path;
  std::string bench_json_path;
  bool profile = false;
  CliParser cli("sweep_throughput",
                "K concurrent simulation engines: fleet throughput, "
                "telemetry isolation, and aggregation coverage");
  cli.add_int("engines", &engines, "engines in the sweep");
  cli.add_int("concurrency", &concurrency,
              "engines running at once (0 = min(engines, hardware))");
  cli.add_int("n", &n, "matrix dimension per engine");
  cli.add_int("nb", &nb, "tile size");
  cli.add_int("workers", &workers, "worker threads per engine");
  cli.add_int("seed", &seed, "base seed (engine i runs seed + i*stride)");
  cli.add_string("scheduler", &scheduler, "quark | ompss | starpu");
  cli.add_double("watchdog-us", &watchdog_us,
                 "per-engine progress watchdog (0 = off)");
  cli.add_double("min-speedup", &min_speedup,
                 "fail if fleet tasks/s < this multiple of the sequential "
                 "single-engine baseline");
  cli.add_double("stream-interval-us", &stream_interval_us,
                 "JSONL stream tick period (used with --stream)");
  cli.add_string("stream", &stream_path,
                 "write the live tasksim-sweep-v1 JSONL time series here");
  cli.add_string("bench-json", &bench_json_path,
                 "write the tasksim-bench-sweep-v1 summary (BENCH_sweep.json)");
  cli.add_flag("profile", &profile,
               "arm each engine's phase profiler (adds aggregate phase "
               "shares to the stream)");
  if (!cli.parse(argc, argv)) return 0;

  harness::print_banner("Sweep: concurrent engine fleet throughput");
  std::printf("%s\nCholesky, n=%d nb=%d, %d workers/engine, %d engines\n\n",
              host_summary().c_str(), n, nb, workers, engines);

  const sim::KernelModelSet models = synthetic_models();

  harness::SweepConfig sweep;
  sweep.base.scheduler = scheduler;
  sweep.base.algorithm = harness::Algorithm::cholesky;
  sweep.base.n = n;
  sweep.base.nb = nb;
  sweep.base.workers = workers;
  sweep.base.seed = static_cast<std::uint64_t>(seed);
  sweep.base.watchdog_timeout_us = watchdog_us;
  sweep.engines = engines;
  sweep.concurrency = concurrency;
  sweep.profile_engines = profile;
  sweep.label_prefix = "bench";
  if (!stream_path.empty()) {
    sweep.stream_path = stream_path;
    sweep.stream_interval_us = stream_interval_us;
  }

  // Sequential baseline: one engine, one context, same configuration.  The
  // fleet must beat min_speedup × this in tasks/s or concurrency is a loss.
  double baseline_tasks_per_s = 0.0;
  {
    telemetry::TelemetryContext context("baseline");
    telemetry::TelemetryScope scope(context);
    const harness::RunResult run = harness::run_simulated(sweep.base, models);
    baseline_tasks_per_s = tasks_per_s(run.tasks, run.wall_us);
    std::printf("baseline (1 engine): %zu tasks, wall %s, %.1f tasks/s\n\n",
                run.tasks, format_duration_us(run.wall_us).c_str(),
                baseline_tasks_per_s);
  }

  const harness::SweepResult result = harness::run_sweep(sweep, models);
  std::fputs(harness::sweep_report(result).c_str(), stdout);

  bool ok = true;
  if (result.stats.failed > 0) {
    std::printf("\nFAIL: %d engine(s) failed\n", result.stats.failed);
    ok = false;
  }

  // Telemetry isolation: each engine's own registry must have counted
  // exactly the tasks its run reported — nothing leaked in or out.
  std::uint64_t expected_total = 0;
  for (const harness::EngineRunResult& engine : result.engines) {
    const std::uint64_t counted =
        counter_value(engine.metrics, "sim.tasks_executed");
    expected_total += counted;
    if (engine.ok && counted != engine.tasks) {
      std::printf("\nFAIL: engine %d ('%s') counted %llu tasks in its own "
                  "registry but executed %zu — cross-engine metric bleed\n",
                  engine.index, engine.label.c_str(),
                  static_cast<unsigned long long>(counted), engine.tasks);
      ok = false;
    }
  }

  // Aggregation coverage: the merged fleet counter is exactly the sum of
  // the per-engine counters (Snapshot::merge drops nothing, adds nothing).
  const std::uint64_t merged_total =
      counter_value(result.fleet_metrics, "sim.tasks_executed");
  if (merged_total != expected_total) {
    std::printf("\nFAIL: fleet-merged sim.tasks_executed %llu != per-engine "
                "sum %llu — snapshot merge lost counts\n",
                static_cast<unsigned long long>(merged_total),
                static_cast<unsigned long long>(expected_total));
    ok = false;
  }

  const double fleet_tasks_per_s = result.stats.throughput_tasks_per_s;
  const double speedup = baseline_tasks_per_s > 0.0
                             ? fleet_tasks_per_s / baseline_tasks_per_s
                             : 0.0;
  std::printf("\nfleet vs baseline: %.1f vs %.1f tasks/s (%.2fx, floor "
              "%.2fx)\n",
              fleet_tasks_per_s, baseline_tasks_per_s, speedup, min_speedup);
  if (speedup < min_speedup) {
    std::printf("FAIL: fleet throughput below the --min-speedup floor\n");
    ok = false;
  }
  if (!stream_path.empty()) {
    std::printf("streamed %zu tasksim-sweep-v1 lines to %s\n",
                result.stream_lines, stream_path.c_str());
    if (result.stream_lines == 0) {
      std::printf("FAIL: stream was requested but no lines were emitted\n");
      ok = false;
    }
  }

  if (!bench_json_path.empty()) {
    std::ofstream out(bench_json_path);
    out << "{\"schema\": \"tasksim-bench-sweep-v1\",\n"
        << " \"source\": \"sweep_throughput\",\n"
        << " \"scheduler\": \"" << scheduler << "\",\n"
        << " \"n\": " << n << ", \"nb\": " << nb
        << ", \"workers_per_engine\": " << workers << ",\n"
        << " \"baseline_tasks_per_s\": "
        << strprintf("%.6g", baseline_tasks_per_s) << ",\n"
        << " \"speedup\": " << strprintf("%.6g", speedup) << ",\n"
        << " \"merge_total\": " << merged_total << ",\n"
        << " \"per_engine_total\": " << expected_total << ",\n"
        << " \"sweep\": " << result.to_json() << "}\n";
    std::printf("wrote %s\n", bench_json_path.c_str());
  }

  return ok ? 0 : 1;
}
