// fig10_quark_perf — reproduces paper Figure 10: QR and Cholesky, real vs
// simulated performance under the QUARK-flavoured scheduler.
#include "fig_perf_common.hpp"

int main(int argc, char** argv) {
  return tasksim::bench::run_perf_figure(argc, argv, "Figure 10", "quark");
}
