// fig09_starpu_perf — reproduces paper Figure 9: QR and Cholesky, real vs
// simulated performance under the StarPU-flavoured scheduler (dmda policy,
// StarPU's performance-model-driven default for heterogeneous scheduling).
#include "fig_perf_common.hpp"

int main(int argc, char** argv) {
  return tasksim::bench::run_perf_figure(argc, argv, "Figure 9",
                                         "starpu/dmda");
}
