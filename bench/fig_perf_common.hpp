// fig_perf_common.hpp — shared driver for Figures 8, 9 and 10: real vs
// simulated performance of tile QR (blue in the paper) and tile Cholesky
// (red) across matrix sizes, for one scheduler, with the percentage error
// series.
//
// The paper uses tile size 200 and sweeps the matrix size; the worst error
// is ~16% at small sizes and most points are within 5%.  Defaults here use
// a smaller tile/size range so a full sweep finishes in tens of seconds on
// a 1-core host; the shape (error largest at small sizes, shrinking with
// size) is the property being reproduced.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/sysinfo.hpp"

namespace tasksim::bench {

inline int run_perf_figure(int argc, char** argv,
                           const std::string& figure_id,
                           const std::string& scheduler_default) {
  std::string scheduler = scheduler_default;
  // Smallest default point is NT=3: at NT=2 a Cholesky is four tasks and
  // the calibration sample is too thin to fit meaningful distributions
  // (the paper's smallest plotted sizes are also several tiles across).
  std::vector<int> sizes = {288, 480, 768, 1152, 1536, 1920};
  int nb = 96;  // paper: 200
  int workers = 4;
  bool audit = false;
  CliParser cli(figure_id,
                "real vs simulated QR + Cholesky performance (" +
                    scheduler_default + ")");
  cli.add_string("scheduler", &scheduler, "runtime spec");
  cli.add_int_list("sizes", &sizes, "matrix sizes to sweep");
  cli.add_int("nb", &nb, "tile size (paper: 200)");
  cli.add_int("workers", &workers, "worker threads");
  cli.add_flag("audit", &audit,
               "record task lifecycles; print the race audit and makespan "
               "attribution of the largest simulated point");
  if (!cli.parse(argc, argv)) return 0;

  harness::print_banner(figure_id + ": QR + Cholesky, real vs simulated (" +
                        scheduler + ")");
  std::printf("%s\ntile size %d, %d workers\n\n", host_summary().c_str(), nb,
              workers);

  harness::TextTable table;
  table.set_headers({"n", "QR real GF/s", "QR sim GF/s", "QR err %",
                     "Chol real GF/s", "Chol sim GF/s", "Chol err %"});
  double worst_qr = 0.0, worst_chol = 0.0;
  std::shared_ptr<trace::LifecycleLog> last_lifecycle;
  int last_lifecycle_n = 0;
  for (int n : sizes) {
    if (n % nb != 0) {
      std::printf("skipping n=%d (not a multiple of nb=%d)\n", n, nb);
      continue;
    }
    harness::ExperimentConfig config;
    config.scheduler = scheduler;
    config.n = n;
    config.nb = nb;
    config.workers = workers;
    config.real_repeats = 2;  // min-of-2 reference suppresses host jitter
    config.record_lifecycle = audit;

    config.algorithm = harness::Algorithm::qr;
    const auto qr = harness::compare_real_vs_sim(config,
                                                 sim::ModelFamily::best);
    config.algorithm = harness::Algorithm::cholesky;
    const auto chol = harness::compare_real_vs_sim(config,
                                                   sim::ModelFamily::best);
    if (qr.sim_lifecycle) {
      last_lifecycle = qr.sim_lifecycle;
      last_lifecycle_n = n;
    }
    worst_qr = std::max(worst_qr, std::abs(qr.error_pct));
    worst_chol = std::max(worst_chol, std::abs(chol.error_pct));

    table.add_row({std::to_string(n), strprintf("%.3f", qr.real_gflops),
                   strprintf("%.3f", qr.sim_gflops),
                   strprintf("%+.2f", qr.error_pct),
                   strprintf("%.3f", chol.real_gflops),
                   strprintf("%.3f", chol.sim_gflops),
                   strprintf("%+.2f", chol.error_pct)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nworst |error|: QR %.2f%%, Cholesky %.2f%%\n", worst_qr,
              worst_chol);
  std::printf("paper's claims to verify: worst-case error ~16%% (at the "
              "smallest sizes),\nmost points within a few percent, error "
              "shrinking as n grows.\n");
  if (last_lifecycle) {
    harness::print_lifecycle_report(
        *last_lifecycle,
        strprintf("lifecycle report (simulated QR, n=%d)", last_lifecycle_n));
  }
  return 0;
}

}  // namespace tasksim::bench
