// baseline_dag_replay — compares the paper's scheduler-in-the-loop
// simulation against the classic pure-DES alternative (list-scheduling the
// captured DAG on P virtual processors, no real scheduler in the loop —
// what SimGrid-style tools from the paper's related work would do).
//
// The baseline knows the DAG and the kernel-time models but not the
// scheduler's queue discipline, stealing, placement or bookkeeping, so its
// prediction deviates more from the real run — that gap is the value of
// the paper's approach.
#include <cmath>
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "linalg/tile_cholesky.hpp"
#include "linalg/tile_qr.hpp"
#include "sched/factory.hpp"
#include "sched/observers.hpp"
#include "sim/dag_replay.hpp"
#include "sim/sim_submitter.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/sysinfo.hpp"

using namespace tasksim;

namespace {

dag::TaskGraph capture_dag(const harness::ExperimentConfig& config,
                           const sim::KernelModelSet& models) {
  // Capture the dependence structure through the simulation path: bodies
  // are dropped, so no numerical work (and no data initialization) needed.
  linalg::TileMatrix a(config.n, config.nb);
  linalg::TileMatrix t(config.n, config.nb);
  sched::RuntimeConfig rc;
  rc.workers = 1;
  auto rt = sched::make_runtime(config.scheduler, rc);
  sched::DagCaptureObserver capture;
  rt->add_observer(&capture);
  sim::SimEngine engine(models);
  sim::SimSubmitter submitter(*rt, engine);
  if (config.algorithm == harness::Algorithm::cholesky) {
    (void)linalg::tile_cholesky(a, submitter);
  } else {
    linalg::tile_qr(a, t, submitter);
  }
  rt->remove_observer(&capture);
  return capture.take_graph();
}

}  // namespace

int main(int argc, char** argv) {
  int n = 768;
  int nb = 96;
  int workers = 4;
  int repeats = 3;
  CliParser cli("baseline_dag_replay",
                "scheduler-in-the-loop vs pure DAG-replay DES accuracy");
  cli.add_int("n", &n, "matrix dimension");
  cli.add_int("nb", &nb, "tile size");
  cli.add_int("workers", &workers, "worker threads");
  cli.add_int("repeats", &repeats, "stochastic repetitions");
  if (!cli.parse(argc, argv)) return 0;

  harness::print_banner("Baseline: pure DAG-replay DES vs scheduler-in-the-loop");
  std::printf("%s\nn=%d nb=%d, %d workers, %d repeats\n\n",
              host_summary().c_str(), n, nb, workers, repeats);

  harness::TextTable table;
  table.set_headers({"scheduler", "algorithm", "real ms", "sim-in-loop err %",
                     "dag-replay err %"});
  for (const char* scheduler : {"quark", "starpu/dmda", "ompss/bf"}) {
    for (harness::Algorithm algorithm :
         {harness::Algorithm::qr, harness::Algorithm::cholesky}) {
      harness::ExperimentConfig config;
      config.scheduler = scheduler;
      config.algorithm = algorithm;
      config.n = n;
      config.nb = nb;
      config.workers = workers;

      sim::CalibrationObserver calibration;
      const harness::RunResult real = harness::run_real(config, &calibration);
      const sim::KernelModelSet models =
          calibration.fit(sim::ModelFamily::best);

      double inloop_err = 0.0;
      double replay_err = 0.0;
      dag::TaskGraph graph = capture_dag(config, models);
      Rng rng(99);
      for (int r = 0; r < repeats; ++r) {
        config.seed = 11 + static_cast<std::uint64_t>(r);
        const harness::RunResult sim = harness::run_simulated(config, models);
        inloop_err += 100.0 *
                      std::fabs(sim.makespan_us - real.makespan_us) /
                      real.makespan_us;

        sim::DagReplayOptions options;
        options.workers = workers;
        const auto baseline =
            replay_dag(graph, sim::model_duration_fn(models, rng), options);
        replay_err += 100.0 *
                      std::fabs(baseline.makespan_us - real.makespan_us) /
                      real.makespan_us;
      }
      table.add_row({scheduler, harness::to_string(algorithm),
                     strprintf("%.2f", real.makespan_us * 1e-3),
                     strprintf("%.2f", inloop_err / repeats),
                     strprintf("%.2f", replay_err / repeats)});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nwhat to verify: the greedy DAG replay is an optimistic "
              "bound that ignores scheduler\npolicy; the in-loop simulation "
              "tracks each scheduler's real behaviour more closely,\n"
              "especially for policies that deviate from greedy (dm/dmda "
              "placement, windows).\n");
  return 0;
}
