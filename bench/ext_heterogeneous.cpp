// ext_heterogeneous — evaluates the heterogeneous (accelerator-lane)
// extension (paper §VII: "Both QUARK and StarPU support GPU tasks and the
// simulations do not support those in the current implementation").
//
// This bench is the what-if study the paper's autotuning motivation calls
// for: given CPU kernel models calibrated from a real run and synthetic
// accelerator models (update kernels `speedup`x faster, panel kernels
// CPU-only), the StarPU-flavoured dmda scheduler places tasks across
// 0/1/2/4 accelerator lanes *in simulation*, predicting how much a GPU
// would help before buying one.  A real heterogeneous execution (same
// code, accelerator implementation == CPU implementation) sanity-checks
// the machinery end to end.
#include <cstdio>
#include <memory>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "linalg/tile_cholesky.hpp"
#include "linalg/tile_qr.hpp"
#include "sched/starpu/starpu_runtime.hpp"
#include "sim/sim_engine.hpp"
#include "sim/sim_submitter.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/sysinfo.hpp"

using namespace tasksim;

int main(int argc, char** argv) {
  int n = 1152;
  int nb = 96;
  int cpu_lanes = 4;
  double speedup = 8.0;
  std::string algorithm = "cholesky";
  CliParser cli("ext_heterogeneous",
                "simulated accelerator lanes (paper §VII GPU extension)");
  cli.add_int("n", &n, "matrix dimension");
  cli.add_int("nb", &nb, "tile size");
  cli.add_int("cpu-lanes", &cpu_lanes, "CPU worker lanes");
  cli.add_double("speedup", &speedup,
                 "accelerator speedup for update kernels");
  cli.add_string("algorithm", &algorithm, "cholesky or qr");
  if (!cli.parse(argc, argv)) return 0;

  harness::print_banner(
      "Extension: heterogeneous simulation (StarPU dmda + accelerator lanes)");
  std::printf("%s\n%s, n=%d nb=%d, %d CPU lanes, accel %gx on update "
              "kernels\n\n",
              host_summary().c_str(), algorithm.c_str(), n, nb, cpu_lanes,
              speedup);

  harness::ExperimentConfig config;
  config.algorithm = harness::parse_algorithm(algorithm);
  config.scheduler = "starpu/dmda";
  config.n = n;
  config.nb = nb;
  config.workers = cpu_lanes;

  // CPU models from a real (CPU-only) calibration run.
  sim::CalibrationObserver calibration;
  const harness::RunResult real = harness::run_real(config, &calibration);
  sim::KernelModelSet models = calibration.fit(sim::ModelFamily::best);
  std::printf("CPU-only real run: %s (%.3f Gflop/s)\n\n",
              format_duration_us(real.makespan_us).c_str(), real.gflops);

  // Synthetic accelerator models: update kernels `speedup`x faster.
  for (const char* kernel : {"dgemm", "dsyrk", "dormqr", "dtsmqr"}) {
    if (!models.has_model(kernel)) continue;
    models.set_model(sched::accel_model_key(kernel),
                     std::make_unique<stats::ConstantDist>(
                         models.mean_us(kernel) / speedup));
  }

  harness::TextTable table;
  table.set_headers({"accel lanes", "total lanes", "predicted makespan",
                     "predicted GF/s", "vs CPU-only"});
  const double flops = harness::algorithm_flops(config);
  for (int accel : {0, 1, 2, 4}) {
    sched::RuntimeConfig rc;
    rc.workers = cpu_lanes + accel;
    rc.seed = 42;
    sched::StarpuOptions options;
    options.policy = sched::StarpuPolicy::dmda;
    options.accelerator_lanes = accel;
    options.profile_execution = false;
    sched::StarpuRuntime runtime(rc, options);
    for (const auto& kernel : models.kernel_names()) {
      for (int i = 0; i < 4; ++i) {
        runtime.perf_model().update(kernel, models.mean_us(kernel));
      }
    }

    sim::SimEngine engine(models);
    sim::SimSubmitter submitter(runtime, engine);
    linalg::TileMatrix a(n, nb);
    linalg::TileMatrix t(n, nb);
    linalg::TileAlgoOptions algo;
    algo.accel_update_kernels = true;
    if (config.algorithm == harness::Algorithm::cholesky) {
      (void)linalg::tile_cholesky(a, submitter, algo);
    } else {
      linalg::tile_qr(a, t, submitter, algo);
    }
    const double makespan = engine.trace().makespan_us();
    table.add_row({std::to_string(accel), std::to_string(cpu_lanes + accel),
                   format_duration_us(makespan),
                   strprintf("%.3f", flops / (makespan * 1e3)),
                   strprintf("%.2fx", real.makespan_us / makespan)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nwhat to verify: accelerator lanes absorb the update "
              "kernels and the predicted\nmakespan shrinks until the "
              "CPU-bound panel becomes the critical path (diminishing\n"
              "returns with more accelerators) — the capacity-planning "
              "question a simulator answers\nwithout owning the "
              "hardware.\n");
  return 0;
}
