// fig08_ompss_perf — reproduces paper Figure 8: QR and Cholesky, real vs
// simulated performance under the OmpSs-flavoured scheduler.
#include "fig_perf_common.hpp"

int main(int argc, char** argv) {
  return tasksim::bench::run_perf_figure(argc, argv, "Figure 8", "ompss/bf");
}
