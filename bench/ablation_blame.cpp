// ablation_blame — the causal blame decomposition, gated (DESIGN.md §13).
//
// Two claims have to hold for "why is this run slow?" to be trustworthy:
//
//   1. The budget is a *partition*: the blame categories are mutually
//      exclusive and their totals sum to the measured makespan.  Per
//      scheduler (the serialized engine under three runtime policies) the
//      gate demands >= --min-coverage (default 97%) of the makespan
//      attributed, every total non-negative, and every waterfall step's
//      parts summing to its tile width.
//   2. The pipeline is *deterministic*: a same-seed rerun must reproduce
//      the virtual schedule and the blame document byte for byte —
//      otherwise a diff between two runs measures scheduler noise, not
//      the change under test.  The two wait-floor annotation columns
//      (dep_floor, submit_floor) are excluded: they measure *real*
//      submitter-vs-worker interleaving by construction and are expected
//      to vary run to run (see canonical_view below).
//
// On top sits the diff explainer the CI gate demonstrates: inject a known
// slowdown through the fault-spec and assert the report *names it*:
//
//   * dgemm:tailp=1,tailmult=3 on Cholesky — the diff must name dgemm as
//     the dominant regressing kernel class,
//   * dchain:tailp=1,tailmult=3 on chains — the category shift must be
//     `compute` (inflated kernel time on the critical path),
//   * dchain:p=...,frac=... on chains — the category shift must be
//     `retry_backoff` (failed-attempt progress + virtual backoff).
//
// --trace-dir saves the clean/injected Cholesky traces (text v2, blame
// annotations included) for the tools/analyze CLI smoke test and the
// README walkthrough.  --bench-json writes tasksim-bench-blame-v1
// (BENCH_blame.json in CI, rendered by tools/bench_trend.py).
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "sim/fault_injection.hpp"
#include "stats/distribution.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/sysinfo.hpp"
#include "trace/blame.hpp"
#include "trace/diff.hpp"
#include "trace/text_io.hpp"

using namespace tasksim;

namespace {

/// Constant per-kernel models: every µs of budget movement is then
/// attributable to the schedule or the injected faults, never model noise.
sim::KernelModelSet constant_models() {
  sim::KernelModelSet models;
  models.set_model("dpotrf", std::make_unique<stats::ConstantDist>(120.0));
  models.set_model("dtrsm", std::make_unique<stats::ConstantDist>(80.0));
  models.set_model("dsyrk", std::make_unique<stats::ConstantDist>(90.0));
  models.set_model("dgemm", std::make_unique<stats::ConstantDist>(100.0));
  models.set_model("dchain", std::make_unique<stats::ConstantDist>(100.0));
  return models;
}

struct Cell {
  std::string name;
  harness::RunResult run;
  std::string trace_text;  ///< save_trace bytes (text v2, annotated)
  std::string blame_json;  ///< virtual-only blame document (deterministic)
};

std::string trace_bytes(const trace::Trace& trace) {
  std::ostringstream os;
  trace::save_trace(trace, os);
  return os.str();
}

/// The determinism-comparable view of a run.  A same-seed single-lane
/// rerun reproduces the virtual schedule exactly, but the two wait-floor
/// annotations measure *real* submitter-vs-worker interleaving by
/// construction: submit_floor samples the virtual clock at real submit
/// time, and a dependence edge only exists in the lifecycle stream when
/// its producer had not yet retired at submission.  Those columns are the
/// measurement, not the schedule — canonicalize them away and hold every
/// remaining byte (and the blame walk built on top) fixed.
struct CanonicalView {
  std::string schedule_text;  ///< save_trace bytes, wait floors zeroed
  std::string blame_json;     ///< virtual blame built from that schedule
};

CanonicalView canonical_view(const trace::Trace& t) {
  trace::Trace canon(t);
  std::unordered_map<std::uint64_t, trace::TraceAnnotation> notes;
  for (const trace::TraceEvent& e : t.events()) {
    trace::TraceAnnotation note;
    note.dep_floor_us = 0.0;
    note.submit_floor_us = 0.0;
    note.retry_backoff_us = e.retry_backoff_us;  // virtual: deterministic
    note.flags = e.flags;
    notes[e.task_id] = note;
  }
  canon.annotate(notes);
  CanonicalView view;
  view.schedule_text = trace_bytes(canon);
  view.blame_json = trace::build_blame(canon).to_json();
  return view;
}

}  // namespace

int main(int argc, char** argv) {
  int n = 768;
  int nb = 64;
  int workers = 8;
  std::uint64_t seed = 42;
  double min_coverage = 97.0;
  double failp = 0.5;
  double failfrac = 0.5;
  std::string schedulers = "quark,starpu/eager,starpu/dmda";
  std::string trace_dir;
  std::string bench_json_path;
  CliParser cli("ablation_blame",
                "makespan blame partition + diff explainer gates "
                "(DESIGN.md §13)");
  cli.add_int("n", &n, "matrix dimension");
  cli.add_int("nb", &nb, "tile size");
  cli.add_int("workers", &workers, "worker lanes");
  cli.add_double("min-coverage", &min_coverage,
                 "fail when less than this percent of the makespan is "
                 "attributed");
  cli.add_double("failp", &failp,
                 "per-attempt failure probability for the retry cell");
  cli.add_double("failfrac", &failfrac,
                 "progress fraction a failed attempt still commits");
  cli.add_string("schedulers", &schedulers,
                 "comma-separated runtime specs for the partition gate");
  cli.add_string("trace-dir", &trace_dir,
                 "save the clean/injected Cholesky traces here "
                 "(blame_clean.trace / blame_slow.trace) for the analyze "
                 "CLI");
  cli.add_string("bench-json", &bench_json_path,
                 "write tasksim-bench-blame-v1 (CI's BENCH_blame.json)");
  if (!cli.parse(argc, argv)) return 0;

  harness::print_banner("Ablation: causal blame & differential analysis");
  std::printf("%s\nn=%d nb=%d, %d workers, constant kernel models\n\n",
              host_summary().c_str(), n, nb, workers);

  const sim::KernelModelSet models = constant_models();

  auto run_cell = [&](const std::string& name, const std::string& scheduler,
                      harness::Algorithm algorithm,
                      const std::string& fault_spec, int lanes,
                      bool master_only = false) {
    Cell cell;
    cell.name = name;
    harness::ExperimentConfig config;
    config.scheduler = scheduler;
    config.algorithm = algorithm;
    config.n = n;
    config.nb = nb;
    config.workers = lanes;
    // master_only: zero spawned threads — the master submits the whole DAG
    // (the window is unbounded), then executes every task itself inside
    // wait_all.  One thread, no races: the schedule is a pure function of
    // the DAG and the policy, which is what the determinism gate needs.
    config.master_participates = master_only;
    config.seed = seed;
    config.blame = true;
    config.watchdog_timeout_us = 10e6;  // fail loud in CI, don't hang
    if (!fault_spec.empty()) {
      config.faults = sim::parse_fault_spec(fault_spec);
      config.max_task_retries = 32;  // the retry cell must never poison
    }
    cell.run = harness::run_simulated(config, models);
    cell.trace_text = trace_bytes(cell.run.timeline);
    // The determinism gate compares the *virtual* document: the paired
    // lifecycle adds real (wall) stage times, which legitimately vary.
    cell.blame_json = trace::build_blame(cell.run.timeline).to_json();
    return cell;
  };

  bool gate_ok = true;
  std::string gate_report;
  auto gate = [&](bool ok, std::string message) {
    if (ok) return;
    gate_ok = false;
    gate_report += "  " + std::move(message) + "\n";
  };

  // --- 1. partition + determinism, per scheduler -----------------------
  std::vector<Cell> partition_cells;
  harness::TextTable table;
  table.set_headers({"scheduler", "makespan", "coverage", "compute",
                     "serialization", "dependency", "lane idle", "links"});
  for (const std::string& scheduler : split(schedulers, ',')) {
    Cell cell = run_cell("partition/" + scheduler, scheduler,
                         harness::Algorithm::cholesky, "", workers);
    if (!cell.run.blame) {
      gate(false, scheduler + ": run_simulated attached no blame report");
      continue;
    }
    const trace::BlameReport& blame = *cell.run.blame;
    gate(blame.annotated,
         scheduler + ": the timeline carried no blame annotations");
    gate(100.0 * blame.coverage() >= min_coverage,
         strprintf("%s: only %.2f%% of the makespan attributed (< %.1f%%)",
                   scheduler.c_str(), 100.0 * blame.coverage(),
                   min_coverage));
    double total = 0.0;
    for (int c = 0; c < trace::kBlameCategoryCount; ++c) {
      gate(blame.totals[static_cast<std::size_t>(c)] >= 0.0,
           strprintf("%s: category %s went negative (%.3f us)",
                     scheduler.c_str(),
                     trace::to_string(static_cast<trace::BlameCategory>(c)),
                     blame.totals[static_cast<std::size_t>(c)]));
      total += blame.totals[static_cast<std::size_t>(c)];
    }
    // Mutual exclusivity: each waterfall tile's parts must sum to exactly
    // the tile's width — no double counting, no holes inside a tile.
    double prev_end = blame.t0_us;
    for (const trace::BlameStep& step : blame.waterfall) {
      double parts = 0.0;
      for (double p : step.parts) parts += p;
      const double width = step.virtual_end_us - prev_end;
      gate(std::abs(parts - width) <= 1e-3,
           strprintf("%s: task %llu tile sums to %.3f us but spans %.3f us",
                     scheduler.c_str(),
                     static_cast<unsigned long long>(step.task_id), parts,
                     width));
      prev_end = step.virtual_end_us;
    }
    // Determinism: same seed, same bytes — canonical schedule and blame
    // document (canonical_view: the racy-by-design wait floors masked).
    // Master-only (one lane, zero spawned threads): the whole DAG is
    // submitted before the first task runs, so the schedule is a pure
    // function of the DAG and the policy.  Any threaded run's dispatch
    // order is real-thread interleaving by design (scheduler in the loop),
    // and a byte gate there would measure the OS scheduler, not this
    // pipeline.  What this gate holds fixed: the virtual schedule, text
    // serialization, and the blame walk add zero nondeterminism of their
    // own (hash-map ordering, tie-breaks).
    const Cell det_a = run_cell(cell.name + "/det-a", scheduler,
                                harness::Algorithm::cholesky, "", 1,
                                /*master_only=*/true);
    const Cell det_b = run_cell(cell.name + "/det-b", scheduler,
                                harness::Algorithm::cholesky, "", 1,
                                /*master_only=*/true);
    const CanonicalView canon_a = canonical_view(det_a.run.timeline);
    const CanonicalView canon_b = canonical_view(det_b.run.timeline);
    if (canon_a.schedule_text != canon_b.schedule_text && !trace_dir.empty()) {
      // Forensics for the gate below: the two runs' bytes, side by side.
      std::ofstream(trace_dir + "/det_a.trace") << det_a.trace_text;
      std::ofstream(trace_dir + "/det_b.trace") << det_b.trace_text;
    }
    gate(canon_a.schedule_text == canon_b.schedule_text,
         scheduler + ": same-seed rerun produced a different virtual "
                     "schedule");
    gate(canon_a.blame_json == canon_b.blame_json,
         scheduler + ": same-seed rerun produced a different blame "
                     "document");
    const auto share = [&](trace::BlameCategory c) {
      return blame.makespan_us > 0.0
                 ? strprintf("%5.1f%%",
                             100.0 *
                                 blame.totals[static_cast<std::size_t>(
                                     static_cast<int>(c))] /
                                 blame.makespan_us)
                 : std::string("-");
    };
    table.add_row({scheduler, format_duration_us(blame.makespan_us),
                   strprintf("%.2f%%", 100.0 * blame.coverage()),
                   share(trace::BlameCategory::compute),
                   share(trace::BlameCategory::serialization),
                   share(trace::BlameCategory::dependency),
                   share(trace::BlameCategory::lane_idle),
                   std::to_string(blame.waterfall.size())});
    partition_cells.push_back(std::move(cell));
  }
  std::fputs(table.to_string().c_str(), stdout);
  if (!partition_cells.empty() && partition_cells.front().run.blame) {
    harness::print_blame(*partition_cells.front().run.blame,
                         "where the makespan went (" +
                             partition_cells.front().name + ")");
  }

  // --- 2. the diff explainer names injected slowdowns ------------------
  // Cholesky, dgemm inflated 3x: the kernel-class attribution.
  const Cell chol_clean = run_cell("chol/clean", "quark",
                                   harness::Algorithm::cholesky, "", workers);
  const Cell chol_slow =
      run_cell("chol/dgemm-tail", "quark", harness::Algorithm::cholesky,
               "dgemm:tailp=1,tailmult=3,tailshape=0", workers);
  const trace::TraceDiff kernel_diff =
      trace::diff_traces(chol_clean.run.timeline, chol_slow.run.timeline);
  gate(kernel_diff.delta_us > 0.0,
       "chol/dgemm-tail: 3x dgemm inflation did not grow the makespan");
  gate(kernel_diff.dominant_kernel == "dgemm",
       strprintf("chol/dgemm-tail: diff blamed '%s', expected 'dgemm'",
                 kernel_diff.dominant_kernel.c_str()));

  // Chains (one serial chain per lane): the category attribution.  A 3x
  // inflation on the chain kernel is critical-path compute; injected
  // failures with retries are retry_backoff.
  const Cell chain_clean = run_cell("chains/clean", "quark",
                                    harness::Algorithm::chains, "", workers);
  const Cell chain_tail =
      run_cell("chains/tail", "quark", harness::Algorithm::chains,
               "dchain:tailp=1,tailmult=3,tailshape=0", workers);
  const trace::TraceDiff tail_diff =
      trace::diff_traces(chain_clean.run.timeline, chain_tail.run.timeline);
  gate(tail_diff.delta_us > 0.0,
       "chains/tail: 3x inflation did not grow the makespan");
  gate(tail_diff.dominant_category == "compute",
       strprintf("chains/tail: category shift blamed '%s', expected "
                 "'compute'",
                 tail_diff.dominant_category.c_str()));

  const Cell chain_retry = run_cell(
      "chains/retry", "quark", harness::Algorithm::chains,
      strprintf("dchain:p=%g,frac=%g", failp, failfrac), workers);
  const trace::TraceDiff retry_diff =
      trace::diff_traces(chain_clean.run.timeline, chain_retry.run.timeline);
  gate(chain_retry.run.poisoned.empty(),
       strprintf("chains/retry: %zu tasks poisoned (raise the retry "
                 "budget)",
                 chain_retry.run.poisoned.size()));
  gate(retry_diff.delta_us > 0.0,
       "chains/retry: injected failures did not grow the makespan");
  gate(retry_diff.dominant_category == "retry_backoff",
       strprintf("chains/retry: category shift blamed '%s', expected "
                 "'retry_backoff'",
                 retry_diff.dominant_category.c_str()));

  std::printf("\ninjected-slowdown explanations:\n");
  std::printf("  chol dgemm 3x  -> kernel '%s', category '%s', %+.1f us\n",
              kernel_diff.dominant_kernel.c_str(),
              kernel_diff.dominant_category.c_str(), kernel_diff.delta_us);
  std::printf("  chains 3x      -> kernel '%s', category '%s', %+.1f us\n",
              tail_diff.dominant_kernel.c_str(),
              tail_diff.dominant_category.c_str(), tail_diff.delta_us);
  std::printf("  chains retries -> kernel '%s', category '%s', %+.1f us\n",
              retry_diff.dominant_kernel.c_str(),
              retry_diff.dominant_category.c_str(), retry_diff.delta_us);

  if (!trace_dir.empty()) {
    try {
      trace::save_trace(chol_clean.run.timeline,
                        trace_dir + "/blame_clean.trace");
      trace::save_trace(chol_slow.run.timeline,
                        trace_dir + "/blame_slow.trace");
      trace::save_trace(chain_clean.run.timeline,
                        trace_dir + "/blame_chains_clean.trace");
      trace::save_trace(chain_retry.run.timeline,
                        trace_dir + "/blame_chains_retry.trace");
      std::printf("\nsaved annotated traces to %s/blame_*.trace\n",
                  trace_dir.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot save traces: %s\n", e.what());
      gate(false, std::string("trace save failed: ") + e.what());
    }
  }

  if (!bench_json_path.empty()) {
    std::ofstream out(bench_json_path);
    out << "{\"schema\": \"tasksim-bench-blame-v1\",\n"
        << " \"source\": \"ablation_blame\",\n"
        << " \"n\": " << n << ", \"nb\": " << nb
        << ", \"workers\": " << workers << ",\n \"cells\": [";
    bool first = true;
    for (const Cell& cell : partition_cells) {
      const trace::BlameReport& blame = *cell.run.blame;
      if (!first) out << ",\n  ";
      first = false;
      out << "{\"scheduler\": \""
          << cell.name.substr(std::string("partition/").size())
          << "\", \"makespan_us\": " << strprintf("%.1f", blame.makespan_us)
          << ", \"coverage\": " << strprintf("%.6f", blame.coverage())
          << ", \"shares\": {";
      for (int c = 0; c < trace::kBlameCategoryCount; ++c) {
        if (c > 0) out << ", ";
        out << "\"" << trace::to_string(static_cast<trace::BlameCategory>(c))
            << "\": "
            << strprintf("%.6f",
                         blame.makespan_us > 0.0
                             ? blame.totals[static_cast<std::size_t>(c)] /
                                   blame.makespan_us
                             : 0.0);
      }
      out << "}}";
    }
    out << "],\n \"diffs\": ["
        << strprintf("{\"name\": \"chol/dgemm-tail\", \"dominant_kernel\": "
                     "\"%s\", \"dominant_category\": \"%s\", \"delta_us\": "
                     "%.1f},\n  ",
                     kernel_diff.dominant_kernel.c_str(),
                     kernel_diff.dominant_category.c_str(),
                     kernel_diff.delta_us)
        << strprintf("{\"name\": \"chains/tail\", \"dominant_kernel\": "
                     "\"%s\", \"dominant_category\": \"%s\", \"delta_us\": "
                     "%.1f},\n  ",
                     tail_diff.dominant_kernel.c_str(),
                     tail_diff.dominant_category.c_str(), tail_diff.delta_us)
        << strprintf("{\"name\": \"chains/retry\", \"dominant_kernel\": "
                     "\"%s\", \"dominant_category\": \"%s\", \"delta_us\": "
                     "%.1f}]}\n",
                     retry_diff.dominant_kernel.c_str(),
                     retry_diff.dominant_category.c_str(),
                     retry_diff.delta_us);
    std::printf("wrote %zu partition cells to %s\n", partition_cells.size(),
                bench_json_path.c_str());
  }

  std::printf("\nthe story: the budget partitions the makespan — compute "
              "and retry spans on the\nbinding chain, then every gap "
              "classified by its recorded floors — so when a run\nslows "
              "down, the diff names the kernel class that grew and the "
              "category that\nabsorbed the time, instead of a bare "
              "\"makespan went up 40%%\".\n");
  if (!gate_ok) {
    std::printf("\nFAIL:\n%s", gate_report.c_str());
    return 1;
  }
  return 0;
}
