// contrib_speedup — quantifies the paper's "Accelerated Simulation Time"
// contribution (§III): the wall-clock cost of a simulation vs the real run
// it predicts.  The paper reports a two-fold speedup as common, growing
// with task size (longer tasks amortize scheduler overhead in real runs
// while simulation cost stays roughly constant per task).
#include <cstdio>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/sysinfo.hpp"

using namespace tasksim;

int main(int argc, char** argv) {
  std::vector<int> sizes = {384, 576, 768, 960};
  int nb = 96;
  int workers = 4;
  std::string scheduler = "quark";
  CliParser cli("contrib_speedup", "simulation wall-time speedup vs real runs");
  cli.add_int_list("sizes", &sizes, "matrix sizes");
  cli.add_int("nb", &nb, "tile size");
  cli.add_int("workers", &workers, "worker threads");
  cli.add_string("scheduler", &scheduler, "runtime spec");
  if (!cli.parse(argc, argv)) return 0;

  harness::print_banner("Contribution: accelerated simulation time (" +
                        scheduler + ")");
  std::printf("%s\n\n", host_summary().c_str());

  harness::TextTable table;
  table.set_headers({"algorithm", "n", "tasks", "real wall", "sim wall",
                     "speedup"});
  for (harness::Algorithm algorithm :
       {harness::Algorithm::qr, harness::Algorithm::cholesky}) {
    for (int n : sizes) {
      if (n % nb != 0) continue;
      harness::ExperimentConfig config;
      config.scheduler = scheduler;
      config.algorithm = algorithm;
      config.n = n;
      config.nb = nb;
      config.workers = workers;

      sim::CalibrationObserver calibration;
      const harness::RunResult real = harness::run_real(config, &calibration);
      const harness::RunResult sim = harness::run_simulated(
          config, calibration.fit(sim::ModelFamily::best));

      table.add_row({harness::to_string(algorithm), std::to_string(n),
                     std::to_string(real.tasks),
                     format_duration_us(real.wall_us),
                     format_duration_us(sim.wall_us),
                     strprintf("%.2fx", real.wall_us / sim.wall_us)});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\npaper's claim to verify: a >= 2x speedup is not uncommon, "
              "growing with task size\n(our scratch-built kernels are slower "
              "than MKL, so the speedup here is larger;\nthe *trend* with "
              "size is the reproduced property).\n");
  return 0;
}
