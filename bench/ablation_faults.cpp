// ablation_faults — fault-injection ablation: how injected task failures,
// retries and poisoning bend the simulated makespan under each scheduler.
//
// Sweeps the per-attempt failure probability over all three runtime
// families (QUARK, StarPU/dmda, OmpSs/bf) with a fixed seed, reporting
// virtual makespan, failed attempts, retries and poisoned tasks per point.
// Failures are decided by pure hashing of (seed, kernel, submission
// ordinal), so a row is exactly reproducible: running a point twice must
// give identical retry counts and makespans (the determinism the fault
// plan exists to provide — checked here and reported).
#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "sim/fault_injection.hpp"
#include "stats/distribution.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/sysinfo.hpp"

using namespace tasksim;

namespace {

/// Constant per-kernel models: the ablation isolates fault handling, so
/// kernel-time noise is zeroed out.
sim::KernelModelSet constant_models() {
  sim::KernelModelSet models;
  models.set_model("dpotrf", std::make_unique<stats::ConstantDist>(120.0));
  models.set_model("dtrsm", std::make_unique<stats::ConstantDist>(80.0));
  models.set_model("dsyrk", std::make_unique<stats::ConstantDist>(90.0));
  models.set_model("dgemm", std::make_unique<stats::ConstantDist>(100.0));
  return models;
}

}  // namespace

int main(int argc, char** argv) {
  int n = 576;
  int nb = 96;
  int workers = 4;
  double backoff = 50.0;
  std::string schedulers = "quark,starpu/dmda,ompss/bf";
  std::string rates = "0,0.02,0.05,0.1";
  CliParser cli("ablation_faults",
                "fault-injection ablation: makespan and retry counts vs "
                "failure rate");
  cli.add_int("n", &n, "matrix dimension");
  cli.add_int("nb", &nb, "tile size");
  cli.add_int("workers", &workers, "worker threads");
  cli.add_double("backoff", &backoff, "retry backoff base (virtual us)");
  cli.add_string("schedulers", &schedulers, "comma-separated runtime specs");
  cli.add_string("rates", &rates, "comma-separated failure probabilities");
  if (!cli.parse(argc, argv)) return 0;

  harness::print_banner("Ablation: fault injection and retry/backoff");
  std::printf("%s\nCholesky, n=%d nb=%d, %d workers, poison mode, "
              "constant kernel models\n\n",
              host_summary().c_str(), n, nb, workers);

  const sim::KernelModelSet models = constant_models();

  harness::TextTable table;
  table.set_headers({"scheduler", "fail p", "makespan", "failed", "retries",
                     "poisoned", "deterministic"});
  for (const std::string& scheduler : split(schedulers, ',')) {
    for (const std::string& rate_text : split(rates, ',')) {
      const double rate = parse_double(rate_text);

      harness::ExperimentConfig config;
      config.scheduler = scheduler;
      config.algorithm = harness::Algorithm::cholesky;
      config.n = n;
      config.nb = nb;
      config.workers = workers;
      config.seed = 42;
      config.failure_mode = sched::FailureMode::poison;
      config.max_task_retries = 2;
      if (rate > 0.0) {
        sim::FaultPlanConfig faults;
        faults.seed = 0xFA17;
        faults.retry_backoff_us = backoff;
        faults.rules["*"].fail_probability = rate;
        faults.rules["*"].progress_fraction = 0.5;
        config.faults = faults;
      }

      const harness::RunResult first = harness::run_simulated(config, models);
      const harness::RunResult second = harness::run_simulated(config, models);
      // The plan's guarantee: identical failure decisions, retry counts and
      // poisoned sets on every rerun.  (The virtual makespan additionally
      // matches run-to-run once the schedule itself is deterministic, e.g.
      // at --workers 1; with more lanes, lane-assignment noise can shift it
      // without any fault decision changing.)
      const bool deterministic =
          first.failed_attempts == second.failed_attempts &&
          first.retries == second.retries &&
          first.poisoned == second.poisoned;

      table.add_row({scheduler, strprintf("%.3f", rate),
                     format_duration_us(first.makespan_us),
                     std::to_string(first.failed_attempts),
                     std::to_string(first.retries),
                     std::to_string(first.poisoned.size()),
                     deterministic ? "yes" : "NO"});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nexpectation: makespan grows with the failure rate (failed "
              "attempts re-run after\nvirtual backoff, partial progress "
              "charged to the timeline); tasks that exhaust the\nretry "
              "budget poison their successor subtree, which is skipped.  "
              "every row must be\ndeterministic — decisions are pure "
              "hashes of (seed, kernel, submission ordinal),\nnever shared-"
              "RNG draws, so thread interleaving cannot change them.\n");

  harness::print_metrics_snapshot();
  return 0;
}
