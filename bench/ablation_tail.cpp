// ablation_tail — the tail-aware resilience layer under heavy-tail
// straggler injection (DESIGN.md §12).
//
// The fault plan's tail rules inflate a deterministic subset of attempts
// by a large factor (the "one task in twenty runs 20x long" regime that
// dominates p99 behaviour on shared clusters).  This ablation sweeps the
// mitigation policy on a fixed chains workload with constant kernel
// models, so every µs of makespan movement is attributable to the policy:
//
//   * none            — the injected inflation lands on the critical path,
//   * hedge           — quantile-triggered duplicate attempts; first
//                       completion wins, the loser is cancelled through
//                       the TEQ without committing virtual time,
//   * deadline        — DeadlineMode::hedge: the per-task deadline is the
//                       hedge trigger (no clean-model quantile needed),
//   * hedge+cp        — hedging plus critical-path-first dispatch
//                       priorities (RuntimeConfig::cp_priority).
//
// Per cell the report shows makespan, recovery of the injected inflation,
// p95/p99 TEQ queue wait, hedge launches/wins/cancellations and the
// wasted duplicate work.  Gates (non-zero exit on failure):
//
//   * the hedge cell recovers at least --min-recovery percent of the
//     injected makespan inflation at no more than --max-waste percent
//     wasted duplicate work,
//   * every cell's recorded stream passes the §V-E race audit with zero
//     violations (hedged commits never reorder the timeline),
//   * every cell drains with hedges_cancelled == hedges_launched (no
//     duplicate leaks its TEQ ticket),
//   * the clean-workload hedge cell launches zero duplicates (the trigger
//     sits above the clean quantile by construction),
//   * the hedge cell is rerun and must reproduce byte-identical makespan
//     and hedge counters (seeded determinism).
//
// --bench-json writes every cell as a tasksim-bench-tail-v1 document
// (BENCH_tail.json in CI).
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "sim/fault_injection.hpp"
#include "stats/distribution.hpp"
#include "support/cli.hpp"
#include "support/metrics.hpp"
#include "support/strings.hpp"
#include "support/sysinfo.hpp"
#include "trace/lifecycle.hpp"

using namespace tasksim;

namespace {

/// Constant per-kernel models: the ablation isolates the resilience
/// policies, so kernel-time noise is zeroed out and the only variance is
/// the injected tail.  Covers every workload --algorithm can pick.
sim::KernelModelSet constant_models() {
  sim::KernelModelSet models;
  models.set_model("dpotrf", std::make_unique<stats::ConstantDist>(120.0));
  models.set_model("dtrsm", std::make_unique<stats::ConstantDist>(80.0));
  models.set_model("dsyrk", std::make_unique<stats::ConstantDist>(90.0));
  models.set_model("dgemm", std::make_unique<stats::ConstantDist>(100.0));
  models.set_model("dgeqrt", std::make_unique<stats::ConstantDist>(140.0));
  models.set_model("dtsqrt", std::make_unique<stats::ConstantDist>(110.0));
  models.set_model("dormqr", std::make_unique<stats::ConstantDist>(90.0));
  models.set_model("dtsmqr", std::make_unique<stats::ConstantDist>(100.0));
  models.set_model("dchain", std::make_unique<stats::ConstantDist>(100.0));
  models.set_model("dgetrf", std::make_unique<stats::ConstantDist>(130.0));
  models.set_model("dtrsm_l", std::make_unique<stats::ConstantDist>(80.0));
  models.set_model("dtrsm_r", std::make_unique<stats::ConstantDist>(80.0));
  return models;
}

enum class Policy { none, hedge, deadline, hedge_cp };

const char* to_string(Policy policy) {
  switch (policy) {
    case Policy::none: return "none";
    case Policy::hedge: return "hedge";
    case Policy::deadline: return "deadline";
    case Policy::hedge_cp: return "hedge+cp";
  }
  return "?";
}

struct Cell {
  bool tail = false;  ///< heavy-tail injection active
  Policy policy = Policy::none;
  harness::RunResult run;
  double p95_wait_us = 0.0;  ///< real TEQ wait (sim.queue.wait_us)
  double p99_wait_us = 0.0;
  double total_work_us = 0.0;  ///< committed virtual work in the timeline
  double waste_pct = 0.0;      ///< 100 * wasted duplicate µs / total work
  double recovery_pct = 0.0;   ///< share of the injected inflation removed
  std::size_t violations = 0;  ///< §V-E audit findings
};

double total_virtual_work(const trace::Trace& timeline) {
  double total = 0.0;
  for (const trace::TraceEvent& event : timeline.events()) {
    total += event.duration_us();
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  // Defaults pick the cell DESIGN.md §12 documents: n/nb independent
  // serial chains of constant 100 µs tasks on 16 workers, tail rule
  // p=0.05 × 20x with shape 0 (every straggler is exactly 20x, keeping
  // the recovery arithmetic exact).
  int n = 768;
  int nb = 64;
  std::string algorithm = "chains";
  std::string scheduler = "quark";
  int workers = 16;
  int window = 0;
  std::uint64_t seed = 42;
  double tailp = 0.05;
  double tailmult = 20.0;
  double deadline = 400.0;
  double quantile = 0.95;
  double margin = 1.5;
  double min_recovery = 30.0;
  double max_waste = 15.0;
  std::string bench_json_path;
  CliParser cli("ablation_tail",
                "resilience policy sweep under heavy-tail straggler "
                "injection (DESIGN.md §12)");
  cli.add_int("n", &n, "matrix dimension");
  cli.add_int("nb", &nb, "tile size");
  cli.add_string("algorithm", &algorithm,
                 "workload (cholesky | qr | lu | chains); chains = n/nb "
                 "independent uniform chains, where every straggler sits "
                 "on a critical path");
  cli.add_string("scheduler", &scheduler, "runtime spec");
  cli.add_int("workers", &workers, "worker lanes");
  cli.add_int("window", &window, "submission window (0 = unbounded)");
  cli.add_double("tailp", &tailp, "per-attempt straggle probability");
  cli.add_double("tailmult", &tailmult,
                 "straggler duration inflation factor (>= 1)");
  cli.add_double("deadline", &deadline,
                 "per-task virtual deadline for the deadline policy (µs)");
  cli.add_double("quantile", &quantile, "hedge trigger quantile");
  cli.add_double("margin", &margin, "hedge trigger margin over the quantile");
  cli.add_double("min-recovery", &min_recovery,
                 "fail when the hedge cell recovers less than this percent "
                 "of the injected makespan inflation");
  cli.add_double("max-waste", &max_waste,
                 "fail when the hedge cell wastes more than this percent "
                 "of the committed virtual work on cancelled duplicates");
  cli.add_string("bench-json", &bench_json_path,
                 "write every cell as tasksim-bench-tail-v1 (CI's "
                 "BENCH_tail.json artifact)");
  if (!cli.parse(argc, argv)) return 0;

  harness::print_banner("Ablation: tail-aware resilience layer");
  std::printf("%s\n%s, n=%d nb=%d, %d workers, constant kernel models, "
              "tail p=%g x%g\n\n",
              host_summary().c_str(), algorithm.c_str(), n, nb, workers,
              tailp, tailmult);

  const sim::KernelModelSet models = constant_models();
  const sim::FaultPlanConfig tail_faults = sim::parse_fault_spec(
      strprintf("*:tailp=%g,tailmult=%g,tailshape=0", tailp, tailmult));

  auto run_cell = [&](bool tail, Policy policy) {
    Cell cell;
    cell.tail = tail;
    cell.policy = policy;
    harness::ExperimentConfig config;
    config.scheduler = scheduler;
    config.algorithm = harness::parse_algorithm(algorithm);
    config.n = n;
    config.nb = nb;
    config.workers = workers;
    config.window_size = static_cast<std::size_t>(window);
    config.seed = seed;
    config.record_lifecycle = true;
    config.watchdog_timeout_us = 10e6;  // fail loud in CI, don't hang
    if (tail) config.faults = tail_faults;
    switch (policy) {
      case Policy::none:
        break;
      case Policy::hedge:
        config.hedging.enabled = true;
        config.hedging.quantile = quantile;
        config.hedging.margin = margin;
        break;
      case Policy::deadline:
        config.deadline_us = deadline;
        config.deadline_mode = sched::DeadlineMode::hedge;
        break;
      case Policy::hedge_cp:
        config.hedging.enabled = true;
        config.hedging.quantile = quantile;
        config.hedging.margin = margin;
        config.cp_priority = true;
        break;
    }
    metrics::reset();  // isolate this cell's sim.queue.wait_us histogram
    cell.run = harness::run_simulated(config, models);
    const metrics::Snapshot snap = metrics::snapshot();
    if (auto it = snap.histograms.find("sim.queue.wait_us");
        it != snap.histograms.end()) {
      cell.p95_wait_us = it->second.quantile(0.95);
      cell.p99_wait_us = it->second.quantile(0.99);
    }
    cell.total_work_us = total_virtual_work(cell.run.timeline);
    if (cell.total_work_us > 0.0) {
      cell.waste_pct = 100.0 *
                       static_cast<double>(cell.run.hedge_wasted_us) /
                       cell.total_work_us;
    }
    if (cell.run.lifecycle) {
      const trace::RaceAudit audit = trace::audit_races(*cell.run.lifecycle);
      cell.violations = audit.violations.size();
      if (!audit.violations.empty()) {
        std::printf("%s/%s §V-E audit: %s\n", tail ? "tail" : "clean",
                    to_string(policy), audit.to_string().c_str());
      }
    }
    return cell;
  };

  std::vector<Cell> cells;
  cells.push_back(run_cell(false, Policy::none));
  cells.push_back(run_cell(false, Policy::hedge));
  for (Policy policy :
       {Policy::none, Policy::hedge, Policy::deadline, Policy::hedge_cp}) {
    cells.push_back(run_cell(true, policy));
  }

  const double clean_makespan = cells[0].run.makespan_us;
  const double tail_makespan = cells[2].run.makespan_us;
  const double inflation = tail_makespan - clean_makespan;
  for (Cell& cell : cells) {
    if (cell.tail && cell.policy != Policy::none && inflation > 0.0) {
      cell.recovery_pct =
          100.0 * (tail_makespan - cell.run.makespan_us) / inflation;
    }
  }

  harness::TextTable table;
  table.set_headers({"workload", "policy", "makespan", "recovery",
                     "p95 wait", "p99 wait", "hedges", "won", "cancelled",
                     "wasted", "waste %", "deadline", "violations"});
  for (const Cell& cell : cells) {
    table.add_row(
        {cell.tail ? "tail" : "clean", to_string(cell.policy),
         format_duration_us(cell.run.makespan_us),
         cell.tail && cell.policy != Policy::none
             ? strprintf("%.1f%%", cell.recovery_pct)
             : std::string("-"),
         format_duration_us(cell.p95_wait_us),
         format_duration_us(cell.p99_wait_us),
         std::to_string(cell.run.hedges_launched),
         std::to_string(cell.run.hedges_won),
         std::to_string(cell.run.hedges_cancelled),
         strprintf("%llu us",
                   static_cast<unsigned long long>(cell.run.hedge_wasted_us)),
         strprintf("%.2f%%", cell.waste_pct),
         std::to_string(cell.run.deadline_breaches),
         std::to_string(cell.violations)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  bool gate_ok = true;
  std::string gate_report;
  auto gate = [&](bool ok, std::string message) {
    if (ok) return;
    gate_ok = false;
    gate_report += "  " + std::move(message) + "\n";
  };

  gate(inflation > 0.0,
       strprintf("tail injection did not inflate the makespan (clean %.1f, "
                 "tail %.1f): nothing to recover",
                 clean_makespan, tail_makespan));
  for (const Cell& cell : cells) {
    gate(cell.violations == 0,
         strprintf("%s/%s: %zu §V-E race-audit violations (hedged commits "
                   "must preserve the serialized timeline)",
                   cell.tail ? "tail" : "clean", to_string(cell.policy),
                   cell.violations));
    gate(cell.run.hedges_cancelled == cell.run.hedges_launched,
         strprintf("%s/%s: %llu hedges launched but %llu cancelled (a "
                   "duplicate leaked its TEQ ticket)",
                   cell.tail ? "tail" : "clean", to_string(cell.policy),
                   static_cast<unsigned long long>(cell.run.hedges_launched),
                   static_cast<unsigned long long>(
                       cell.run.hedges_cancelled)));
  }
  const Cell& clean_hedge = cells[1];
  gate(clean_hedge.run.hedges_launched == 0,
       strprintf("clean/hedge launched %llu duplicates (trigger must sit "
                 "above the clean quantile)",
                 static_cast<unsigned long long>(
                     clean_hedge.run.hedges_launched)));
  const Cell& hedged = cells[3];
  if (inflation > 0.0) {
    gate(hedged.recovery_pct >= min_recovery,
         strprintf("tail/hedge recovered %.1f%% of the injected inflation "
                   "(< %.1f%%)",
                   hedged.recovery_pct, min_recovery));
    gate(hedged.run.hedges_launched > 0,
         "tail/hedge launched no duplicates under a 20x tail");
  }
  gate(hedged.waste_pct <= max_waste,
       strprintf("tail/hedge wasted %.2f%% of the committed work "
                 "(> %.1f%%)",
                 hedged.waste_pct, max_waste));

  // Determinism: the hedge decisions are pure functions of the seeded
  // plan, so a rerun must reproduce the cell byte for byte.
  const Cell rerun = run_cell(true, Policy::hedge);
  gate(rerun.run.makespan_us == hedged.run.makespan_us &&
           rerun.run.hedges_launched == hedged.run.hedges_launched &&
           rerun.run.hedges_won == hedged.run.hedges_won &&
           rerun.run.hedges_cancelled == hedged.run.hedges_cancelled &&
           rerun.run.hedge_wasted_us == hedged.run.hedge_wasted_us,
       strprintf("tail/hedge rerun diverged: makespan %.3f vs %.3f, "
                 "launched %llu vs %llu, won %llu vs %llu, cancelled %llu "
                 "vs %llu, wasted %llu vs %llu us",
                 rerun.run.makespan_us, hedged.run.makespan_us,
                 static_cast<unsigned long long>(rerun.run.hedges_launched),
                 static_cast<unsigned long long>(hedged.run.hedges_launched),
                 static_cast<unsigned long long>(rerun.run.hedges_won),
                 static_cast<unsigned long long>(hedged.run.hedges_won),
                 static_cast<unsigned long long>(rerun.run.hedges_cancelled),
                 static_cast<unsigned long long>(
                     hedged.run.hedges_cancelled),
                 static_cast<unsigned long long>(rerun.run.hedge_wasted_us),
                 static_cast<unsigned long long>(
                     hedged.run.hedge_wasted_us)));

  if (!bench_json_path.empty()) {
    std::ofstream out(bench_json_path);
    out << "{\"schema\": \"tasksim-bench-tail-v1\",\n"
        << " \"source\": \"ablation_tail\",\n"
        << " \"algorithm\": \"" << algorithm << "\", \"n\": " << n
        << ", \"nb\": " << nb << ", \"workers\": " << workers
        << ", \"scheduler\": \"" << scheduler << "\",\n"
        << " \"tailp\": " << strprintf("%g", tailp)
        << ", \"tailmult\": " << strprintf("%g", tailmult)
        << ",\n \"cells\": [";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& cell = cells[i];
      if (i > 0) out << ",\n  ";
      out << strprintf(
          "{\"workload\": \"%s\", \"policy\": \"%s\", "
          "\"makespan_us\": %.1f, \"wall_us\": %.1f, "
          "\"recovery_pct\": %.2f, \"p95_wait_us\": %.2f, "
          "\"p99_wait_us\": %.2f, \"hedges_launched\": %llu, "
          "\"hedges_won\": %llu, \"hedges_cancelled\": %llu, "
          "\"hedge_wasted_us\": %llu, \"waste_pct\": %.3f, "
          "\"deadline_breaches\": %llu, \"violations\": %zu}",
          cell.tail ? "tail" : "clean", to_string(cell.policy),
          cell.run.makespan_us, cell.run.wall_us, cell.recovery_pct,
          cell.p95_wait_us, cell.p99_wait_us,
          static_cast<unsigned long long>(cell.run.hedges_launched),
          static_cast<unsigned long long>(cell.run.hedges_won),
          static_cast<unsigned long long>(cell.run.hedges_cancelled),
          static_cast<unsigned long long>(cell.run.hedge_wasted_us),
          cell.waste_pct,
          static_cast<unsigned long long>(cell.run.deadline_breaches),
          cell.violations);
    }
    out << "]}\n";
    std::printf("\nwrote %zu tail cells to %s\n", cells.size(),
                bench_json_path.c_str());
  }

  std::printf("\nthe story: a 20x straggler on a serial chain holds the "
              "whole chain hostage;\nthe hedge trigger fires after "
              "quantile x margin of clean time, the duplicate's\nclean "
              "re-sample caps the committed span, and the loser leaves "
              "the TEQ without\ntouching the timeline — recovery for the "
              "price of one duplicate per straggler.\n");
  if (!gate_ok) {
    std::printf("\nFAIL:\n%s", gate_report.c_str());
    return 1;
  }
  return 0;
}
