// fig_dist_common.hpp — shared driver for Figures 3 and 4: kernel
// execution-time densities with fitted Normal / Gamma / LogNormal curves.
//
// The paper plots the empirical density of one kernel class (DTSMQR for QR
// in Fig. 3, DGEMM for Cholesky in Fig. 4) with the three fitted candidate
// distributions overlaid, observing that all three fit well and the
// log-normal occasionally wins.  This driver reproduces the experiment:
// calibrate from a real run under a chosen scheduler, fit the candidates,
// print the goodness-of-fit table (log-likelihood, AIC, KS) and an ASCII
// density plot with the best fit overlaid.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "stats/descriptive.hpp"
#include "stats/fitting.hpp"
#include "stats/histogram.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/sysinfo.hpp"

namespace tasksim::bench {

struct DistFigureConfig {
  std::string figure_id;
  std::string kernel;            // e.g. "dtsmqr"
  harness::Algorithm algorithm;  // workload producing that kernel
};

inline int run_distribution_figure(int argc, char** argv,
                                   const DistFigureConfig& figure) {
  harness::ExperimentConfig config;
  config.algorithm = figure.algorithm;
  config.scheduler = "quark";
  config.n = 768;
  config.nb = 96;
  config.workers = 4;

  std::string scheduler = config.scheduler;
  int repeats = 2;
  CliParser cli(figure.figure_id,
                "kernel-time distribution and fitted models (" +
                    figure.kernel + ")");
  cli.add_int("n", &config.n, "matrix dimension");
  cli.add_int("nb", &config.nb, "tile size");
  cli.add_int("workers", &config.workers, "worker threads");
  cli.add_int("repeats", &repeats, "calibration runs to pool");
  cli.add_string("scheduler", &scheduler, "runtime spec");
  if (!cli.parse(argc, argv)) return 0;
  config.scheduler = scheduler;

  harness::print_banner(figure.figure_id + ": " + figure.kernel +
                        " kernel timing distribution (" +
                        harness::to_string(config.algorithm) +
                        std::string(", ") + scheduler + ")");
  std::printf("%s\n", host_summary().c_str());
  std::printf("n=%d nb=%d workers=%d repeats=%d\n\n", config.n, config.nb,
              config.workers, repeats);

  // Calibrate from real executions (paper §V-B1: samples come from the
  // actual execution of the algorithm, warm-up outliers dropped).
  sim::CalibrationObserver calibration;
  for (int r = 0; r < repeats; ++r) {
    config.seed = 42 + static_cast<std::uint64_t>(r);
    (void)harness::run_real(config, &calibration);
  }
  const std::vector<double> samples = calibration.samples_for(figure.kernel);
  if (samples.size() < 8) {
    std::printf("not enough %s samples (%zu); increase --n\n",
                figure.kernel.c_str(), samples.size());
    return 1;
  }

  const auto summary = stats::summarize(samples);
  std::printf("samples: %s\n\n", summary.to_string().c_str());

  // Fit the paper's candidates and print the ranking table.
  const auto fits = stats::fit_candidates(samples);
  harness::TextTable table;
  table.set_headers({"model", "parameters", "logL", "AIC", "KS", "KS p"});
  for (const auto& fit : fits) {
    table.add_row({fit.dist->name(), fit.dist->describe(),
                   strprintf("%.1f", fit.log_likelihood),
                   strprintf("%.1f", fit.aic),
                   strprintf("%.4f", fit.ks_statistic),
                   strprintf("%.3f", fit.ks_pvalue)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nbest fit by AIC: %s\n\n", fits.front().dist->describe().c_str());

  // ASCII density with the best fit overlaid ('*' = fitted pdf, '#' =
  // empirical density, '@' = both).
  stats::Histogram histogram = stats::Histogram::from_data(samples, 56);
  std::vector<double> overlay(static_cast<std::size_t>(histogram.bin_count()));
  for (int b = 0; b < histogram.bin_count(); ++b) {
    overlay[static_cast<std::size_t>(b)] =
        fits.front().dist->pdf(histogram.bin_center(b));
  }
  std::printf("%s kernel timings (us), empirical density vs fitted %s:\n%s\n",
              figure.kernel.c_str(), fits.front().dist->name().c_str(),
              histogram.ascii_plot(14, overlay).c_str());

  std::printf("paper's observation to verify: normal, gamma and lognormal "
              "all fit closely;\nKS statistics above should be small and "
              "comparable across the three families.\n");
  return 0;
}

}  // namespace tasksim::bench
