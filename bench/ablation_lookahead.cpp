// ablation_lookahead — the accuracy/speed dial of the bounded-lookahead
// completion engine (DESIGN.md §11).
//
// The strict §V-C discipline serializes every simulated task on the global
// virtual-completion front, so sim wall time scales with the chain of
// completions rather than host parallelism.  The lookahead engine lets a
// waiter within `lookahead_us` of the front return early once the grant
// predicate proves the reordering invisible (conservative) or
// speculatively with post-hoc audit + repair (optimistic).  This ablation
// sweeps lookahead depth × scheduler × worker count on a fig10-style
// factorization with constant kernel models (hermetic — no real run, no
// calibration noise) and reports, per cell:
//
//   * virtual makespan and its error vs the lookahead=off baseline of the
//     same (scheduler, workers) — conservative mode must stay within
//     --max-error, and depth 0 must reproduce the baseline *exactly*,
//   * sim wall time and the speedup vs that baseline,
//   * releases / horizon blocks, and for optimistic cells the §V-E
//     violation count, unrepaired tasks, and repaired makespan.
//
// --bench-json writes every cell as a tasksim-bench-lookahead-v1 document
// (BENCH_lookahead.json in CI — the perf-trajectory artifact).  Exit
// status is non-zero when a conservative cell exceeds --max-error, when
// depth 0 deviates at all, or when an optimistic cell leaves violations
// unrepaired.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "sim/lookahead.hpp"
#include "stats/distribution.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/sysinfo.hpp"

using namespace tasksim;

namespace {

/// Constant per-kernel models: the ablation isolates the completion
/// engine, so kernel-time noise is zeroed out and every cell simulates
/// the identical workload.  Covers all three tile factorizations so
/// --algorithm can pick the DAG shape (QR's flat-tree panel chains are
/// the narrow-and-deep extreme, Cholesky's trailing updates the wide
/// one).
sim::KernelModelSet constant_models() {
  sim::KernelModelSet models;
  models.set_model("dpotrf", std::make_unique<stats::ConstantDist>(120.0));
  models.set_model("dtrsm", std::make_unique<stats::ConstantDist>(80.0));
  models.set_model("dsyrk", std::make_unique<stats::ConstantDist>(90.0));
  models.set_model("dgemm", std::make_unique<stats::ConstantDist>(100.0));
  models.set_model("dgeqrt", std::make_unique<stats::ConstantDist>(140.0));
  models.set_model("dtsqrt", std::make_unique<stats::ConstantDist>(110.0));
  models.set_model("dormqr", std::make_unique<stats::ConstantDist>(90.0));
  models.set_model("dtsmqr", std::make_unique<stats::ConstantDist>(100.0));
  models.set_model("dchain", std::make_unique<stats::ConstantDist>(100.0));
  models.set_model("dgetrf", std::make_unique<stats::ConstantDist>(130.0));
  models.set_model("dtrsm_l", std::make_unique<stats::ConstantDist>(80.0));
  models.set_model("dtrsm_r", std::make_unique<stats::ConstantDist>(80.0));
  return models;
}

struct Cell {
  std::string scheduler;
  int workers = 0;
  sim::LookaheadMode mode = sim::LookaheadMode::off;
  double lookahead_us = 0.0;
  harness::RunResult run;
  double error_pct = 0.0;
  double speedup = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  // Defaults pick the cell DESIGN.md §11 documents: 16 independent chains
  // on 16 oversubscribed workers behind a QUARK-style window of 16 — width
  // == workers keeps the off-mode trace deterministic (the depth-0 gate is
  // only sound there), and the bounded window keeps the submitter parked so
  // the conservative grant predicate stays provable mid-run.
  int n = 768;
  int nb = 48;
  std::string algorithm = "chains";
  int window = 16;
  int repeats = 3;
  double max_error = 1.0;
  std::string schedulers = "quark";
  std::string workers_list = "16";
  std::string depths = "0,50,200,1000";
  double optimistic_depth = 200.0;
  bool skip_optimistic = false;
  std::string bench_json_path;
  CliParser cli("ablation_lookahead",
                "lookahead depth sweep: sim-wall speedup vs makespan error "
                "(DESIGN.md §11)");
  cli.add_int("n", &n, "matrix dimension");
  cli.add_int("nb", &nb, "tile size");
  cli.add_string("algorithm", &algorithm,
                 "workload (cholesky | qr | lu | chains); chains = n/nb "
                 "independent uniform chains, the out-of-order best case "
                 "whose makespan is claim-order invariant by symmetry");
  cli.add_int("window", &window,
              "submission window (0 = unbounded; a bounded window throttles "
              "the submitter, the regime where the release predicate is "
              "cheapest to prove)");
  cli.add_int("repeats", &repeats,
              "runs per cell (wall time is the minimum, makespan must not "
              "vary beyond the error gate)");
  cli.add_double("max-error", &max_error,
                 "fail when a conservative cell's |makespan error| exceeds "
                 "this percentage");
  cli.add_string("schedulers", &schedulers, "comma-separated runtime specs");
  cli.add_string("workers", &workers_list,
                 "comma-separated worker counts (paper regime: well above "
                 "the host's cores)");
  cli.add_string("depths", &depths,
                 "comma-separated conservative lookahead depths (virtual "
                 "us; 0 must degenerate to the serialized engine)");
  cli.add_double("optimistic-depth", &optimistic_depth,
                 "lookahead depth for the optimistic cell");
  cli.add_flag("skip-optimistic", &skip_optimistic,
               "sweep conservative cells only");
  cli.add_string("bench-json", &bench_json_path,
                 "write every cell as tasksim-bench-lookahead-v1 (CI's "
                 "BENCH_lookahead.json artifact)");
  if (!cli.parse(argc, argv)) return 0;

  harness::print_banner("Ablation: bounded-lookahead completion engine");
  std::printf("%s\n%s, n=%d nb=%d, constant kernel models, min-of-%d "
              "wall\n\n",
              host_summary().c_str(), algorithm.c_str(), n, nb, repeats);

  const sim::KernelModelSet models = constant_models();

  harness::TextTable table;
  table.set_headers({"scheduler", "workers", "mode", "depth us",
                     "sim makespan", "err %", "sim wall", "speedup",
                     "releases", "horizon blk", "violations"});

  std::vector<Cell> cells;
  bool gate_ok = true;
  std::string gate_report;
  for (const std::string& scheduler : split(schedulers, ',')) {
    for (const std::string& workers_text : split(workers_list, ',')) {
      const int workers = parse_int(workers_text);

      harness::ExperimentConfig config;
      config.scheduler = scheduler;
      config.algorithm = harness::parse_algorithm(algorithm);
      config.n = n;
      config.nb = nb;
      config.workers = workers;
      config.window_size = static_cast<std::size_t>(window);
      config.seed = 42;

      // Every (mode, depth) variant of this (scheduler, workers) pair,
      // off first: its makespan is the accuracy reference and its wall
      // time the speedup baseline.
      struct Variant {
        sim::LookaheadMode mode;
        double depth;
      };
      std::vector<Variant> variants{{sim::LookaheadMode::off, 0.0}};
      for (const std::string& depth_text : split(depths, ',')) {
        variants.push_back(
            {sim::LookaheadMode::conservative, parse_double(depth_text)});
      }
      if (!skip_optimistic) {
        variants.push_back({sim::LookaheadMode::optimistic, optimistic_depth});
      }

      // One unrecorded warm-up run per (scheduler, workers) pair: the very
      // first simulation pays allocator/page-fault warm-up that would
      // otherwise inflate the off baseline (it always runs first) and with
      // it every speedup in the column.
      {
        config.lookahead_mode = sim::LookaheadMode::off;
        config.lookahead_us = 0.0;
        (void)harness::run_simulated(config, models);
      }

      // Repeats are interleaved round-robin across the variants (not run
      // back to back per variant): host drift — frequency ramps, page
      // cache, a neighbour stealing the core — then biases every variant
      // equally instead of whichever one happened to run first.
      std::vector<Cell> sweep(variants.size());
      for (int r = 0; r < repeats; ++r) {
        for (std::size_t v = 0; v < variants.size(); ++v) {
          config.lookahead_mode = variants[v].mode;
          config.lookahead_us = variants[v].depth;
          harness::RunResult run = harness::run_simulated(config, models);
          if (r == 0 || run.wall_us < sweep[v].run.wall_us) {
            sweep[v].run = std::move(run);
          }
        }
      }

      double base_makespan = 0.0;
      double base_wall = 0.0;
      for (std::size_t v = 0; v < variants.size(); ++v) {
        const Variant& variant = variants[v];
        Cell& cell = sweep[v];
        cell.scheduler = scheduler;
        cell.workers = workers;
        cell.mode = variant.mode;
        cell.lookahead_us = variant.depth;
        if (variant.mode == sim::LookaheadMode::off) {
          base_makespan = cell.run.makespan_us;
          base_wall = cell.run.wall_us;
        }
        cell.error_pct =
            base_makespan > 0.0
                ? 100.0 * (cell.run.makespan_us - base_makespan) /
                      base_makespan
                : 0.0;
        cell.speedup =
            cell.run.wall_us > 0.0 ? base_wall / cell.run.wall_us : 0.0;

        if (variant.mode == sim::LookaheadMode::conservative) {
          const double abs_err = std::fabs(cell.error_pct);
          if (variant.depth == 0.0 && cell.run.makespan_us != base_makespan) {
            gate_ok = false;
            gate_report += strprintf(
                "  %s/%dw depth 0: makespan %.1f != serialized %.1f (must "
                "degenerate exactly)\n",
                scheduler.c_str(), workers, cell.run.makespan_us,
                base_makespan);
          } else if (abs_err > max_error) {
            gate_ok = false;
            gate_report += strprintf(
                "  %s/%dw conservative depth %.0f: |error| %.3f%% > %.2f%%\n",
                scheduler.c_str(), workers, variant.depth, abs_err,
                max_error);
          }
        } else if (variant.mode == sim::LookaheadMode::optimistic &&
                   cell.run.lookahead_unrepaired != 0) {
          gate_ok = false;
          gate_report += strprintf(
              "  %s/%dw optimistic: %llu violations left unrepaired\n",
              scheduler.c_str(), workers,
              static_cast<unsigned long long>(cell.run.lookahead_unrepaired));
        }

        table.add_row(
            {scheduler, std::to_string(workers),
             std::string(to_string(variant.mode)),
             strprintf("%.0f", variant.depth),
             format_duration_us(cell.run.makespan_us),
             strprintf("%+.3f", cell.error_pct),
             format_duration_us(cell.run.wall_us),
             strprintf("%.2fx", cell.speedup),
             std::to_string(cell.run.lookahead_releases),
             std::to_string(cell.run.lookahead_horizon_blocks),
             cell.mode == sim::LookaheadMode::optimistic
                 ? strprintf("%llu (%llu unrepaired)",
                             static_cast<unsigned long long>(
                                 cell.run.lookahead_violations),
                             static_cast<unsigned long long>(
                                 cell.run.lookahead_unrepaired))
                 : std::string("-")});
        cells.push_back(std::move(cell));
      }
    }
  }
  std::fputs(table.to_string().c_str(), stdout);

  if (!bench_json_path.empty()) {
    std::ofstream out(bench_json_path);
    out << "{\"schema\": \"tasksim-bench-lookahead-v1\",\n"
        << " \"source\": \"ablation_lookahead\",\n"
        << " \"algorithm\": \"" << algorithm << "\", \"n\": " << n
        << ", \"nb\": " << nb
        << ",\n \"cells\": [";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& cell = cells[i];
      if (i > 0) out << ",\n  ";
      out << strprintf(
          "{\"scheduler\": \"%s\", \"workers\": %d, \"mode\": \"%s\", "
          "\"lookahead_us\": %.1f, \"makespan_us\": %.1f, "
          "\"error_pct\": %.4f, \"wall_us\": %.1f, \"speedup\": %.4f, "
          "\"releases\": %llu, \"horizon_blocks\": %llu, "
          "\"violations\": %llu, \"unrepaired\": %llu, "
          "\"repaired_makespan_us\": %.1f}",
          cell.scheduler.c_str(), cell.workers, to_string(cell.mode),
          cell.lookahead_us, cell.run.makespan_us, cell.error_pct,
          cell.run.wall_us, cell.speedup,
          static_cast<unsigned long long>(cell.run.lookahead_releases),
          static_cast<unsigned long long>(cell.run.lookahead_horizon_blocks),
          static_cast<unsigned long long>(cell.run.lookahead_violations),
          static_cast<unsigned long long>(cell.run.lookahead_unrepaired),
          cell.run.repaired_makespan_us);
    }
    out << "]}\n";
    std::printf("\nwrote %zu lookahead cells to %s\n", cells.size(),
                bench_json_path.c_str());
  }

  std::printf("\nthe dial being swept: depth 0 is the serialized §V-C "
              "engine bit for bit; growing\nthe horizon buys sim-wall "
              "speedup (oversubscribed workers stop parking on the\n"
              "global front) at zero makespan cost while the conservative "
              "grant predicate holds;\noptimistic mode trades bounded, "
              "audited, repairable error for the rest.\n");
  if (!gate_ok) {
    std::printf("\nFAIL:\n%s", gate_report.c_str());
    return 1;
  }
  return 0;
}
