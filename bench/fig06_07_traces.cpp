// fig06_07_traces — reproduces paper Figures 6 and 7: a real trace and a
// simulated trace of a tile QR factorization under the QUARK scheduler,
// rendered as two SVGs on an identical time axis.
//
// The paper's setup: matrix 3960, tile 180 (NT = 22), 48 cores, QUARK with
// master participation (core 0 inserts tasks and runs fewer kernels).  The
// default here is scaled to NT = 12 on 8 workers so the bench completes
// quickly on a small host; pass --n 3960 --nb 180 --workers 48 for the
// paper's exact configuration.
//
// What to check against the paper:
//   * the two makespans nearly coincide (few percent),
//   * the simulated trace preserves the ramp-up / plateau / tail shape
//     (utilization profile printed below),
//   * worker 0 executes fewer tasks than the others in the real run (it
//     inserts tasks), a feature the simulation also shows,
//   * per-kernel duration distributions match (two-sample KS).
#include <algorithm>
#include <cstdio>
#include <fstream>

#include "harness/experiment.hpp"
#include "trace/chrome_export.hpp"
#include "harness/report.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/sysinfo.hpp"
#include "trace/analysis.hpp"
#include "trace/svg_export.hpp"
#include "trace/text_io.hpp"

using namespace tasksim;

int main(int argc, char** argv) {
  harness::ExperimentConfig config;
  config.algorithm = harness::Algorithm::qr;
  config.scheduler = "quark";
  config.n = 1440;
  config.nb = 120;
  config.workers = 8;
  config.master_participates = true;  // QUARK's core-0 behaviour
  std::string out_prefix = "fig06_07";

  CliParser cli("fig06_07_traces",
                "real vs simulated QR trace under QUARK (paper Figs. 6-7)");
  cli.add_int("n", &config.n, "matrix dimension (paper: 3960)");
  cli.add_int("nb", &config.nb, "tile size (paper: 180)");
  cli.add_int("workers", &config.workers, "worker threads (paper: 48)");
  cli.add_string("prefix", &out_prefix, "output file prefix");
  if (!cli.parse(argc, argv)) return 0;

  harness::print_banner("Figures 6-7: QR traces, real vs simulated (quark)");
  std::printf("%s\n", host_summary().c_str());
  std::printf("matrix %d, tile %d (NT=%d), %d workers, master participates\n\n",
              config.n, config.nb, config.n / config.nb, config.workers);

  // Real execution with calibration (Figure 6).
  sim::CalibrationObserver calibration;
  const harness::RunResult real = harness::run_real(config, &calibration);
  const sim::KernelModelSet models = calibration.fit(sim::ModelFamily::best);

  // Simulated execution (Figure 7), with the flight recorder capturing the
  // task lifecycles for the race audit / attribution / Chrome spans below.
  // The saved real trace doubles as the harness's reference: run_simulated
  // loads it and attaches the TraceComparison to the result.
  trace::save_trace(real.timeline, out_prefix + "_real.trace");
  config.record_lifecycle = true;
  config.reference_trace = out_prefix + "_real.trace";
  const harness::RunResult sim = harness::run_simulated(config, models);

  std::printf("real makespan      : %s (%.3f Gflop/s)\n",
              format_duration_us(real.makespan_us).c_str(), real.gflops);
  std::printf("simulated makespan : %s (%.3f Gflop/s)\n",
              format_duration_us(sim.makespan_us).c_str(), sim.gflops);
  std::printf("makespan error     : %+.2f%%\n\n",
              100.0 * (sim.makespan_us - real.makespan_us) / real.makespan_us);

  if (sim.comparison) {
    harness::print_trace_comparison(*sim.comparison,
                                    "trace comparison (vs saved reference)");
    std::printf("\n");
  }

  // Per-worker task counts: the paper notes core 0 runs fewer tasks in the
  // real trace because it inserts tasks and maintains the DAG.
  auto counts = [](const trace::Trace& t, int workers) {
    std::vector<std::size_t> c(static_cast<std::size_t>(workers), 0);
    for (const auto& e : t.events()) {
      if (e.worker < workers) ++c[static_cast<std::size_t>(e.worker)];
    }
    return c;
  };
  harness::TextTable per_worker;
  per_worker.set_headers({"worker", "real tasks", "sim tasks"});
  const auto real_counts = counts(real.timeline, config.workers);
  const auto sim_counts = counts(sim.timeline, config.workers);
  for (int w = 0; w < config.workers; ++w) {
    per_worker.add_row({std::to_string(w),
                        std::to_string(real_counts[static_cast<std::size_t>(w)]),
                        std::to_string(sim_counts[static_cast<std::size_t>(w)])});
  }
  std::fputs(per_worker.to_string().c_str(), stdout);

  // Utilization shape: ramp-up / plateau / tail in ten slices.
  std::printf("\nutilization profile (10 slices):\nreal: ");
  for (double u : trace::utilization_profile(real.timeline, 10)) {
    std::printf("%4.0f%% ", 100.0 * u);
  }
  std::printf("\nsim : ");
  for (double u : trace::utilization_profile(sim.timeline, 10)) {
    std::printf("%4.0f%% ", 100.0 * u);
  }
  std::printf("\n\n");

  // SVGs on one shared time axis (the paper's presentation).
  trace::SvgOptions svg;
  svg.time_span_us = std::max(real.makespan_us, sim.makespan_us);
  svg.title = strprintf("Fig. 6 analogue: real QR trace (quark, n=%d nb=%d)",
                        config.n, config.nb);
  trace::write_svg(real.timeline, out_prefix + "_real.svg", svg);
  svg.title = strprintf("Fig. 7 analogue: simulated QR trace (quark, n=%d nb=%d)",
                        config.n, config.nb);
  trace::write_svg(sim.timeline, out_prefix + "_sim.svg", svg);
  trace::save_trace(sim.timeline, out_prefix + "_sim.trace");
  {
    // Both timelines in one Chrome-tracing document for interactive
    // inspection (chrome://tracing or ui.perfetto.dev), with in-flight
    // task-count counter tracks so queue depth renders alongside the bars,
    // plus the recorded lifecycle layer on the simulated process (pid 2):
    // one async span per task lifetime and one flow arrow per dependence.
    std::vector<std::string> lifecycle_events;
    if (sim.lifecycle) {
      lifecycle_events = trace::render_lifecycle_events(*sim.lifecycle, 2);
    }
    std::ofstream out(out_prefix + "_both.json");
    out << trace::render_chrome_json(
        {&real.timeline, &sim.timeline},
        {trace::occupancy_track(real.timeline, "real in-flight", 1),
         trace::occupancy_track(sim.timeline, "sim queue depth", 2)},
        lifecycle_events);
  }
  std::printf("artifacts: %s_real.svg %s_sim.svg %s_both.json "
              "(+ .trace text files)\n",
              out_prefix.c_str(), out_prefix.c_str(), out_prefix.c_str());

  // Race audit + makespan attribution from the recorded lifecycles — where
  // the simulated critical path actually went (kernels vs waits).
  if (sim.lifecycle) harness::print_lifecycle_report(*sim.lifecycle);

  // Counters accumulated across the real and simulated runs: queue waits,
  // displacements, quiescence spins, steals, calibration sample counts.
  harness::print_metrics_snapshot();
  return 0;
}
