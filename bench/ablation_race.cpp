// ablation_race — quantifies the scheduling race condition of paper §V-E
// and its mitigations.
//
// The paper describes the race (Figure 5), a QUARK-specific quiescence
// query, and a portable sleep/yield fallback.  This ablation runs the same
// simulation under all three policies (none / yield_sleep / quiescence)
// against the same real execution and reports makespan error and
// start-order correlation.  Expectation: `none` is wildly wrong (the race
// serializes or reorders the virtual timeline), the two mitigations are
// accurate, and quiescence is at least as accurate as sleeping.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/sysinfo.hpp"
#include "trace/analysis.hpp"

using namespace tasksim;

int main(int argc, char** argv) {
  int n = 576;
  int nb = 96;
  int workers = 4;
  int repeats = 3;
  std::string scheduler = "quark";
  std::string bench_json_path;
  CliParser cli("ablation_race", "race-mitigation ablation (paper §V-E)");
  cli.add_int("n", &n, "matrix dimension");
  cli.add_int("nb", &nb, "tile size");
  cli.add_int("workers", &workers, "worker threads");
  cli.add_int("repeats", &repeats, "simulations per policy");
  cli.add_string("scheduler", &scheduler, "runtime spec");
  cli.add_string("bench-json", &bench_json_path,
                 "write per-mitigation accuracy cells "
                 "(tasksim-bench-race-v1; CI's BENCH_race.json artifact)");
  if (!cli.parse(argc, argv)) return 0;

  harness::print_banner("Ablation: scheduling race condition (paper §V-E)");
  std::printf("%s\nQR, n=%d nb=%d, %d workers, %s, %d repeats\n\n",
              host_summary().c_str(), n, nb, workers, scheduler.c_str(),
              repeats);

  harness::ExperimentConfig config;
  config.algorithm = harness::Algorithm::qr;
  config.scheduler = scheduler;
  config.n = n;
  config.nb = nb;
  config.workers = workers;
  config.record_lifecycle = true;  // flight-recorder race audit per run

  sim::CalibrationObserver calibration;
  const harness::RunResult real = harness::run_real(config, &calibration);
  const sim::KernelModelSet models =
      calibration.fit(sim::ModelFamily::best);
  std::printf("real makespan: %s\n\n",
              format_duration_us(real.makespan_us).c_str());

  harness::TextTable table;
  table.set_headers({"mitigation", "mean |err| %", "worst |err| %",
                     "mean start-order tau", "races", "timeouts"});
  std::string worst_audit;
  std::vector<std::string> bench_cells;
  for (sim::RaceMitigation mitigation :
       {sim::RaceMitigation::none, sim::RaceMitigation::yield_sleep,
        sim::RaceMitigation::quiescence}) {
    double err_sum = 0.0, err_worst = 0.0, tau_sum = 0.0;
    std::uint64_t timeouts = 0;
    std::size_t races = 0;
    for (int r = 0; r < repeats; ++r) {
      config.mitigation = mitigation;
      config.seed = 42 + static_cast<std::uint64_t>(r);
      const harness::RunResult sim = harness::run_simulated(config, models);
      const double err = 100.0 *
                         std::fabs(sim.makespan_us - real.makespan_us) /
                         real.makespan_us;
      err_sum += err;
      err_worst = std::max(err_worst, err);
      tau_sum +=
          trace::compare_traces(real.timeline, sim.timeline).start_order_tau;
      timeouts += sim.quiescence_timeouts;
      if (sim.lifecycle) {
        const trace::RaceAudit audit = trace::audit_races(*sim.lifecycle);
        races += audit.violations.size();
        if (!audit.violations.empty() && worst_audit.empty()) {
          worst_audit = std::string(to_string(mitigation)) + ", seed " +
                        std::to_string(config.seed) + ": " +
                        audit.to_string(4);
        }
      }
    }
    table.add_row({std::string(to_string(mitigation)),
                   strprintf("%.2f", err_sum / repeats),
                   strprintf("%.2f", err_worst),
                   strprintf("%.3f", tau_sum / repeats),
                   std::to_string(races),
                   std::to_string(timeouts)});
    bench_cells.push_back(strprintf(
        "{\"scheduler\": \"%s\", \"mitigation\": \"%s\", \"workers\": %d, "
        "\"repeats\": %d, \"mean_abs_error_pct\": %.4f, "
        "\"worst_abs_error_pct\": %.4f, \"mean_start_order_tau\": %.4f, "
        "\"races\": %zu, \"quiescence_timeouts\": %llu}",
        scheduler.c_str(), to_string(mitigation), workers, repeats,
        err_sum / repeats, err_worst, tau_sum / repeats, races,
        static_cast<unsigned long long>(timeouts)));
  }
  std::fputs(table.to_string().c_str(), stdout);
  if (!bench_json_path.empty()) {
    std::ofstream out(bench_json_path);
    out << "{\"schema\": \"tasksim-bench-race-v1\",\n"
        << " \"source\": \"ablation_race\",\n"
        << " \"n\": " << n << ", \"nb\": " << nb << ",\n \"cells\": [";
    for (std::size_t i = 0; i < bench_cells.size(); ++i) {
      if (i > 0) out << ",\n  ";
      out << bench_cells[i];
    }
    out << "]}\n";
    std::printf("\nwrote %zu race bench cells to %s\n", bench_cells.size(),
                bench_json_path.c_str());
  }
  if (!worst_audit.empty()) {
    std::printf("\nfirst recorded violation set (%s)\n", worst_audit.c_str());
  }
  std::printf("\npaper's claim to verify: without mitigation the race "
              "corrupts the virtual timeline;\nthe sleep/yield mitigation "
              "and the (generalized) quiescence query both fix it.\n"
              "the races column counts §V-E violations the flight recorder "
              "observed: returns out of\nvirtual-completion order, tasks "
              "whose virtual start exceeds the moment they became\n"
              "runnable (producers done, submitted, a lane free), and "
              "clock advances between two\nsubmissions while lanes sat "
              "idle (workers outran the submitter).\n");

  // Queue waits, displacements and quiescence spins accumulated over all
  // policies/repeats — the observability the §V-E ablation argues from.
  harness::print_metrics_snapshot();
  return 0;
}
