// ablation_models — kernel-model family ablation (paper §V-B).
//
// The paper models kernel times with simple distributions, noting that
// normal, gamma and log-normal all fit "for all practical purposes, nearly
// identical" and that constant/uniform models would be worse.  This
// ablation feeds the same simulation with each family (plus the empirical
// bootstrap) and reports the resulting makespan error and per-kernel
// duration KS against the real run.
#include <cmath>
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/sysinfo.hpp"
#include "trace/analysis.hpp"

using namespace tasksim;

int main(int argc, char** argv) {
  int n = 576;
  int nb = 96;
  int workers = 4;
  int repeats = 3;
  std::string scheduler = "quark";
  std::string algorithm = "cholesky";
  CliParser cli("ablation_models", "kernel-model family ablation (paper §V-B)");
  cli.add_int("n", &n, "matrix dimension");
  cli.add_int("nb", &nb, "tile size");
  cli.add_int("workers", &workers, "worker threads");
  cli.add_int("repeats", &repeats, "simulations per family");
  cli.add_string("scheduler", &scheduler, "runtime spec");
  cli.add_string("algorithm", &algorithm, "cholesky or qr");
  if (!cli.parse(argc, argv)) return 0;

  harness::print_banner("Ablation: kernel execution-time model families");
  std::printf("%s\n%s, n=%d nb=%d, %d workers, %s\n\n", host_summary().c_str(),
              algorithm.c_str(), n, nb, workers, scheduler.c_str());

  harness::ExperimentConfig config;
  config.algorithm = harness::parse_algorithm(algorithm);
  config.scheduler = scheduler;
  config.n = n;
  config.nb = nb;
  config.workers = workers;

  sim::CalibrationObserver calibration;
  const harness::RunResult real = harness::run_real(config, &calibration);
  std::printf("real makespan: %s (%.3f Gflop/s)\n\n",
              format_duration_us(real.makespan_us).c_str(), real.gflops);

  harness::TextTable table;
  table.set_headers({"family", "mean |err| %", "worst |err| %",
                     "mean dominant-kernel KS"});
  const std::string dominant =
      config.algorithm == harness::Algorithm::cholesky ? "dgemm" : "dtsmqr";
  for (sim::ModelFamily family :
       {sim::ModelFamily::constant, sim::ModelFamily::normal,
        sim::ModelFamily::gamma, sim::ModelFamily::lognormal,
        sim::ModelFamily::empirical, sim::ModelFamily::best}) {
    const sim::KernelModelSet models = calibration.fit(family);
    double err_sum = 0.0, err_worst = 0.0, ks_sum = 0.0;
    for (int r = 0; r < repeats; ++r) {
      config.seed = 7 + static_cast<std::uint64_t>(r);
      const harness::RunResult sim = harness::run_simulated(config, models);
      const double err = 100.0 *
                         std::fabs(sim.makespan_us - real.makespan_us) /
                         real.makespan_us;
      err_sum += err;
      err_worst = std::max(err_worst, err);
      const auto comparison =
          trace::compare_traces(real.timeline, sim.timeline);
      if (auto it = comparison.kernels.find(dominant);
          it != comparison.kernels.end()) {
        ks_sum += it->second.ks_statistic;
      }
    }
    table.add_row({std::string(to_string(family)),
                   strprintf("%.2f", err_sum / repeats),
                   strprintf("%.2f", err_worst),
                   strprintf("%.3f", ks_sum / repeats)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\npaper's observation to verify: the three simple parametric "
              "families perform nearly\nidentically; the distribution's "
              "randomness matters more than its exact family\n(constant "
              "models lose the per-kernel duration spread: see the KS "
              "column).\n");
  return 0;
}
