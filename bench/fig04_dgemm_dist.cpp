// fig04_dgemm_dist — reproduces paper Figure 4: distribution of DGEMM
// kernel execution times during a tile Cholesky factorization, with fitted
// Normal / Gamma / LogNormal candidates.
#include "fig_dist_common.hpp"

int main(int argc, char** argv) {
  tasksim::bench::DistFigureConfig figure;
  figure.figure_id = "Figure 4";
  figure.kernel = "dgemm";
  figure.algorithm = tasksim::harness::Algorithm::cholesky;
  return tasksim::bench::run_distribution_figure(argc, argv, figure);
}
