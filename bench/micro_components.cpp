// micro_components — google-benchmark microbenchmarks of TaskSim's
// building blocks: dependence tracking, ready pools, the Task Execution
// Queue, trace recording, distribution sampling/fitting, and the
// computational kernels.  These quantify the per-task overheads that the
// paper's scheduler-in-the-loop design pays (and that the simulation
// avoids by skipping kernel bodies).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "linalg/blas_kernels.hpp"
#include "linalg/qr_kernels.hpp"
#include "sched/dependency_tracker.hpp"
#include "sched/factory.hpp"
#include "sched/ready_pools.hpp"
#include "sched/submitter.hpp"
#include "sim/task_exec_queue.hpp"
#include "stats/fitting.hpp"
#include "support/flight_recorder.hpp"
#include "support/metrics.hpp"
#include "support/profiler.hpp"
#include "support/timing.hpp"
#include "trace/trace.hpp"

namespace {

using namespace tasksim;

// -------------------------------------------------------- dependency flow

void BM_DependencyTrackerChain(benchmark::State& state) {
  const int chain = static_cast<int>(state.range(0));
  double object;
  for (auto _ : state) {
    sched::DependencyTracker tracker;
    std::vector<std::unique_ptr<sched::TaskRecord>> records;
    records.reserve(static_cast<std::size_t>(chain));
    for (int i = 0; i < chain; ++i) {
      auto rec = std::make_unique<sched::TaskRecord>();
      rec->id = static_cast<sched::TaskId>(i);
      rec->desc.accesses = {sched::inout(&object)};
      tracker.register_task(rec.get());
      records.push_back(std::move(rec));
    }
    std::vector<sched::TaskRecord*> released;
    for (auto& rec : records) {
      released.clear();
      tracker.on_complete(rec.get(), released);
    }
    benchmark::DoNotOptimize(records);
  }
  state.SetItemsProcessed(state.iterations() * chain);
}
BENCHMARK(BM_DependencyTrackerChain)->Arg(64)->Arg(512);

void BM_DependencyTrackerFanOut(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  double root_obj;
  std::vector<double> leaves(static_cast<std::size_t>(width));
  for (auto _ : state) {
    sched::DependencyTracker tracker;
    std::vector<std::unique_ptr<sched::TaskRecord>> records;
    auto root = std::make_unique<sched::TaskRecord>();
    root->desc.accesses = {sched::out(&root_obj)};
    tracker.register_task(root.get());
    for (int i = 0; i < width; ++i) {
      auto rec = std::make_unique<sched::TaskRecord>();
      rec->id = static_cast<sched::TaskId>(i + 1);
      rec->desc.accesses = {sched::in(&root_obj), sched::out(&leaves[i])};
      tracker.register_task(rec.get());
      records.push_back(std::move(rec));
    }
    std::vector<sched::TaskRecord*> released;
    tracker.on_complete(root.get(), released);
    benchmark::DoNotOptimize(released.size());
  }
  state.SetItemsProcessed(state.iterations() * (width + 1));
}
BENCHMARK(BM_DependencyTrackerFanOut)->Arg(64)->Arg(512);

// ------------------------------------------------------------ ready pools

void BM_CentralQueuePushPop(benchmark::State& state) {
  sched::CentralQueue queue(sched::QueueDiscipline::fifo);
  sched::TaskRecord record;
  for (auto _ : state) {
    queue.push(&record);
    benchmark::DoNotOptimize(queue.pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CentralQueuePushPop);

void BM_PriorityQueuePush(benchmark::State& state) {
  sched::TaskRecord records[64];
  for (int i = 0; i < 64; ++i) records[i].desc.priority = i % 7;
  for (auto _ : state) {
    sched::CentralQueue queue(sched::QueueDiscipline::priority);
    for (auto& r : records) queue.push(&r);
    while (queue.pop() != nullptr) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PriorityQueuePush);

void BM_StealingDequesOwnerPath(benchmark::State& state) {
  sched::StealingDeques deques(4, 1);
  sched::TaskRecord record;
  for (auto _ : state) {
    deques.push(0, &record);
    benchmark::DoNotOptimize(deques.pop_own(0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StealingDequesOwnerPath);

void BM_StealingDequesStealPath(benchmark::State& state) {
  sched::StealingDeques deques(4, 1);
  sched::TaskRecord record;
  for (auto _ : state) {
    deques.push(0, &record);
    benchmark::DoNotOptimize(deques.steal(3));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StealingDequesStealPath);

// -------------------------------------------------------- task exec queue

void BM_TaskExecQueueEnterLeave(benchmark::State& state) {
  sim::TaskExecQueue queue;
  double t = 0.0;
  for (auto _ : state) {
    const auto ticket = queue.enter(t += 1.0);
    queue.wait_front(ticket);
    queue.leave(ticket);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TaskExecQueueEnterLeave);

// -------------------------------------------------------- flight recorder

void BM_FlightRecorderDisabled(benchmark::State& state) {
  // The cost every instrumentation site pays when recording is off: one
  // relaxed load and a branch.  This is the overhead budget of leaving the
  // recorder compiled into scheduler and simulator hot paths.
  flightrec::FlightRecorder& fr = flightrec::FlightRecorder::global();
  fr.disable();
  std::uint64_t id = 0;
  for (auto _ : state) {
    fr.record(flightrec::EventType::task_dispatch, id++, 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecorderDisabled);

void BM_FlightRecorderEnabled(benchmark::State& state) {
  // Enabled cost: one wall-clock read plus an uncontended per-thread mutex
  // around the ring-buffer store.
  flightrec::FlightRecorder& fr = flightrec::FlightRecorder::global();
  fr.enable(std::size_t{1} << 12);
  std::uint64_t id = 0;
  for (auto _ : state) {
    fr.record(flightrec::EventType::task_dispatch, id++, 0);
  }
  fr.disable();
  fr.clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecorderEnabled);

// --------------------------------------------------------------- profiler

void BM_ProfilerScopeDisabled(benchmark::State& state) {
  // What every TS_PROF_SCOPE probe costs when profiling is off: one relaxed
  // atomic load and a branch.  This is the budget for leaving the probes
  // compiled into the TEQ, scheduler, and trace hot paths (the --check
  // mode below asserts it numerically).
  prof::Profiler& profiler = prof::Profiler::global();
  profiler.disable();
  for (auto _ : state) {
    prof::ScopedPhase scope(profiler, prof::Phase::teq_mutex);
    benchmark::DoNotOptimize(&scope);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerScopeDisabled);

void BM_ProfilerScopeEnabled(benchmark::State& state) {
  // Enabled cost: two wall + two thread-CPU clock reads plus a handful of
  // single-writer relaxed stores into the thread's shard.
  prof::Profiler& profiler = prof::Profiler::global();
  profiler.enable();
  for (auto _ : state) {
    prof::ScopedPhase scope(profiler, prof::Phase::teq_mutex);
    benchmark::DoNotOptimize(&scope);
  }
  profiler.disable();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerScopeEnabled);

// ---------------------------------------------------------------- metrics

void BM_MetricsCounterInc(benchmark::State& state) {
  // The metrics hot path: thread-local shard lookup + relaxed fetch_add.
  // This is the per-event overhead every instrumented component pays.
  const metrics::Counter counter = metrics::counter("bench.counter");
  for (auto _ : state) {
    counter.inc();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterInc);

void BM_MetricsCounterIncContended(benchmark::State& state) {
  // Thread-local shards make concurrent increments scale linearly; this
  // quantifies the absence of cache-line ping-pong.
  const metrics::Counter counter = metrics::counter("bench.counter.mt");
  for (auto _ : state) {
    counter.inc();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterIncContended)->Threads(4);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  const metrics::Histogram hist = metrics::histogram("bench.hist");
  double v = 0.0;
  for (auto _ : state) {
    hist.observe(v += 0.7);
    if (v > 1e6) v = 0.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHistogramObserve);

void BM_MetricsSnapshot(benchmark::State& state) {
  metrics::counter("bench.snap").inc(123);
  metrics::histogram("bench.snap.hist").observe(5.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::snapshot());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsSnapshot);

// ------------------------------------------------------------------ trace

void BM_TraceRecord(benchmark::State& state) {
  trace::Trace t;
  std::uint64_t id = 0;
  for (auto _ : state) {
    t.record(id, "dgemm", 0, static_cast<double>(id),
             static_cast<double>(id + 1));
    ++id;
    if (id % 65536 == 0) t.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecord);

// ------------------------------------------------------------------ stats

void BM_LogNormalSample(benchmark::State& state) {
  stats::LogNormalDist dist(6.0, 0.1);
  Rng rng(1);
  double sink = 0.0;
  for (auto _ : state) {
    sink += dist.sample(rng);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogNormalSample);

void BM_GammaFit(benchmark::State& state) {
  Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(rng.gamma(50.0, 10.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fit_gamma(samples));
  }
}
BENCHMARK(BM_GammaFit);

void BM_FitCandidates(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(rng.normal(500.0, 20.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fit_candidates(samples));
  }
}
BENCHMARK(BM_FitCandidates);

// ---------------------------------------------------------------- kernels

void BM_Dgemm(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  std::vector<double> a(static_cast<std::size_t>(nb) * nb, 1.0);
  std::vector<double> b(static_cast<std::size_t>(nb) * nb, 2.0);
  std::vector<double> c(static_cast<std::size_t>(nb) * nb, 0.0);
  for (auto _ : state) {
    linalg::dgemm(linalg::Trans::no, linalg::Trans::yes, nb, nb, nb, -1.0,
                  a.data(), nb, b.data(), nb, 1.0, c.data(), nb);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      state.iterations() * linalg::flops_dgemm(nb, nb, nb) * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Dgemm)->Arg(64)->Arg(128);

void BM_Dtsmqr(benchmark::State& state) {
  const int nb = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<double> r(static_cast<std::size_t>(nb) * nb);
  std::vector<double> a2(static_cast<std::size_t>(nb) * nb);
  std::vector<double> t(static_cast<std::size_t>(nb) * nb, 0.0);
  for (auto& v : r) v = rng.uniform(-1.0, 1.0);
  for (auto& v : a2) v = rng.uniform(-1.0, 1.0);
  for (int j = 0; j < nb; ++j) r[static_cast<std::size_t>(j) * nb + j] += 4.0;
  linalg::dtsqrt(nb, r.data(), nb, a2.data(), nb, t.data(), nb);
  std::vector<double> c1(static_cast<std::size_t>(nb) * nb, 1.0);
  std::vector<double> c2(static_cast<std::size_t>(nb) * nb, 2.0);
  for (auto _ : state) {
    linalg::dtsmqr(linalg::ApplyTrans::yes, nb, c1.data(), nb, c2.data(), nb,
                   a2.data(), nb, t.data(), nb);
    benchmark::DoNotOptimize(c1.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      state.iterations() * linalg::flops_dtsmqr(nb) * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Dtsmqr)->Arg(64)->Arg(128);

// ------------------------------------------------- end-to-end task churn

void BM_RuntimeTaskThroughput(benchmark::State& state) {
  // Cost of pushing trivial independent tasks through a scheduler: the
  // "speed of the scheduler" that the paper names as the only limit on
  // parallel simulation speed.
  sched::RuntimeConfig config;
  config.workers = 2;
  auto rt = sched::make_runtime("quark", config);
  double slots[16];
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      sched::TaskDescriptor desc;
      desc.kernel = "noop";
      desc.accesses = {sched::inout(&slots[i % 16])};
      desc.function = [](sched::TaskContext&) {};
      rt->submit(std::move(desc));
    }
    rt->wait_all();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_RuntimeTaskThroughput)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------- disabled-probe budget

// Direct (benchmark-framework-free) measurement of the disabled
// TS_PROF_SCOPE cost, for the CI gate: the probes stay compiled into hot
// paths only as long as their disabled cost is negligible.  Reports the
// minimum of several repetitions — the right estimator for a lower-bound
// cost in the presence of scheduling noise.
int check_disabled_probe_budget(double budget_ns) {
  prof::Profiler& profiler = prof::Profiler::global();
  profiler.disable();
  constexpr int kIters = 1 << 22;
  constexpr int kRepeats = 5;
  double best_ns = 1e300;
  for (int r = 0; r < kRepeats; ++r) {
    const double t0 = tasksim::wall_time_us();
    for (int i = 0; i < kIters; ++i) {
      prof::ScopedPhase scope(profiler, prof::Phase::teq_mutex);
      benchmark::DoNotOptimize(&scope);
    }
    const double ns = (tasksim::wall_time_us() - t0) * 1000.0 / kIters;
    best_ns = std::min(best_ns, ns);
  }
  std::printf("disabled TS_PROF_SCOPE probe: %.2f ns (budget %.0f ns)\n",
              best_ns, budget_ns);
  if (best_ns > budget_ns) {
    std::printf("FAIL: disabled probe exceeds its budget — the gate that "
                "keeps probes free to leave in hot paths\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}

// ------------------------------------------------------- BENCH_teq output

std::uint64_t queue_counter(const char* name) {
  const auto snap = tasksim::metrics::snapshot();
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? std::uint64_t{0} : it->second;
}

// Focused TEQ measurements for the BENCH_*.json convention: CI merges this
// document with ablation_overhead's cells into BENCH_teq.json, uploads the
// artifact, and fails the build when the wakeups-per-completion count
// regresses (the thundering-herd guard).
int write_bench_json(const std::string& path) {
  using tasksim::sim::TaskExecQueue;

  // Uncontended enter -> wait_front -> leave throughput.  wait_front is the
  // published-front fast path here: one acquire load, no mutex.
  constexpr int kOps = 200000;
  TaskExecQueue solo;
  double t = 0.0;
  const double t0 = tasksim::wall_time_us();
  for (int i = 0; i < kOps; ++i) {
    const auto ticket = solo.enter(t += 1.0);
    solo.wait_front(ticket);
    solo.leave(ticket);
  }
  const double uncontended_ops =
      kOps / ((tasksim::wall_time_us() - t0) * 1e-6);

  // Contended cohorts: every thread enters, then the cohort drains in
  // ticket order — the pattern where the seed's notify_all broadcast woke
  // every parked waiter on every enter and leave (O(n²) wakeups per
  // cohort).  Targeted parking pays at most one wakeup per completion.
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  const std::uint64_t wake0 = queue_counter("sim.queue.wakeups");
  const std::uint64_t park0 = queue_counter("sim.queue.parks");
  for (int round = 0; round < kRounds; ++round) {
    TaskExecQueue q;
    std::atomic<int> entered{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&q, &entered, round, i] {
        const auto ticket =
            q.enter(round * 1000.0 + static_cast<double>(i));
        entered.fetch_add(1);
        while (entered.load() < kThreads) std::this_thread::yield();
        q.wait_front(ticket);
        q.leave(ticket);
      });
    }
    for (auto& th : threads) th.join();
  }
  const std::uint64_t wakeups = queue_counter("sim.queue.wakeups") - wake0;
  const std::uint64_t parks = queue_counter("sim.queue.parks") - park0;
  constexpr std::uint64_t kCompletions =
      static_cast<std::uint64_t>(kThreads) * kRounds;

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << "{\"schema\": \"tasksim-bench-teq-v1\",\n"
      << " \"source\": \"micro_components\",\n"
      << " \"uncontended_enter_leave_ops_per_sec\": "
      << static_cast<std::uint64_t>(uncontended_ops) << ",\n"
      << " \"contended\": {\"threads\": " << kThreads
      << ", \"completions\": " << kCompletions
      << ", \"wakeups\": " << wakeups << ", \"parks\": " << parks
      << ", \"wakeups_per_completion\": "
      << static_cast<double>(wakeups) / static_cast<double>(kCompletions)
      << "}}\n";
  std::printf("wrote TEQ bench document to %s (%.2f wakeups/completion "
              "contended, %.0f ops/s uncontended)\n",
              path.c_str(),
              static_cast<double>(wakeups) /
                  static_cast<double>(kCompletions),
              uncontended_ops);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --probe-budget-ns=N (ours, consumed here) runs the disabled-probe
  // budget check after the benchmarks; everything else goes to
  // google-benchmark as usual.
  double budget_ns = 0.0;
  std::string bench_json;
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--probe-budget-ns=";
    const std::string json_prefix = "--bench-json=";
    if (arg.rfind(prefix, 0) == 0) {
      budget_ns = std::stod(arg.substr(prefix.size()));
    } else if (arg.rfind(json_prefix, 0) == 0) {
      bench_json = arg.substr(json_prefix.size());
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&filtered_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                             passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  int rc = 0;
  if (budget_ns > 0.0) rc |= check_disabled_probe_budget(budget_ns);
  if (!bench_json.empty()) rc |= write_bench_json(bench_json);
  return rc;
}
