// ablation_overhead — where does the *simulator's* real time go?
//
// The paper's §VI speed story is that scheduler-in-the-loop simulation
// costs roughly the scheduler alone — until the §V-E race mitigations
// (yield/sleep, quiescence polling) start burning wall time.  This
// ablation runs the same simulated factorization under all three
// schedulers × all three mitigation policies with the phase profiler
// (support/profiler) enabled and reports, per cell:
//
//   * simulated (virtual) makespan vs the simulation's real wall time,
//   * the wall overhead relative to the real execution,
//   * the profiler's coverage (fraction of bracketed thread time that a
//     named phase explains — the acceptance gate, >= --min-coverage),
//   * the share of real time spent in the mitigation itself
//     (sim.mitigation_sleep for yield_sleep, sim.quiescence_poll +
//     sim.teq_wait spent under it for quiescence),
//   * the top exclusive-time phases.
//
// A full per-phase breakdown ("where the time goes") is printed for each
// mitigation policy under the primary scheduler, and --json dumps every
// run as a tasksim-run-v1 document (the artifact CI uploads).  --chrome
// writes a Chrome-tracing document per mitigation with the simulated
// timeline plus per-phase share counter tracks from the sampler.
//
// Exit status is non-zero when any run's coverage falls below the floor,
// so CI can gate on attribution staying honest.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "support/cli.hpp"
#include "support/metrics.hpp"
#include "support/profiler.hpp"
#include "support/strings.hpp"
#include "support/sysinfo.hpp"
#include "trace/chrome_export.hpp"

using namespace tasksim;

namespace {

// Share (%) of `phase`'s exclusive wall time in the bracketed root time.
double phase_share(const prof::ProfileSnapshot& snap, prof::Phase phase) {
  const double root = snap.root_incl_wall_us();
  if (root <= 0.0) return 0.0;
  const auto totals = snap.totals();
  return 100.0 * totals[static_cast<std::size_t>(phase)].excl_wall_us / root;
}

std::string top_phases(const prof::ProfileSnapshot& snap, std::size_t k) {
  const auto totals = snap.totals();
  std::vector<prof::Phase> phases;
  for (std::size_t i = 0; i < prof::kPhaseCount; ++i) {
    const auto phase = static_cast<prof::Phase>(i);
    if (prof::phase_is_root(phase)) continue;
    if (totals[i].excl_wall_us > 0.0) phases.push_back(phase);
  }
  std::sort(phases.begin(), phases.end(), [&](prof::Phase a, prof::Phase b) {
    return totals[static_cast<std::size_t>(a)].excl_wall_us >
           totals[static_cast<std::size_t>(b)].excl_wall_us;
  });
  if (phases.size() > k) phases.resize(k);
  std::string out;
  for (prof::Phase phase : phases) {
    if (!out.empty()) out += "  ";
    out += strprintf("%s %.0f%%", prof::phase_name(phase),
                     phase_share(snap, phase));
  }
  return out.empty() ? std::string("-") : out;
}

std::uint64_t counter_value(const metrics::Snapshot& snap, const char* name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? std::uint64_t{0} : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  int n = 576;
  int nb = 96;
  int workers = 4;
  double min_coverage = 0.9;
  double sample_us = 5000.0;
  std::string json_path;
  std::string bench_json_path;
  std::string overhead_json_path;
  std::string chrome_prefix;
  CliParser cli("ablation_overhead",
                "simulator self-profile: wall overhead per scheduler and "
                "race-mitigation policy");
  cli.add_int("n", &n, "matrix dimension");
  cli.add_int("nb", &nb, "tile size");
  cli.add_int("workers", &workers, "worker threads");
  cli.add_double("min-coverage", &min_coverage,
                 "fail if profiler coverage drops below this fraction");
  cli.add_double("sample-us", &sample_us,
                 "profiler sampling period (0 = totals only)");
  cli.add_string("json", &json_path,
                 "write every run as a tasksim-run-v1 JSON array");
  cli.add_string("bench-json", &bench_json_path,
                 "write per-cell TEQ wakeup counts and phase shares "
                 "(tasksim-bench-teq-v1; merged into BENCH_teq.json by CI)");
  cli.add_string("bench-json-overhead", &overhead_json_path,
                 "write per-cell sim-wall overhead vs the real run "
                 "(tasksim-bench-overhead-v1; CI's BENCH_overhead.json "
                 "artifact)");
  cli.add_string("chrome", &chrome_prefix,
                 "write <prefix>_<mitigation>.json Chrome traces with "
                 "profiler share tracks (primary scheduler only)");
  if (!cli.parse(argc, argv)) return 0;

  harness::print_banner("Ablation: simulation overhead (profiler)");
  std::printf("%s\nQR, n=%d nb=%d, %d workers\n\n", host_summary().c_str(), n,
              nb, workers);

  harness::ExperimentConfig config;
  config.algorithm = harness::Algorithm::qr;
  config.n = n;
  config.nb = nb;
  config.workers = workers;

  // One real run calibrates the kernel models (scheduler-independent) and
  // is the wall-time yardstick every simulation cell is compared against.
  sim::CalibrationObserver calibration;
  const harness::RunResult real = harness::run_real(config, &calibration);
  const sim::KernelModelSet models = calibration.fit(sim::ModelFamily::best);
  std::printf("real execution: makespan %s, wall %s\n\n",
              format_duration_us(real.makespan_us).c_str(),
              format_duration_us(real.wall_us).c_str());

  const std::vector<std::string> schedulers = {"quark", "ompss", "starpu"};
  const std::vector<sim::RaceMitigation> mitigations = {
      sim::RaceMitigation::none, sim::RaceMitigation::yield_sleep,
      sim::RaceMitigation::quiescence};

  config.profile = true;
  config.profile_sample_us = sample_us;

  harness::TextTable table;
  table.set_headers({"scheduler", "mitigation", "sim makespan", "sim wall",
                     "wall/real", "coverage", "mitigation share",
                     "top phases (excl share)"});
  std::vector<harness::RunResult> primary_runs;  // per mitigation, quark
  std::vector<std::string> json_rows;
  std::vector<std::string> bench_cells;
  std::vector<std::string> overhead_cells;
  bool coverage_ok = true;
  for (const std::string& scheduler : schedulers) {
    config.scheduler = scheduler;
    for (sim::RaceMitigation mitigation : mitigations) {
      config.mitigation = mitigation;
      const metrics::Snapshot before = metrics::snapshot();
      const harness::RunResult sim = harness::run_simulated(config, models);
      const metrics::Snapshot after = metrics::snapshot();
      if (!sim.profile) {
        std::fprintf(stderr, "run produced no profile snapshot\n");
        return 1;
      }
      const prof::ProfileSnapshot& snap = *sim.profile;
      const double coverage = snap.coverage();
      if (coverage < min_coverage) coverage_ok = false;
      // The mitigation's own cost: the sleep for yield_sleep, the polling
      // loop (plus the TEQ wait it wraps) for quiescence.
      double mitigation_share =
          phase_share(snap, prof::Phase::mitigation_sleep) +
          phase_share(snap, prof::Phase::quiescence_poll);
      table.add_row({scheduler, std::string(to_string(mitigation)),
                     format_duration_us(sim.makespan_us),
                     format_duration_us(sim.wall_us),
                     strprintf("%.2fx", real.wall_us > 0.0
                                            ? sim.wall_us / real.wall_us
                                            : 0.0),
                     strprintf("%5.1f%%", 100.0 * coverage),
                     strprintf("%5.1f%%", mitigation_share),
                     top_phases(snap, 3)});
      json_rows.push_back(harness::run_result_json(config, sim));
      if (!overhead_json_path.empty()) {
        // The §VI speed trajectory: is simulation still roughly as cheap as
        // the scheduler alone?  wall/real is the headline number; the
        // mitigation share attributes any regression to the §V-E fixes.
        overhead_cells.push_back(strprintf(
            "{\"scheduler\": \"%s\", \"mitigation\": \"%s\", "
            "\"workers\": %d, \"sim_makespan_us\": %.1f, "
            "\"sim_wall_us\": %.1f, \"real_wall_us\": %.1f, "
            "\"wall_over_real\": %.4f, \"mitigation_share\": %.4f, "
            "\"coverage\": %.4f}",
            scheduler.c_str(), to_string(mitigation), workers,
            sim.makespan_us, sim.wall_us, real.wall_us,
            real.wall_us > 0.0 ? sim.wall_us / real.wall_us : 0.0,
            mitigation_share / 100.0, coverage));
      }
      if (!bench_json_path.empty()) {
        // TEQ wakeup accounting for the cell: counter deltas across the
        // run, plus the queue-related phase shares.  wakeups/completion is
        // the hard anti-herd number CI gates on — targeted parking pays at
        // most one unpark per leave, where the seed broadcast to every
        // blocked worker on every enter and leave.
        const auto delta = [&](const char* name) {
          return counter_value(after, name) - counter_value(before, name);
        };
        const std::uint64_t completions = delta("sim.queue.enters");
        const std::uint64_t teq_wakeups = delta("sim.queue.wakeups");
        const std::uint64_t tasks = delta("sched.tasks_completed");
        const std::uint64_t worker_wakeups = delta("sched.worker_wakeups");
        bench_cells.push_back(strprintf(
            "{\"scheduler\": \"%s\", \"mitigation\": \"%s\", "
            "\"workers\": %d, \"tasks\": %llu, "
            "\"teq\": {\"completions\": %llu, \"wakeups\": %llu, "
            "\"parks\": %llu, \"displacements\": %llu, "
            "\"wakeups_per_completion\": %.4f}, "
            "\"worker_wakeups\": %llu, \"worker_wakeups_per_task\": %.4f, "
            "\"phase_shares\": {\"teq_mutex\": %.4f, \"teq_wait\": %.4f, "
            "\"teq_publish\": %.4f, \"teq_park\": %.4f}, "
            "\"coverage\": %.4f}",
            scheduler.c_str(), to_string(mitigation), workers,
            static_cast<unsigned long long>(tasks),
            static_cast<unsigned long long>(completions),
            static_cast<unsigned long long>(teq_wakeups),
            static_cast<unsigned long long>(delta("sim.queue.parks")),
            static_cast<unsigned long long>(
                delta("sim.queue.displacements")),
            completions > 0 ? static_cast<double>(teq_wakeups) /
                                  static_cast<double>(completions)
                            : 0.0,
            static_cast<unsigned long long>(worker_wakeups),
            tasks > 0 ? static_cast<double>(worker_wakeups) /
                            static_cast<double>(tasks)
                      : 0.0,
            phase_share(snap, prof::Phase::teq_mutex) / 100.0,
            phase_share(snap, prof::Phase::teq_wait) / 100.0,
            phase_share(snap, prof::Phase::teq_publish) / 100.0,
            phase_share(snap, prof::Phase::teq_park) / 100.0, coverage));
      }
      if (scheduler == schedulers.front()) {
        primary_runs.push_back(sim);
        if (!chrome_prefix.empty() && sim.profile_samples) {
          const std::string path = chrome_prefix + "_" +
                                   std::string(to_string(mitigation)) +
                                   ".json";
          std::ofstream out(path);
          out << trace::render_chrome_json(
              {&sim.timeline},
              trace::profiler_share_tracks(*sim.profile_samples, 1));
        }
      }
    }
  }
  std::fputs(table.to_string().c_str(), stdout);

  // Full per-phase breakdown for the primary scheduler, one per policy —
  // the yield_sleep row must show the sleep itself (sim.mitigation_sleep)
  // and quiescence its polling loop (sim.quiescence_poll).
  for (std::size_t i = 0; i < primary_runs.size(); ++i) {
    harness::print_profile(
        *primary_runs[i].profile,
        strprintf("where the time goes (%s, %s)", schedulers.front().c_str(),
                  to_string(mitigations[i])));
  }

  if (!bench_json_path.empty()) {
    std::ofstream out(bench_json_path);
    out << "{\"schema\": \"tasksim-bench-teq-v1\",\n"
        << " \"source\": \"ablation_overhead\",\n"
        << " \"workers\": " << workers << ",\n \"cells\": [";
    for (std::size_t i = 0; i < bench_cells.size(); ++i) {
      if (i > 0) out << ",\n  ";
      out << bench_cells[i];
    }
    out << "]}\n";
    std::printf("\nwrote %zu TEQ bench cells to %s\n", bench_cells.size(),
                bench_json_path.c_str());
  }

  if (!overhead_json_path.empty()) {
    std::ofstream out(overhead_json_path);
    out << "{\"schema\": \"tasksim-bench-overhead-v1\",\n"
        << " \"source\": \"ablation_overhead\",\n"
        << " \"n\": " << n << ", \"nb\": " << nb << ",\n \"cells\": [";
    for (std::size_t i = 0; i < overhead_cells.size(); ++i) {
      if (i > 0) out << ",\n  ";
      out << overhead_cells[i];
    }
    out << "]}\n";
    std::printf("\nwrote %zu overhead bench cells to %s\n",
                overhead_cells.size(), overhead_json_path.c_str());
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "[";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      if (i > 0) out << ",\n ";
      out << json_rows[i];
    }
    out << "]\n";
    std::printf("\nwrote %zu run documents to %s\n", json_rows.size(),
                json_path.c_str());
  }

  std::printf("\npaper's §VI claim to verify: the simulation costs roughly "
              "the scheduler alone\n(task bodies shrink to model samples); "
              "the mitigation rows show what the §V-E\nfixes add — "
              "yield_sleep burns wall time in sim.mitigation_sleep, "
              "quiescence in\nsim.quiescence_poll / sim.teq_wait.\n");
  if (!coverage_ok) {
    std::printf("\nFAIL: profiler coverage below %.0f%% — instrumentation "
                "no longer explains\nthe simulator's time; add probes for "
                "the missing phase.\n",
                100.0 * min_coverage);
    return 1;
  }
  return 0;
}
