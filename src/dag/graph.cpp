#include "dag/graph.hpp"

#include "support/error.hpp"

namespace tasksim::dag {

const char* to_string(DepKind kind) {
  switch (kind) {
    case DepKind::raw: return "RaW";
    case DepKind::war: return "WaR";
    case DepKind::waw: return "WaW";
  }
  return "?";
}

NodeId TaskGraph::add_node(std::string kernel, double weight_us) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{id, std::move(kernel), weight_us});
  succ_.emplace_back();
  pred_.emplace_back();
  return id;
}

void TaskGraph::add_edge(NodeId from, NodeId to, DepKind kind) {
  TS_REQUIRE(from < nodes_.size() && to < nodes_.size(),
             "edge endpoint out of range");
  TS_REQUIRE(from < to,
             "dependence must point forward in submission order (from < to)");
  edges_.push_back(Edge{from, to, kind});
  succ_[from].push_back(to);
  pred_[to].push_back(from);
}

const Node& TaskGraph::node(NodeId id) const {
  TS_REQUIRE(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

Node& TaskGraph::mutable_node(NodeId id) {
  TS_REQUIRE(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

const std::vector<NodeId>& TaskGraph::successors(NodeId id) const {
  TS_REQUIRE(id < succ_.size(), "node id out of range");
  return succ_[id];
}

const std::vector<NodeId>& TaskGraph::predecessors(NodeId id) const {
  TS_REQUIRE(id < pred_.size(), "node id out of range");
  return pred_[id];
}

std::vector<NodeId> TaskGraph::roots() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (pred_[id].empty()) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> TaskGraph::leaves() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (succ_[id].empty()) out.push_back(id);
  }
  return out;
}

}  // namespace tasksim::dag
