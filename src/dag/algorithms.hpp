// algorithms.hpp — graph algorithms over the task DAG.
#pragma once

#include <string>
#include <vector>

#include "dag/graph.hpp"

namespace tasksim::dag {

/// Kahn topological order.  Because TaskGraph::add_edge enforces
/// from < to, every TaskGraph is acyclic by construction; this function is
/// still the canonical way to obtain a level-consistent order.
std::vector<NodeId> topological_order(const TaskGraph& graph);

/// Longest weighted path (node weights in microseconds).
struct CriticalPath {
  double length_us = 0.0;
  std::vector<NodeId> nodes;  ///< path from a root to a leaf
};

CriticalPath critical_path(const TaskGraph& graph);

/// Per-level structure: level of a node = 1 + max(level of predecessors).
struct LevelProfile {
  std::vector<int> level;                  ///< per node
  std::vector<std::size_t> width;          ///< nodes per level
  int depth = 0;                           ///< number of levels
  std::size_t max_width = 0;
};

LevelProfile level_profile(const TaskGraph& graph);

/// Aggregate DAG metrics used by DESIGN/EXPERIMENTS reporting.
struct DagMetrics {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  double total_work_us = 0.0;      ///< sum of node weights
  double critical_path_us = 0.0;
  double average_parallelism = 0.0;  ///< total_work / critical_path
  int depth = 0;
  std::size_t max_width = 0;

  std::string to_string() const;
};

DagMetrics compute_metrics(const TaskGraph& graph);

}  // namespace tasksim::dag
