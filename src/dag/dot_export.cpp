#include "dag/dot_export.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace tasksim::dag {

namespace {
// Local copy of the kernel palette to keep tasksim_dag independent of
// tasksim_trace (which links stats); colors match trace/color.cpp for the
// common kernels.
std::string node_color(const std::string& kernel) {
  if (kernel == "dpotrf" || kernel == "dpotf2" || kernel == "dgeqrt")
    return "#2ca02c";
  if (kernel == "dtrsm" || kernel == "dormqr") return "#1f77b4";
  if (kernel == "dsyrk") return "#d62728";
  if (kernel == "dtsqrt") return "#ff7f0e";
  if (kernel == "dgemm" || kernel == "dtsmqr") return "#9467bd";
  return "#cccccc";
}
}  // namespace

std::string render_dot(const TaskGraph& graph, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph " << options.graph_name << " {\n";
  os << "  rankdir=TB;\n  node [shape=box, style=filled, fontsize=10];\n";
  for (const Node& node : graph.nodes()) {
    std::string label = node.kernel;
    if (options.label_weights && node.weight_us > 0.0) {
      label += "\\n" + format_duration_us(node.weight_us);
    }
    os << strprintf("  n%u [label=\"%s #%u\"", node.id, label.c_str(), node.id);
    if (options.color_by_kernel) {
      os << strprintf(", fillcolor=\"%s\"", node_color(node.kernel).c_str());
    }
    os << "];\n";
  }
  for (const Edge& edge : graph.edges()) {
    os << strprintf("  n%u -> n%u", edge.from, edge.to);
    if (options.annotate_edges) {
      os << strprintf(" [label=\"%s\"]", to_string(edge.kind));
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

void write_dot(const TaskGraph& graph, const std::string& path,
               const DotOptions& options) {
  std::ofstream out(path);
  if (!out) throw IoError(errno_detail("cannot open for writing: " + path));
  out << render_dot(graph, options);
  if (!out) throw IoError(errno_detail("write failed: " + path));
}

}  // namespace tasksim::dag
