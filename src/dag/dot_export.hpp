// dot_export.hpp — Graphviz DOT rendering of the task DAG (paper Figure 1:
// "Developers visualize these DAGs in order to gain a greater understanding
// of how well their algorithms could perform").
#pragma once

#include <string>

#include "dag/graph.hpp"

namespace tasksim::dag {

struct DotOptions {
  bool label_weights = false;   ///< append expected time to node labels
  bool color_by_kernel = true;  ///< fill nodes with the trace palette color
  bool annotate_edges = false;  ///< label edges RaW / WaR / WaW
  std::string graph_name = "taskdag";
};

std::string render_dot(const TaskGraph& graph, const DotOptions& options = {});

void write_dot(const TaskGraph& graph, const std::string& path,
               const DotOptions& options = {});

}  // namespace tasksim::dag
