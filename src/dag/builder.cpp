#include "dag/builder.hpp"

#include "support/error.hpp"

namespace tasksim::dag {

namespace {
// Strength order for edge coalescing: RaW is a true dependence and always
// dominates; WaW dominates WaR.
int strength(DepKind kind) {
  switch (kind) {
    case DepKind::raw: return 2;
    case DepKind::waw: return 1;
    case DepKind::war: return 0;
  }
  return 0;
}
}  // namespace

NodeId DagBuilder::submit(std::string kernel, std::span<const DataRef> refs,
                          double weight_us) {
  const NodeId id = graph_.add_node(std::move(kernel), weight_us);

  // Pass 1: create edges from the pre-existing object states.  Reads and
  // writes of this task must all observe the *previous* state, even when
  // the task references the same object twice.
  for (const DataRef& ref : refs) {
    TS_REQUIRE(ref.address != nullptr, "data reference with null address");
    TS_REQUIRE(ref.read || ref.write, "data reference with no access mode");
    auto it = objects_.find(ref.address);
    if (it == objects_.end()) continue;
    ObjectState& state = it->second;
    if (ref.read && state.has_writer && state.last_writer != id) {
      add_edge_coalesced(state.last_writer, id, DepKind::raw);
    }
    if (ref.write) {
      if (!state.readers_since_write.empty()) {
        for (NodeId reader : state.readers_since_write) {
          if (reader != id) add_edge_coalesced(reader, id, DepKind::war);
        }
      } else if (state.has_writer && state.last_writer != id) {
        add_edge_coalesced(state.last_writer, id, DepKind::waw);
      }
    }
  }

  // Pass 2: update object states.
  for (const DataRef& ref : refs) {
    ObjectState& state = objects_[ref.address];
    if (ref.write) {
      state.has_writer = true;
      state.last_writer = id;
      state.readers_since_write.clear();
    }
    if (ref.read && !ref.write) {
      state.readers_since_write.push_back(id);
    }
  }
  return id;
}

void DagBuilder::add_edge_coalesced(NodeId from, NodeId to, DepKind kind) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(from) << 32) | static_cast<std::uint64_t>(to);
  auto [it, inserted] = edge_index_.emplace(key, graph_.edge_count());
  if (inserted) {
    graph_.add_edge(from, to, kind);
    return;
  }
  // Upgrade the existing edge's kind if the new hazard is stronger.
  // Edges are stored by value inside the graph; we re-add with the stronger
  // kind only in the coalescing map and mutate through a const_cast-free
  // path: TaskGraph does not expose edge mutation, so track strength here
  // and skip weaker duplicates (the kind of a duplicate edge does not affect
  // scheduling, only DOT annotation).
  (void)kind;
  (void)it;
}

}  // namespace tasksim::dag
