// graph.hpp — the task dependence DAG.
//
// Vertices are tasks, edges are data dependences (paper Figure 1).  The DAG
// is produced either by `DagBuilder` (replaying a serial task-submission
// stream through hazard analysis, like the schedulers do) or captured live
// from a running scheduler via its observer hooks.  It feeds DOT export,
// critical-path analysis, and the pure DAG-replay DES baseline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tasksim::dag {

using NodeId = std::uint32_t;

/// Data-hazard classification of an edge (paper §IV-A).
enum class DepKind : std::uint8_t {
  raw,  ///< read-after-write (true dependence)
  war,  ///< write-after-read (anti-dependence)
  waw,  ///< write-after-write (output dependence)
};

const char* to_string(DepKind kind);

struct Node {
  NodeId id = 0;
  std::string kernel;     ///< kernel class, e.g. "dgemm"
  double weight_us = 0.0; ///< expected execution time (0 when unknown)
};

struct Edge {
  NodeId from = 0;
  NodeId to = 0;
  DepKind kind = DepKind::raw;
};

/// Directed acyclic task graph.  Construction is single-threaded (task
/// submission is serial in the superscalar model); queries are const.
class TaskGraph {
 public:
  /// Add a task vertex; returns its id (dense, insertion-ordered).
  NodeId add_node(std::string kernel, double weight_us = 0.0);

  /// Add a dependence edge; both endpoints must exist and from < to is
  /// required (task submission order is a valid topological order, so a
  /// dependence can only point forward in insertion order).
  void add_edge(NodeId from, NodeId to, DepKind kind);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  const Node& node(NodeId id) const;
  Node& mutable_node(NodeId id);
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  const std::vector<NodeId>& successors(NodeId id) const;
  const std::vector<NodeId>& predecessors(NodeId id) const;

  /// Nodes with no predecessors.
  std::vector<NodeId> roots() const;
  /// Nodes with no successors.
  std::vector<NodeId> leaves() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
};

}  // namespace tasksim::dag
