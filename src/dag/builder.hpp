// builder.hpp — derive the dependence DAG from a serial task-submission
// stream, exactly as a superscalar scheduler's hazard analysis would
// (paper §IV-A and Figure 2).
//
// For each submitted task the builder records, per data object (identified
// by address), the last writer and the set of readers since that writer:
//
//   * a read  after a write  -> RaW edge from the last writer,
//   * a write after reads    -> WaR edges from each reader since the last
//                               writer,
//   * a write after a write  -> WaW edge from the last writer (only when no
//                               intervening reader already serializes it).
//
// Duplicate edges between the same pair of tasks are coalesced, keeping the
// strongest kind (RaW > WaW > WaR) — matching Figure 1's note that a vertex
// pair may be related by more than one data dependence.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "dag/graph.hpp"

namespace tasksim::dag {

/// One data reference of a task, as written by the developer.
struct DataRef {
  const void* address = nullptr;
  bool read = false;
  bool write = false;
};

inline DataRef read_ref(const void* addr) { return {addr, true, false}; }
inline DataRef write_ref(const void* addr) { return {addr, false, true}; }
inline DataRef rw_ref(const void* addr) { return {addr, true, true}; }

class DagBuilder {
 public:
  /// Submit the next task in serial program order; returns its node id.
  NodeId submit(std::string kernel, std::span<const DataRef> refs,
                double weight_us = 0.0);

  const TaskGraph& graph() const { return graph_; }
  TaskGraph& mutable_graph() { return graph_; }
  TaskGraph take_graph() { return std::move(graph_); }

 private:
  struct ObjectState {
    bool has_writer = false;
    NodeId last_writer = 0;
    std::vector<NodeId> readers_since_write;
  };

  void add_edge_coalesced(NodeId from, NodeId to, DepKind kind);

  TaskGraph graph_;
  std::unordered_map<const void*, ObjectState> objects_;
  // Edge de-duplication for the most recent target node.
  std::unordered_map<std::uint64_t, std::size_t> edge_index_;
};

}  // namespace tasksim::dag
