#include "dag/algorithms.hpp"

#include <algorithm>
#include <deque>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace tasksim::dag {

std::vector<NodeId> topological_order(const TaskGraph& graph) {
  const std::size_t n = graph.node_count();
  std::vector<std::size_t> in_degree(n, 0);
  for (NodeId id = 0; id < n; ++id) {
    in_degree[id] = graph.predecessors(id).size();
  }
  std::deque<NodeId> ready;
  for (NodeId id = 0; id < n; ++id) {
    if (in_degree[id] == 0) ready.push_back(id);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (NodeId succ : graph.successors(id)) {
      if (--in_degree[succ] == 0) ready.push_back(succ);
    }
  }
  TS_ASSERT(order.size() == n, "cycle detected in TaskGraph");
  return order;
}

CriticalPath critical_path(const TaskGraph& graph) {
  CriticalPath cp;
  const std::size_t n = graph.node_count();
  if (n == 0) return cp;

  // dist[v] = weight of the heaviest path ending at v (inclusive).
  std::vector<double> dist(n, 0.0);
  std::vector<NodeId> best_pred(n, 0);
  std::vector<bool> has_pred(n, false);
  for (NodeId id : topological_order(graph)) {
    dist[id] += graph.node(id).weight_us;
    for (NodeId succ : graph.successors(id)) {
      if (dist[id] > dist[succ]) {
        dist[succ] = dist[id];
        best_pred[succ] = id;
        has_pred[succ] = true;
      }
    }
  }
  NodeId tail = 0;
  for (NodeId id = 0; id < n; ++id) {
    if (dist[id] > dist[tail]) tail = id;
  }
  cp.length_us = dist[tail];
  NodeId cur = tail;
  cp.nodes.push_back(cur);
  while (has_pred[cur]) {
    cur = best_pred[cur];
    cp.nodes.push_back(cur);
  }
  std::reverse(cp.nodes.begin(), cp.nodes.end());
  return cp;
}

LevelProfile level_profile(const TaskGraph& graph) {
  LevelProfile p;
  const std::size_t n = graph.node_count();
  p.level.assign(n, 0);
  for (NodeId id : topological_order(graph)) {
    int lvl = 0;
    for (NodeId pred : graph.predecessors(id)) {
      lvl = std::max(lvl, p.level[pred] + 1);
    }
    p.level[id] = lvl;
    p.depth = std::max(p.depth, lvl + 1);
  }
  p.width.assign(static_cast<std::size_t>(p.depth), 0);
  for (NodeId id = 0; id < n; ++id) {
    ++p.width[static_cast<std::size_t>(p.level[id])];
  }
  for (std::size_t w : p.width) p.max_width = std::max(p.max_width, w);
  return p;
}

std::string DagMetrics::to_string() const {
  return strprintf(
      "nodes=%zu edges=%zu work=%s cp=%s avg-parallelism=%.2f depth=%d "
      "max-width=%zu",
      nodes, edges, format_duration_us(total_work_us).c_str(),
      format_duration_us(critical_path_us).c_str(), average_parallelism, depth,
      max_width);
}

DagMetrics compute_metrics(const TaskGraph& graph) {
  DagMetrics m;
  m.nodes = graph.node_count();
  m.edges = graph.edge_count();
  for (const Node& node : graph.nodes()) m.total_work_us += node.weight_us;
  m.critical_path_us = critical_path(graph).length_us;
  if (m.critical_path_us > 0.0) {
    m.average_parallelism = m.total_work_us / m.critical_path_us;
  }
  const LevelProfile p = level_profile(graph);
  m.depth = p.depth;
  m.max_width = p.max_width;
  return m;
}

}  // namespace tasksim::dag
