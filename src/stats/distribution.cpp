#include "stats/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "stats/descriptive.hpp"
#include "stats/special.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace tasksim::stats {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

double Distribution::log_likelihood(std::span<const double> samples) const {
  double total = 0.0;
  for (double x : samples) total += log_pdf(x);
  return total;
}

std::string Distribution::serialize() const {
  std::ostringstream os;
  os << name();
  os.precision(17);
  for (double p : parameters()) os << ' ' << p;
  return os.str();
}

// ---------------------------------------------------------------- constant

ConstantDist::ConstantDist(double value) : value_(value) {}

std::string ConstantDist::describe() const {
  return strprintf("constant(%.6g)", value_);
}

double ConstantDist::pdf(double x) const {
  return x == value_ ? std::numeric_limits<double>::infinity() : 0.0;
}

double ConstantDist::log_pdf(double x) const {
  return x == value_ ? std::numeric_limits<double>::infinity() : kNegInf;
}

double ConstantDist::cdf(double x) const { return x >= value_ ? 1.0 : 0.0; }

double ConstantDist::sample(Rng&) const { return value_; }

std::unique_ptr<Distribution> ConstantDist::clone() const {
  return std::make_unique<ConstantDist>(*this);
}

// ----------------------------------------------------------------- uniform

UniformDist::UniformDist(double lo, double hi) : lo_(lo), hi_(hi) {
  TS_REQUIRE(hi > lo, "uniform requires hi > lo");
}

std::string UniformDist::describe() const {
  return strprintf("uniform(%.6g, %.6g)", lo_, hi_);
}

double UniformDist::pdf(double x) const {
  return (x >= lo_ && x <= hi_) ? 1.0 / (hi_ - lo_) : 0.0;
}

double UniformDist::log_pdf(double x) const {
  return (x >= lo_ && x <= hi_) ? -std::log(hi_ - lo_) : kNegInf;
}

double UniformDist::cdf(double x) const {
  if (x < lo_) return 0.0;
  if (x > hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double UniformDist::sample(Rng& rng) const { return rng.uniform(lo_, hi_); }

double UniformDist::variance() const {
  const double w = hi_ - lo_;
  return w * w / 12.0;
}

std::unique_ptr<Distribution> UniformDist::clone() const {
  return std::make_unique<UniformDist>(*this);
}

// ------------------------------------------------------------- exponential

ExponentialDist::ExponentialDist(double lambda) : lambda_(lambda) {
  TS_REQUIRE(lambda > 0.0, "exponential requires lambda > 0");
}

std::string ExponentialDist::describe() const {
  return strprintf("exponential(lambda=%.6g)", lambda_);
}

double ExponentialDist::pdf(double x) const {
  return x < 0.0 ? 0.0 : lambda_ * std::exp(-lambda_ * x);
}

double ExponentialDist::log_pdf(double x) const {
  return x < 0.0 ? kNegInf : std::log(lambda_) - lambda_ * x;
}

double ExponentialDist::cdf(double x) const {
  return x < 0.0 ? 0.0 : 1.0 - std::exp(-lambda_ * x);
}

double ExponentialDist::sample(Rng& rng) const {
  return rng.exponential(lambda_);
}

std::unique_ptr<Distribution> ExponentialDist::clone() const {
  return std::make_unique<ExponentialDist>(*this);
}

// ------------------------------------------------------------------ normal

NormalDist::NormalDist(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  TS_REQUIRE(sigma > 0.0, "normal requires sigma > 0");
}

std::string NormalDist::describe() const {
  return strprintf("normal(mu=%.6g, sigma=%.6g)", mu_, sigma_);
}

double NormalDist::pdf(double x) const { return std::exp(log_pdf(x)); }

double NormalDist::log_pdf(double x) const {
  const double z = (x - mu_) / sigma_;
  return -0.5 * z * z - std::log(sigma_) - 0.5 * std::log(2.0 * M_PI);
}

double NormalDist::cdf(double x) const {
  return normal_cdf((x - mu_) / sigma_);
}

double NormalDist::sample(Rng& rng) const { return rng.normal(mu_, sigma_); }

std::unique_ptr<Distribution> NormalDist::clone() const {
  return std::make_unique<NormalDist>(*this);
}

// ------------------------------------------------------------------- gamma

GammaDist::GammaDist(double shape, double scale)
    : shape_(shape), scale_(scale) {
  TS_REQUIRE(shape > 0.0 && scale > 0.0, "gamma requires shape, scale > 0");
}

std::string GammaDist::describe() const {
  return strprintf("gamma(shape=%.6g, scale=%.6g)", shape_, scale_);
}

double GammaDist::pdf(double x) const {
  return x <= 0.0 ? 0.0 : std::exp(log_pdf(x));
}

double GammaDist::log_pdf(double x) const {
  if (x <= 0.0) return kNegInf;
  return (shape_ - 1.0) * std::log(x) - x / scale_ - std::lgamma(shape_) -
         shape_ * std::log(scale_);
}

double GammaDist::cdf(double x) const {
  return x <= 0.0 ? 0.0 : regularized_gamma_p(shape_, x / scale_);
}

double GammaDist::sample(Rng& rng) const { return rng.gamma(shape_, scale_); }

std::unique_ptr<Distribution> GammaDist::clone() const {
  return std::make_unique<GammaDist>(*this);
}

// --------------------------------------------------------------- lognormal

LogNormalDist::LogNormalDist(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {
  TS_REQUIRE(sigma > 0.0, "lognormal requires sigma > 0");
}

std::string LogNormalDist::describe() const {
  return strprintf("lognormal(mu=%.6g, sigma=%.6g)", mu_, sigma_);
}

double LogNormalDist::pdf(double x) const {
  return x <= 0.0 ? 0.0 : std::exp(log_pdf(x));
}

double LogNormalDist::log_pdf(double x) const {
  if (x <= 0.0) return kNegInf;
  const double z = (std::log(x) - mu_) / sigma_;
  return -0.5 * z * z - std::log(x * sigma_) - 0.5 * std::log(2.0 * M_PI);
}

double LogNormalDist::cdf(double x) const {
  return x <= 0.0 ? 0.0 : normal_cdf((std::log(x) - mu_) / sigma_);
}

double LogNormalDist::sample(Rng& rng) const {
  return std::exp(rng.normal(mu_, sigma_));
}

double LogNormalDist::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double LogNormalDist::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

std::unique_ptr<Distribution> LogNormalDist::clone() const {
  return std::make_unique<LogNormalDist>(*this);
}

// --------------------------------------------------------------- empirical

EmpiricalDist::EmpiricalDist(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  TS_REQUIRE(!sorted_.empty(), "empirical distribution needs samples");
  std::sort(sorted_.begin(), sorted_.end());
  RunningStats acc;
  for (double x : sorted_) acc.add(x);
  mean_ = acc.mean();
  variance_ = acc.variance();
}

std::string EmpiricalDist::describe() const {
  return strprintf("empirical(n=%zu, mean=%.6g)", sorted_.size(), mean_);
}

double EmpiricalDist::pdf(double x) const {
  // Coarse density estimate from the ECDF over a window of +/- one
  // interquartile-scaled bandwidth; adequate for plotting only.
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  if (x < lo || x > hi) return 0.0;
  const double bandwidth = std::max((hi - lo) / 50.0, 1e-12);
  const double c1 = cdf(x + 0.5 * bandwidth);
  const double c0 = cdf(x - 0.5 * bandwidth);
  return (c1 - c0) / bandwidth;
}

double EmpiricalDist::log_pdf(double x) const {
  const double p = pdf(x);
  return p > 0.0 ? std::log(p) : kNegInf;
}

double EmpiricalDist::cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalDist::sample(Rng& rng) const {
  return sorted_[rng.uniform_index(sorted_.size())];
}

std::unique_ptr<Distribution> EmpiricalDist::clone() const {
  return std::make_unique<EmpiricalDist>(*this);
}

// ----------------------------------------------------------------- factory

std::unique_ptr<Distribution> make_distribution(
    const std::string& name, std::span<const double> params) {
  auto need = [&](std::size_t n) {
    TS_REQUIRE(params.size() == n,
               name + " expects " + std::to_string(n) + " parameter(s), got " +
                   std::to_string(params.size()));
  };
  if (name == "constant") {
    need(1);
    return std::make_unique<ConstantDist>(params[0]);
  }
  if (name == "uniform") {
    need(2);
    return std::make_unique<UniformDist>(params[0], params[1]);
  }
  if (name == "exponential") {
    need(1);
    return std::make_unique<ExponentialDist>(params[0]);
  }
  if (name == "normal") {
    need(2);
    return std::make_unique<NormalDist>(params[0], params[1]);
  }
  if (name == "gamma") {
    need(2);
    return std::make_unique<GammaDist>(params[0], params[1]);
  }
  if (name == "lognormal") {
    need(2);
    return std::make_unique<LogNormalDist>(params[0], params[1]);
  }
  if (name == "empirical") {
    TS_REQUIRE(!params.empty(), "empirical expects at least one sample");
    return std::make_unique<EmpiricalDist>(
        std::vector<double>(params.begin(), params.end()));
  }
  throw InvalidArgument("unknown distribution family: " + name);
}

std::unique_ptr<Distribution> parse_distribution(const std::string& line) {
  const auto fields = split_whitespace(line);
  TS_REQUIRE(!fields.empty(), "empty distribution line");
  std::vector<double> params;
  params.reserve(fields.size() - 1);
  for (std::size_t i = 1; i < fields.size(); ++i) {
    params.push_back(parse_double(fields[i]));
  }
  return make_distribution(fields[0], params);
}

}  // namespace tasksim::stats
