#include "stats/ks_test.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/distribution.hpp"
#include "support/error.hpp"

namespace tasksim::stats {

double kolmogorov_q(double lambda) {
  if (lambda <= 0.0) return 1.0;
  // Q(lambda) = 2 * sum_{j>=1} (-1)^(j-1) exp(-2 j^2 lambda^2)
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult ks_test(std::span<const double> samples, const Distribution& dist) {
  TS_REQUIRE(!samples.empty(), "ks_test on empty sample");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double cdf = dist.cdf(sorted[i]);
    const double ecdf_hi = static_cast<double>(i + 1) / n;
    const double ecdf_lo = static_cast<double>(i) / n;
    d = std::max(d, std::max(std::fabs(ecdf_hi - cdf), std::fabs(cdf - ecdf_lo)));
  }
  KsResult r;
  r.statistic = d;
  const double sqrt_n = std::sqrt(n);
  r.p_value = kolmogorov_q((sqrt_n + 0.12 + 0.11 / sqrt_n) * d);
  return r;
}

KsResult ks_test_two_sample(std::span<const double> a,
                            std::span<const double> b) {
  TS_REQUIRE(!a.empty() && !b.empty(), "ks_test_two_sample on empty sample");
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t ia = 0, ib = 0;
  double d = 0.0;
  while (ia < sa.size() && ib < sb.size()) {
    const double x = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= x) ++ia;
    while (ib < sb.size() && sb[ib] <= x) ++ib;
    d = std::max(d, std::fabs(static_cast<double>(ia) / na -
                              static_cast<double>(ib) / nb));
  }
  KsResult r;
  r.statistic = d;
  const double ne = na * nb / (na + nb);
  const double sqrt_ne = std::sqrt(ne);
  r.p_value = kolmogorov_q((sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d);
  return r;
}

}  // namespace tasksim::stats
