#include "stats/fitting.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "stats/ks_test.hpp"
#include "stats/special.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace tasksim::stats {

namespace {

struct Moments {
  double mean = 0.0;
  double biased_variance = 0.0;
  double mean_log = 0.0;          // only meaningful when all_positive
  double biased_variance_log = 0.0;
  bool all_positive = true;
};

Moments compute_moments(std::span<const double> samples) {
  TS_REQUIRE(samples.size() >= 2, "fitting requires at least 2 samples");
  Moments m;
  const double n = static_cast<double>(samples.size());
  for (double x : samples) {
    m.mean += x;
    if (x <= 0.0) m.all_positive = false;
  }
  m.mean /= n;
  for (double x : samples) {
    const double d = x - m.mean;
    m.biased_variance += d * d;
  }
  m.biased_variance /= n;
  if (m.all_positive) {
    for (double x : samples) m.mean_log += std::log(x);
    m.mean_log /= n;
    for (double x : samples) {
      const double d = std::log(x) - m.mean_log;
      m.biased_variance_log += d * d;
    }
    m.biased_variance_log /= n;
  }
  return m;
}

double positive_sigma(double variance) {
  return std::sqrt(std::max(variance, 1e-24));
}

}  // namespace

std::unique_ptr<NormalDist> fit_normal(std::span<const double> samples) {
  const Moments m = compute_moments(samples);
  return std::make_unique<NormalDist>(m.mean, positive_sigma(m.biased_variance));
}

std::unique_ptr<LogNormalDist> fit_lognormal(std::span<const double> samples) {
  const Moments m = compute_moments(samples);
  TS_REQUIRE(m.all_positive, "lognormal fit requires positive samples");
  return std::make_unique<LogNormalDist>(m.mean_log,
                                         positive_sigma(m.biased_variance_log));
}

std::unique_ptr<GammaDist> fit_gamma(std::span<const double> samples) {
  const Moments m = compute_moments(samples);
  TS_REQUIRE(m.all_positive, "gamma fit requires positive samples");
  const double s = std::log(m.mean) - m.mean_log;
  // Degenerate (essentially constant) samples: s -> 0; fall back to the
  // moment estimate with a very large shape.
  double shape;
  if (s < 1e-12) {
    shape = 1e12;
  } else {
    // Minka's closed-form start, then Newton on f(k) = log k - psi(k) - s.
    shape = (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) + 24.0 * s)) / (12.0 * s);
    for (int iter = 0; iter < 50; ++iter) {
      const double f = std::log(shape) - digamma(shape) - s;
      const double fp = 1.0 / shape - trigamma(shape);
      const double step = f / fp;
      double next = shape - step;
      if (next <= 0.0) next = shape * 0.5;
      if (std::fabs(next - shape) < 1e-12 * shape) {
        shape = next;
        break;
      }
      shape = next;
    }
  }
  return std::make_unique<GammaDist>(shape, m.mean / shape);
}

std::unique_ptr<ExponentialDist> fit_exponential(
    std::span<const double> samples) {
  const Moments m = compute_moments(samples);
  TS_REQUIRE(m.mean > 0.0, "exponential fit requires positive mean");
  return std::make_unique<ExponentialDist>(1.0 / m.mean);
}

std::unique_ptr<ConstantDist> fit_constant(std::span<const double> samples) {
  const Moments m = compute_moments(samples);
  return std::make_unique<ConstantDist>(m.mean);
}

std::unique_ptr<UniformDist> fit_uniform(std::span<const double> samples) {
  TS_REQUIRE(samples.size() >= 2, "fitting requires at least 2 samples");
  const auto [lo_it, hi_it] = std::minmax_element(samples.begin(), samples.end());
  double lo = *lo_it;
  double hi = *hi_it;
  const double pad = std::max((hi - lo) * 1e-9, 1e-12);
  return std::make_unique<UniformDist>(lo - pad, hi + pad);
}

std::string FitResult::to_string() const {
  return strprintf("%-38s logL=%12.4f AIC=%12.4f KS=%.4f (p=%.3f)",
                   dist->describe().c_str(), log_likelihood, aic, ks_statistic,
                   ks_pvalue);
}

std::vector<FitResult> fit_candidates(std::span<const double> samples) {
  const Moments m = compute_moments(samples);
  std::vector<std::unique_ptr<Distribution>> candidates;
  candidates.push_back(fit_normal(samples));
  if (m.all_positive) {
    candidates.push_back(fit_gamma(samples));
    candidates.push_back(fit_lognormal(samples));
  }

  std::vector<FitResult> results;
  results.reserve(candidates.size());
  for (auto& dist : candidates) {
    FitResult r;
    r.log_likelihood = dist->log_likelihood(samples);
    const double k = static_cast<double>(dist->parameters().size());
    r.aic = 2.0 * k - 2.0 * r.log_likelihood;
    const KsResult ks = ks_test(samples, *dist);
    r.ks_statistic = ks.statistic;
    r.ks_pvalue = ks.p_value;
    r.dist = std::move(dist);
    results.push_back(std::move(r));
  }
  std::sort(results.begin(), results.end(),
            [](const FitResult& a, const FitResult& b) { return a.aic < b.aic; });
  return results;
}

std::unique_ptr<Distribution> fit_best(std::span<const double> samples) {
  auto results = fit_candidates(samples);
  TS_ASSERT(!results.empty(), "fit_candidates returned no results");
  return std::move(results.front().dist);
}

}  // namespace tasksim::stats
