// special.hpp — special functions needed by the distribution library.
//
// Only what TaskSim requires: digamma (gamma MLE), the regularized lower
// incomplete gamma function P(a, x) (gamma CDF), and the standard normal
// CDF.  Accuracy targets are ~1e-10 over the parameter ranges exercised by
// kernel-time modeling, verified against high-precision references in the
// unit tests.
#pragma once

namespace tasksim::stats {

/// Digamma function psi(x) for x > 0.
double digamma(double x);

/// Trigamma function psi'(x) for x > 0 (used by Newton steps in gamma MLE).
double trigamma(double x);

/// Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a),
/// for a > 0, x >= 0.  Series for x < a + 1, continued fraction otherwise.
double regularized_gamma_p(double a, double x);

/// Standard normal CDF Phi(z).
double normal_cdf(double z);

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// refined with one Halley step; |error| < 1e-12).
double normal_quantile(double p);

}  // namespace tasksim::stats
