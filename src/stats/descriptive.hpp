// descriptive.hpp — descriptive statistics over samples of kernel times.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace tasksim::stats {

/// Summary of a sample: moments and order statistics.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< unbiased (n-1) sample variance
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double q25 = 0.0;
  double q75 = 0.0;

  std::string to_string() const;
};

/// Compute a full summary.  Requires a non-empty sample.
Summary summarize(std::span<const double> samples);

/// Linear-interpolated quantile of a *sorted* sample; q in [0, 1].
double quantile_sorted(std::span<const double> sorted, double q);

/// Quantile of an unsorted sample (copies and sorts).
double quantile(std::span<const double> samples, double q);

/// Welford online accumulator: numerically stable streaming mean/variance.
/// Used by scheduler statistics and the StarPU-style performance model where
/// samples arrive one at a time from concurrent workers (callers provide
/// their own synchronization).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when count < 2.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Pearson correlation of two equally sized samples; requires size >= 2 and
/// nonzero variance in both.
double pearson_correlation(std::span<const double> x, std::span<const double> y);

/// Kendall rank correlation tau-b (O(n^2); fine for trace-sized inputs).
/// Used to compare the task start-order of a real trace with a simulated one.
double kendall_tau(std::span<const double> x, std::span<const double> y);

}  // namespace tasksim::stats
