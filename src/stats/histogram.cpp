#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "stats/descriptive.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace tasksim::stats {

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  TS_REQUIRE(bins > 0, "histogram needs at least one bin");
  TS_REQUIRE(hi > lo, "histogram range must be non-empty");
  width_ = (hi - lo) / bins;
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

Histogram Histogram::from_data(std::span<const double> samples, int max_bins) {
  TS_REQUIRE(!samples.empty(), "histogram from empty sample");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  double lo = sorted.front();
  double hi = sorted.back();
  if (hi <= lo) hi = lo + std::max(1e-12, std::fabs(lo) * 1e-6);
  const double pad = (hi - lo) * 0.01;
  lo -= pad;
  hi += pad;

  // Freedman–Diaconis rule.
  const double iqr = quantile_sorted(sorted, 0.75) - quantile_sorted(sorted, 0.25);
  int bins = max_bins;
  if (iqr > 0.0) {
    const double width =
        2.0 * iqr / std::cbrt(static_cast<double>(sorted.size()));
    bins = static_cast<int>(std::ceil((hi - lo) / width));
  }
  bins = std::clamp(bins, 4, max_bins);

  Histogram h(lo, hi, bins);
  h.add_all(samples);
  return h;
}

void Histogram::add(double value) {
  int bin = static_cast<int>((value - lo_) / width_);
  bin = std::clamp(bin, 0, bin_count() - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> samples) {
  for (double v : samples) add(v);
}

double Histogram::bin_center(int bin) const {
  TS_REQUIRE(bin >= 0 && bin < bin_count(), "bin out of range");
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::density(int bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) /
         (static_cast<double>(total_) * width_);
}

std::string Histogram::ascii_plot(int height,
                                  std::span<const double> overlay) const {
  TS_REQUIRE(height >= 2, "plot height too small");
  TS_REQUIRE(overlay.empty() ||
                 overlay.size() == static_cast<std::size_t>(bin_count()),
             "overlay must have one value per bin");
  double peak = 0.0;
  for (int b = 0; b < bin_count(); ++b) peak = std::max(peak, density(b));
  for (double v : overlay) peak = std::max(peak, v);
  if (peak <= 0.0) peak = 1.0;

  std::ostringstream os;
  for (int row = height - 1; row >= 0; --row) {
    const double level = peak * (static_cast<double>(row) + 0.5) /
                         static_cast<double>(height);
    os << strprintf("%10.3g |", peak * (row + 1) / height);
    for (int b = 0; b < bin_count(); ++b) {
      const bool bar = density(b) >= level;
      const bool ovl = !overlay.empty() &&
                       std::fabs(overlay[static_cast<std::size_t>(b)] - level) <
                           peak / (2.0 * height);
      if (bar && ovl) os << '@';
      else if (ovl) os << '*';
      else if (bar) os << '#';
      else os << ' ';
    }
    os << '\n';
  }
  os << strprintf("%10s +", "");
  for (int b = 0; b < bin_count(); ++b) os << '-';
  os << '\n';
  os << strprintf("%10s  %-12.4g%*.4g\n", "", lo_,
                  std::max(1, bin_count() - 12), hi_);
  return os.str();
}

}  // namespace tasksim::stats
