#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace tasksim::stats {

std::string Summary::to_string() const {
  return strprintf(
      "n=%zu mean=%.4g sd=%.4g min=%.4g q25=%.4g med=%.4g q75=%.4g max=%.4g",
      count, mean, stddev, min, q25, median, q75, max);
}

double quantile_sorted(std::span<const double> sorted, double q) {
  TS_REQUIRE(!sorted.empty(), "quantile of empty sample");
  TS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile(std::span<const double> samples, double q) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

Summary summarize(std::span<const double> samples) {
  TS_REQUIRE(!samples.empty(), "summarize requires a non-empty sample");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());

  RunningStats acc;
  for (double x : samples) acc.add(x);

  Summary s;
  s.count = samples.size();
  s.mean = acc.mean();
  s.variance = acc.variance();
  s.stddev = acc.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = quantile_sorted(sorted, 0.5);
  s.q25 = quantile_sorted(sorted, 0.25);
  s.q75 = quantile_sorted(sorted, 0.75);
  return s;
}

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double pearson_correlation(std::span<const double> x,
                           std::span<const double> y) {
  TS_REQUIRE(x.size() == y.size(), "correlation requires equal sizes");
  TS_REQUIRE(x.size() >= 2, "correlation requires >= 2 points");
  RunningStats sx, sy;
  for (double v : x) sx.add(v);
  for (double v : y) sy.add(v);
  TS_REQUIRE(sx.stddev() > 0.0 && sy.stddev() > 0.0,
             "correlation requires nonzero variance");
  double cov = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  }
  cov /= static_cast<double>(x.size() - 1);
  return cov / (sx.stddev() * sy.stddev());
}

double kendall_tau(std::span<const double> x, std::span<const double> y) {
  TS_REQUIRE(x.size() == y.size(), "kendall_tau requires equal sizes");
  TS_REQUIRE(x.size() >= 2, "kendall_tau requires >= 2 points");
  long long concordant = 0, discordant = 0, ties_x = 0, ties_y = 0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx == 0.0 && dy == 0.0) continue;
      if (dx == 0.0) { ++ties_x; continue; }
      if (dy == 0.0) { ++ties_y; continue; }
      if ((dx > 0.0) == (dy > 0.0)) ++concordant; else ++discordant;
    }
  }
  const double n0 = static_cast<double>(n) * (static_cast<double>(n) - 1) / 2.0;
  const double denom = std::sqrt((n0 - static_cast<double>(ties_x)) *
                                 (n0 - static_cast<double>(ties_y)));
  if (denom == 0.0) return 0.0;
  return static_cast<double>(concordant - discordant) / denom;
}

}  // namespace tasksim::stats
