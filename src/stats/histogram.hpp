// histogram.hpp — fixed-width binned histograms with density normalization
// and an ASCII rendering used by the Figure 3/4 benches to show kernel-time
// densities next to their fitted distribution curves.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace tasksim::stats {

class Histogram {
 public:
  /// Build a histogram with `bins` equal-width bins spanning [lo, hi].
  /// Values outside the range are clamped into the edge bins.
  Histogram(double lo, double hi, int bins);

  /// Build from data with automatic range (padded by 1%) and the
  /// Freedman-Diaconis bin count (clamped to [4, max_bins]).
  static Histogram from_data(std::span<const double> samples, int max_bins = 60);

  void add(double value);
  void add_all(std::span<const double> samples);

  int bin_count() const { return static_cast<int>(counts_.size()); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_width() const { return width_; }
  std::size_t total() const { return total_; }
  std::size_t count(int bin) const { return counts_.at(bin); }
  double bin_center(int bin) const;

  /// Probability density estimate for the given bin (integrates to 1).
  double density(int bin) const;

  /// Multi-line ASCII plot; `overlay` (optional, one value per bin) draws a
  /// second series of density markers, e.g. a fitted PDF.
  std::string ascii_plot(int height = 12,
                         std::span<const double> overlay = {}) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace tasksim::stats
