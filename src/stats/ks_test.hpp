// ks_test.hpp — Kolmogorov-Smirnov goodness-of-fit tests.
//
// Used to score fitted kernel-time distributions (Figures 3-4) and to
// compare real vs simulated per-kernel duration samples in trace analysis.
#pragma once

#include <span>

namespace tasksim::stats {

class Distribution;

struct KsResult {
  double statistic = 0.0;  ///< sup |ECDF - CDF|
  double p_value = 0.0;    ///< asymptotic Kolmogorov p-value
};

/// One-sample KS test of `samples` against the fitted `dist`.
/// Note: p-values are optimistic when parameters were estimated from the
/// same sample (the usual Lilliefors caveat); TaskSim uses them for ranking
/// only.
KsResult ks_test(std::span<const double> samples, const Distribution& dist);

/// Two-sample KS test (real vs simulated kernel durations).
KsResult ks_test_two_sample(std::span<const double> a, std::span<const double> b);

/// Asymptotic Kolmogorov complementary CDF Q(lambda).
double kolmogorov_q(double lambda);

}  // namespace tasksim::stats
