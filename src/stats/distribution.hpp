// distribution.hpp — probability distributions for kernel execution times.
//
// The paper (§V-B) models each kernel class's execution time with a simple
// distribution — normal, gamma, or log-normal — fitted to samples collected
// from a calibration run, and notes that the log-normal fit slightly
// outperformed the others in some cases.  This module provides those
// distributions (plus constant / uniform / exponential / empirical used by
// tests, baselines and ablations) behind one polymorphic interface with
// analytic PDF/CDF, deterministic sampling from a caller-supplied Rng, and a
// text serialization used by kernel-model files.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace tasksim::stats {

class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Machine-readable family name: "constant", "uniform", "exponential",
  /// "normal", "gamma", "lognormal", "empirical".
  virtual std::string name() const = 0;

  /// Family parameters in canonical order (see each subclass).
  virtual std::vector<double> parameters() const = 0;

  /// Human-readable description, e.g. "normal(mu=532.1, sigma=12.8)".
  virtual std::string describe() const = 0;

  virtual double pdf(double x) const = 0;
  virtual double log_pdf(double x) const = 0;
  virtual double cdf(double x) const = 0;
  virtual double sample(Rng& rng) const = 0;
  virtual double mean() const = 0;
  virtual double variance() const = 0;

  virtual std::unique_ptr<Distribution> clone() const = 0;

  /// Sum of log_pdf over the sample (the fit objective used for ranking).
  double log_likelihood(std::span<const double> samples) const;

  /// One-line serialization: "<name> <p0> <p1> ...".  Empirical
  /// distributions serialize their full sample.
  std::string serialize() const;
};

/// Degenerate point mass at `value`; used for the "constant model" ablation.
class ConstantDist final : public Distribution {
 public:
  explicit ConstantDist(double value);
  std::string name() const override { return "constant"; }
  std::vector<double> parameters() const override { return {value_}; }
  std::string describe() const override;
  double pdf(double x) const override;
  double log_pdf(double x) const override;
  double cdf(double x) const override;
  double sample(Rng& rng) const override;
  double mean() const override { return value_; }
  double variance() const override { return 0.0; }
  std::unique_ptr<Distribution> clone() const override;

 private:
  double value_;
};

/// Uniform on [lo, hi].
class UniformDist final : public Distribution {
 public:
  UniformDist(double lo, double hi);
  std::string name() const override { return "uniform"; }
  std::vector<double> parameters() const override { return {lo_, hi_}; }
  std::string describe() const override;
  double pdf(double x) const override;
  double log_pdf(double x) const override;
  double cdf(double x) const override;
  double sample(Rng& rng) const override;
  double mean() const override { return 0.5 * (lo_ + hi_); }
  double variance() const override;
  std::unique_ptr<Distribution> clone() const override;

 private:
  double lo_;
  double hi_;
};

/// Exponential with rate lambda.
class ExponentialDist final : public Distribution {
 public:
  explicit ExponentialDist(double lambda);
  std::string name() const override { return "exponential"; }
  std::vector<double> parameters() const override { return {lambda_}; }
  std::string describe() const override;
  double pdf(double x) const override;
  double log_pdf(double x) const override;
  double cdf(double x) const override;
  double sample(Rng& rng) const override;
  double mean() const override { return 1.0 / lambda_; }
  double variance() const override { return 1.0 / (lambda_ * lambda_); }
  std::unique_ptr<Distribution> clone() const override;

 private:
  double lambda_;
};

/// Normal(mu, sigma).
class NormalDist final : public Distribution {
 public:
  NormalDist(double mu, double sigma);
  std::string name() const override { return "normal"; }
  std::vector<double> parameters() const override { return {mu_, sigma_}; }
  std::string describe() const override;
  double pdf(double x) const override;
  double log_pdf(double x) const override;
  double cdf(double x) const override;
  double sample(Rng& rng) const override;
  double mean() const override { return mu_; }
  double variance() const override { return sigma_ * sigma_; }
  std::unique_ptr<Distribution> clone() const override;

 private:
  double mu_;
  double sigma_;
};

/// Gamma with shape k and scale theta (mean = k*theta).
class GammaDist final : public Distribution {
 public:
  GammaDist(double shape, double scale);
  std::string name() const override { return "gamma"; }
  std::vector<double> parameters() const override { return {shape_, scale_}; }
  std::string describe() const override;
  double pdf(double x) const override;
  double log_pdf(double x) const override;
  double cdf(double x) const override;
  double sample(Rng& rng) const override;
  double mean() const override { return shape_ * scale_; }
  double variance() const override { return shape_ * scale_ * scale_; }
  std::unique_ptr<Distribution> clone() const override;

 private:
  double shape_;
  double scale_;
};

/// Log-normal: log X ~ Normal(mu, sigma).
class LogNormalDist final : public Distribution {
 public:
  LogNormalDist(double mu, double sigma);
  std::string name() const override { return "lognormal"; }
  std::vector<double> parameters() const override { return {mu_, sigma_}; }
  std::string describe() const override;
  double pdf(double x) const override;
  double log_pdf(double x) const override;
  double cdf(double x) const override;
  double sample(Rng& rng) const override;
  double mean() const override;
  double variance() const override;
  std::unique_ptr<Distribution> clone() const override;

 private:
  double mu_;
  double sigma_;
};

/// Empirical distribution: sampling bootstraps from the stored sample; the
/// CDF is the ECDF.  pdf() is a histogram density estimate (coarse; the
/// empirical model is excluded from likelihood-based ranking).
class EmpiricalDist final : public Distribution {
 public:
  explicit EmpiricalDist(std::vector<double> samples);
  std::string name() const override { return "empirical"; }
  std::vector<double> parameters() const override { return sorted_; }
  std::string describe() const override;
  double pdf(double x) const override;
  double log_pdf(double x) const override;
  double cdf(double x) const override;
  double sample(Rng& rng) const override;
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  std::unique_ptr<Distribution> clone() const override;

  const std::vector<double>& samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
  double mean_;
  double variance_;
};

/// Factory from family name + parameters; throws InvalidArgument on an
/// unknown family or a wrong parameter count.
std::unique_ptr<Distribution> make_distribution(const std::string& name,
                                                std::span<const double> params);

/// Parse the output of Distribution::serialize().
std::unique_ptr<Distribution> parse_distribution(const std::string& line);

}  // namespace tasksim::stats
