// fitting.hpp — maximum-likelihood fitting of kernel-time distributions.
//
// Mirrors paper §V-B2: the calibration pipeline fits normal, gamma and
// log-normal candidates to each kernel class's observed execution times and
// selects among them.  Ranking uses AIC (2k - 2 log L); the KS statistic
// against each fitted CDF is also reported so benches can print the
// goodness-of-fit table behind Figures 3 and 4.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "stats/distribution.hpp"

namespace tasksim::stats {

/// Closed-form MLE: mu = sample mean, sigma = sqrt(biased variance).
std::unique_ptr<NormalDist> fit_normal(std::span<const double> samples);

/// Closed-form MLE on log-transformed data; requires strictly positive
/// samples.
std::unique_ptr<LogNormalDist> fit_lognormal(std::span<const double> samples);

/// MLE via Newton iteration on the shape equation
///   log(k) - digamma(k) = log(mean) - mean(log);
/// requires strictly positive samples.
std::unique_ptr<GammaDist> fit_gamma(std::span<const double> samples);

/// MLE: lambda = 1 / mean; requires positive mean.
std::unique_ptr<ExponentialDist> fit_exponential(std::span<const double> samples);

/// Point mass at the sample mean (the "constant model" ablation).
std::unique_ptr<ConstantDist> fit_constant(std::span<const double> samples);

/// Uniform over [min, max] widened by half a ULP-equivalent so every sample
/// has positive density.
std::unique_ptr<UniformDist> fit_uniform(std::span<const double> samples);

/// One fitted candidate plus its goodness-of-fit scores.
struct FitResult {
  std::unique_ptr<Distribution> dist;
  double log_likelihood = 0.0;
  double aic = 0.0;
  double ks_statistic = 0.0;
  double ks_pvalue = 0.0;

  std::string to_string() const;
};

/// Fit the paper's candidate families (normal, gamma, lognormal; gamma and
/// lognormal are skipped when the sample contains non-positive values) and
/// return them sorted by ascending AIC (best first).
std::vector<FitResult> fit_candidates(std::span<const double> samples);

/// Convenience: best-AIC candidate from fit_candidates.
std::unique_ptr<Distribution> fit_best(std::span<const double> samples);

}  // namespace tasksim::stats
