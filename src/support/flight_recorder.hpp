// flight_recorder.hpp — the task-lifecycle flight recorder.
//
// A low-overhead, per-thread ring-buffer event recorder that captures every
// task state transition (submitted → window-blocked → ready → dispatched →
// running → TEQ-blocked → returned), the dependency edges discovered at
// submission (producer → consumer), and the simulation-specific events (TEQ
// enter / displace / front, clock advances, quiescence spins).  The metrics
// registry (support/metrics) answers "how often / how long"; the flight
// recorder answers "which task, when, and caused by whom" — the causal
// record behind the §V-E race auditor and the makespan attribution report
// in trace/lifecycle.
//
// Cost model: recording is run-time gated.  When disabled (the default),
// every instrumentation site is a single relaxed atomic load and a branch —
// cheap enough to leave compiled into scheduler and simulator hot paths.
// When enabled, an event is one wall-clock read plus an uncontended
// per-thread mutex around a ring-buffer store; rings overwrite their oldest
// entry when full and count the overwritten events in `dropped` so analyses
// can tell a truncated stream from a complete one.
//
// Threading: record() may be called from any thread; each thread writes its
// own shard, so recording threads never contend with each other.  drain()
// merges every shard into one stream sorted by wall-clock time and tags
// each event with its shard index (per-shard timestamps are monotone — one
// writer, one monotonic clock).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace tasksim::flightrec {

/// Sentinel task id for events not tied to a task (window throttling,
/// clock advances, TEQ displacements).
inline constexpr std::uint64_t kNoTask = ~std::uint64_t{0};

enum class EventType : std::uint8_t {
  // --- task state transitions (scheduler layer) -------------------------
  task_submit,     ///< registered with the runtime; task = id
  task_ready,      ///< last dependence satisfied; task = id
  task_dispatch,   ///< a worker claimed the task; worker = lane
  task_start,      ///< task function entered; worker = lane
  task_finish,     ///< task function returned to the scheduler; a = real µs
  // --- submitter throttling ---------------------------------------------
  window_block,    ///< submitter blocked on the task window
  window_unblock,  ///< submitter resumed; a = µs blocked
  // --- dependence flow ---------------------------------------------------
  dep_edge,        ///< task = consumer, other = producer task id
  // --- simulation (Task Execution Queue, paper §V-C/§V-E) ---------------
  teq_enter,       ///< a = virtual start, b = virtual completion,
                   ///< other = queue ticket seq
  teq_front,       ///< reached the queue front; a = virtual completion
  teq_displaced,   ///< a later arrival displaced the front: task = displaced
                   ///< ticket seq, other = entering ticket seq,
                   ///< a = displaced completion, b = entering completion
  task_return,     ///< simulated body returns; a = virtual completion
  teq_release,     ///< lookahead release before reaching the front: a =
                   ///< released completion, b = virtual clock at release,
                   ///< other = queue ticket seq
  teq_cancelled,   ///< wait aborted by cancel(): a = the waiting ticket's
                   ///< completion time, other = ticket seq
  clock_advance,   ///< a = new virtual clock value
  quiescence_spin, ///< quiescence wait spun; a = spin iterations
  // --- scheduler-policy decisions ---------------------------------------
  sched_steal,       ///< quark: task stolen; worker = thief lane
  sched_lane_commit, ///< starpu dm/dmda: task committed to a lane;
                     ///< worker = lane, a = expected µs charged
  sched_immediate,   ///< ompss: task taken via the immediate-successor slot
  // --- fault injection and resilience ------------------------------------
  task_failed,       ///< injected failure; a = virtual completion of the
                     ///< failed partial attempt, b = attempt index
  task_retry,        ///< runtime requeued a failed task; b = attempt index
                     ///< at requeue time (the backoff is the sim engine's:
                     ///< see retry_penalty)
  retry_penalty,     ///< a retry attempt paid its virtual backoff: a =
                     ///< backoff µs folded into the committed span, b =
                     ///< attempt index
  task_poisoned,     ///< task skipped: its retry budget (other = failing
                     ///< ancestor id) or a producer's was exhausted
  fault_stall,       ///< injected worker stall; a = stall µs (real)
  quiescence_timeout,///< quiescence wait gave up; a = virtual completion
                     ///< the task was waiting to return, b = µs waited
  watchdog_stall,    ///< watchdog declared the run stalled; a = µs since
                     ///< the last beacon movement
  // --- straggler hedging and deadlines (DESIGN.md §12) --------------------
  hedge_launch,      ///< duplicate spawned for a straggling task: task =
                     ///< duplicate id, a = duplicate virtual start, b =
                     ///< winner virtual completion, other = original id
  hedge_win,         ///< the duplicate's completion beat the original's:
                     ///< task = original id, a = winner virtual completion,
                     ///< b = wasted duplicate µs (virtual), other = dup id
  hedge_cancel,      ///< duplicate cancelled without committing: a = the
                     ///< winner completion its ticket carried, other =
                     ///< original id
  deadline_breach,   ///< virtual span exceeded the task deadline: a =
                     ///< deadline µs, b = truncated virtual completion
};

const char* to_string(EventType type);

/// One recorded event.  Fixed-size POD so the ring buffer is a flat array;
/// field meaning per type is documented on EventType.
struct Event {
  double wall_us = 0.0;            ///< monotonic wall clock at record time
  double a = 0.0;                  ///< payload (virtual times, µs, counts)
  double b = 0.0;
  std::uint64_t task = kNoTask;    ///< task id (or seq for teq_displaced)
  std::uint64_t other = 0;         ///< second id (producer, ticket seq)
  std::int32_t worker = -1;        ///< worker lane, -1 = not lane-bound
  std::uint32_t shard = 0;         ///< recording thread index (set at drain)
  EventType type = EventType::task_submit;
};

/// The merged result of draining the recorder.
struct Stream {
  std::vector<Event> events;  ///< sorted by wall_us (stable across shards)
  /// Task id → kernel class, captured at submission via name_task().
  std::unordered_map<std::uint64_t, std::string> kernels;
  std::uint64_t dropped = 0;  ///< events overwritten by full rings
  std::size_t shard_count = 0;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  FlightRecorder();
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Start recording with the given per-thread ring capacity.  Clears any
  /// events and task names left from a previous recording.
  void enable(std::size_t per_thread_capacity = kDefaultCapacity);

  /// Stop recording; already-recorded events remain drainable.
  void disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Record one event.  The no-op cost when disabled is one relaxed load.
  void record(EventType type, std::uint64_t task = kNoTask, int worker = -1,
              double a = 0.0, double b = 0.0, std::uint64_t other = 0) {
    if (!enabled()) return;
    record_slow(type, task, worker, a, b, other);
  }

  /// Associate a task id with its kernel class (called at submission; a
  /// no-op while disabled).
  void name_task(std::uint64_t task, const std::string& kernel);

  /// Merge and clear every shard: events sorted by wall time, each tagged
  /// with its shard index.  Safe to call while disabled or enabled (a
  /// concurrent recorder thread keeps writing into the cleared rings).
  Stream drain();

  /// Discard all recorded events and names without building a stream.
  void clear();

  /// The process-wide recorder every instrumentation site records into.
  static FlightRecorder& global();

 private:
  struct Shard {
    std::mutex mutex;
    std::vector<Event> ring;
    std::size_t head = 0;   ///< next write position
    std::size_t count = 0;  ///< live events (<= ring.size())
    std::uint64_t dropped = 0;
  };

  void record_slow(EventType type, std::uint64_t task, int worker, double a,
                   double b, std::uint64_t other);
  Shard& local_shard();

  std::uint64_t id_;  ///< unique per instance; keys the thread-local cache
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;  ///< guards shards_ / capacity_ / names_
  std::size_t capacity_ = kDefaultCapacity;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unordered_map<std::uint64_t, std::string> names_;
};

namespace detail {
/// The calling thread's bound recorder, set by telemetry::TelemetryScope
/// (support/telemetry.hpp); nullptr → the process-wide default.
inline thread_local FlightRecorder* t_bound_recorder = nullptr;
}  // namespace detail

/// The recorder instrumentation on this thread records into: the
/// TelemetryScope-bound instance (per-engine recorders for concurrent
/// sweeps), or FlightRecorder::global() when unbound.
inline FlightRecorder& current() {
  FlightRecorder* bound = detail::t_bound_recorder;
  return bound != nullptr ? *bound : FlightRecorder::global();
}

}  // namespace tasksim::flightrec
