#include "support/error.hpp"

#include <cerrno>
#include <cstring>
#include <sstream>

namespace tasksim {

std::string errno_detail(const std::string& context) {
  const int saved = errno;
  std::string detail = context;
  detail += ": ";
  detail += (saved != 0) ? std::strerror(saved) : "unknown error";
  return detail;
}

}  // namespace tasksim

namespace tasksim::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << ": " << msg << " [" << expr << "] at " << file << ":" << line;
  return os.str();
}
}  // namespace

void throw_invalid_argument(const char* expr, const char* file, int line,
                            const std::string& msg) {
  throw InvalidArgument(format("invalid argument", expr, file, line, msg));
}

void throw_internal_error(const char* expr, const char* file, int line,
                          const std::string& msg) {
  throw InternalError(format("internal error", expr, file, line, msg));
}

}  // namespace tasksim::detail
