// telemetry.hpp — per-engine telemetry contexts.
//
// PRs 1-4 built three observability subsystems — the metrics registry
// (support/metrics), the task-lifecycle flight recorder
// (support/flight_recorder) and the wall-clock phase profiler
// (support/profiler) — but every instrumentation site hung off the
// process-wide singletons, so two SimEngine instances running concurrently
// would write into each other's counters, rings and shards.  The sweep
// orchestrator (harness/sweep) needs K engines to coexist, each with its
// own isolated, mergeable telemetry.
//
// A TelemetryContext bundles one owned instance of each subsystem plus an
// engine identity (unique id + user label).  Threads opt in via a scoped
// TLS binding:
//
//   telemetry::TelemetryContext context("sweep-3");
//   telemetry::TelemetryScope scope(context);   // binds this thread
//   harness::run_simulated(config, models);     // all instrumentation —
//       // metrics::counter(), TS_PROF_SCOPE, flightrec::current() — now
//       // resolves to this context's registry/profiler/recorder
//
// The binding is the same trick as the registry's TlsCache: one plain
// thread_local pointer per subsystem, read on the slow registration /
// record paths (hot-path metric increments go through pre-resolved
// handles and pay nothing).  When no scope is bound, every subsystem
// resolves to its ::global() instance — the process-default context — so
// all pre-existing call sites, benches and tests keep their behavior
// bit-for-bit.
//
// Propagation: RuntimeBase captures the constructing thread's context and
// re-binds it on every worker thread it spawns, so an engine's workers
// instrument into the engine's context no matter which thread pool drives
// the sweep.  SimEngine does the same for its watchdog (beacons are
// pre-resolved handles; the stall path tags reports with the context's
// identity).
//
// Lifetime rules:
//   * The context must outlive every runtime/engine constructed under it
//     (worker threads hold shard pointers into its registry).  run_sweep
//     destroys each engine before its context; the subsystems' id-keyed
//     TLS caches make a destroyed context's stale cache entries
//     unreachable rather than dangling.
//   * The profiler member is declared last, hence destroyed FIRST: its
//     destructor joins the sampler thread before the registry/recorder
//     the sampler's snapshot could touch disappear — the multi-engine
//     sampler-lifecycle fix (the global-only design was safe only because
//     the globals are leaked).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "support/flight_recorder.hpp"
#include "support/metrics.hpp"
#include "support/profiler.hpp"

namespace tasksim::telemetry {

class TelemetryContext {
 public:
  /// A fresh context with its own registry, recorder and profiler.  The
  /// label is free-form (sweep engine names); the id is process-unique
  /// and monotonically assigned, so it never aliases a destroyed context.
  explicit TelemetryContext(std::string label = "");
  ~TelemetryContext();
  TelemetryContext(const TelemetryContext&) = delete;
  TelemetryContext& operator=(const TelemetryContext&) = delete;

  metrics::Registry& metrics() const { return *registry_; }
  flightrec::FlightRecorder& recorder() const { return *recorder_; }
  prof::Profiler& profiler() const { return *profiler_; }

  std::uint64_t engine_id() const { return engine_id_; }
  const std::string& label() const { return label_; }
  /// "engine 3 ('sweep-3')" — the identity tag stall reports and
  /// SimulationStalled errors carry so a failing engine in a K-engine
  /// sweep is identifiable from the error alone.
  std::string describe() const;

  bool is_process_default() const { return engine_id_ == 0; }

  /// The context wrapping the three ::global() singletons (id 0).  This is
  /// what unbound threads resolve to; it is never destroyed.
  static TelemetryContext& process_default();

 private:
  struct DefaultTag {};
  explicit TelemetryContext(DefaultTag);

  std::uint64_t engine_id_;
  std::string label_;
  // Owned subsystems (null in the process-default context, which borrows
  // the leaked globals through the raw pointers below).
  std::unique_ptr<metrics::Registry> owned_registry_;
  std::unique_ptr<flightrec::FlightRecorder> owned_recorder_;
  metrics::Registry* registry_;
  flightrec::FlightRecorder* recorder_;
  // Declared last → destroyed first: ~Profiler joins the sampler thread
  // while the registry and recorder above are still alive.
  std::unique_ptr<prof::Profiler> owned_profiler_;
  prof::Profiler* profiler_;
};

namespace detail {
/// The innermost bound context; nullptr → process default.  The three
/// subsystem bindings (metrics/prof/flightrec detail::t_bound_*) are kept
/// in lockstep by TelemetryScope so a thread can never observe a mixed
/// context.
inline thread_local TelemetryContext* t_bound_context = nullptr;
}  // namespace detail

/// The calling thread's context: the innermost TelemetryScope's, or the
/// process default when unbound.
inline TelemetryContext& current() {
  TelemetryContext* bound = detail::t_bound_context;
  return bound != nullptr ? *bound : TelemetryContext::process_default();
}

/// The bound context, or nullptr when the thread is unbound.
inline TelemetryContext* current_if_bound() {
  return detail::t_bound_context;
}

/// RAII binding of a context to the calling thread.  Scopes nest: the
/// previous binding (of all three subsystems) is restored on destruction.
/// Bind-only — the scope does not own or enable anything.
class TelemetryScope {
 public:
  explicit TelemetryScope(TelemetryContext& context);
  ~TelemetryScope();
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

 private:
  TelemetryContext* prev_context_;
  metrics::Registry* prev_registry_;
  prof::Profiler* prev_profiler_;
  flightrec::FlightRecorder* prev_recorder_;
};

}  // namespace tasksim::telemetry
