#include "support/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "support/error.hpp"

namespace tasksim::metrics {

namespace {

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Precomputed bucket upper bounds (last is +inf).
const std::array<double, kHistogramBuckets>& bucket_bounds() {
  static const std::array<double, kHistogramBuckets> bounds = [] {
    std::array<double, kHistogramBuckets> b{};
    double upper = 0.25;
    for (std::size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
      b[i] = upper;
      upper *= 2.0;
    }
    b[kHistogramBuckets - 1] = std::numeric_limits<double>::infinity();
    return b;
  }();
  return bounds;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}

}  // namespace

double histogram_bucket_upper(std::size_t i) {
  TS_REQUIRE(i < kHistogramBuckets, "histogram bucket index out of range");
  return bucket_bounds()[i];
}

std::uint64_t histogram_bounds_fingerprint() {
  static const std::uint64_t fingerprint = [] {
    // FNV-1a over the bucket count and every finite upper bound.  Stable
    // across runs of the same build; changes whenever the bucket layout
    // does, which is exactly when cross-build merges must be refused.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffULL;
        h *= 0x100000001b3ULL;
      }
    };
    mix(kHistogramBuckets);
    for (double bound : bucket_bounds()) {
      std::uint64_t bits = 0;
      if (std::isfinite(bound)) {
        static_assert(sizeof(bits) == sizeof(bound));
        std::memcpy(&bits, &bound, sizeof(bits));
      }
      mix(bits);
    }
    return h == 0 ? 1 : h;  // 0 is reserved for "the compiled-in layout"
  }();
  return fingerprint;
}

void HistogramStats::merge(const HistogramStats& other) {
  const auto resolve = [](std::uint64_t fp) {
    return fp == 0 ? histogram_bounds_fingerprint() : fp;
  };
  TS_REQUIRE(resolve(bounds_fingerprint) == resolve(other.bounds_fingerprint),
             "cannot merge histograms with different bucket layouts "
             "(bounds fingerprints " +
                 std::to_string(resolve(bounds_fingerprint)) + " vs " +
                 std::to_string(resolve(other.bounds_fingerprint)) + ")");
  count += other.count;
  sum += other.sum;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  bounds_fingerprint = resolve(bounds_fingerprint);
}

void Snapshot::merge(const Snapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  // Gauges are levels, not accumulators: the merged-in snapshot's value
  // wins, so merging snapshots in write order reproduces last-write-wins.
  for (const auto& [name, value] : other.gauges) gauges[name] = value;
  for (const auto& [name, stats] : other.histograms) {
    auto [it, inserted] = histograms.emplace(name, stats);
    if (!inserted) it->second.merge(stats);
  }
}

Registry::Registry() : id_(next_registry_id()) {}
Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry* instance = new Registry();  // intentionally leaked: metric
  return *instance;  // handles in static objects may outlive exit-time dtors
}

namespace {
// Full per-thread shard map backing the one-entry TlsCache fast path (the
// cache misses only when a thread alternates between registries).
thread_local std::unordered_map<std::uint64_t, void*> t_shards;
}  // namespace

Registry::Shard& Registry::local_shard_slow(TlsCache& cache) {
  auto it = t_shards.find(id_);
  Shard* shard;
  if (it != t_shards.end()) {
    shard = static_cast<Shard*>(it->second);
  } else {
    auto owned = std::make_unique<Shard>();
    shard = owned.get();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shards_.push_back(std::move(owned));
    }
    t_shards.emplace(id_, shard);
  }
  cache = {id_, shard};
  return *shard;
}

namespace {
std::uint32_t register_slot(std::map<std::string, std::uint32_t>& slots,
                            const std::string& name, std::size_t capacity,
                            const char* kind) {
  auto it = slots.find(name);
  if (it != slots.end()) return it->second;
  TS_REQUIRE(slots.size() < capacity,
             std::string("metrics registry out of ") + kind + " slots ('" +
                 name + "')");
  const auto slot = static_cast<std::uint32_t>(slots.size());
  slots.emplace(name, slot);
  return slot;
}
}  // namespace

Counter Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return Counter(this, register_slot(counter_slots_, name, kMaxCounters,
                                     "counter"));
}

Gauge Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return Gauge(this, register_slot(gauge_slots_, name, kMaxGauges, "gauge"));
}

Histogram Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return Histogram(this, register_slot(histogram_slots_, name, kMaxHistograms,
                                       "histogram"));
}

std::uint64_t Counter::value() const {
  std::lock_guard<std::mutex> lock(registry_->mutex_);
  std::uint64_t total = 0;
  for (const auto& shard : registry_->shards_) {
    total += shard->counters[slot_].load(std::memory_order_relaxed);
  }
  return total;
}

double HistogramStats::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const std::uint64_t below = seen;
    seen += buckets[i];
    if (seen < target) continue;
    // Interpolate linearly within the containing bucket, assuming the
    // bucket's observations are uniformly spread over [lower, upper).  The
    // result is within one bucket width of the true sample quantile, i.e.
    // within a factor of 2 (geometric buckets) of the exact value.
    const double lower = i == 0 ? 0.0 : histogram_bucket_upper(i - 1);
    const double upper = histogram_bucket_upper(i);
    if (!std::isfinite(upper)) return lower;  // unbounded overflow bucket
    const double fraction = static_cast<double>(target - below) /
                            static_cast<double>(buckets[i]);
    return lower + fraction * (upper - lower);
  }
  return 0.0;  // unreachable: count > 0 implies some bucket is non-empty
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, slot] : counter_slots_) {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->counters[slot].load(std::memory_order_relaxed);
    }
    snap.counters.emplace(name, total);
  }
  for (const auto& [name, slot] : gauge_slots_) {
    snap.gauges.emplace(name, gauges_[slot].load(std::memory_order_relaxed));
  }
  for (const auto& [name, slot] : histogram_slots_) {
    HistogramStats stats;
    stats.bounds_fingerprint = histogram_bounds_fingerprint();
    for (const auto& shard : shards_) {
      const auto& hist = shard->hists[slot];
      for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
        stats.buckets[i] += hist.buckets[i].load(std::memory_order_relaxed);
      }
      stats.sum += hist.sum.load(std::memory_order_relaxed);
    }
    for (std::uint64_t n : stats.buckets) stats.count += n;
    snap.histograms.emplace(name, stats);
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : shard->hists) {
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
      h.sum.store(0.0, std::memory_order_relaxed);
    }
  }
  for (auto& g : gauges_) g.store(0.0, std::memory_order_relaxed);
}

std::string Snapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << json_number(value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, stats] : histograms) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":{\"count\":" << stats.count
       << ",\"sum\":" << json_number(stats.sum)
       << ",\"mean\":" << json_number(stats.mean())
       << ",\"p50\":" << json_number(stats.quantile(0.5))
       << ",\"p95\":" << json_number(stats.quantile(0.95)) << ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (stats.buckets[i] == 0) continue;
      if (!first_bucket) os << ',';
      first_bucket = false;
      const double upper = histogram_bucket_upper(i);
      os << "{\"le\":"
         << (std::isfinite(upper) ? json_number(upper) : "\"inf\"")
         << ",\"n\":" << stats.buckets[i] << '}';
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

Counter counter(const std::string& name) { return current().counter(name); }
Gauge gauge(const std::string& name) { return current().gauge(name); }
Histogram histogram(const std::string& name) {
  return current().histogram(name);
}
Snapshot snapshot() { return current().snapshot(); }
void reset() { current().reset(); }

}  // namespace tasksim::metrics
