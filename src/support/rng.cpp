#include "support/rng.hpp"

#include <cmath>

namespace tasksim {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // xoshiro's all-zero state is invalid; SplitMix64 cannot produce four
  // consecutive zeros, but guard anyway for safety.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Polar Box-Muller: rejection-samples a point in the unit disc.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double sigma) noexcept {
  return mean + sigma * normal();
}

double Rng::exponential(double lambda) noexcept {
  // Inverse CDF; uniform() < 1 so the log argument is strictly positive.
  return -std::log(1.0 - uniform()) / lambda;
}

double Rng::gamma(double shape, double scale) noexcept {
  // Marsaglia & Tsang (2000).  For shape < 1 use the boost trick:
  // Gamma(k) = Gamma(k+1) * U^(1/k).
  if (shape < 1.0) {
    const double u = uniform();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return scale * d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

Rng Rng::split() noexcept {
  // Draw a fresh seed from this stream; the SplitMix64 expansion in the
  // constructor decorrelates the child from the parent.
  return Rng((*this)() ^ 0xd2b74407b1ce6e93ULL);
}

}  // namespace tasksim
