// error.hpp — error handling primitives for the TaskSim library.
//
// The library reports unrecoverable misuse through exceptions derived from
// `tasksim::Error`.  Internal invariants are asserted with TS_ASSERT (active
// in all build types; an invariant violation in a scheduler is never safe to
// ignore), while user-facing argument validation uses TS_REQUIRE which throws
// `tasksim::InvalidArgument`.
#pragma once

#include <stdexcept>
#include <string>

namespace tasksim {

/// Base class of every exception thrown by TaskSim.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller passes an argument that violates a documented
/// precondition (TS_REQUIRE).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is violated (TS_ASSERT).  Seeing this
/// exception always indicates a bug in TaskSim itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Thrown on I/O failures (trace files, model files).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_invalid_argument(const char* expr, const char* file,
                                         int line, const std::string& msg);
[[noreturn]] void throw_internal_error(const char* expr, const char* file,
                                       int line, const std::string& msg);
}  // namespace detail

}  // namespace tasksim

/// Validate a documented precondition; throws tasksim::InvalidArgument.
#define TS_REQUIRE(expr, msg)                                               \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::tasksim::detail::throw_invalid_argument(#expr, __FILE__, __LINE__,  \
                                                (msg));                     \
    }                                                                       \
  } while (false)

/// Assert an internal invariant; throws tasksim::InternalError.  Active in
/// every build type: schedulers must never run past a broken invariant.
#define TS_ASSERT(expr, msg)                                                \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::tasksim::detail::throw_internal_error(#expr, __FILE__, __LINE__,    \
                                              (msg));                       \
    }                                                                       \
  } while (false)
