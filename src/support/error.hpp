// error.hpp — error handling primitives for the TaskSim library.
//
// The library reports unrecoverable misuse through exceptions derived from
// `tasksim::Error`.  Internal invariants are asserted with TS_ASSERT (active
// in all build types; an invariant violation in a scheduler is never safe to
// ignore), while user-facing argument validation uses TS_REQUIRE which throws
// `tasksim::InvalidArgument`.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace tasksim {

/// Base class of every exception thrown by TaskSim.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller passes an argument that violates a documented
/// precondition (TS_REQUIRE).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is violated (TS_ASSERT).  Seeing this
/// exception always indicates a bug in TaskSim itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Thrown on I/O failures (trace files, model files).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Thrown by a simulated task body when the active fault plan fails the
/// attempt.  Caught by RuntimeBase::execute_task, which retries the task
/// with virtual-time backoff or — once the retry budget is exhausted —
/// poisons its successors / aborts the run depending on FailureMode.
class TaskFailure : public Error {
 public:
  TaskFailure(std::uint64_t task_id, int attempt, const std::string& what)
      : Error(what), task_id_(task_id), attempt_(attempt) {}

  std::uint64_t task_id() const { return task_id_; }
  int attempt() const { return attempt_; }

 private:
  std::uint64_t task_id_;
  int attempt_;
};

/// Thrown by a simulated task body when its committed virtual span exceeds
/// the configured per-task deadline.  The SimEngine truncates the span at
/// the deadline before throwing, so the committed timeline stays §V-E
/// consistent; RuntimeBase::execute_task catches this, poisons the task's
/// successor subtree, and — when `fatal()` (DeadlineMode::abort) — records
/// the breach as the run's fatal error rethrown from wait_all.  Deadline
/// breaches are never retried: the attempt already consumed its deadline
/// budget on the virtual timeline.
class DeadlineExceeded : public Error {
 public:
  DeadlineExceeded(std::uint64_t task_id, double deadline_us, double end_us,
                   bool fatal, const std::string& what)
      : Error(what),
        task_id_(task_id),
        deadline_us_(deadline_us),
        end_us_(end_us),
        fatal_(fatal) {}

  std::uint64_t task_id() const { return task_id_; }
  double deadline_us() const { return deadline_us_; }
  double end_us() const { return end_us_; }
  /// True under DeadlineMode::abort: the breach fails the whole run.
  bool fatal() const { return fatal_; }

 private:
  std::uint64_t task_id_;
  double deadline_us_;
  double end_us_;
  bool fatal_;
};

/// Thrown when the progress watchdog declares the simulation stalled: no
/// beacon (virtual clock, TEQ front, completed/pending counts) moved for
/// the configured window while work was still outstanding.  `report()`
/// carries the diagnostic dump (beacon values, engine state, flight-
/// recorder tail) assembled at stall time.
class SimulationStalled : public Error {
 public:
  SimulationStalled(const std::string& what, std::string report)
      : Error(what), report_(std::move(report)) {}

  const std::string& report() const { return report_; }

 private:
  std::string report_;
};

/// "<context>: <strerror(errno)>" — for IoError messages from file paths.
std::string errno_detail(const std::string& context);

namespace detail {
[[noreturn]] void throw_invalid_argument(const char* expr, const char* file,
                                         int line, const std::string& msg);
[[noreturn]] void throw_internal_error(const char* expr, const char* file,
                                       int line, const std::string& msg);
}  // namespace detail

}  // namespace tasksim

/// Validate a documented precondition; throws tasksim::InvalidArgument.
#define TS_REQUIRE(expr, msg)                                               \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::tasksim::detail::throw_invalid_argument(#expr, __FILE__, __LINE__,  \
                                                (msg));                     \
    }                                                                       \
  } while (false)

/// Assert an internal invariant; throws tasksim::InternalError.  Active in
/// every build type: schedulers must never run past a broken invariant.
#define TS_ASSERT(expr, msg)                                                \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::tasksim::detail::throw_internal_error(#expr, __FILE__, __LINE__,    \
                                              (msg));                       \
    }                                                                       \
  } while (false)
