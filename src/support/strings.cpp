#include "support/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"

namespace tasksim {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format_duration_us(double us) {
  if (us < 1e3) return strprintf("%.2f us", us);
  if (us < 1e6) return strprintf("%.2f ms", us * 1e-3);
  return strprintf("%.3f s", us * 1e-6);
}

std::string format_with_commas(long long value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

long long parse_int(const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  TS_REQUIRE(end != text.c_str() && *end == '\0' && errno == 0,
             "not an integer: '" + text + "'");
  return value;
}

double parse_double(const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  TS_REQUIRE(end != text.c_str() && *end == '\0' && errno == 0,
             "not a number: '" + text + "'");
  TS_REQUIRE(std::isfinite(value),
             "not a finite number: '" + text + "'");
  return value;
}

bool parse_bool(const std::string& text) {
  const std::string lower = to_lower(text);
  if (lower == "1" || lower == "true" || lower == "yes" || lower == "on") return true;
  if (lower == "0" || lower == "false" || lower == "no" || lower == "off") return false;
  throw InvalidArgument("not a boolean: '" + text +
                        "' (valid: 1/true/yes/on, 0/false/no/off)");
}

}  // namespace tasksim
