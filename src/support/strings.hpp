// strings.hpp — small string utilities shared across TaskSim modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tasksim {

/// Split `text` on `delim`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Split on arbitrary whitespace, dropping empty fields.
std::vector<std::string> split_whitespace(std::string_view text);

/// Strip leading and trailing ASCII whitespace.
std::string trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Join the elements with the given separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Lowercase ASCII copy.
std::string to_lower(std::string_view text);

/// Render a duration in microseconds with an adaptive unit (us/ms/s).
std::string format_duration_us(double us);

/// Render e.g. 12345678 as "12,345,678".
std::string format_with_commas(long long value);

/// printf-style formatting into std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Parse helpers: throw tasksim::InvalidArgument on malformed input.
long long parse_int(const std::string& text);
double parse_double(const std::string& text);
bool parse_bool(const std::string& text);

}  // namespace tasksim
