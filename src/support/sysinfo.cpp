#include "support/sysinfo.hpp"

#include <thread>

#include "support/strings.hpp"

namespace tasksim {

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

std::string host_summary() {
  return strprintf("host: %d hardware thread(s), tasksim %s", hardware_threads(),
                   "1.0.0");
}

int default_worker_count(int cap) {
  const int hw = hardware_threads();
  return hw < cap ? hw : cap;
}

}  // namespace tasksim
