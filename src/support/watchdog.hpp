// watchdog.hpp — progress watchdog for long-running simulations.
//
// A Watchdog polls a set of named *beacons* — cheap monotone counters such
// as "virtual clock ticks", "TEQ front changes", or "tasks completed" — on
// a background thread.  As long as any beacon moves between polls, or the
// *activity gate* reports the monitored system idle, the watchdog stays
// quiet.  When every beacon is frozen while the gate still reports
// outstanding work for longer than the stall timeout, the watchdog
// assembles a StallReport (beacon values, how long they have been frozen,
// and any extra state the owner's dump callback contributes) and invokes
// the stall handler exactly once.
//
// The watchdog never throws from its own thread: the handler typically
// cancels the blocked wait primitives (e.g. TaskExecQueue::cancel), and
// the threads woken by that cancellation raise the typed
// `SimulationStalled` error on their own stacks, carrying the report.
//
// Determinism note: the watchdog observes real time only; it never feeds
// back into the virtual timeline, so an enabled-but-silent watchdog cannot
// perturb simulation results.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tasksim {

/// Snapshot handed to the stall handler.
struct StallReport {
  double stalled_for_us = 0.0;  ///< time since the last beacon movement
  double wall_us = 0.0;         ///< wall clock when the stall was declared
  /// Identity of the monitored system (Watchdog::set_owner) — e.g. the
  /// engine's "engine 3 ('sweep-3')" tag, so a stall in a K-engine sweep
  /// names the engine it happened in.  May be empty.
  std::string owner;
  struct Beacon {
    std::string name;
    std::uint64_t value = 0;
  };
  std::vector<Beacon> beacons;  ///< frozen values at declaration time
  std::string state_dump;       ///< owner-provided state (may be empty)

  /// Human-readable multi-line rendering.
  std::string to_string() const;
};

struct WatchdogOptions {
  /// Declare a stall after this long without beacon movement while the
  /// activity gate reports outstanding work.  Must be > 0 to start().
  double stall_timeout_us = 0.0;
  /// Beacon poll period.  Clamped to at least 100 µs.
  double poll_interval_us = 10'000.0;
};

class Watchdog {
 public:
  using BeaconFn = std::function<std::uint64_t()>;

  Watchdog() = default;
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Identity tag copied into every StallReport::owner.  Only callable
  /// before start().
  void set_owner(std::string owner);

  /// Register a named progress beacon.  Only callable before start().
  void add_beacon(std::string name, BeaconFn fn);

  /// The gate tells the watchdog whether the monitored system *should* be
  /// making progress.  While it returns false (system idle / between
  /// runs), frozen beacons are expected and the stall clock resets.
  /// Defaults to "always active".  Only callable before start().
  void set_activity_gate(std::function<bool()> gate);

  /// Optional extra state dump invoked (on the watchdog thread) when a
  /// stall is declared; its return value lands in StallReport::state_dump.
  /// Only callable before start().
  void set_state_dump(std::function<std::string()> dump);

  /// Invoked exactly once per start() when a stall is declared.  Runs on
  /// the watchdog thread; must not throw.  Only callable before start().
  void set_stall_handler(std::function<void(const StallReport&)> handler);

  /// Launch the poll thread.  Requires stall_timeout_us > 0.
  void start(const WatchdogOptions& options);

  /// Stop and join the poll thread.  Idempotent; safe if never started.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// True once a stall has been declared (sticky until the next start()).
  bool stalled() const { return stalled_.load(std::memory_order_acquire); }

 private:
  void poll_loop();
  std::vector<StallReport::Beacon> read_beacons() const;

  WatchdogOptions options_;
  std::string owner_;
  std::vector<std::pair<std::string, BeaconFn>> beacons_;
  std::function<bool()> gate_;
  std::function<std::string()> dump_;
  std::function<void(const StallReport&)> handler_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stalled_{false};
  bool stop_requested_ = false;  ///< guarded by mutex_
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace tasksim
