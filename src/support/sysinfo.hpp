// sysinfo.hpp — host introspection used by benchmark headers and defaults.
#pragma once

#include <string>

namespace tasksim {

/// Number of hardware threads (>=1).
int hardware_threads();

/// A short human-readable host summary printed by benchmark binaries.
std::string host_summary();

/// Default worker-thread count for "real" executions: min(hardware, cap).
int default_worker_count(int cap = 8);

}  // namespace tasksim
