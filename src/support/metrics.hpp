// metrics.hpp — low-overhead runtime metrics registry.
//
// The paper's headline numbers (simulation speedup, prediction error, the
// §V-E race ablation) are only as credible as our ability to observe what
// the scheduler-in-the-loop simulation is doing.  This registry provides
// the three primitives every layer instruments itself with:
//
//   Counter   — monotonic 64-bit count (tasks submitted, steals, spins),
//   Gauge     — latest-value double (ready-pool depth, queue depth),
//   Histogram — fixed-bucket latency histogram (µs blocked in wait_front),
//
// designed so the hot path is an *uncontended relaxed-atomic increment*:
// counter and histogram cells live in thread-local shards (one shard per
// thread per registry, found through a one-entry thread-local cache), so
// concurrent increments never share a cache line with another thread.
// snapshot() merges the shards under the registry lock; it is intended for
// end-of-run reporting, not for the hot path.
//
// Handles are cheap value types (pointer + slot index) obtained by name:
//
//   metrics::Counter steals = metrics::counter("sched.tasks_stolen");
//   steals.inc();
//
// Requesting the same name twice returns a handle to the same metric.
// Capacity is fixed per registry (kMaxCounters/kMaxGauges/kMaxHistograms);
// exceeding it throws InvalidArgument at registration time — the hot path
// never checks.
//
// The process-wide default registry is metrics::Registry::global().  The
// free functions counter()/gauge()/histogram()/snapshot()/reset() operate
// on the calling thread's *current* registry: the one bound by an
// enclosing telemetry::TelemetryScope (per-engine registries for
// concurrent sweeps), or the global default when nothing is bound — so
// existing call sites keep their behavior.  Separate Registry instances
// are supported (tests, TelemetryContext) and must outlive any thread
// that touched them.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tasksim::metrics {

inline constexpr std::size_t kMaxCounters = 128;
inline constexpr std::size_t kMaxGauges = 32;
inline constexpr std::size_t kMaxHistograms = 32;
/// Geometric buckets: bucket i counts observations <= 0.25 * 2^i (µs for
/// latencies; dimensionless for iteration counts).  The last bucket is the
/// +inf overflow.  0.25 µs .. ~1 s in 24 steps.
inline constexpr std::size_t kHistogramBuckets = 24;

/// Upper bound of histogram bucket `i` (+inf for the last bucket).
double histogram_bucket_upper(std::size_t i);

/// FNV-1a fingerprint of the compiled-in bucket layout (count + upper
/// bounds).  Histograms may only be merged when their layouts agree —
/// bucket-wise addition across different layouts would silently mis-bin —
/// so HistogramStats carries this fingerprint and merge() compares it.
std::uint64_t histogram_bounds_fingerprint();

class Registry;

class Counter {
 public:
  /// Add `delta` (relaxed, thread-local shard; wait-free).  Inline: the
  /// whole fast path is a TLS cache hit plus one relaxed fetch_add.
  inline void inc(std::uint64_t delta = 1) const;
  /// Merged value across all shards (takes the registry lock).
  std::uint64_t value() const;

 private:
  friend class Registry;
  Counter(Registry* registry, std::uint32_t slot)
      : registry_(registry), slot_(slot) {}
  Registry* registry_;
  std::uint32_t slot_;
};

class Gauge {
 public:
  inline void set(double value) const;
  inline void add(double delta) const;
  inline double value() const;

 private:
  friend class Registry;
  Gauge(Registry* registry, std::uint32_t slot)
      : registry_(registry), slot_(slot) {}
  Registry* registry_;
  std::uint32_t slot_;
};

class Histogram {
 public:
  /// Record one observation (relaxed, thread-local shard).
  inline void observe(double value) const;

 private:
  friend class Registry;
  Histogram(Registry* registry, std::uint32_t slot)
      : registry_(registry), slot_(slot) {}
  Registry* registry_;
  std::uint32_t slot_;
};

struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  /// Bucket-layout fingerprint; 0 means "the compiled-in layout" (the
  /// default for hand-built stats), snapshot() stamps the explicit value.
  std::uint64_t bounds_fingerprint = 0;

  double mean() const { return count == 0 ? 0.0 : sum / count; }
  /// Estimate of quantile `q` in [0, 1]: linear interpolation within the
  /// bucket containing the target rank (observations assumed uniform over
  /// the bucket), so the estimate is within one bucket width — a factor of
  /// 2, with these geometric buckets — of the exact sample quantile.  The
  /// unbounded overflow bucket cannot be interpolated and reports its
  /// (finite) lower bound.  0 when empty.
  double quantile(double q) const;

  /// Bucket-wise accumulation of `other` into this histogram (counts and
  /// sums add; quantiles of the merge reflect the pooled sample).  Throws
  /// InvalidArgument when the bucket layouts differ (see
  /// histogram_bounds_fingerprint()).
  void merge(const HistogramStats& other);
};

struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;

  /// Merge `other` into this snapshot — the cross-registry aggregation the
  /// sweep driver uses to build a fleet view from per-engine registries:
  ///   counters    — summed,
  ///   gauges      — last-write-wins: `other`'s value replaces ours (merge
  ///                 order is write order; gauges are point-in-time levels,
  ///                 not accumulators, so summing them would be nonsense),
  ///   histograms  — bucket-wise HistogramStats::merge (throws
  ///                 InvalidArgument on bucket-layout mismatch).
  /// Names present on only one side are kept as-is.
  void merge(const Snapshot& other);

  /// Compact single-document JSON dump (counters, gauges, histograms with
  /// count/sum/mean/p50/p95 and non-empty buckets).
  std::string to_json() const;
};

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name);

  /// Merge every shard into a point-in-time view of all registered metrics.
  Snapshot snapshot() const;

  /// Zero every value (names stay registered).  Best-effort when other
  /// threads are concurrently incrementing; intended for quiescent points
  /// between runs.
  void reset();

  /// The process-wide default registry.
  static Registry& global();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  /// Per-thread storage: counter cells and histogram cells are touched by
  /// exactly one thread, so relaxed increments never contend.
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    struct Hist {
      std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
      std::atomic<double> sum{0.0};
    };
    std::array<Hist, kMaxHistograms> hists{};
  };

  /// One-entry per-thread cache of the last (registry, shard) pair.  Keyed
  /// by registry id, never by pointer, so a destroyed registry's stale
  /// entry can never be revived by address reuse.  Zero-initialized →
  /// constant TLS initialization, no init-on-first-use guard on the hot
  /// path.
  struct TlsCache {
    std::uint64_t registry_id = 0;
    Shard* shard = nullptr;
  };
  static TlsCache& tls_cache() {
    thread_local TlsCache cache;
    return cache;
  }

  Shard& local_shard() {
    TlsCache& cache = tls_cache();
    if (cache.registry_id == id_) return *cache.shard;
    return local_shard_slow(cache);
  }
  Shard& local_shard_slow(TlsCache& cache);

  std::uint64_t id_;  // unique per instance; keys the thread-local cache
  mutable std::mutex mutex_;
  std::map<std::string, std::uint32_t> counter_slots_;
  std::map<std::string, std::uint32_t> gauge_slots_;
  std::map<std::string, std::uint32_t> histogram_slots_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::array<std::atomic<double>, kMaxGauges> gauges_{};
};

namespace detail {
/// The calling thread's bound registry, set by telemetry::TelemetryScope
/// (support/telemetry.hpp); nullptr → the process-wide default.  A plain
/// thread_local pointer: zero-initialized, no init-on-first-use guard.
inline thread_local Registry* t_bound_registry = nullptr;
}  // namespace detail

/// The registry instrumentation on this thread resolves to: the registry
/// bound by the innermost telemetry::TelemetryScope, or Registry::global()
/// when nothing is bound.  One TLS load + branch — cheap enough for
/// handle-registration paths (hot-path increments go through handles and
/// never re-resolve).
inline Registry& current() {
  Registry* bound = detail::t_bound_registry;
  return bound != nullptr ? *bound : Registry::global();
}

inline void Counter::inc(std::uint64_t delta) const {
  // Shard cells are written by exactly one thread, so a relaxed
  // load-add-store (an ordinary `add` instruction, no lock prefix) is
  // race-free and several times cheaper than an atomic RMW.
  auto& cell = registry_->local_shard().counters[slot_];
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

inline void Gauge::set(double value) const {
  registry_->gauges_[slot_].store(value, std::memory_order_relaxed);
}

inline void Gauge::add(double delta) const {
  registry_->gauges_[slot_].fetch_add(delta, std::memory_order_relaxed);
}

inline double Gauge::value() const {
  return registry_->gauges_[slot_].load(std::memory_order_relaxed);
}

inline void Histogram::observe(double value) const {
  // Geometric buckets double per step: a short scan beats binary search on
  // the small (typically sub-µs .. ms) values latencies actually take.
  std::size_t i = 0;
  double upper = 0.25;
  while (i + 1 < kHistogramBuckets && value > upper) {
    upper *= 2.0;
    ++i;
  }
  auto& hist = registry_->local_shard().hists[slot_];
  auto& bucket = hist.buckets[i];
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  // Same single-writer argument; avoids the CAS loop fetch_add needs on
  // std::atomic<double>.
  hist.sum.store(hist.sum.load(std::memory_order_relaxed) + value,
                 std::memory_order_relaxed);
}

/// Handles on the calling thread's current registry (the TelemetryScope-
/// bound one, or the global default when unbound).
Counter counter(const std::string& name);
Gauge gauge(const std::string& name);
Histogram histogram(const std::string& name);

/// Snapshot / reset of the calling thread's current registry.
Snapshot snapshot();
void reset();

}  // namespace tasksim::metrics
