// cli.hpp — a small command-line option parser used by the examples and
// benchmark harness binaries.
//
// Usage:
//   CliParser cli("fig10_quark_perf", "QUARK real-vs-sim performance sweep");
//   int workers = 4;
//   cli.add_int("workers", &workers, "number of worker threads");
//   cli.parse(argc, argv);   // throws InvalidArgument on bad input;
//                            // prints usage and exits on --help
//
// Options are written `--name value` or `--name=value`; boolean flags may be
// given bare (`--verbose`).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace tasksim {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  void add_int(const std::string& name, long long* target, const std::string& help);
  void add_int(const std::string& name, int* target, const std::string& help);
  void add_double(const std::string& name, double* target, const std::string& help);
  void add_string(const std::string& name, std::string* target, const std::string& help);
  void add_flag(const std::string& name, bool* target, const std::string& help);

  /// Comma-separated list of integers, e.g. "--sizes 1000,2000,4000".
  void add_int_list(const std::string& name, std::vector<int>* target,
                    const std::string& help);

  /// Parse argv.  On `--help`, prints usage to stdout and returns false
  /// (callers should exit 0).  Throws InvalidArgument on unknown options or
  /// malformed values.
  bool parse(int argc, char** argv);

  std::string usage() const;

 private:
  struct Option {
    std::string help;
    std::string default_value;
    bool is_flag = false;
    std::function<void(const std::string&)> apply;
  };

  void add_option(const std::string& name, std::string default_value,
                  bool is_flag, std::string help,
                  std::function<void(const std::string&)> apply);

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace tasksim
