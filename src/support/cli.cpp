#include "support/cli.hpp"

#include <cstdio>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace tasksim {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_option(const std::string& name, std::string default_value,
                           bool is_flag, std::string help,
                           std::function<void(const std::string&)> apply) {
  TS_REQUIRE(!options_.count(name), "duplicate option --" + name);
  Option opt;
  opt.help = std::move(help);
  opt.default_value = std::move(default_value);
  opt.is_flag = is_flag;
  opt.apply = std::move(apply);
  options_.emplace(name, std::move(opt));
  order_.push_back(name);
}

void CliParser::add_int(const std::string& name, long long* target,
                        const std::string& help) {
  add_option(name, std::to_string(*target), false, help,
             [target](const std::string& v) { *target = parse_int(v); });
}

void CliParser::add_int(const std::string& name, int* target,
                        const std::string& help) {
  add_option(name, std::to_string(*target), false, help,
             [target](const std::string& v) {
               *target = static_cast<int>(parse_int(v));
             });
}

void CliParser::add_double(const std::string& name, double* target,
                           const std::string& help) {
  add_option(name, std::to_string(*target), false, help,
             [target](const std::string& v) { *target = parse_double(v); });
}

void CliParser::add_string(const std::string& name, std::string* target,
                           const std::string& help) {
  add_option(name, *target, false, help,
             [target](const std::string& v) { *target = v; });
}

void CliParser::add_flag(const std::string& name, bool* target,
                         const std::string& help) {
  add_option(name, *target ? "true" : "false", true, help,
             [target](const std::string& v) {
               *target = v.empty() ? true : parse_bool(v);
             });
}

void CliParser::add_int_list(const std::string& name, std::vector<int>* target,
                             const std::string& help) {
  std::vector<std::string> defaults;
  for (int v : *target) defaults.push_back(std::to_string(v));
  add_option(name, join(defaults, ","), false, help,
             [target](const std::string& v) {
               target->clear();
               for (const auto& part : split(v, ',')) {
                 if (!part.empty()) {
                   target->push_back(static_cast<int>(parse_int(part)));
                 }
               }
             });
}

bool CliParser::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    TS_REQUIRE(starts_with(arg, "--"), "unexpected argument: " + arg);
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(arg);
    TS_REQUIRE(it != options_.end(), "unknown option --" + arg);
    Option& opt = it->second;
    if (!has_value && !opt.is_flag) {
      TS_REQUIRE(i + 1 < argc, "option --" + arg + " requires a value");
      value = argv[++i];
      has_value = true;
    }
    opt.apply(has_value ? value : std::string());
  }
  return true;
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name;
    if (!opt.is_flag) os << " <value>";
    os << "\n      " << opt.help << " (default: " << opt.default_value << ")\n";
  }
  return os.str();
}

}  // namespace tasksim
