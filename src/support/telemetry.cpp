#include "support/telemetry.hpp"

#include <atomic>

namespace tasksim::telemetry {

namespace {
std::uint64_t next_engine_id() {
  // Id 0 is the process default; real contexts start at 1.
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

TelemetryContext::TelemetryContext(std::string label)
    : engine_id_(next_engine_id()),
      label_(std::move(label)),
      owned_registry_(std::make_unique<metrics::Registry>()),
      owned_recorder_(std::make_unique<flightrec::FlightRecorder>()),
      registry_(owned_registry_.get()),
      recorder_(owned_recorder_.get()),
      owned_profiler_(std::make_unique<prof::Profiler>()),
      profiler_(owned_profiler_.get()) {}

TelemetryContext::TelemetryContext(DefaultTag)
    : engine_id_(0),
      label_("default"),
      registry_(&metrics::Registry::global()),
      recorder_(&flightrec::FlightRecorder::global()),
      profiler_(&prof::Profiler::global()) {}

TelemetryContext::~TelemetryContext() {
  // Join the sampler before any member dies; the member destruction order
  // (profiler first) makes this redundant but keeps the invariant explicit
  // even if the declaration order is ever reshuffled.
  if (owned_profiler_) owned_profiler_->disable();
}

std::string TelemetryContext::describe() const {
  std::string out = "engine " + std::to_string(engine_id_);
  if (!label_.empty()) out += " ('" + label_ + "')";
  return out;
}

TelemetryContext& TelemetryContext::process_default() {
  // Leaked like the singletons it wraps: contexts captured by static
  // objects may be described during exit-time destructors.
  static TelemetryContext* instance = new TelemetryContext(DefaultTag{});
  return *instance;
}

TelemetryScope::TelemetryScope(TelemetryContext& context)
    : prev_context_(detail::t_bound_context),
      prev_registry_(metrics::detail::t_bound_registry),
      prev_profiler_(prof::detail::t_bound_profiler),
      prev_recorder_(flightrec::detail::t_bound_recorder) {
  detail::t_bound_context = &context;
  metrics::detail::t_bound_registry = &context.metrics();
  prof::detail::t_bound_profiler = &context.profiler();
  flightrec::detail::t_bound_recorder = &context.recorder();
}

TelemetryScope::~TelemetryScope() {
  detail::t_bound_context = prev_context_;
  metrics::detail::t_bound_registry = prev_registry_;
  prof::detail::t_bound_profiler = prev_profiler_;
  flightrec::detail::t_bound_recorder = prev_recorder_;
}

}  // namespace tasksim::telemetry
