// timing.hpp — wall-clock and per-thread CPU clocks.
//
// TaskSim distinguishes two clocks:
//
//  * `wall_time_us()` — monotonic wall clock; used for end-to-end run timing
//    and for the paper's "real execution" mode on a machine with enough
//    cores.
//  * `thread_cpu_time_us()` — CLOCK_THREAD_CPUTIME_ID; used by the virtual
//    platform (DESIGN.md §3) to measure per-kernel durations free of
//    time-slicing effects when worker threads oversubscribe the host.
//
// All times in TaskSim are double microseconds, matching the paper's
// simulation-clock resolution.
#pragma once

namespace tasksim {

/// Monotonic wall-clock time in microseconds.
double wall_time_us();

/// CPU time consumed by the calling thread, in microseconds.
double thread_cpu_time_us();

/// CPU time consumed by the whole process, in microseconds.
double process_cpu_time_us();

/// Simple stopwatch over an arbitrary time source.
class Stopwatch {
 public:
  using TimeSource = double (*)();

  explicit Stopwatch(TimeSource source = &wall_time_us)
      : source_(source), start_(source_()) {}

  void reset() { start_ = source_(); }

  /// Microseconds elapsed since construction or the last reset().
  double elapsed_us() const { return source_() - start_; }
  double elapsed_seconds() const { return elapsed_us() * 1e-6; }

 private:
  TimeSource source_;
  double start_;
};

}  // namespace tasksim
