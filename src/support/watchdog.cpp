#include "support/watchdog.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "support/error.hpp"
#include "support/timing.hpp"

namespace tasksim {

std::string StallReport::to_string() const {
  std::ostringstream os;
  if (!owner.empty()) os << owner << ": ";
  os << "simulation stalled: no beacon moved for "
     << static_cast<long long>(stalled_for_us) << " us with work outstanding\n";
  os << "beacons at stall time:\n";
  for (const auto& beacon : beacons) {
    os << "  " << beacon.name << " = " << beacon.value << "\n";
  }
  if (!state_dump.empty()) os << state_dump;
  return os.str();
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::set_owner(std::string owner) {
  TS_REQUIRE(!running(), "cannot set the owner while the watchdog runs");
  owner_ = std::move(owner);
}

void Watchdog::add_beacon(std::string name, BeaconFn fn) {
  TS_REQUIRE(!running(), "cannot add a beacon while the watchdog runs");
  TS_REQUIRE(fn != nullptr, "beacon function must not be null");
  beacons_.emplace_back(std::move(name), std::move(fn));
}

void Watchdog::set_activity_gate(std::function<bool()> gate) {
  TS_REQUIRE(!running(), "cannot set the gate while the watchdog runs");
  gate_ = std::move(gate);
}

void Watchdog::set_state_dump(std::function<std::string()> dump) {
  TS_REQUIRE(!running(), "cannot set the dump while the watchdog runs");
  dump_ = std::move(dump);
}

void Watchdog::set_stall_handler(
    std::function<void(const StallReport&)> handler) {
  TS_REQUIRE(!running(), "cannot set the handler while the watchdog runs");
  handler_ = std::move(handler);
}

void Watchdog::start(const WatchdogOptions& options) {
  TS_REQUIRE(options.stall_timeout_us > 0.0,
             "watchdog stall timeout must be positive");
  TS_REQUIRE(!running(), "watchdog already running");
  TS_REQUIRE(!beacons_.empty(), "watchdog needs at least one beacon");
  options_ = options;
  options_.poll_interval_us = std::max(options_.poll_interval_us, 100.0);
  stalled_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { poll_loop(); });
}

void Watchdog::stop() {
  if (!running_.load(std::memory_order_acquire) && !thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

std::vector<StallReport::Beacon> Watchdog::read_beacons() const {
  std::vector<StallReport::Beacon> out;
  out.reserve(beacons_.size());
  for (const auto& [name, fn] : beacons_) out.push_back({name, fn()});
  return out;
}

void Watchdog::poll_loop() {
  std::vector<std::uint64_t> last(beacons_.size(), 0);
  for (std::size_t i = 0; i < beacons_.size(); ++i) last[i] = beacons_[i].second();
  double frozen_since = wall_time_us();
  bool fired = false;

  const auto interval = std::chrono::microseconds(
      static_cast<long long>(options_.poll_interval_us));
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    cv_.wait_for(lock, interval, [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();

    const double now = wall_time_us();
    bool moved = false;
    for (std::size_t i = 0; i < beacons_.size(); ++i) {
      const std::uint64_t value = beacons_[i].second();
      if (value != last[i]) {
        last[i] = value;
        moved = true;
      }
    }
    const bool active = gate_ ? gate_() : true;
    if (moved || !active) {
      frozen_since = now;
      fired = false;  // beacons moving again re-arms per-start one-shot…
    } else if (!fired && now - frozen_since >= options_.stall_timeout_us) {
      fired = true;  // …but declare at most one stall per frozen window
      stalled_.store(true, std::memory_order_release);
      StallReport report;
      report.stalled_for_us = now - frozen_since;
      report.wall_us = now;
      report.owner = owner_;
      report.beacons = read_beacons();
      if (dump_) report.state_dump = dump_();
      if (handler_) handler_(report);
    }

    lock.lock();
  }
}

}  // namespace tasksim
