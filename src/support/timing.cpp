#include "support/timing.hpp"

#include <ctime>

namespace tasksim {

namespace {
inline double to_us(const timespec& ts) {
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) * 1e-3;
}

inline double clock_us(clockid_t id) {
  timespec ts{};
  clock_gettime(id, &ts);
  return to_us(ts);
}
}  // namespace

double wall_time_us() { return clock_us(CLOCK_MONOTONIC); }

double thread_cpu_time_us() { return clock_us(CLOCK_THREAD_CPUTIME_ID); }

double process_cpu_time_us() { return clock_us(CLOCK_PROCESS_CPUTIME_ID); }

}  // namespace tasksim
