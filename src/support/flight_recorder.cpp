#include "support/flight_recorder.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/timing.hpp"

namespace tasksim::flightrec {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::task_submit: return "task_submit";
    case EventType::task_ready: return "task_ready";
    case EventType::task_dispatch: return "task_dispatch";
    case EventType::task_start: return "task_start";
    case EventType::task_finish: return "task_finish";
    case EventType::window_block: return "window_block";
    case EventType::window_unblock: return "window_unblock";
    case EventType::dep_edge: return "dep_edge";
    case EventType::teq_enter: return "teq_enter";
    case EventType::teq_front: return "teq_front";
    case EventType::teq_displaced: return "teq_displaced";
    case EventType::task_return: return "task_return";
    case EventType::teq_release: return "teq_release";
    case EventType::teq_cancelled: return "teq_cancelled";
    case EventType::clock_advance: return "clock_advance";
    case EventType::quiescence_spin: return "quiescence_spin";
    case EventType::sched_steal: return "sched_steal";
    case EventType::sched_lane_commit: return "sched_lane_commit";
    case EventType::sched_immediate: return "sched_immediate";
    case EventType::task_failed: return "task_failed";
    case EventType::task_retry: return "task_retry";
    case EventType::retry_penalty: return "retry_penalty";
    case EventType::task_poisoned: return "task_poisoned";
    case EventType::fault_stall: return "fault_stall";
    case EventType::quiescence_timeout: return "quiescence_timeout";
    case EventType::watchdog_stall: return "watchdog_stall";
    case EventType::hedge_launch: return "hedge_launch";
    case EventType::hedge_win: return "hedge_win";
    case EventType::hedge_cancel: return "hedge_cancel";
    case EventType::deadline_breach: return "deadline_breach";
  }
  return "?";
}

namespace {

std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Per-thread shard map, keyed by recorder id (same pattern as the metrics
// registry: a thread resolves its shard once and caches the pointer).
thread_local std::unordered_map<std::uint64_t, void*> t_shards;

}  // namespace

FlightRecorder::FlightRecorder() : id_(next_recorder_id()) {}
FlightRecorder::~FlightRecorder() = default;

FlightRecorder& FlightRecorder::global() {
  // Intentionally leaked: instrumentation sites in static objects and
  // worker threads may record during exit-time destruction.
  static FlightRecorder* instance = new FlightRecorder();
  return *instance;
}

void FlightRecorder::enable(std::size_t per_thread_capacity) {
  TS_REQUIRE(per_thread_capacity > 0, "flight recorder capacity must be > 0");
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = per_thread_capacity;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    shard->ring.assign(capacity_, Event{});
    shard->head = 0;
    shard->count = 0;
    shard->dropped = 0;
  }
  names_.clear();
  enabled_.store(true, std::memory_order_release);
}

void FlightRecorder::disable() {
  enabled_.store(false, std::memory_order_release);
}

FlightRecorder::Shard& FlightRecorder::local_shard() {
  auto it = t_shards.find(id_);
  if (it != t_shards.end()) return *static_cast<Shard*>(it->second);
  auto owned = std::make_unique<Shard>();
  Shard* shard = owned.get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shard->ring.assign(capacity_, Event{});
    shards_.push_back(std::move(owned));
  }
  t_shards.emplace(id_, shard);
  return *shard;
}

void FlightRecorder::record_slow(EventType type, std::uint64_t task,
                                 int worker, double a, double b,
                                 std::uint64_t other) {
  Shard& shard = local_shard();
  const double now = wall_time_us();
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.ring.empty()) return;  // disabled+drained concurrently
  Event& slot = shard.ring[shard.head];
  slot.wall_us = now;
  slot.a = a;
  slot.b = b;
  slot.task = task;
  slot.other = other;
  slot.worker = worker;
  slot.type = type;
  shard.head = (shard.head + 1) % shard.ring.size();
  if (shard.count < shard.ring.size()) {
    ++shard.count;
  } else {
    ++shard.dropped;  // overwrote the oldest live event
  }
}

void FlightRecorder::name_task(std::uint64_t task, const std::string& kernel) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  names_[task] = kernel;
}

Stream FlightRecorder::drain() {
  Stream stream;
  std::lock_guard<std::mutex> lock(mutex_);
  stream.shard_count = shards_.size();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> shard_lock(shard.mutex);
    const std::size_t size = shard.ring.size();
    // Oldest live event first: the ring wraps at `head`.
    for (std::size_t i = 0; i < shard.count; ++i) {
      const std::size_t pos = (shard.head + size - shard.count + i) % size;
      Event event = shard.ring[pos];
      event.shard = static_cast<std::uint32_t>(s);
      stream.events.push_back(event);
    }
    stream.dropped += shard.dropped;
    shard.head = 0;
    shard.count = 0;
    shard.dropped = 0;
  }
  // Stable: preserves per-shard recording order among equal timestamps.
  std::stable_sort(stream.events.begin(), stream.events.end(),
                   [](const Event& x, const Event& y) {
                     return x.wall_us < y.wall_us;
                   });
  stream.kernels = std::move(names_);
  names_.clear();
  return stream;
}

void FlightRecorder::clear() { (void)drain(); }

}  // namespace tasksim::flightrec
