// rng.hpp — deterministic pseudo-random number generation.
//
// Every stochastic component in TaskSim (kernel-time sampling, matrix
// fill, randomized property tests) draws from an explicitly seeded `Rng`
// so that runs are reproducible.  The engine is xoshiro256** seeded via
// SplitMix64, which is fast, high quality, and trivially splittable: use
// `Rng::split()` to derive an independent stream per worker thread.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace tasksim {

/// SplitMix64 step; used for seeding and stream splitting.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** engine.  Satisfies UniformRandomBitGenerator, so it can be
/// plugged into <random> distributions, but TaskSim's own samplers in
/// src/stats avoid <random> distribution objects because their sequences are
/// not portable across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed (expanded through SplitMix64).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).  53 bits of mantissa entropy.
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n); n must be > 0.  Uses rejection to avoid
  /// modulo bias.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal deviate (polar Box-Muller with caching).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma) noexcept;

  /// Exponential with the given rate lambda > 0.
  double exponential(double lambda) noexcept;

  /// Gamma(shape k > 0, scale theta > 0) via Marsaglia-Tsang.
  double gamma(double shape, double scale) noexcept;

  /// Derive an independent generator (different stream) deterministically.
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace tasksim
