// log.hpp — minimal thread-safe leveled logger.
//
// TaskSim components log through this singleton so that multi-threaded
// scheduler output does not interleave mid-line.  The default level is
// `warn` to keep test and benchmark output clean; benchmarks raise it to
// `info` when narrating experiment progress.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace tasksim {

enum class LogLevel : int { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Parse "debug" / "info" / "warn" / "error" / "off"; throws InvalidArgument.
LogLevel parse_log_level(const std::string& name);
const char* to_string(LogLevel level);

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }

  /// Write one line atomically; includes a monotonic timestamp and level tag.
  void write(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_;
  std::mutex mutex_;
  double start_seconds_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace tasksim

// The `if (...) ; else LogLine(...)` shape keeps the macro an expression
// statement a caller can stream into (TS_LOG_WARN << ...) while staying
// dangling-else-safe: the inner `if` owns its own `else`, so a following
// `else` in un-braced caller code binds to the caller's `if`, not to the
// macro's.
#define TS_LOG(level_enum)                                                  \
  if (static_cast<int>(::tasksim::Logger::instance().level()) >             \
      static_cast<int>(::tasksim::LogLevel::level_enum))                    \
    ;                                                                       \
  else                                                                      \
    ::tasksim::detail::LogLine(::tasksim::LogLevel::level_enum)

#define TS_LOG_DEBUG TS_LOG(debug)
#define TS_LOG_INFO TS_LOG(info)
#define TS_LOG_WARN TS_LOG(warn)
#define TS_LOG_ERROR TS_LOG(error)
