#include "support/log.hpp"

#include <chrono>
#include <cstdio>

#include "support/error.hpp"

namespace tasksim {

namespace {
double monotonic_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}
}  // namespace

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::debug;
  if (name == "info") return LogLevel::info;
  if (name == "warn") return LogLevel::warn;
  if (name == "error") return LogLevel::error;
  if (name == "off") return LogLevel::off;
  throw InvalidArgument("unknown log level: " + name);
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : level_(LogLevel::warn), start_seconds_(monotonic_seconds()) {}

void Logger::write(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  const double t = monotonic_seconds() - start_seconds_;
  std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(stderr, "[%10.6f %-5s] %s\n", t, to_string(level),
               message.c_str());
}

}  // namespace tasksim
