#include "support/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cctype>
#include <cstdio>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "support/error.hpp"
#include "support/timing.hpp"

namespace tasksim::prof {

namespace {

constexpr std::size_t idx(Phase phase) {
  return static_cast<std::size_t>(phase);
}

std::uint64_t next_profiler_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}

/// Single-writer accumulate: the owning thread is the only writer, so a
/// relaxed load + store (no RMW) is race-free and cheap.
void add_relaxed(std::atomic<double>& cell, double delta) {
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

void bump_relaxed(std::atomic<std::uint64_t>& cell) {
  cell.store(cell.load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
}

}  // namespace

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::master_run: return "harness.master_run";
    case Phase::worker_iteration: return "sched.worker_iteration";
    case Phase::task_build: return "sched.task_build";
    case Phase::submit: return "sched.submit";
    case Phase::window_wait: return "sched.window_wait";
    case Phase::dependency: return "sched.dependency";
    case Phase::claim: return "sched.claim";
    case Phase::bookkeeping: return "sched.bookkeeping";
    case Phase::task_body: return "sched.task_body";
    case Phase::idle_wait: return "sched.idle_wait";
    case Phase::wait_all: return "sched.wait_all";
    case Phase::model_sample: return "sim.model_sample";
    case Phase::fault_eval: return "sim.fault_eval";
    case Phase::fault_stall: return "sim.fault_stall";
    case Phase::teq_mutex: return "sim.teq_mutex";
    case Phase::teq_wait: return "sim.teq_wait";
    case Phase::teq_publish: return "sim.teq_publish";
    case Phase::teq_park: return "sim.teq_park";
    case Phase::mitigation_sleep: return "sim.mitigation_sleep";
    case Phase::quiescence_poll: return "sim.quiescence_poll";
    case Phase::lookahead_check: return "sim.lookahead_check";
    case Phase::trace_append: return "trace.append";
    case Phase::kCount: break;
  }
  return "?";
}

bool phase_is_root(Phase phase) {
  return phase == Phase::master_run || phase == Phase::worker_iteration;
}

Phase parse_phase(const std::string& name) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto phase = static_cast<Phase>(i);
    if (name == phase_name(phase)) return phase;
  }
  throw InvalidArgument("unknown profiler phase: '" + name + "'");
}

PhaseStats& PhaseStats::operator+=(const PhaseStats& other) {
  count += other.count;
  excl_wall_us += other.excl_wall_us;
  incl_wall_us += other.incl_wall_us;
  excl_cpu_us += other.excl_cpu_us;
  incl_cpu_us += other.incl_cpu_us;
  return *this;
}

std::array<PhaseStats, kPhaseCount> ProfileSnapshot::totals() const {
  std::array<PhaseStats, kPhaseCount> out{};
  for (const auto& thread : threads) {
    for (std::size_t i = 0; i < kPhaseCount; ++i) out[i] += thread.phases[i];
  }
  return out;
}

double ProfileSnapshot::attributed_excl_wall_us() const {
  double total = 0.0;
  const auto merged = totals();
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    if (!phase_is_root(static_cast<Phase>(i))) total += merged[i].excl_wall_us;
  }
  return total;
}

double ProfileSnapshot::root_incl_wall_us() const {
  double total = 0.0;
  const auto merged = totals();
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    if (phase_is_root(static_cast<Phase>(i))) total += merged[i].incl_wall_us;
  }
  return total;
}

double ProfileSnapshot::coverage() const {
  const double root = root_incl_wall_us();
  if (root <= 0.0) return 0.0;
  return std::clamp(attributed_excl_wall_us() / root, 0.0, 1.0);
}

std::string ProfileSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"tasksim-profile-v1\",\"enabled_for_us\":"
     << json_number(enabled_for_us)
     << ",\"scope_overflows\":" << scope_overflows << ",\"threads\":[";
  bool first_thread = true;
  for (const auto& thread : threads) {
    if (!first_thread) os << ',';
    first_thread = false;
    os << "{\"name\":\"" << json_escape(thread.name) << "\",\"phases\":[";
    bool first_phase = true;
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      const PhaseStats& s = thread.phases[i];
      if (s.count == 0 && s.excl_wall_us == 0.0 && s.incl_wall_us == 0.0) {
        continue;
      }
      if (!first_phase) os << ',';
      first_phase = false;
      os << "{\"phase\":\"" << phase_name(static_cast<Phase>(i))
         << "\",\"count\":" << s.count
         << ",\"excl_wall_us\":" << json_number(s.excl_wall_us)
         << ",\"incl_wall_us\":" << json_number(s.incl_wall_us)
         << ",\"excl_cpu_us\":" << json_number(s.excl_cpu_us)
         << ",\"incl_cpu_us\":" << json_number(s.incl_cpu_us) << '}';
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough to round-trip to_json() documents (and
// reject malformed ones); not a general-purpose parser.

namespace {

struct JsonValue {
  enum class Type { null_t, bool_t, number, string, array, object };
  Type type = Type::null_t;
  bool boolean = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  const JsonValue& at(const std::string& key) const {
    const JsonValue* v = find(key);
    TS_REQUIRE(v != nullptr, "profile JSON: missing key '" + key + "'");
    return *v;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    TS_REQUIRE(pos_ == text_.size(), "profile JSON: trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    TS_REQUIRE(pos_ < text_.size(), "profile JSON: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    TS_REQUIRE(peek() == c, std::string("profile JSON: expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::string(literal).size();
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::string;
      v.string_value = string();
      return v;
    }
    JsonValue v;
    if (consume_literal("null")) return v;
    if (consume_literal("true")) {
      v.type = JsonValue::Type::bool_t;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.type = JsonValue::Type::bool_t;
      return v;
    }
    return number();
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      TS_REQUIRE(peek() == '"', "profile JSON: object key must be a string");
      std::string key = string();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      TS_REQUIRE(pos_ < text_.size(), "profile JSON: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        TS_REQUIRE(pos_ < text_.size(), "profile JSON: unterminated escape");
        const char e = text_[pos_++];
        TS_REQUIRE(e == '"' || e == '\\',
                   "profile JSON: unsupported escape sequence");
        out.push_back(e);
        continue;
      }
      out.push_back(c);
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    TS_REQUIRE(pos_ > start, "profile JSON: expected a value");
    JsonValue v;
    v.type = JsonValue::Type::number;
    try {
      v.number_value = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      throw InvalidArgument("profile JSON: malformed number '" +
                            text_.substr(start, pos_ - start) + "'");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double as_number(const JsonValue& v, const char* what) {
  TS_REQUIRE(v.type == JsonValue::Type::number,
             std::string("profile JSON: ") + what + " must be a number");
  return v.number_value;
}

}  // namespace

ProfileSnapshot parse_profile_json(const std::string& json) {
  const JsonValue doc = JsonReader(json).parse();
  TS_REQUIRE(doc.type == JsonValue::Type::object,
             "profile JSON: document must be an object");
  const JsonValue& schema = doc.at("schema");
  TS_REQUIRE(schema.type == JsonValue::Type::string &&
                 schema.string_value == "tasksim-profile-v1",
             "profile JSON: unknown schema (want tasksim-profile-v1)");
  ProfileSnapshot snap;
  snap.enabled_for_us = as_number(doc.at("enabled_for_us"), "enabled_for_us");
  snap.scope_overflows = static_cast<std::uint64_t>(
      as_number(doc.at("scope_overflows"), "scope_overflows"));
  const JsonValue& threads = doc.at("threads");
  TS_REQUIRE(threads.type == JsonValue::Type::array,
             "profile JSON: 'threads' must be an array");
  for (const JsonValue& thread : threads.items) {
    TS_REQUIRE(thread.type == JsonValue::Type::object,
               "profile JSON: thread entries must be objects");
    ThreadProfile profile;
    const JsonValue& name = thread.at("name");
    TS_REQUIRE(name.type == JsonValue::Type::string,
               "profile JSON: thread 'name' must be a string");
    profile.name = name.string_value;
    const JsonValue& phases = thread.at("phases");
    TS_REQUIRE(phases.type == JsonValue::Type::array,
               "profile JSON: 'phases' must be an array");
    for (const JsonValue& entry : phases.items) {
      TS_REQUIRE(entry.type == JsonValue::Type::object,
                 "profile JSON: phase entries must be objects");
      const JsonValue& phase_tag = entry.at("phase");
      TS_REQUIRE(phase_tag.type == JsonValue::Type::string,
                 "profile JSON: 'phase' must be a string");
      PhaseStats& s = profile.phases[idx(parse_phase(phase_tag.string_value))];
      s.count = static_cast<std::uint64_t>(
          as_number(entry.at("count"), "count"));
      s.excl_wall_us = as_number(entry.at("excl_wall_us"), "excl_wall_us");
      s.incl_wall_us = as_number(entry.at("incl_wall_us"), "incl_wall_us");
      s.excl_cpu_us = as_number(entry.at("excl_cpu_us"), "excl_cpu_us");
      s.incl_cpu_us = as_number(entry.at("incl_cpu_us"), "incl_cpu_us");
    }
    snap.threads.push_back(std::move(profile));
  }
  return snap;
}

// ---------------------------------------------------------------------------
// Profiler

Profiler::Profiler() : id_(next_profiler_id()) {}

Profiler::~Profiler() { disable(); }

Profiler& Profiler::global() {
  static Profiler* instance = new Profiler();  // intentionally leaked, like
  return *instance;  // metrics::Registry::global(): probes in static dtors
}                    // must never touch a destroyed profiler

namespace {
// Full per-thread shard map backing the one-entry cache fast path (the cache
// misses only when a thread alternates between profiler instances).
struct ProfTlsCache {
  std::uint64_t id = 0;
  void* shard = nullptr;
};
thread_local ProfTlsCache t_prof_cache;
thread_local std::unordered_map<std::uint64_t, void*> t_prof_shards;
}  // namespace

Profiler::Shard& Profiler::local_shard() {
  if (t_prof_cache.id == id_) {
    return *static_cast<Shard*>(t_prof_cache.shard);
  }
  return local_shard_slow();
}

Profiler::Shard& Profiler::local_shard_slow() {
  auto it = t_prof_shards.find(id_);
  Shard* shard;
  if (it != t_prof_shards.end()) {
    shard = static_cast<Shard*>(it->second);
  } else {
    auto owned = std::make_unique<Shard>();
    shard = owned.get();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shards_.push_back(std::move(owned));
    }
    t_prof_shards.emplace(id_, shard);
  }
  t_prof_cache = {id_, shard};
  return *shard;
}

void Profiler::charge_top(Shard& shard, double now_wall, double now_cpu) {
  if (shard.depth == 0) return;
  Cell& cell = shard.cells[idx(shard.stack[shard.depth - 1].phase)];
  add_relaxed(cell.excl_wall, now_wall - shard.mark_wall);
  add_relaxed(cell.excl_cpu, now_cpu - shard.mark_cpu);
}

Profiler::Shard* Profiler::enter_scope(Phase phase) {
  Shard& shard = local_shard();
  if (shard.depth >= kMaxScopeDepth) {
    bump_relaxed(shard.overflows);
    return nullptr;
  }
  const double now_wall = wall_time_us();
  const double now_cpu = thread_cpu_time_us();
  charge_top(shard, now_wall, now_cpu);
  shard.stack[shard.depth++] = Frame{phase, now_wall, now_cpu};
  shard.mark_wall = now_wall;
  shard.mark_cpu = now_cpu;
  return &shard;
}

void Profiler::exit_scope(Shard& shard) {
  // depth can only be zero here if the scope that opened this frame raced a
  // reset of the stack, which enable()/reset() never do; stay defensive.
  if (shard.depth == 0) return;
  const double now_wall = wall_time_us();
  const double now_cpu = thread_cpu_time_us();
  charge_top(shard, now_wall, now_cpu);
  const Frame frame = shard.stack[--shard.depth];
  Cell& cell = shard.cells[idx(frame.phase)];
  bump_relaxed(cell.count);
  add_relaxed(cell.incl_wall, now_wall - frame.enter_wall);
  add_relaxed(cell.incl_cpu, now_cpu - frame.enter_cpu);
  shard.mark_wall = now_wall;
  shard.mark_cpu = now_cpu;
}

void Profiler::enable(double sample_period_us) {
  disable();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& shard : shards_) {
      for (auto& cell : shard->cells) {
        cell.count.store(0, std::memory_order_relaxed);
        cell.excl_wall.store(0.0, std::memory_order_relaxed);
        cell.incl_wall.store(0.0, std::memory_order_relaxed);
        cell.excl_cpu.store(0.0, std::memory_order_relaxed);
        cell.incl_cpu.store(0.0, std::memory_order_relaxed);
      }
      shard->overflows.store(0, std::memory_order_relaxed);
    }
    t0_us_ = wall_time_us();
    end_us_ = t0_us_;
    series_ = SampleSeries{};
    series_.t0_us = t0_us_;
    sampler_stop_ = false;
  }
  enabled_.store(true, std::memory_order_relaxed);
  if (sample_period_us > 0.0) {
    sampler_ = std::thread([this, sample_period_us] {
      sampler_loop(sample_period_us);
    });
  }
}

void Profiler::disable() {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  enabled_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sampler_stop_ = true;
    end_us_ = wall_time_us();
  }
  sampler_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
}

void Profiler::sampler_loop(double period_us) {
  const auto period =
      std::chrono::microseconds(static_cast<long long>(period_us));
  std::unique_lock<std::mutex> lock(mutex_);
  while (!sampler_stop_) {
    if (sampler_cv_.wait_for(lock, period, [this] { return sampler_stop_; })) {
      break;
    }
    series_.samples.push_back(take_sample());
  }
}

PhaseSample Profiler::take_sample() const {
  // Caller holds mutex_.
  PhaseSample sample;
  sample.wall_us = wall_time_us();
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      sample.excl_wall_us[i] +=
          shard->cells[i].excl_wall.load(std::memory_order_relaxed);
    }
  }
  return sample;
}

ProfileSnapshot Profiler::snapshot() const {
  ProfileSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  const double end =
      enabled_.load(std::memory_order_relaxed) ? wall_time_us() : end_us_;
  snap.enabled_for_us = std::max(0.0, end - t0_us_);
  std::size_t index = 0;
  for (const auto& shard : shards_) {
    snap.scope_overflows += shard->overflows.load(std::memory_order_relaxed);
    std::array<PhaseStats, kPhaseCount> phases{};
    bool any = false;
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      PhaseStats& s = phases[i];
      const Cell& cell = shard->cells[i];
      s.count = cell.count.load(std::memory_order_relaxed);
      s.excl_wall_us = cell.excl_wall.load(std::memory_order_relaxed);
      s.incl_wall_us = cell.incl_wall.load(std::memory_order_relaxed);
      s.excl_cpu_us = cell.excl_cpu.load(std::memory_order_relaxed);
      s.incl_cpu_us = cell.incl_cpu.load(std::memory_order_relaxed);
      any = any || s.count != 0 || s.excl_wall_us != 0.0 ||
            s.incl_wall_us != 0.0;
    }
    ++index;
    if (!any) continue;  // a thread from a previous run; nothing this window
    auto& profile = snap.threads.emplace_back();
    profile.phases = phases;
    if (shard->name.empty()) {
      // "t" + to_string trips a GCC 12 -Wrestrict false positive (PR 105329)
      // when inlined here; format directly instead.
      char fallback[24];
      std::snprintf(fallback, sizeof(fallback), "t%zu", index - 1);
      profile.name = fallback;
    } else {
      profile.name = shard->name;
    }
  }
  return snap;
}

SampleSeries Profiler::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    for (auto& cell : shard->cells) {
      cell.count.store(0, std::memory_order_relaxed);
      cell.excl_wall.store(0.0, std::memory_order_relaxed);
      cell.incl_wall.store(0.0, std::memory_order_relaxed);
      cell.excl_cpu.store(0.0, std::memory_order_relaxed);
      cell.incl_cpu.store(0.0, std::memory_order_relaxed);
    }
    shard->overflows.store(0, std::memory_order_relaxed);
  }
  series_.samples.clear();
}

void Profiler::set_thread_name(const std::string& name) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(mutex_);
  shard.name = name;
}

void set_thread_name(const std::string& name) {
  current().set_thread_name(name);
}

}  // namespace tasksim::prof
