// profiler.hpp — the wall-clock self-profiler: where does the *simulator*
// spend real time?
//
// The metrics registry (support/metrics) counts events and the flight
// recorder (support/flight_recorder) explains causality on the virtual
// timeline; neither says where the simulator's own wall time goes.  That
// question is the paper's §VI overhead story: scheduler-in-the-loop
// simulation is fast *except* where the §V-E race mitigations (yield/sleep,
// quiescence polling) burn real time.  This profiler attributes real time —
// wall clock and per-thread CPU — to a static registry of phases so a run
// can report "62% mitigation sleep, 21% TEQ front wait, 9% task bodies".
//
// Model:
//   * Phases are a fixed enum (the static registry): every probe indexes a
//     flat per-thread array, no hashing or registration on any hot path.
//   * A probe is an RAII scope (`ScopedPhase` / TS_PROF_SCOPE).  Scopes
//     nest; time is attributed *exclusively* to the innermost open scope,
//     and each scope additionally accumulates its *inclusive* span, so
//     `incl(parent) == excl(parent) + Σ incl(children)` holds exactly (the
//     same clock reads bound both sides).
//   * Two root phases (`master_run`, `worker_iteration`) bracket all
//     instrumented thread time.  Coverage — the acceptance metric of the
//     overhead ablation — is Σ non-root exclusive / Σ root inclusive: the
//     fraction of bracketed real time explained by a named phase.
//   * Cost: when disabled a scope is one relaxed atomic load and a branch
//     (~1 ns; cheap enough to leave compiled into the TEQ and scheduler hot
//     paths — micro_components asserts the budget).  When enabled, a scope
//     performs two wall + two thread-CPU clock reads and a handful of
//     single-writer relaxed stores into its thread's shard.
//   * Merge-on-snapshot, like metrics::snapshot(): shards are per-thread
//     (one writer, never contended); snapshot() merges them under the
//     registry lock into a per-thread, per-phase view.  Best-effort while
//     threads are still inside scopes; intended for end-of-run reporting.
//   * Optional sampling: enable(period) starts a sampler thread that
//     records the merged per-phase exclusive totals every `period` µs of
//     wall time.  trace/chrome_export turns the series into Chrome counter
//     tracks (per-phase thread-share over time).
//
// The process-wide default instance is Profiler::global().  Probes resolve
// the calling thread's *current* profiler: the one bound by an enclosing
// telemetry::TelemetryScope (per-engine profilers for concurrent sweeps),
// or the global default when nothing is bound.  Separate instances are
// supported (tests, TelemetryContext) and must outlive any thread that
// touched them.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tasksim::prof {

/// The static phase registry.  Adding a phase: extend the enum (before
/// kCount), then phase_name() and (if it brackets whole-thread time)
/// phase_is_root() in profiler.cpp.
enum class Phase : std::uint8_t {
  // --- roots: bracket all instrumented time on their thread --------------
  master_run,        ///< harness: submission + wait on the calling thread
  worker_iteration,  ///< one worker-loop iteration (claim / execute / idle)
  // --- scheduler (sched/runtime_base, sched/dependency_tracker) ----------
  task_build,        ///< algorithm driver building descriptors (linalg/tile_*)
  submit,            ///< RuntimeBase::submit (throttle + registration)
  window_wait,       ///< submitter blocked on the task window
  dependency,        ///< dependence registration / completion release
  claim,             ///< ready-pool pop + dispatch bookkeeping
  bookkeeping,       ///< execute_task minus the task body
  task_body,         ///< the task function (real kernel or simulated body)
  idle_wait,         ///< worker blocked waiting for ready tasks
  wait_all,          ///< master blocked in wait_all / final drain
  // --- simulation (sim/sim_engine, sim/task_exec_queue, sim/kernel_model)
  model_sample,      ///< kernel execution-time model sampling
  fault_eval,        ///< fault-plan decision hashing
  fault_stall,       ///< injected real-time worker stall
  teq_mutex,         ///< TEQ mutex critical sections (enter / leave)
  teq_wait,          ///< TEQ wait_front slow path minus the parked time
  teq_publish,       ///< TEQ front publication + targeted unpark
  teq_park,          ///< parked (futex-style) until promoted to TEQ front
  mitigation_sleep,  ///< yield_sleep mitigation: sched_yield + usleep (§V-E)
  quiescence_poll,   ///< quiescence mitigation polling loop (§V-E)
  lookahead_check,   ///< lookahead safe-horizon release evaluation
  // --- tracing ------------------------------------------------------------
  trace_append,      ///< Trace::record (virtual or real timeline append)
  kCount,
};

inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::kCount);
/// Deepest scope nesting tracked per thread; deeper scopes are counted in
/// ProfileSnapshot::scope_overflows and their time stays in the parent's
/// exclusive share.
inline constexpr std::size_t kMaxScopeDepth = 16;

const char* phase_name(Phase phase);
/// Roots bracket all instrumented time on their thread; non-root exclusive
/// time over root inclusive time is the coverage metric.
bool phase_is_root(Phase phase);
/// Inverse of phase_name (throws InvalidArgument on unknown names).
Phase parse_phase(const std::string& name);

struct PhaseStats {
  std::uint64_t count = 0;       ///< completed scopes
  double excl_wall_us = 0.0;     ///< wall time with this phase innermost
  double incl_wall_us = 0.0;     ///< wall time between scope enter and exit
  double excl_cpu_us = 0.0;      ///< thread-CPU analogue of excl_wall_us
  double incl_cpu_us = 0.0;      ///< thread-CPU analogue of incl_wall_us

  PhaseStats& operator+=(const PhaseStats& other);
};

struct ThreadProfile {
  std::string name;  ///< set_thread_name(), or "t<index>"
  std::array<PhaseStats, kPhaseCount> phases{};
};

struct ProfileSnapshot {
  /// Wall time the profiler was enabled up to this snapshot (or disable).
  double enabled_for_us = 0.0;
  /// Scopes dropped because the per-thread stack exceeded kMaxScopeDepth.
  std::uint64_t scope_overflows = 0;
  std::vector<ThreadProfile> threads;

  /// Per-phase totals merged across threads.
  std::array<PhaseStats, kPhaseCount> totals() const;
  /// Σ exclusive wall time of non-root phases (the explained time).
  double attributed_excl_wall_us() const;
  /// Σ inclusive wall time of root phases (the bracketed thread time).
  double root_incl_wall_us() const;
  /// attributed / root-inclusive in [0, 1]; 0 when nothing was bracketed.
  double coverage() const;

  /// Stable single-document JSON ("tasksim-profile-v1"): enabled span,
  /// overflow count, per-thread phase arrays (zero phases omitted).
  std::string to_json() const;
};

/// Parse a to_json() document back into a snapshot (schema round-trip;
/// throws InvalidArgument on malformed input or an unknown schema tag).
ProfileSnapshot parse_profile_json(const std::string& json);

/// One sampler observation: merged per-phase exclusive wall totals.
struct PhaseSample {
  double wall_us = 0.0;  ///< absolute wall clock of the sample
  std::array<double, kPhaseCount> excl_wall_us{};
};

struct SampleSeries {
  double t0_us = 0.0;  ///< wall clock at enable()
  std::vector<PhaseSample> samples;
};

class Profiler {
 public:
  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Start profiling: zero every cell, restart the sample series, and (when
  /// `sample_period_us` > 0) start the sampler thread.  Call at a quiescent
  /// point — scopes already open keep attributing into the cleared cells.
  void enable(double sample_period_us = 0.0);

  /// Stop profiling (and the sampler).  Recorded data stays snapshotable.
  void disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Merge every shard into a per-thread, per-phase view.  Threads that
  /// recorded nothing since the last enable() are omitted.
  ProfileSnapshot snapshot() const;

  /// The sampler's series since the last enable() (empty when sampling was
  /// off).
  SampleSeries samples() const;

  /// Zero every cell and drop the sample series (shards stay registered).
  void reset();

  /// Name the calling thread's shard in snapshots ("master", "worker-3").
  /// No-op while disabled, so unprofiled runs allocate nothing.
  void set_thread_name(const std::string& name);

  /// The process-wide profiler every instrumentation site records into.
  static Profiler& global();

 private:
  friend class ScopedPhase;

  /// Single-writer cells: written by the owning thread with relaxed
  /// load-op-store (no RMW), read by snapshot()/sampler.
  struct Cell {
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> excl_wall{0.0};
    std::atomic<double> incl_wall{0.0};
    std::atomic<double> excl_cpu{0.0};
    std::atomic<double> incl_cpu{0.0};
  };

  struct Frame {
    Phase phase = Phase::kCount;
    double enter_wall = 0.0;
    double enter_cpu = 0.0;
  };

  struct Shard {
    std::array<Cell, kPhaseCount> cells{};
    std::atomic<std::uint64_t> overflows{0};
    // The scope stack and marks are touched only by the owning thread.
    std::array<Frame, kMaxScopeDepth> stack{};
    std::size_t depth = 0;
    double mark_wall = 0.0;  ///< wall clock of the last push/pop event
    double mark_cpu = 0.0;
    std::string name;  ///< guarded by the profiler mutex
  };

  /// Open a scope on the calling thread's shard; nullptr when the stack is
  /// full (the scope is dropped and counted in overflows).
  Shard* enter_scope(Phase phase);
  static void exit_scope(Shard& shard);
  static void charge_top(Shard& shard, double now_wall, double now_cpu);

  Shard& local_shard();
  Shard& local_shard_slow();

  void sampler_loop(double period_us);
  PhaseSample take_sample() const;

  std::uint64_t id_;  ///< unique per instance; keys the thread-local cache
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;  ///< guards shards_, names, series_, sampler
  std::vector<std::unique_ptr<Shard>> shards_;
  double t0_us_ = 0.0;   ///< wall clock at the last enable()
  double end_us_ = 0.0;  ///< wall clock at the last disable()
  SampleSeries series_;
  std::thread sampler_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;
};

namespace detail {
/// The calling thread's bound profiler, set by telemetry::TelemetryScope
/// (support/telemetry.hpp); nullptr → the process-wide default.
inline thread_local Profiler* t_bound_profiler = nullptr;
}  // namespace detail

/// The profiler probes on this thread record into: the TelemetryScope-bound
/// instance, or Profiler::global() when unbound.  The extra TLS load +
/// branch rides the disabled-probe path, which micro_components gates at
/// --probe-budget-ns.
inline Profiler& current() {
  Profiler* bound = detail::t_bound_profiler;
  return bound != nullptr ? *bound : Profiler::global();
}

/// RAII probe.  Constructing while the profiler is disabled is inert (one
/// TLS load + one relaxed load + branch); constructing while enabled opens
/// the phase on the calling thread until destruction.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase phase) : ScopedPhase(current(), phase) {}
  ScopedPhase(Profiler& profiler, Phase phase) {
    if (profiler.enabled()) shard_ = profiler.enter_scope(phase);
  }
  ~ScopedPhase() {
    if (shard_ != nullptr) Profiler::exit_scope(*shard_);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Profiler::Shard* shard_ = nullptr;
};

/// Name the calling thread in its current profiler's snapshots.
void set_thread_name(const std::string& name);

#define TS_PROF_CONCAT_IMPL(a, b) a##b
#define TS_PROF_CONCAT(a, b) TS_PROF_CONCAT_IMPL(a, b)
/// Probe the enclosing block as `phase` (a Phase enumerator name) on the
/// calling thread's current profiler.
#define TS_PROF_SCOPE(phase)                                      \
  ::tasksim::prof::ScopedPhase TS_PROF_CONCAT(ts_prof_scope_,     \
                                              __LINE__)(          \
      ::tasksim::prof::Phase::phase)

}  // namespace tasksim::prof
