// dense.hpp — plain column-major dense matrices.
//
// Used for verification (reference results, norms) and as the source /
// destination of tile-layout conversions.  Not performance-critical.
#pragma once

#include <cstddef>
#include <vector>

#include "support/rng.hpp"

namespace tasksim::linalg {

/// Column-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int i, int j);
  double operator()(int i, int j) const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  int ld() const { return rows_; }

  /// Fill with uniform values in [-1, 1].
  static Matrix random(int rows, int cols, Rng& rng);

  /// Random symmetric positive definite: B·Bᵀ + n·I.  O(n³) — small
  /// matrices only.
  static Matrix random_spd(int n, Rng& rng);

  /// Random symmetric strictly diagonally dominant (hence SPD) matrix:
  /// off-diagonal uniform in [-1, 1], diagonal = n.  O(n²); used for the
  /// large Cholesky experiment matrices.
  static Matrix random_diag_dominant(int n, Rng& rng);

  static Matrix identity(int n);
  static Matrix zero(int rows, int cols);

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// C = alpha * op(A) * op(B) + beta * C (reference triple loop).
Matrix matmul(const Matrix& a, const Matrix& b, bool trans_a = false,
              bool trans_b = false);

Matrix transpose(const Matrix& a);

/// Frobenius norm.
double frobenius_norm(const Matrix& a);

/// ||a - b||_F / ||b||_F (0 when b is zero and a == b).
double relative_error(const Matrix& a, const Matrix& b);

/// Extract lower/upper triangle (including diagonal), zeroing the rest.
Matrix lower_triangle(const Matrix& a);
Matrix upper_triangle(const Matrix& a);

}  // namespace tasksim::linalg
