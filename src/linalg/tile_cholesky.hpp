// tile_cholesky.hpp — task-based tile Cholesky factorization
// (paper Algorithm 1), submitted through a KernelSubmitter so the same code
// drives real execution and simulation.
#pragma once

#include <memory>

#include "linalg/tile_matrix.hpp"
#include "sched/submitter.hpp"

namespace tasksim::linalg {

struct TileAlgoOptions {
  /// Give panel kernels (DPOTRF/DTRSM; DGEQRT/DTSQRT) elevated priority —
  /// the critical path of both factorizations runs through the panel.
  bool prioritize_panel = true;
  /// Submit the trailing-update kernels (DGEMM/DSYRK; DTSMQR/DORMQR) with
  /// an accelerator implementation so heterogeneous runtimes may place
  /// them on accelerator lanes (panel kernels stay CPU-only, the usual
  /// CPU/GPU split in tile solvers).  On this substrate the accelerator
  /// implementation is the same code; the split matters for scheduling
  /// and for the simulator's per-resource kernel models.
  bool accel_update_kernels = false;
};

/// Submit the tile Cholesky task graph for the lower factorization
/// A = L·Lᵀ of the SPD matrix held in `a` (overwritten with L in the lower
/// tiles) and wait for completion.  Returns LAPACK-style info: 0 on
/// success, >0 if a diagonal block was not positive definite.
int tile_cholesky(TileMatrix& a, sched::KernelSubmitter& submitter,
                  const TileAlgoOptions& options = {});

/// Number of tasks the factorization submits for an NT×NT tile matrix.
std::size_t cholesky_task_count(int nt);

}  // namespace tasksim::linalg
