#include "linalg/dense.hpp"

#include <cmath>

#include "support/error.hpp"

namespace tasksim::linalg {

Matrix::Matrix(int rows, int cols) : rows_(rows), cols_(cols) {
  TS_REQUIRE(rows >= 0 && cols >= 0, "negative matrix dimension");
  data_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
               0.0);
}

double& Matrix::operator()(int i, int j) {
  return data_[static_cast<std::size_t>(j) * static_cast<std::size_t>(rows_) +
               static_cast<std::size_t>(i)];
}

double Matrix::operator()(int i, int j) const {
  return data_[static_cast<std::size_t>(j) * static_cast<std::size_t>(rows_) +
               static_cast<std::size_t>(i)];
}

Matrix Matrix::random(int rows, int cols, Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.uniform(-1.0, 1.0);
  return m;
}

Matrix Matrix::random_spd(int n, Rng& rng) {
  const Matrix b = random(n, n, rng);
  Matrix a = matmul(b, b, false, true);
  for (int i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

Matrix Matrix::random_diag_dominant(int n, Rng& rng) {
  Matrix a(n, n);
  for (int j = 0; j < n; ++j) {
    for (int i = j + 1; i < n; ++i) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
    a(j, j) = static_cast<double>(n);
  }
  return a;
}

Matrix Matrix::identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::zero(int rows, int cols) { return Matrix(rows, cols); }

Matrix matmul(const Matrix& a, const Matrix& b, bool trans_a, bool trans_b) {
  const int m = trans_a ? a.cols() : a.rows();
  const int k = trans_a ? a.rows() : a.cols();
  const int kb = trans_b ? b.cols() : b.rows();
  const int n = trans_b ? b.rows() : b.cols();
  TS_REQUIRE(k == kb, "matmul inner dimensions mismatch");
  Matrix c(m, n);
  for (int j = 0; j < n; ++j) {
    for (int p = 0; p < k; ++p) {
      const double bval = trans_b ? b(j, p) : b(p, j);
      if (bval == 0.0) continue;
      for (int i = 0; i < m; ++i) {
        const double aval = trans_a ? a(p, i) : a(i, p);
        c(i, j) += aval * bval;
      }
    }
  }
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (int j = 0; j < a.cols(); ++j) {
    for (int i = 0; i < a.rows(); ++i) t(j, i) = a(i, j);
  }
  return t;
}

double frobenius_norm(const Matrix& a) {
  double sum = 0.0;
  for (int j = 0; j < a.cols(); ++j) {
    for (int i = 0; i < a.rows(); ++i) sum += a(i, j) * a(i, j);
  }
  return std::sqrt(sum);
}

double relative_error(const Matrix& a, const Matrix& b) {
  TS_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
             "relative_error shape mismatch");
  Matrix diff(a.rows(), a.cols());
  for (int j = 0; j < a.cols(); ++j) {
    for (int i = 0; i < a.rows(); ++i) diff(i, j) = a(i, j) - b(i, j);
  }
  const double denom = frobenius_norm(b);
  const double num = frobenius_norm(diff);
  if (denom == 0.0) return num == 0.0 ? 0.0 : num;
  return num / denom;
}

Matrix lower_triangle(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  for (int j = 0; j < a.cols(); ++j) {
    for (int i = j; i < a.rows(); ++i) out(i, j) = a(i, j);
  }
  return out;
}

Matrix upper_triangle(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  for (int j = 0; j < a.cols(); ++j) {
    for (int i = 0; i <= j && i < a.rows(); ++i) out(i, j) = a(i, j);
  }
  return out;
}

}  // namespace tasksim::linalg
