#include "linalg/tile_lu.hpp"

#include <atomic>

#include "linalg/blas_kernels.hpp"
#include "support/profiler.hpp"

namespace tasksim::linalg {

int tile_lu_nopiv(TileMatrix& a, sched::KernelSubmitter& submitter,
                  const TileAlgoOptions& options) {
  const int nt = a.tiles();
  const int nb = a.tile_size();
  const int panel_priority = options.prioritize_panel ? 1 : 0;
  auto info = std::make_shared<std::atomic<int>>(0);

  for (int k = 0; k < nt; ++k) {
    // Descriptor construction is master-side real time; nested submit
    // scopes subtract themselves out of this phase's exclusive share.
    TS_PROF_SCOPE(task_build);
    {
      double* akk = a.tile(k, k);
      submitter.submit(
          "dgetrf",
          [akk, nb, k, info] {
            const int local = dgetrf_nopiv(nb, akk, nb);
            if (local != 0) {
              int expected = 0;
              info->compare_exchange_strong(expected, k * nb + local);
            }
          },
          {sched::inout(akk)}, panel_priority);
    }
    // Row panel: U_kj = L_kk^{-1} A_kj.
    for (int j = k + 1; j < nt; ++j) {
      const double* akk = a.tile(k, k);
      double* akj = a.tile(k, j);
      submitter.submit(
          "dtrsm_l",
          [akk, akj, nb] { dtrsm_left_lower_unit(nb, nb, akk, nb, akj, nb); },
          {sched::in(akk), sched::inout(akj)}, panel_priority);
    }
    // Column panel: L_ik = A_ik U_kk^{-1}.
    for (int i = k + 1; i < nt; ++i) {
      const double* akk = a.tile(k, k);
      double* aik = a.tile(i, k);
      submitter.submit(
          "dtrsm_r",
          [akk, aik, nb] { dtrsm_right_upper(nb, nb, akk, nb, aik, nb); },
          {sched::in(akk), sched::inout(aik)}, panel_priority);
    }
    // Trailing update: A_ij -= L_ik · U_kj.
    for (int i = k + 1; i < nt; ++i) {
      const double* aik = a.tile(i, k);
      for (int j = k + 1; j < nt; ++j) {
        const double* akj = a.tile(k, j);
        double* aij = a.tile(i, j);
        auto gemm = [aik, akj, aij, nb] {
          dgemm(Trans::no, Trans::no, nb, nb, nb, -1.0, aik, nb, akj, nb, 1.0,
                aij, nb);
        };
        sched::AccessList access{sched::in(aik), sched::in(akj),
                                 sched::inout(aij)};
        if (options.accel_update_kernels) {
          submitter.submit_hetero("dgemm", gemm, gemm, std::move(access));
        } else {
          submitter.submit("dgemm", gemm, std::move(access));
        }
      }
    }
  }
  submitter.finish();
  return info->load();
}

std::size_t lu_task_count(int nt) {
  std::size_t count = 0;
  for (int k = 0; k < nt; ++k) {
    const std::size_t tail = static_cast<std::size_t>(nt - k - 1);
    count += 1 + 2 * tail + tail * tail;
  }
  return count;
}

double lu_residual(const Matrix& original, const TileMatrix& factored) {
  const Matrix dense = factored.to_dense();
  Matrix l = lower_triangle(dense);
  for (int i = 0; i < l.rows(); ++i) l(i, i) = 1.0;  // unit diagonal
  const Matrix u = upper_triangle(dense);
  const Matrix lu = matmul(l, u);
  return relative_error(lu, original);
}

}  // namespace tasksim::linalg
