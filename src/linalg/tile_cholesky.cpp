#include "linalg/tile_cholesky.hpp"

#include <atomic>

#include "linalg/blas_kernels.hpp"
#include "support/profiler.hpp"

namespace tasksim::linalg {

int tile_cholesky(TileMatrix& a, sched::KernelSubmitter& submitter,
                  const TileAlgoOptions& options) {
  const int nt = a.tiles();
  const int nb = a.tile_size();
  const int panel_priority = options.prioritize_panel ? 1 : 0;
  // Shared with the task bodies: records the first failing diagonal block.
  auto info = std::make_shared<std::atomic<int>>(0);

  for (int k = 0; k < nt; ++k) {
    // Descriptor construction is master-side real time; nested submit
    // scopes subtract themselves out of this phase's exclusive share.
    TS_PROF_SCOPE(task_build);
    {
      double* akk = a.tile(k, k);
      submitter.submit(
          "dpotrf",
          [akk, nb, k, info] {
            const int local = dpotrf_lower(nb, akk, nb);
            if (local != 0) {
              int expected = 0;
              info->compare_exchange_strong(expected, k + 1);
            }
          },
          {sched::inout(akk)}, panel_priority);
    }
    for (int i = k + 1; i < nt; ++i) {
      const double* akk = a.tile(k, k);
      double* aik = a.tile(i, k);
      submitter.submit(
          "dtrsm",
          [akk, aik, nb] { dtrsm_right_lower_trans(nb, nb, akk, nb, aik, nb); },
          {sched::in(akk), sched::inout(aik)}, panel_priority);
    }
    for (int i = k + 1; i < nt; ++i) {
      const double* aik = a.tile(i, k);
      double* aii = a.tile(i, i);
      auto syrk = [aik, aii, nb] {
        dsyrk_lower(nb, nb, -1.0, aik, nb, 1.0, aii, nb);
      };
      sched::AccessList syrk_access{sched::in(aik), sched::inout(aii)};
      if (options.accel_update_kernels) {
        submitter.submit_hetero("dsyrk", syrk, syrk, std::move(syrk_access));
      } else {
        submitter.submit("dsyrk", syrk, std::move(syrk_access));
      }
      for (int j = k + 1; j < i; ++j) {
        const double* ajk = a.tile(j, k);
        double* aij = a.tile(i, j);
        auto gemm = [aik, ajk, aij, nb] {
          dgemm(Trans::no, Trans::yes, nb, nb, nb, -1.0, aik, nb, ajk, nb, 1.0,
                aij, nb);
        };
        sched::AccessList gemm_access{sched::in(aik), sched::in(ajk),
                                      sched::inout(aij)};
        if (options.accel_update_kernels) {
          submitter.submit_hetero("dgemm", gemm, gemm, std::move(gemm_access));
        } else {
          submitter.submit("dgemm", gemm, std::move(gemm_access));
        }
      }
    }
  }
  submitter.finish();
  return info->load();
}

std::size_t cholesky_task_count(int nt) {
  std::size_t count = 0;
  for (int k = 0; k < nt; ++k) {
    const std::size_t tail = static_cast<std::size_t>(nt - k - 1);
    count += 1 + tail /*trsm*/ + tail /*syrk*/ + tail * (tail - 1) / 2 /*gemm*/;
  }
  return count;
}

}  // namespace tasksim::linalg
