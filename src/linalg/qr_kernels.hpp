// qr_kernels.hpp — the four tile-QR kernels (paper Algorithm 2):
// DGEQRT, DORMQR, DTSQRT, DTSMQR, implemented from scratch with
// Householder reflectors in compact WY (block-reflector) form.
//
// Conventions (matching PLASMA with inner block size ib = nb):
//   * DGEQRT factors an nb×nb tile: on exit the upper triangle holds R, the
//     strict lower triangle holds the Householder vectors V (unit diagonal
//     implied), and T is the nb×nb upper-triangular block-reflector factor
//     with Q = I − V·T·Vᵀ.
//   * DTSQRT factors the 2nb×nb stack [R_top; A_bottom] where R_top is
//     upper triangular: on exit R_top is the updated R, A_bottom holds the
//     dense lower parts V2 of the reflectors (the upper parts are identity
//     columns), and T is the block-reflector factor.
//   * DORMQR / DTSMQR apply Q or Qᵀ (per `trans`) from the left to one tile
//     / a stacked tile pair.
#pragma once

namespace tasksim::linalg {

enum class ApplyTrans : char { no = 'N', yes = 'T' };

/// QR factorization of the nb×nb tile `a` (lda) producing `t` (ldt).
void dgeqrt(int nb, double* a, int lda, double* t, int ldt);

/// Apply Q (or Qᵀ) of a DGEQRT factorization to the nb×nb tile `c`:
/// C = op(I − V·T·Vᵀ) · C, with V stored in `v` as by dgeqrt.
void dormqr(ApplyTrans trans, int nb, const double* v, int ldv,
            const double* t, int ldt, double* c, int ldc);

/// QR factorization of [R (upper-triangular nb×nb, in `r`); A2 (nb×nb, in
/// `a2`)], producing `t`.
void dtsqrt(int nb, double* r, int ldr, double* a2, int lda2, double* t,
            int ldt);

/// Apply Q (or Qᵀ) of a DTSQRT factorization to the stacked pair
/// [C1; C2]: with V = [I; V2],  [C1; C2] = op(I − V·T·Vᵀ) · [C1; C2].
void dtsmqr(ApplyTrans trans, int nb, double* c1, int ldc1, double* c2,
            int ldc2, const double* v2, int ldv2, const double* t, int ldt);

/// Tile-level flop counts.
double flops_dgeqrt(int nb);
double flops_dormqr(int nb);
double flops_dtsqrt(int nb);
double flops_dtsmqr(int nb);

}  // namespace tasksim::linalg
