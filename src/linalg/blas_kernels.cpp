#include "linalg/blas_kernels.hpp"

#include <cmath>

#include "support/error.hpp"

namespace tasksim::linalg {

namespace {
inline const double* col(const double* a, int lda, int j) {
  return a + static_cast<std::ptrdiff_t>(j) * lda;
}
inline double* col(double* a, int lda, int j) {
  return a + static_cast<std::ptrdiff_t>(j) * lda;
}
}  // namespace

void dgemm(Trans trans_a, Trans trans_b, int m, int n, int k, double alpha,
           const double* a, int lda, const double* b, int ldb, double beta,
           double* c, int ldc) {
  TS_REQUIRE(m >= 0 && n >= 0 && k >= 0, "dgemm negative dimension");
  // Scale C by beta first.
  for (int j = 0; j < n; ++j) {
    double* cj = col(c, ldc, j);
    if (beta == 0.0) {
      for (int i = 0; i < m; ++i) cj[i] = 0.0;
    } else if (beta != 1.0) {
      for (int i = 0; i < m; ++i) cj[i] *= beta;
    }
  }
  if (alpha == 0.0 || k == 0) return;

  if (trans_a == Trans::no && trans_b == Trans::no) {
    // C += alpha * A * B, column-major friendly: saxpy along columns of A.
    for (int j = 0; j < n; ++j) {
      const double* bj = col(b, ldb, j);
      double* cj = col(c, ldc, j);
      for (int p = 0; p < k; ++p) {
        const double w = alpha * bj[p];
        if (w == 0.0) continue;
        const double* ap = col(a, lda, p);
        for (int i = 0; i < m; ++i) cj[i] += w * ap[i];
      }
    }
  } else if (trans_a == Trans::no && trans_b == Trans::yes) {
    // C += alpha * A * Bᵀ: B(j, p) read row-wise.
    for (int j = 0; j < n; ++j) {
      double* cj = col(c, ldc, j);
      for (int p = 0; p < k; ++p) {
        const double w = alpha * col(b, ldb, p)[j];
        if (w == 0.0) continue;
        const double* ap = col(a, lda, p);
        for (int i = 0; i < m; ++i) cj[i] += w * ap[i];
      }
    }
  } else if (trans_a == Trans::yes && trans_b == Trans::no) {
    // C += alpha * Aᵀ * B: dot products down columns of A.
    for (int j = 0; j < n; ++j) {
      const double* bj = col(b, ldb, j);
      double* cj = col(c, ldc, j);
      for (int i = 0; i < m; ++i) {
        const double* ai = col(a, lda, i);
        double sum = 0.0;
        for (int p = 0; p < k; ++p) sum += ai[p] * bj[p];
        cj[i] += alpha * sum;
      }
    }
  } else {
    // C += alpha * Aᵀ * Bᵀ.
    for (int j = 0; j < n; ++j) {
      double* cj = col(c, ldc, j);
      for (int i = 0; i < m; ++i) {
        const double* ai = col(a, lda, i);
        double sum = 0.0;
        for (int p = 0; p < k; ++p) sum += ai[p] * col(b, ldb, p)[j];
        cj[i] += alpha * sum;
      }
    }
  }
}

void dsyrk_lower(int n, int k, double alpha, const double* a, int lda,
                 double beta, double* c, int ldc) {
  for (int j = 0; j < n; ++j) {
    double* cj = col(c, ldc, j);
    if (beta == 0.0) {
      for (int i = j; i < n; ++i) cj[i] = 0.0;
    } else if (beta != 1.0) {
      for (int i = j; i < n; ++i) cj[i] *= beta;
    }
    for (int p = 0; p < k; ++p) {
      const double w = alpha * col(a, lda, p)[j];
      if (w == 0.0) continue;
      const double* ap = col(a, lda, p);
      for (int i = j; i < n; ++i) cj[i] += w * ap[i];
    }
  }
}

void dtrsm_right_lower_trans(int m, int n, const double* l, int ldl, double* b,
                             int ldb) {
  // Solve X * Lᵀ = B in place: Lᵀ is upper triangular with
  // (Lᵀ)(p, j) = L(j, p), so a forward sweep over columns works.
  for (int j = 0; j < n; ++j) {
    double* bj = col(b, ldb, j);
    for (int p = 0; p < j; ++p) {
      const double factor = col(l, ldl, p)[j];  // L(j, p)
      if (factor == 0.0) continue;
      const double* bp = col(b, ldb, p);
      for (int i = 0; i < m; ++i) bj[i] -= factor * bp[i];
    }
    const double diag = col(l, ldl, j)[j];
    TS_REQUIRE(diag != 0.0, "dtrsm: singular triangular factor");
    const double inv = 1.0 / diag;
    for (int i = 0; i < m; ++i) bj[i] *= inv;
  }
}

int dpotrf_lower(int n, double* a, int lda) {
  for (int j = 0; j < n; ++j) {
    double* aj = col(a, lda, j);
    double diag = aj[j];
    for (int p = 0; p < j; ++p) {
      const double v = col(a, lda, p)[j];
      diag -= v * v;
    }
    if (diag <= 0.0 || !std::isfinite(diag)) return j + 1;
    diag = std::sqrt(diag);
    aj[j] = diag;
    const double inv = 1.0 / diag;
    for (int i = j + 1; i < n; ++i) {
      double v = aj[i];
      for (int p = 0; p < j; ++p) {
        const double* ap = col(a, lda, p);
        v -= ap[i] * ap[j];
      }
      aj[i] = v * inv;
    }
  }
  return 0;
}

int dgetrf_nopiv(int n, double* a, int lda) {
  for (int j = 0; j < n; ++j) {
    const double pivot = col(a, lda, j)[j];
    if (pivot == 0.0 || !std::isfinite(pivot)) return j + 1;
    const double inv = 1.0 / pivot;
    double* aj = col(a, lda, j);
    for (int i = j + 1; i < n; ++i) aj[i] *= inv;  // L column
    for (int c = j + 1; c < n; ++c) {
      double* ac = col(a, lda, c);
      const double u = ac[j];
      if (u == 0.0) continue;
      for (int i = j + 1; i < n; ++i) ac[i] -= aj[i] * u;
    }
  }
  return 0;
}

void dtrsm_left_lower_unit(int n, int m, const double* l, int ldl, double* b,
                           int ldb) {
  // Forward substitution per column of B: B(i, c) -= sum_{p<i} L(i,p) B(p,c).
  for (int c = 0; c < m; ++c) {
    double* bc = col(b, ldb, c);
    for (int p = 0; p < n; ++p) {
      const double bp = bc[p];
      if (bp == 0.0) continue;
      const double* lp = col(l, ldl, p);
      for (int i = p + 1; i < n; ++i) bc[i] -= lp[i] * bp;
    }
  }
}

void dtrsm_right_upper(int m, int n, const double* u, int ldu, double* b,
                       int ldb) {
  // X U = B: process columns of X left to right.
  for (int j = 0; j < n; ++j) {
    double* bj = col(b, ldb, j);
    const double* uj = col(u, ldu, j);
    for (int p = 0; p < j; ++p) {
      const double factor = uj[p];  // U(p, j)
      if (factor == 0.0) continue;
      const double* bp = col(b, ldb, p);
      for (int i = 0; i < m; ++i) bj[i] -= factor * bp[i];
    }
    const double diag = uj[j];
    TS_REQUIRE(diag != 0.0, "dtrsm: singular upper factor");
    const double inv = 1.0 / diag;
    for (int i = 0; i < m; ++i) bj[i] *= inv;
  }
}

double flops_dgemm(int m, int n, int k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

double flops_dsyrk(int n, int k) {
  return static_cast<double>(k) * static_cast<double>(n) *
         (static_cast<double>(n) + 1.0);
}

double flops_dtrsm(int m, int n) {
  return static_cast<double>(n) * static_cast<double>(n) *
         static_cast<double>(m);
}

double flops_dpotrf(int n) {
  const double nd = n;
  return nd * nd * nd / 3.0 + nd * nd / 2.0 + nd / 6.0;
}

double flops_cholesky(int n) { return flops_dpotrf(n); }

double flops_qr(int n) {
  const double nd = n;
  // LAPACK DGEQRF on a square matrix: 4/3 n^3 + O(n^2).
  return 4.0 / 3.0 * nd * nd * nd;
}

double flops_lu(int n) {
  const double nd = n;
  // LAPACK DGETRF: 2/3 n^3 + O(n^2).
  return 2.0 / 3.0 * nd * nd * nd;
}

}  // namespace tasksim::linalg
