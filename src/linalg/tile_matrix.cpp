#include "linalg/tile_matrix.hpp"

#include "support/error.hpp"

namespace tasksim::linalg {

TileMatrix::TileMatrix(int n, int tile_size) : n_(n), nb_(tile_size) {
  TS_REQUIRE(n > 0 && tile_size > 0, "matrix and tile size must be positive");
  TS_REQUIRE(n % tile_size == 0,
             "matrix dimension must be a multiple of the tile size");
  nt_ = n / tile_size;
  storage_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_),
                  0.0);
}

double* TileMatrix::tile(int ti, int tj) {
  TS_REQUIRE(ti >= 0 && ti < nt_ && tj >= 0 && tj < nt_, "tile out of range");
  const std::size_t tile_elems =
      static_cast<std::size_t>(nb_) * static_cast<std::size_t>(nb_);
  const std::size_t index =
      (static_cast<std::size_t>(tj) * static_cast<std::size_t>(nt_) +
       static_cast<std::size_t>(ti)) *
      tile_elems;
  return storage_.data() + index;
}

const double* TileMatrix::tile(int ti, int tj) const {
  return const_cast<TileMatrix*>(this)->tile(ti, tj);
}

double& TileMatrix::at(int i, int j) {
  TS_REQUIRE(i >= 0 && i < n_ && j >= 0 && j < n_, "element out of range");
  double* t = tile(i / nb_, j / nb_);
  return t[(j % nb_) * nb_ + (i % nb_)];
}

double TileMatrix::at(int i, int j) const {
  return const_cast<TileMatrix*>(this)->at(i, j);
}

TileMatrix TileMatrix::from_dense(const Matrix& dense, int tile_size) {
  TS_REQUIRE(dense.rows() == dense.cols(),
             "tile layout requires a square matrix");
  TileMatrix tiled(dense.rows(), tile_size);
  for (int j = 0; j < dense.cols(); ++j) {
    for (int i = 0; i < dense.rows(); ++i) {
      tiled.at(i, j) = dense(i, j);
    }
  }
  return tiled;
}

Matrix TileMatrix::to_dense() const {
  Matrix dense(n_, n_);
  for (int j = 0; j < n_; ++j) {
    for (int i = 0; i < n_; ++i) {
      dense(i, j) = at(i, j);
    }
  }
  return dense;
}

TileMatrix TileMatrix::zeros_like(const TileMatrix& other) {
  return TileMatrix(other.n_, other.nb_);
}

}  // namespace tasksim::linalg
