// blas_kernels.hpp — BLAS-style computational kernels on column-major
// blocks, implemented from scratch (the paper links MKL; our substitute is
// a portable, numerically verified implementation — see DESIGN.md §3).
//
// These are the task bodies of the tile Cholesky factorization
// (paper Algorithm 1): DPOTRF/DPOTF2, DTRSM, DSYRK, DGEMM.
// Layout: column-major, leading dimension passed explicitly.
#pragma once

namespace tasksim::linalg {

enum class Trans : char { no = 'N', yes = 'T' };

/// C = alpha * op(A) * op(B) + beta * C.
/// op(A) is m×k, op(B) is k×n, C is m×n.
void dgemm(Trans trans_a, Trans trans_b, int m, int n, int k, double alpha,
           const double* a, int lda, const double* b, int ldb, double beta,
           double* c, int ldc);

/// C = alpha * A * Aᵀ + beta * C, updating only the lower triangle.
/// A is n×k, C is n×n (symmetric rank-k update, DSYRK).
void dsyrk_lower(int n, int k, double alpha, const double* a, int lda,
                 double beta, double* c, int ldc);

/// B = B * L⁻ᵀ where L is n×n lower triangular (non-unit diagonal) and B is
/// m×n — the DTRSM variant used by the tile Cholesky trailing solve.
void dtrsm_right_lower_trans(int m, int n, const double* l, int ldl, double* b,
                             int ldb);

/// Unblocked lower Cholesky factorization of the n×n block A (DPOTF2).
/// Returns 0 on success, or j+1 if the leading minor of order j+1 is not
/// positive definite (LAPACK convention).
int dpotrf_lower(int n, double* a, int lda);

/// Unblocked LU factorization without pivoting of the n×n block A
/// (DGETRF-nopiv): A = L·U with L unit lower triangular (unit diagonal not
/// stored) and U upper triangular.  Returns 0 on success, or j+1 on a zero
/// (or non-finite) pivot.  Safe on diagonally dominant matrices.
int dgetrf_nopiv(int n, double* a, int lda);

/// B = L⁻¹ * B with L n×n *unit* lower triangular (diagonal implied 1),
/// B n×m — the row-panel update of tile LU.
void dtrsm_left_lower_unit(int n, int m, const double* l, int ldl, double* b,
                           int ldb);

/// B = B * U⁻¹ with U n×n upper triangular (non-unit), B m×n — the
/// column-panel update of tile LU.
void dtrsm_right_upper(int m, int n, const double* u, int ldu, double* b,
                       int ldb);

/// Tile-level flop counts (used for Gflop/s reporting).
double flops_dgemm(int m, int n, int k);
double flops_dsyrk(int n, int k);
double flops_dtrsm(int m, int n);
double flops_dpotrf(int n);

/// Whole-factorization flop counts for an n×n matrix (LAPACK formulas).
double flops_cholesky(int n);
double flops_qr(int n);
double flops_lu(int n);

}  // namespace tasksim::linalg
