// tile_matrix.hpp — tile-layout matrix storage (paper §IV-B).
//
// The tile algorithms operate on nb×nb tiles stored contiguously (PLASMA's
// "tile layout"): tile (ti, tj) is one dense column-major nb×nb block at a
// stable address, which doubles as the data-object identity the schedulers
// use for hazard analysis.  The matrix dimension must be a multiple of the
// tile size (the paper's experiments use exact multiples, e.g. 3960 = 22 ×
// 180); general edge tiles are out of scope and rejected early.
#pragma once

#include <vector>

#include "linalg/dense.hpp"

namespace tasksim::linalg {

class TileMatrix {
 public:
  /// n×n matrix of nt×nt tiles with tile size nb, n = nt*nb.
  TileMatrix(int n, int tile_size);

  int n() const { return n_; }
  int tile_size() const { return nb_; }
  int tiles() const { return nt_; }  ///< tiles per dimension (NT)

  /// Pointer to tile (ti, tj); the tile is column-major with ld = nb.
  double* tile(int ti, int tj);
  const double* tile(int ti, int tj) const;

  /// Element access through the tile layout (slow; verification only).
  double& at(int i, int j);
  double at(int i, int j) const;

  /// Convert from/to a dense column-major matrix.
  static TileMatrix from_dense(const Matrix& dense, int tile_size);
  Matrix to_dense() const;

  /// A same-shape matrix of auxiliary nb×nb tiles (the T factors of tile
  /// QR).  Implemented as an ordinary TileMatrix initialized to zero.
  static TileMatrix zeros_like(const TileMatrix& other);

 private:
  int n_;
  int nb_;
  int nt_;
  std::vector<double> storage_;
};

}  // namespace tasksim::linalg
