#include "linalg/tile_qr.hpp"

#include "linalg/qr_kernels.hpp"
#include "support/error.hpp"
#include "support/profiler.hpp"

namespace tasksim::linalg {

void tile_qr(TileMatrix& a, TileMatrix& t, sched::KernelSubmitter& submitter,
             const TileAlgoOptions& options) {
  TS_REQUIRE(a.tiles() == t.tiles() && a.tile_size() == t.tile_size(),
             "A and T must have identical tiling");
  const int nt = a.tiles();
  const int nb = a.tile_size();
  const int panel_priority = options.prioritize_panel ? 1 : 0;

  for (int k = 0; k < nt; ++k) {
    // Descriptor construction (lambdas, access lists) is master-side real
    // time; the nested submit/window_wait scopes subtract themselves out of
    // this phase's exclusive share.
    TS_PROF_SCOPE(task_build);
    {
      double* akk = a.tile(k, k);
      double* tkk = t.tile(k, k);
      submitter.submit(
          "dgeqrt", [akk, tkk, nb] { dgeqrt(nb, akk, nb, tkk, nb); },
          {sched::inout(akk), sched::out(tkk)}, panel_priority);
    }
    for (int n = k + 1; n < nt; ++n) {
      const double* akk = a.tile(k, k);
      const double* tkk = t.tile(k, k);
      double* akn = a.tile(k, n);
      auto ormqr = [akk, tkk, akn, nb] {
        dormqr(ApplyTrans::yes, nb, akk, nb, tkk, nb, akn, nb);
      };
      sched::AccessList access{sched::in(akk), sched::in(tkk),
                               sched::inout(akn)};
      if (options.accel_update_kernels) {
        submitter.submit_hetero("dormqr", ormqr, ormqr, std::move(access));
      } else {
        submitter.submit("dormqr", ormqr, std::move(access));
      }
    }
    for (int m = k + 1; m < nt; ++m) {
      {
        double* akk = a.tile(k, k);
        double* amk = a.tile(m, k);
        double* tmk = t.tile(m, k);
        submitter.submit(
            "dtsqrt",
            [akk, amk, tmk, nb] { dtsqrt(nb, akk, nb, amk, nb, tmk, nb); },
            {sched::inout(akk), sched::inout(amk), sched::out(tmk)},
            panel_priority);
      }
      for (int n = k + 1; n < nt; ++n) {
        double* akn = a.tile(k, n);
        double* amn = a.tile(m, n);
        const double* amk = a.tile(m, k);
        const double* tmk = t.tile(m, k);
        auto tsmqr = [akn, amn, amk, tmk, nb] {
          dtsmqr(ApplyTrans::yes, nb, akn, nb, amn, nb, amk, nb, tmk, nb);
        };
        sched::AccessList access{sched::inout(akn), sched::inout(amn),
                                 sched::in(amk), sched::in(tmk)};
        if (options.accel_update_kernels) {
          submitter.submit_hetero("dtsmqr", tsmqr, tsmqr, std::move(access));
        } else {
          submitter.submit("dtsmqr", tsmqr, std::move(access));
        }
      }
    }
  }
  submitter.finish();
}

std::size_t qr_task_count(int nt) {
  std::size_t count = 0;
  for (int k = 0; k < nt; ++k) {
    const std::size_t tail = static_cast<std::size_t>(nt - k - 1);
    count += 1 /*geqrt*/ + tail /*ormqr*/ + tail /*tsqrt*/ +
             tail * tail /*tsmqr*/;
  }
  return count;
}

}  // namespace tasksim::linalg
