#include "linalg/tile_chains.hpp"

#include "support/profiler.hpp"

namespace tasksim::linalg {

void tile_chains(TileMatrix& a, sched::KernelSubmitter& submitter) {
  const int nt = a.tiles();
  const int nb = a.tile_size();
  // Step-major submission order: link s of every chain is submitted
  // before link s+1 of any chain, so the ready set cycles through all
  // chains and each virtual round piles every worker into the TEQ at the
  // same completion time — the regime the lookahead ablation stresses.
  for (int s = 0; s < nt; ++s) {
    TS_PROF_SCOPE(task_build);
    for (int c = 0; c < nt; ++c) {
      double* acc = a.tile(c, c);
      submitter.submit(
          "dchain",
          [acc, nb] {
            for (int i = 0; i < nb; ++i) acc[i] += 1.0;
          },
          {sched::inout(acc)});
    }
  }
  submitter.finish();
}

std::size_t chains_task_count(int nt) {
  return static_cast<std::size_t>(nt) * static_cast<std::size_t>(nt);
}

}  // namespace tasksim::linalg
