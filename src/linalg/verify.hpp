// verify.hpp — numerical verification of the tile factorizations.
//
// The simulation library never computes, so the evidence that the *real*
// execution path (and therefore the dependence structure the schedulers
// enforce) is correct comes from these residual checks: a wrongly ordered
// kernel produces a large residual with overwhelming probability.
#pragma once

#include "linalg/qr_kernels.hpp"
#include "linalg/tile_matrix.hpp"

namespace tasksim::linalg {

/// ‖A − L·Lᵀ‖_F / ‖A‖_F for a completed tile Cholesky factorization.
double cholesky_residual(const Matrix& original, const TileMatrix& factored);

/// Apply the Q (or Qᵀ) of a completed tile QR factorization to the tile
/// matrix `b` in place.  `factored`/`t` are the outputs of tile_qr.
void qr_apply_q(const TileMatrix& factored, const TileMatrix& t,
                ApplyTrans trans, TileMatrix& b);

/// ‖A − Q·R‖_F / ‖A‖_F: rebuilds Q·R by applying Q to the R factor.
double qr_residual(const Matrix& original, const TileMatrix& factored,
                   const TileMatrix& t);

/// ‖Q·Qᵀ·I − I‖_F / n: orthogonality of the implicit Q.
double qr_orthogonality(const TileMatrix& factored, const TileMatrix& t);

}  // namespace tasksim::linalg
