#include "linalg/qr_kernels.hpp"

#include <cmath>
#include <vector>

#include "support/error.hpp"

namespace tasksim::linalg {

namespace {

inline const double* col(const double* a, int lda, int j) {
  return a + static_cast<std::ptrdiff_t>(j) * lda;
}
inline double* col(double* a, int lda, int j) {
  return a + static_cast<std::ptrdiff_t>(j) * lda;
}

/// Generate a Householder reflector for [alpha; x] (x of length n) such
/// that H·[alpha; x] = [beta; 0], H = I − tau·v·vᵀ, v = [1; x/(alpha−beta)].
/// x is scaled in place; returns {beta, tau}.  tau = 0 when x is zero.
struct Reflector {
  double beta;
  double tau;
};

Reflector make_reflector(double alpha, double* x, int n) {
  double xnorm2 = 0.0;
  for (int i = 0; i < n; ++i) xnorm2 += x[i] * x[i];
  if (xnorm2 == 0.0) {
    return {alpha, 0.0};
  }
  const double norm = std::sqrt(alpha * alpha + xnorm2);
  const double beta = alpha >= 0.0 ? -norm : norm;
  const double tau = (beta - alpha) / beta;
  const double scale = 1.0 / (alpha - beta);
  for (int i = 0; i < n; ++i) x[i] *= scale;
  return {beta, tau};
}

/// Multiply the leading (j×j) upper-triangular block of T into `w` and
/// scale by -tau: T(0:j-1, j) = -tau * T(0:j-1, 0:j-1) * w.
void fill_t_column(int j, double tau, const double* w, double* t, int ldt) {
  for (int i = 0; i < j; ++i) {
    double sum = 0.0;
    for (int p = i; p < j; ++p) sum += col(t, ldt, p)[i] * w[p];
    col(t, ldt, j)[i] = -tau * sum;
  }
  col(t, ldt, j)[j] = tau;
}

/// W2 = op(T) * W where T is upper triangular n×n and W is n×n dense;
/// result overwrites W.
void apply_t(ApplyTrans trans, int n, const double* t, int ldt, double* w,
             int ldw) {
  if (trans == ApplyTrans::no) {
    // W = T * W; T upper triangular: process rows top-down.
    for (int j = 0; j < n; ++j) {
      double* wj = col(w, ldw, j);
      for (int i = 0; i < n; ++i) {
        double sum = 0.0;
        for (int p = i; p < n; ++p) sum += col(t, ldt, p)[i] * wj[p];
        wj[i] = sum;  // safe: wj[i] only read at p >= i, already consumed
      }
    }
  } else {
    // W = Tᵀ * W; Tᵀ lower triangular: process rows bottom-up.
    for (int j = 0; j < n; ++j) {
      double* wj = col(w, ldw, j);
      for (int i = n - 1; i >= 0; --i) {
        double sum = 0.0;
        for (int p = 0; p <= i; ++p) sum += col(t, ldt, i)[p] * wj[p];
        wj[i] = sum;
      }
    }
  }
}

}  // namespace

void dgeqrt(int nb, double* a, int lda, double* t, int ldt) {
  TS_REQUIRE(nb > 0, "dgeqrt: tile size must be positive");
  std::vector<double> w(static_cast<std::size_t>(nb));
  for (int j = 0; j < nb; ++j) {
    double* aj = col(a, lda, j);
    const Reflector h = make_reflector(aj[j], aj + j + 1, nb - j - 1);
    aj[j] = h.beta;

    // Apply H_j to the trailing columns.
    if (h.tau != 0.0) {
      for (int c = j + 1; c < nb; ++c) {
        double* ac = col(a, lda, c);
        double dot = ac[j];
        for (int i = j + 1; i < nb; ++i) dot += aj[i] * ac[i];
        const double tw = h.tau * dot;
        ac[j] -= tw;
        for (int i = j + 1; i < nb; ++i) ac[i] -= tw * aj[i];
      }
    }

    // Build column j of T: w = V(:, 0:j-1)ᵀ v_j.
    for (int i = 0; i < j; ++i) {
      const double* ai = col(a, lda, i);
      double dot = ai[j];  // V(j, i) * v_j(j) = a(j, i) * 1
      for (int r = j + 1; r < nb; ++r) dot += ai[r] * aj[r];
      w[static_cast<std::size_t>(i)] = dot;
    }
    fill_t_column(j, h.tau, w.data(), t, ldt);
  }
}

void dormqr(ApplyTrans trans, int nb, const double* v, int ldv,
            const double* t, int ldt, double* c, int ldc) {
  // W = Vᵀ C  (V unit lower triangular as stored by dgeqrt).
  std::vector<double> w(static_cast<std::size_t>(nb) *
                        static_cast<std::size_t>(nb));
  const int ldw = nb;
  for (int j = 0; j < nb; ++j) {
    const double* cj = col(c, ldc, j);
    double* wj = col(w.data(), ldw, j);
    for (int i = 0; i < nb; ++i) {
      const double* vi = col(v, ldv, i);
      double sum = cj[i];  // diagonal 1 of V
      for (int r = i + 1; r < nb; ++r) sum += vi[r] * cj[r];
      wj[i] = sum;
    }
  }
  // W = op(T) W.
  apply_t(trans, nb, t, ldt, w.data(), ldw);
  // C -= V W.
  for (int j = 0; j < nb; ++j) {
    double* cj = col(c, ldc, j);
    const double* wj = col(w.data(), ldw, j);
    for (int i = 0; i < nb; ++i) {
      double sum = wj[i];  // diagonal 1 of V
      for (int p = 0; p < i; ++p) sum += col(v, ldv, p)[i] * wj[p];
      cj[i] -= sum;
    }
  }
}

void dtsqrt(int nb, double* r, int ldr, double* a2, int lda2, double* t,
            int ldt) {
  std::vector<double> w(static_cast<std::size_t>(nb));
  for (int j = 0; j < nb; ++j) {
    double* rj = col(r, ldr, j);
    double* vj = col(a2, lda2, j);
    const Reflector h = make_reflector(rj[j], vj, nb);
    rj[j] = h.beta;

    // Apply H_j to trailing columns of the stacked pair.  The top part of
    // v_j is e_j, so the dot picks a single row of R.
    if (h.tau != 0.0) {
      for (int c = j + 1; c < nb; ++c) {
        double* rc = col(r, ldr, c);
        double* ac = col(a2, lda2, c);
        double dot = rc[j];
        for (int i = 0; i < nb; ++i) dot += vj[i] * ac[i];
        const double tw = h.tau * dot;
        rc[j] -= tw;
        for (int i = 0; i < nb; ++i) ac[i] -= tw * vj[i];
      }
    }

    // T column j: tops of earlier reflectors are e_i ⟂ e_j, so only the
    // dense bottom parts contribute.
    for (int i = 0; i < j; ++i) {
      const double* vi = col(a2, lda2, i);
      double dot = 0.0;
      for (int rr = 0; rr < nb; ++rr) dot += vi[rr] * vj[rr];
      w[static_cast<std::size_t>(i)] = dot;
    }
    fill_t_column(j, h.tau, w.data(), t, ldt);
  }
}

void dtsmqr(ApplyTrans trans, int nb, double* c1, int ldc1, double* c2,
            int ldc2, const double* v2, int ldv2, const double* t, int ldt) {
  // W = Vᵀ [C1; C2] = C1 + V2ᵀ C2.
  std::vector<double> w(static_cast<std::size_t>(nb) *
                        static_cast<std::size_t>(nb));
  const int ldw = nb;
  for (int j = 0; j < nb; ++j) {
    const double* c1j = col(c1, ldc1, j);
    const double* c2j = col(c2, ldc2, j);
    double* wj = col(w.data(), ldw, j);
    for (int i = 0; i < nb; ++i) {
      const double* vi = col(v2, ldv2, i);
      double sum = c1j[i];
      for (int r = 0; r < nb; ++r) sum += vi[r] * c2j[r];
      wj[i] = sum;
    }
  }
  // W = op(T) W.
  apply_t(trans, nb, t, ldt, w.data(), ldw);
  // [C1; C2] -= [W; V2 W].
  for (int j = 0; j < nb; ++j) {
    double* c1j = col(c1, ldc1, j);
    double* c2j = col(c2, ldc2, j);
    const double* wj = col(w.data(), ldw, j);
    for (int i = 0; i < nb; ++i) c1j[i] -= wj[i];
    for (int p = 0; p < nb; ++p) {
      const double wv = wj[p];
      if (wv == 0.0) continue;
      const double* vp = col(v2, ldv2, p);
      for (int i = 0; i < nb; ++i) c2j[i] -= vp[i] * wv;
    }
  }
}

double flops_dgeqrt(int nb) {
  const double b = nb;
  return 4.0 / 3.0 * b * b * b;
}

double flops_dormqr(int nb) {
  const double b = nb;
  return 3.0 * b * b * b;
}

double flops_dtsqrt(int nb) {
  const double b = nb;
  return 2.0 * b * b * b;
}

double flops_dtsmqr(int nb) {
  const double b = nb;
  return 4.0 * b * b * b;
}

}  // namespace tasksim::linalg
