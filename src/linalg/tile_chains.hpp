// tile_chains.hpp — synthetic independent-chain task graph: NT serial
// chains of NT links each, one chain per diagonal tile.  Not a
// factorization; this is the embarrassingly-parallel extreme of the
// simulator's workload space (constant width, zero cross-chain
// dependencies), used by the lookahead ablation as the best case for
// out-of-order completion: with width == workers the strict §V-C engine
// serializes every round of completions on the TEQ front while the
// conservative release rule lets the whole round return at once, and the
// all-uniform durations make the virtual makespan invariant to claim
// assignment — so the speedup is measurable at zero accuracy cost.
#pragma once

#include "linalg/tile_matrix.hpp"
#include "sched/submitter.hpp"

namespace tasksim::linalg {

/// Submit NT independent chains of NT "dchain" tasks (NT = a.tiles()) and
/// wait for completion.  Chain c serializes on inout access to diagonal
/// tile (c, c); the task body is a trivial in-place update so real
/// execution stays meaningful for calibration.
void tile_chains(TileMatrix& a, sched::KernelSubmitter& submitter);

/// Number of tasks tile_chains submits for an NT×NT tile matrix: NT².
std::size_t chains_task_count(int nt);

}  // namespace tasksim::linalg
