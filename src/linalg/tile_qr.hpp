// tile_qr.hpp — task-based tile QR factorization (paper Algorithm 2 and
// Figure 2), submitted through a KernelSubmitter so the same code drives
// real execution and simulation.
//
// On exit `a` holds R in its upper tiles, the DGEQRT Householder vectors in
// the strict lower triangles of the diagonal tiles, and the DTSQRT vectors
// in the below-diagonal tiles; `t` holds the block-reflector T factors
// (T_kk from DGEQRT, T_mk from DTSQRT).
#pragma once

#include "linalg/tile_cholesky.hpp"  // TileAlgoOptions
#include "linalg/tile_matrix.hpp"
#include "sched/submitter.hpp"

namespace tasksim::linalg {

void tile_qr(TileMatrix& a, TileMatrix& t, sched::KernelSubmitter& submitter,
             const TileAlgoOptions& options = {});

/// Number of tasks the factorization submits for an NT×NT tile matrix.
std::size_t qr_task_count(int nt);

}  // namespace tasksim::linalg
