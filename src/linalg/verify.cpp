#include "linalg/verify.hpp"

#include <vector>

#include "support/error.hpp"

namespace tasksim::linalg {

double cholesky_residual(const Matrix& original, const TileMatrix& factored) {
  const Matrix l = lower_triangle(factored.to_dense());
  const Matrix llt = matmul(l, l, false, true);
  // The factorization only writes the lower triangle; compare symmetric
  // lower parts.
  const int n = original.rows();
  Matrix a_lower(n, n), llt_lower(n, n);
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      a_lower(i, j) = original(i, j);
      llt_lower(i, j) = llt(i, j);
    }
  }
  return relative_error(llt_lower, a_lower);
}

void qr_apply_q(const TileMatrix& factored, const TileMatrix& t,
                ApplyTrans trans, TileMatrix& b) {
  TS_REQUIRE(factored.tiles() == b.tiles() &&
                 factored.tile_size() == b.tile_size(),
             "qr_apply_q tiling mismatch");
  const int nt = factored.tiles();
  const int nb = factored.tile_size();

  if (trans == ApplyTrans::yes) {
    // Qᵀ · B: same reflector order as the factorization.
    for (int k = 0; k < nt; ++k) {
      for (int n = k; n < nt; ++n) {
        dormqr(ApplyTrans::yes, nb, factored.tile(k, k), nb, t.tile(k, k), nb,
               b.tile(k, n), nb);
      }
      for (int m = k + 1; m < nt; ++m) {
        for (int n = k; n < nt; ++n) {
          dtsmqr(ApplyTrans::yes, nb, b.tile(k, n), nb, b.tile(m, n), nb,
                 factored.tile(m, k), nb, t.tile(m, k), nb);
        }
      }
    }
  } else {
    // Q · B: reverse reflector order.
    for (int k = nt - 1; k >= 0; --k) {
      for (int m = nt - 1; m >= k + 1; --m) {
        for (int n = k; n < nt; ++n) {
          dtsmqr(ApplyTrans::no, nb, b.tile(k, n), nb, b.tile(m, n), nb,
                 factored.tile(m, k), nb, t.tile(m, k), nb);
        }
      }
      for (int n = k; n < nt; ++n) {
        dormqr(ApplyTrans::no, nb, factored.tile(k, k), nb, t.tile(k, k), nb,
               b.tile(k, n), nb);
      }
    }
  }
}

double qr_residual(const Matrix& original, const TileMatrix& factored,
                   const TileMatrix& t) {
  // B := R (the upper triangle of the factored matrix), then B := Q·B.
  const Matrix r = upper_triangle(factored.to_dense());
  TileMatrix b = TileMatrix::from_dense(r, factored.tile_size());
  qr_apply_q(factored, t, ApplyTrans::no, b);
  return relative_error(b.to_dense(), original);
}

double qr_orthogonality(const TileMatrix& factored, const TileMatrix& t) {
  const int n = factored.n();
  TileMatrix b =
      TileMatrix::from_dense(Matrix::identity(n), factored.tile_size());
  qr_apply_q(factored, t, ApplyTrans::yes, b);
  qr_apply_q(factored, t, ApplyTrans::no, b);
  const Matrix qqt = b.to_dense();
  return relative_error(qqt, Matrix::identity(n));
}

}  // namespace tasksim::linalg
