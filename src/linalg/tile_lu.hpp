// tile_lu.hpp — task-based tile LU factorization without pivoting.
//
// A third tile algorithm beyond the paper's two case studies, following
// the same structure as tile Cholesky but on general (diagonally dominant)
// matrices: panel DGETRF, row/column DTRSM updates, DGEMM trailing update.
// QUARK's siblings in PLASMA ship exactly this kernel set (the paper cites
// "LU factorization with partial pivoting for a multicore system with
// accelerators" as a QUARK application); the no-pivoting variant keeps the
// dependence structure identical per tile without the pivot-interchange
// tasks, which is what matters for scheduling/simulation studies.
#pragma once

#include "linalg/tile_cholesky.hpp"  // TileAlgoOptions
#include "linalg/tile_matrix.hpp"
#include "sched/submitter.hpp"

namespace tasksim::linalg {

/// Submit the tile LU task graph for A = L·U (no pivoting; the input
/// should be diagonally dominant or otherwise safely factorizable) and
/// wait for completion.  On exit the strict lower tiles/triangles hold L
/// (unit diagonal implied) and the upper triangle holds U.  Returns 0 on
/// success or the 1-based global index of a zero pivot.
int tile_lu_nopiv(TileMatrix& a, sched::KernelSubmitter& submitter,
                  const TileAlgoOptions& options = {});

/// Number of tasks the factorization submits for an NT×NT tile matrix.
std::size_t lu_task_count(int nt);

/// ‖A − L·U‖_F / ‖A‖_F for a completed factorization.
double lu_residual(const Matrix& original, const TileMatrix& factored);

}  // namespace tasksim::linalg
