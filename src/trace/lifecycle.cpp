#include "trace/lifecycle.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "support/strings.hpp"
#include "trace/chrome_export.hpp"

namespace tasksim::trace {

using flightrec::Event;
using flightrec::EventType;

namespace {

bool is_nan(double v) { return v != v; }

/// First-observation-wins setter: lifecycles keep the earliest timestamp
/// for each stage (teq_front can be re-reached after a displacement).
void set_if_unset(double& field, double value) {
  if (is_nan(field)) field = value;
}

}  // namespace

LifecycleLog build_lifecycle(flightrec::Stream stream) {
  LifecycleLog log;
  log.dropped_events = stream.dropped;
  for (const Event& e : stream.events) {
    TaskLifecycle* lc = nullptr;
    if (e.task != flightrec::kNoTask && e.type != EventType::teq_displaced) {
      lc = &log.tasks[e.task];
      lc->id = e.task;
    }
    switch (e.type) {
      case EventType::task_submit:
        set_if_unset(lc->submit_us, e.wall_us);
        break;
      case EventType::task_ready:
        set_if_unset(lc->ready_us, e.wall_us);
        break;
      case EventType::task_dispatch:
        set_if_unset(lc->dispatch_us, e.wall_us);
        lc->worker = e.worker;
        break;
      case EventType::task_start:
        set_if_unset(lc->start_us, e.wall_us);
        if (lc->worker < 0) lc->worker = e.worker;
        break;
      case EventType::teq_enter:
        set_if_unset(lc->teq_enter_us, e.wall_us);
        // Last entry wins for the lifecycle (a retried task's final span);
        // every attempt is kept in log.attempts for lane occupancy.
        lc->virtual_start_us = e.a;
        lc->virtual_end_us = e.b;
        log.attempts.push_back(AttemptSpan{e.task, e.worker, e.a, e.b});
        break;
      case EventType::teq_front:
        set_if_unset(lc->teq_front_us, e.wall_us);
        break;
      case EventType::task_return:
        lc->returned = true;
        lc->virtual_end_us = e.a;
        break;
      case EventType::task_finish:
        set_if_unset(lc->finish_us, e.wall_us);
        lc->finished = true;
        break;
      case EventType::dep_edge:
        log.edges.emplace_back(e.other, e.task);  // producer, consumer
        break;
      case EventType::task_failed:
        ++log.failed_attempts;
        ++lc->failed_attempts;
        break;
      case EventType::task_retry:
        ++log.retries;
        break;
      case EventType::task_poisoned:
        ++log.poisoned;
        lc->poisoned = true;
        break;
      case EventType::fault_stall:
        ++log.fault_stalls;
        break;
      case EventType::quiescence_timeout:
        ++log.quiescence_timeouts;
        break;
      case EventType::watchdog_stall:
        ++log.watchdog_stalls;
        break;
      default:
        break;  // window / clock / displacement / policy events: stream-only
    }
    if (lc != nullptr && lc->kernel.empty()) {
      auto it = stream.kernels.find(e.task);
      if (it != stream.kernels.end()) lc->kernel = it->second;
    }
  }
  log.events = std::move(stream.events);
  return log;
}

std::vector<std::string> validate_stream(const flightrec::Stream& stream) {
  std::vector<std::string> violations;
  auto fail = [&](std::string message) {
    violations.push_back(std::move(message));
  };
  if (stream.dropped > 0) {
    fail(strprintf("%llu events dropped by full ring buffers (stream is "
                   "incomplete; raise the recorder capacity)",
                   static_cast<unsigned long long>(stream.dropped)));
  }

  // Per-thread (per-shard) timestamps must be monotone: one writer per
  // shard reading one monotonic clock.
  std::unordered_map<std::uint32_t, double> last_per_shard;
  for (const Event& e : stream.events) {
    auto [it, inserted] = last_per_shard.emplace(e.shard, e.wall_us);
    if (!inserted) {
      if (e.wall_us < it->second) {
        fail(strprintf("shard %u timestamps not monotone: %.3f after %.3f",
                       e.shard, e.wall_us, it->second));
      }
      it->second = e.wall_us;
    }
  }

  // Per-task protocol: exactly one submit, transitions in lifecycle order,
  // exactly one terminal (finish) state, TEQ events inside the running
  // interval.
  struct TaskCheck {
    int submits = 0, readies = 0, dispatches = 0, starts = 0, finishes = 0;
    double submit_us = -1.0, ready_us = -1.0, dispatch_us = -1.0,
           start_us = -1.0, finish_us = -1.0;
  };
  std::map<std::uint64_t, TaskCheck> checks;
  auto ordered = [&](std::uint64_t task, const char* from, double from_us,
                     const char* to, double to_us) {
    if (from_us >= 0.0 && to_us >= 0.0 && to_us < from_us) {
      fail(strprintf("task %llu: %s at %.3f precedes %s at %.3f",
                     static_cast<unsigned long long>(task), to, to_us, from,
                     from_us));
    }
  };
  for (const Event& e : stream.events) {
    switch (e.type) {
      case EventType::task_submit: {
        TaskCheck& c = checks[e.task];
        ++c.submits;
        if (c.submit_us < 0.0) c.submit_us = e.wall_us;
        break;
      }
      case EventType::task_ready: {
        TaskCheck& c = checks[e.task];
        ++c.readies;
        if (c.ready_us < 0.0) c.ready_us = e.wall_us;
        break;
      }
      case EventType::task_dispatch: {
        TaskCheck& c = checks[e.task];
        ++c.dispatches;
        if (c.dispatch_us < 0.0) c.dispatch_us = e.wall_us;
        break;
      }
      case EventType::task_start: {
        TaskCheck& c = checks[e.task];
        ++c.starts;
        if (c.start_us < 0.0) c.start_us = e.wall_us;
        break;
      }
      case EventType::task_finish: {
        TaskCheck& c = checks[e.task];
        ++c.finishes;
        if (c.finish_us < 0.0) c.finish_us = e.wall_us;
        break;
      }
      case EventType::dep_edge: {
        if (checks.find(e.other) == checks.end()) {
          fail(strprintf("dependence edge %llu -> %llu references an "
                         "unrecorded producer",
                         static_cast<unsigned long long>(e.other),
                         static_cast<unsigned long long>(e.task)));
        }
        if (checks.find(e.task) == checks.end()) {
          fail(strprintf("dependence edge %llu -> %llu references an "
                         "unrecorded consumer",
                         static_cast<unsigned long long>(e.other),
                         static_cast<unsigned long long>(e.task)));
        }
        if (e.other == e.task) {
          fail(strprintf("self dependence on task %llu",
                         static_cast<unsigned long long>(e.task)));
        }
        break;
      }
      case EventType::teq_enter:
      case EventType::teq_front:
      case EventType::task_return: {
        auto it = checks.find(e.task);
        if (it == checks.end() || it->second.starts == 0) {
          fail(strprintf("task %llu: %s before the task started",
                         static_cast<unsigned long long>(e.task),
                         to_string(e.type)));
        } else if (it->second.finish_us >= 0.0) {
          fail(strprintf("task %llu: %s after the task finished",
                         static_cast<unsigned long long>(e.task),
                         to_string(e.type)));
        }
        break;
      }
      default:
        break;
    }
  }
  for (const auto& [task, c] : checks) {
    const auto id = static_cast<unsigned long long>(task);
    if (c.submits != 1) {
      fail(strprintf("task %llu: %d submit events (expected 1)", id,
                     c.submits));
    }
    if (c.finishes != 1) {
      fail(strprintf("task %llu: %d terminal (finish) events (expected "
                     "exactly 1)",
                     id, c.finishes));
    }
    if (c.readies == 0 && c.starts > 0) {
      fail(strprintf("task %llu: started without becoming ready", id));
    }
    if (c.dispatches == 0 && c.starts > 0) {
      fail(strprintf("task %llu: started without being dispatched", id));
    }
    if (c.starts == 0 && c.finishes > 0) {
      fail(strprintf("task %llu: finished without starting", id));
    }
    ordered(task, "submit", c.submit_us, "ready", c.ready_us);
    ordered(task, "ready", c.ready_us, "dispatch", c.dispatch_us);
    ordered(task, "dispatch", c.dispatch_us, "start", c.start_us);
    ordered(task, "start", c.start_us, "finish", c.finish_us);
  }
  return violations;
}

RaceAudit audit_races(const LifecycleLog& log) {
  RaceAudit audit;
  // Tolerance for "read the clock later than it became runnable": virtual
  // starts are exact double reads of the virtual clock, so this only
  // absorbs completion ties broken by the TEQ sequence number.
  constexpr double eps = 1e-6;

  // --- pass 1: stream scan --------------------------------------------
  // Reconstruct the virtual clock to (1) catch returns that move it
  // backward and (2) pin down the clock value at the moment each task was
  // submitted.  clock_advance records are folded eagerly so a task
  // submitted between the advance record and the matching task_return is
  // held to the advanced value.  The submit-time clock — unlike the clock
  // at the task_ready record — cannot be inflated by the race itself: a
  // racing run serializes *execution*, which delays the wall time of
  // release records and drags their folded clock up with the corruption,
  // while submission is driven by the submitter thread and the window.
  double vclock = 0.0;  // max completion returned so far (virtual)
  std::uint64_t vclock_task = flightrec::kNoTask;
  double floor_clock = 0.0;  // vclock plus eagerly-folded advances
  std::unordered_map<std::uint64_t, double> submit_floor;
  std::unordered_map<std::uint64_t, double> ready_floor;
  std::unordered_map<std::uint64_t, int> bound_lane;
  std::vector<std::pair<double, std::uint64_t>> returns;  // (end, task)
  // The clock may not rise between two consecutive submissions unless the
  // submitter was window-blocked or every lane was busy past the risen
  // value (quiescence clause (a)); candidates carry the rise for the
  // occupancy check below.
  struct SubmitRise {
    std::uint64_t task;
    double from, to, wall;
  };
  std::vector<SubmitRise> submit_rises;
  double submit_mark = 0.0;  // folded clock at the last submit/unblock
  // Hedge duplicates (DESIGN.md §12) are submitted from a *worker* thread in
  // the middle of the straggler's execution, so neither submission-side
  // invariant applies to them: their submission is not driven by the
  // submitter/window discipline (exempt from the rise check), and their
  // true runnable floor is the virtual instant the hedge fired — the
  // duplicate's virtual start carried by the hedge_launch record — not the
  // folded clock at the wall moment of the spawn.  hedge_launch is recorded
  // by the same thread immediately after the spawn, so it can trail the
  // duplicate's task_submit in the stream; collect the floors up front.
  std::unordered_map<std::uint64_t, double> hedge_floor;
  for (const Event& e : log.events) {
    if (e.type == EventType::hedge_launch) {
      auto [it, inserted] = hedge_floor.emplace(e.task, e.a);
      if (!inserted) it->second = std::min(it->second, e.a);
    }
  }
  for (const Event& e : log.events) {
    switch (e.type) {
      case EventType::task_submit:
        if (auto hf = hedge_floor.find(e.task); hf != hedge_floor.end()) {
          submit_floor.emplace(e.task, hf->second);
          continue;  // no submit_mark / rise bookkeeping for duplicates
        }
        if (floor_clock > submit_mark + eps) {
          submit_rises.push_back(
              SubmitRise{e.task, submit_mark, floor_clock, e.wall_us});
        }
        submit_mark = std::max(submit_mark, floor_clock);
        submit_floor.emplace(e.task, floor_clock);
        continue;
      case EventType::window_unblock:
        // Completions legitimately folded in while the submitter waited
        // for the window; restart the rise baseline here.
        submit_mark = std::max(submit_mark, floor_clock);
        continue;
      case EventType::task_ready:
        ready_floor.emplace(e.task, floor_clock);
        continue;
      case EventType::sched_lane_commit:
      case EventType::sched_immediate:
        // The scheduler bound this ready task to one lane (starpu dm/dmda
        // deques, ompss immediate-successor slots): only that lane could
        // have run it earlier.
        bound_lane[e.task] = e.worker;
        continue;
      case EventType::clock_advance:
        if (e.a > floor_clock) floor_clock = e.a;
        continue;
      case EventType::task_return:
        break;
      default:
        continue;
    }
    ++audit.tasks_returned;
    if (vclock_task != flightrec::kNoTask && vclock_task != e.task &&
        e.a < vclock - 1e-9) {
      audit.violations.push_back(
          RaceViolation{RaceViolation::Kind::backward_return, e.task,
                        vclock_task, e.a, vclock, e.wall_us});
    }
    returns.emplace_back(e.a, e.task);
    if (e.a > vclock) {
      vclock = e.a;
      vclock_task = e.task;
    }
    if (e.a > floor_clock) floor_clock = e.a;
  }

  // --- pass 2: runnable floors from producer completions ----------------
  // The moment a task became runnable is bounded below by the latest
  // virtual completion among its producers and the virtual clock when it
  // was submitted (a window-held task cannot run before the clock value at
  // which the window released it).  Both are virtual quantities a racing
  // run cannot inflate, which is the point: the clock recorded at the
  // task_ready event tracks the corrupted timeline itself, so a fully
  // serialized run shows every start equal to its ready-record clock and
  // hides the race.  Tasks with a producer whose completion never made it
  // into the stream are skipped (an unknown floor component can only make
  // the floor too low and manufacture violations).
  std::unordered_map<std::uint64_t, double> producer_max;
  std::unordered_set<std::uint64_t> incomplete;
  for (const auto& [producer, consumer] : log.edges) {
    auto it = log.tasks.find(producer);
    if (it == log.tasks.end() || !it->second.has_virtual_times()) {
      incomplete.insert(consumer);
      continue;
    }
    double& pmax = producer_max.try_emplace(consumer, 0.0).first->second;
    pmax = std::max(pmax, it->second.virtual_end_us);
  }

  // --- pass 3: per-lane virtual occupancy ------------------------------
  // A task with runnable floor f that read virtual start s was raced if
  // some lane able to claim it was virtually free before s: in a race-free
  // run it would have started at max(f, that lane's previous completion).
  // Under the quiescence discipline every clock advance past a ready task
  // requires every claimable lane to hold a queued task whose completion
  // is at least the advanced value, so the minimum lane busy-time reaches
  // s and nothing is flagged; without mitigation the oversubscribed host
  // serializes the timeline while other lanes sit virtually idle, which is
  // exactly what this detects.  The comparison uses only virtual
  // quantities, so record-ordering skew between threads cannot produce
  // false positives.
  // Prefer the per-attempt spans: a failed attempt occupies its lane for
  // backoff + partial progress, occupancy the final-attempt-only lifecycle
  // view would miss.  Hand-built logs without teq_enter events fall back
  // to the lifecycle spans.
  std::map<int, std::vector<std::pair<double, double>>> lane_occupancy;
  if (!log.attempts.empty()) {
    for (const AttemptSpan& a : log.attempts) {
      if (a.worker >= 0) {
        lane_occupancy[a.worker].emplace_back(a.virtual_start_us,
                                              a.virtual_end_us);
      }
    }
  } else {
    for (const auto& [id, lc] : log.tasks) {
      if (lc.has_virtual_times() && lc.worker >= 0) {
        lane_occupancy[lc.worker].emplace_back(lc.virtual_start_us,
                                               lc.virtual_end_us);
      }
    }
  }
  // A retried task cannot start its final attempt before its own earlier
  // attempts finished: their ends are part of its runnable floor, or every
  // retry would read as an inflated start.
  std::unordered_map<std::uint64_t, double> prior_attempt_end;
  for (const AttemptSpan& a : log.attempts) {
    auto it = log.tasks.find(a.task);
    if (it == log.tasks.end() || !it->second.has_virtual_times()) continue;
    if (a.virtual_end_us < it->second.virtual_end_us - eps) {
      double& pa = prior_attempt_end.try_emplace(a.task, 0.0).first->second;
      pa = std::max(pa, a.virtual_end_us);
    }
  }
  for (auto& [lane, spans] : lane_occupancy) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {  // prefix max of ends
      spans[i].second = std::max(spans[i].second, spans[i - 1].second);
    }
  }
  // Latest completion on `lane` among tasks that started before `t` (0 if
  // the lane had not run anything by then).
  auto busy_until = [&](int lane, double t) {
    auto it = lane_occupancy.find(lane);
    if (it == lane_occupancy.end()) return 0.0;
    const auto& spans = it->second;
    auto pos = std::lower_bound(
        spans.begin(), spans.end(), t,
        [](const std::pair<double, double>& span, double v) {
          return span.first < v;
        });
    if (pos == spans.begin()) return 0.0;
    return (pos - 1)->second;
  };
  // Lanes an unbound ready task could have been claimed by.  Lane 0 is
  // excluded when it belongs to a participating master, which executes
  // only inside wait_all.  Without a recorded lane count, trust only
  // lanes that demonstrably executed tasks.
  const int first_lane = log.master_lane0 ? 1 : 0;
  std::vector<int> claimable;
  if (log.worker_lanes > 0) {
    for (int lane = first_lane; lane < log.worker_lanes; ++lane) {
      claimable.push_back(lane);
    }
  } else {
    for (const auto& [lane, spans] : lane_occupancy) {
      if (lane >= first_lane) claimable.push_back(lane);
    }
  }

  std::vector<std::pair<double, std::uint64_t>> by_end = returns;
  std::sort(by_end.begin(), by_end.end());
  // The return that advanced the clock to `t`: latest completion <= t by
  // another task.
  auto advancer = [&](std::uint64_t victim, double t) {
    auto pos = std::upper_bound(
        by_end.begin(), by_end.end(),
        std::make_pair(t + eps, std::numeric_limits<std::uint64_t>::max()));
    while (pos != by_end.begin()) {
      --pos;
      if (pos->second != victim) return pos->second;
    }
    return flightrec::kNoTask;
  };

  for (const auto& [id, lc] : log.tasks) {
    if (!lc.has_virtual_times()) continue;
    if (incomplete.count(id)) continue;  // producer end missing from stream
    double floor = -1.0;
    if (auto sub = submit_floor.find(id); sub != submit_floor.end()) {
      floor = sub->second;
    }
    if (auto pa = prior_attempt_end.find(id); pa != prior_attempt_end.end()) {
      floor = std::max(floor, pa->second);
    }
    if (auto pmax = producer_max.find(id); pmax != producer_max.end()) {
      floor = std::max(floor, pmax->second);
    } else if (floor < 0.0) {
      // No submit record and no producers (truncated stream): the clock at
      // the ready record is the only floor evidence left.
      auto rdy = ready_floor.find(id);
      if (rdy == ready_floor.end()) continue;
      floor = rdy->second;
    }
    const double s = lc.virtual_start_us;
    double earliest_free = std::numeric_limits<double>::infinity();
    auto bound = bound_lane.find(id);
    if (bound != bound_lane.end()) {
      earliest_free = busy_until(bound->second, s);
    } else {
      if (lc.worker >= 0) earliest_free = busy_until(lc.worker, s);
      for (int lane : claimable) {
        earliest_free = std::min(earliest_free, busy_until(lane, s));
      }
    }
    if (earliest_free == std::numeric_limits<double>::infinity()) continue;
    const double runnable_at = std::max(floor, earliest_free);
    if (s > runnable_at + eps) {
      audit.violations.push_back(RaceViolation{
          RaceViolation::Kind::inflated_start, id, advancer(id, s), s,
          runnable_at, is_nan(lc.teq_enter_us) ? 0.0 : lc.teq_enter_us});
    }
  }
  // Submission-side check: a clock rise between consecutive submissions is
  // only safe when every claimable lane held a queued task completing at
  // or after the risen value, which leaves busy_until(lane, to) >= to on
  // every lane.  A virtually idle lane proves the workers drained the
  // ready pool and advanced the clock while submission was open.
  for (const SubmitRise& rise : submit_rises) {
    double cover = std::numeric_limits<double>::infinity();
    for (int lane : claimable) {
      cover = std::min(cover, busy_until(lane, rise.to));
    }
    if (cover == std::numeric_limits<double>::infinity()) continue;
    if (cover < rise.to - eps) {
      audit.violations.push_back(
          RaceViolation{RaceViolation::Kind::late_submission, rise.task,
                        advancer(rise.task, rise.to), rise.to, rise.from,
                        rise.wall});
    }
  }
  std::stable_sort(audit.violations.begin(), audit.violations.end(),
                   [](const RaceViolation& x, const RaceViolation& y) {
                     return x.wall_us < y.wall_us;
                   });
  return audit;
}

std::string RaceAudit::to_string(std::size_t max_listed) const {
  std::ostringstream os;
  os << "race audit: " << violations.size() << " violation"
     << (violations.size() == 1 ? "" : "s") << " across " << tasks_returned
     << " returned tasks";
  const std::size_t listed = std::min(max_listed, violations.size());
  for (std::size_t i = 0; i < listed; ++i) {
    const RaceViolation& v = violations[i];
    if (v.kind == RaceViolation::Kind::backward_return) {
      os << strprintf("\n  task %llu returned at virtual %.2f us after task "
                      "%llu had already returned at %.2f us (wall %.1f us)",
                      static_cast<unsigned long long>(v.task),
                      v.task_completion_us,
                      static_cast<unsigned long long>(v.prior_task),
                      v.prior_completion_us, v.wall_us);
    } else if (v.kind == RaceViolation::Kind::inflated_start) {
      os << strprintf("\n  task %llu read virtual start %.2f us though it "
                      "became runnable at %.2f us: the clock was advanced "
                      "under it, last by task %llu (wall %.1f us)",
                      static_cast<unsigned long long>(v.task),
                      v.task_completion_us, v.prior_completion_us,
                      static_cast<unsigned long long>(v.prior_task),
                      v.wall_us);
    } else {
      os << strprintf("\n  task %llu was submitted with the clock at %.2f "
                      "us though submission never paused past %.2f us: "
                      "workers outran the submitter and advanced the clock "
                      "with a lane idle, last by task %llu (wall %.1f us)",
                      static_cast<unsigned long long>(v.task),
                      v.task_completion_us, v.prior_completion_us,
                      static_cast<unsigned long long>(v.prior_task),
                      v.wall_us);
    }
  }
  if (violations.size() > listed) {
    os << "\n  ... " << (violations.size() - listed) << " more";
  }
  return os.str();
}

AttributionReport attribute_makespan(const LifecycleLog& log) {
  AttributionReport report;

  std::vector<const TaskLifecycle*> simulated;
  for (const auto& [id, lc] : log.tasks) {
    if (lc.has_virtual_times()) simulated.push_back(&lc);
  }
  for (const Event& e : log.events) {
    if (e.type == EventType::window_unblock) report.window_wait_us += e.a;
  }
  if (simulated.empty()) return report;

  double min_start = simulated.front()->virtual_start_us;
  const TaskLifecycle* last = simulated.front();
  for (const TaskLifecycle* lc : simulated) {
    min_start = std::min(min_start, lc->virtual_start_us);
    if (lc->virtual_end_us > last->virtual_end_us) last = lc;
  }
  report.virtual_makespan_us = last->virtual_end_us - min_start;

  // Same-worker predecessor lookup: per-worker tasks sorted by virtual end.
  std::unordered_map<int, std::vector<const TaskLifecycle*>> by_worker;
  for (const TaskLifecycle* lc : simulated) {
    by_worker[lc->worker].push_back(lc);
  }
  for (auto& [worker, tasks] : by_worker) {
    std::sort(tasks.begin(), tasks.end(),
              [](const TaskLifecycle* x, const TaskLifecycle* y) {
                return x->virtual_end_us < y->virtual_end_us;
              });
  }
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> producers;
  for (const auto& [producer, consumer] : log.edges) {
    producers[consumer].push_back(producer);
  }

  // Walk back from the timeline-ending task; at each step the binding
  // blocker is the latest-finishing predecessor that completed no later
  // than this task's virtual start (a dependence producer or the previous
  // task on the same worker).
  constexpr double eps = 1e-6;
  std::unordered_set<std::uint64_t> visited;
  const TaskLifecycle* current = last;
  while (current != nullptr && visited.insert(current->id).second) {
    ++report.chain_length;
    report.chain_kernel_us +=
        current->virtual_end_us - current->virtual_start_us;
    if (!is_nan(current->teq_enter_us) && !is_nan(current->teq_front_us)) {
      report.chain_teq_wait_us +=
          current->teq_front_us - current->teq_enter_us;
    }
    if (!is_nan(current->ready_us) && !is_nan(current->dispatch_us)) {
      report.chain_sched_wait_us +=
          current->dispatch_us - current->ready_us;
    }
    if (!is_nan(current->dispatch_us) && !is_nan(current->teq_enter_us)) {
      report.chain_bookkeeping_us +=
          current->teq_enter_us - current->dispatch_us;
    }
    if (!is_nan(current->teq_front_us) && !is_nan(current->finish_us)) {
      report.chain_bookkeeping_us +=
          current->finish_us - current->teq_front_us;
    }

    const TaskLifecycle* binding = nullptr;
    auto consider = [&](const TaskLifecycle* candidate) {
      if (candidate == nullptr || candidate == current) return;
      if (candidate->virtual_end_us > current->virtual_start_us + eps) return;
      if (binding == nullptr ||
          candidate->virtual_end_us > binding->virtual_end_us) {
        binding = candidate;
      }
    };
    auto it = producers.find(current->id);
    if (it != producers.end()) {
      for (std::uint64_t producer : it->second) {
        auto task_it = log.tasks.find(producer);
        if (task_it != log.tasks.end() &&
            task_it->second.has_virtual_times()) {
          consider(&task_it->second);
        }
      }
    }
    const auto& lane = by_worker[current->worker];
    for (auto rit = lane.rbegin(); rit != lane.rend(); ++rit) {
      if ((*rit)->virtual_end_us <= current->virtual_start_us + eps) {
        consider(*rit);
        break;  // sorted by end: the first admissible one is the latest
      }
    }
    current = binding;
  }
  report.chain_gap_us =
      std::max(0.0, report.virtual_makespan_us - report.chain_kernel_us);
  return report;
}

std::vector<std::string> render_lifecycle_events(const LifecycleLog& log,
                                                 int pid) {
  std::vector<std::string> out;
  auto number = [](double v) {
    std::ostringstream os;
    os.precision(15);
    os << v;
    return os.str();
  };
  for (const auto& [id, lc] : log.tasks) {
    if (!lc.has_virtual_times()) continue;
    const std::string name =
        escape_json(lc.kernel.empty() ? std::string("task") : lc.kernel);
    const std::string common =
        strprintf("\"cat\":\"lifecycle\",\"id\":%llu,\"pid\":%d,\"tid\":%d",
                  static_cast<unsigned long long>(id), pid,
                  lc.worker < 0 ? 0 : lc.worker);
    out.push_back("{\"name\":\"" + name + "\",\"ph\":\"b\"," + common +
                  ",\"ts\":" + number(lc.virtual_start_us) + "}");
    out.push_back("{\"name\":\"" + name + "\",\"ph\":\"e\"," + common +
                  ",\"ts\":" + number(lc.virtual_end_us) + "}");
  }
  std::uint64_t flow_id = 0;
  for (const auto& [producer_id, consumer_id] : log.edges) {
    const auto producer = log.tasks.find(producer_id);
    const auto consumer = log.tasks.find(consumer_id);
    if (producer == log.tasks.end() || consumer == log.tasks.end()) continue;
    if (!producer->second.has_virtual_times() ||
        !consumer->second.has_virtual_times()) {
      continue;
    }
    const std::uint64_t flow = flow_id++;
    out.push_back(strprintf(
        "{\"name\":\"dep\",\"cat\":\"dep\",\"ph\":\"s\",\"id\":%llu,"
        "\"pid\":%d,\"tid\":%d,\"ts\":%s}",
        static_cast<unsigned long long>(flow), pid,
        producer->second.worker < 0 ? 0 : producer->second.worker,
        number(producer->second.virtual_end_us).c_str()));
    out.push_back(strprintf(
        "{\"name\":\"dep\",\"cat\":\"dep\",\"ph\":\"f\",\"bp\":\"e\","
        "\"id\":%llu,\"pid\":%d,\"tid\":%d,\"ts\":%s}",
        static_cast<unsigned long long>(flow), pid,
        consumer->second.worker < 0 ? 0 : consumer->second.worker,
        number(consumer->second.virtual_start_us).c_str()));
  }
  // Hedge duplicate pairs (DESIGN.md §12), mirroring the dependence
  // arrows: a "hedge" flow from the original's lane to the duplicate at
  // the spawn instant, and a "hedge-win"/"hedge-cancel" flow back from the
  // duplicate to the original at the winner completion, so a hedged run's
  // races are visually traceable in the viewer.
  auto lane_of = [&](std::uint64_t task, int fallback) {
    const auto it = log.tasks.find(task);
    if (it == log.tasks.end() || it->second.worker < 0) return fallback;
    return it->second.worker;
  };
  std::uint64_t hedge_id = 0;
  for (const Event& e : log.events) {
    const char* name = nullptr;
    std::uint64_t from_task = 0, to_task = 0;
    double ts = 0.0;
    switch (e.type) {
      case EventType::hedge_launch:
        // task = duplicate id, other = original, a = duplicate start.
        name = "hedge";
        from_task = e.other;
        to_task = e.task;
        ts = e.a;
        break;
      case EventType::hedge_win:
        // task = original, other = duplicate, a = winner completion.
        name = "hedge-win";
        from_task = e.other;
        to_task = e.task;
        ts = e.a;
        break;
      case EventType::hedge_cancel:
        // task = duplicate, other = original, a = winner completion.
        name = "hedge-cancel";
        from_task = e.task;
        to_task = e.other;
        ts = e.a;
        break;
      default:
        continue;
    }
    const int fallback = e.worker < 0 ? 0 : e.worker;
    const std::uint64_t flow = hedge_id++;
    out.push_back(strprintf(
        "{\"name\":\"%s\",\"cat\":\"hedge\",\"ph\":\"s\",\"id\":%llu,"
        "\"pid\":%d,\"tid\":%d,\"ts\":%s}",
        name, static_cast<unsigned long long>(flow), pid,
        lane_of(from_task, fallback), number(ts).c_str()));
    out.push_back(strprintf(
        "{\"name\":\"%s\",\"cat\":\"hedge\",\"ph\":\"f\",\"bp\":\"e\","
        "\"id\":%llu,\"pid\":%d,\"tid\":%d,\"ts\":%s}",
        name, static_cast<unsigned long long>(flow), pid,
        lane_of(to_task, fallback), number(ts).c_str()));
  }
  return out;
}

}  // namespace tasksim::trace
