#include "trace/blame.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "support/strings.hpp"
#include "trace/escape.hpp"

namespace tasksim::trace {

using flightrec::Event;
using flightrec::EventType;

namespace {

constexpr double kEps = 1e-6;

bool is_nan(double v) { return v != v; }

/// Identity kernel: the committed label with the engine's !suffix
/// ("dgemm!failed" -> "dgemm") stripped, so retried/truncated attempts
/// aggregate — and align across runs — with their clean siblings.
std::string identity_kernel(const std::string& label) {
  const auto pos = label.find('!');
  return pos == std::string::npos ? label : label.substr(0, pos);
}

bool label_has(const std::string& label, const char* suffix) {
  return label.find(suffix) != std::string::npos;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

const char* to_string(BlameCategory category) {
  switch (category) {
    case BlameCategory::compute: return "compute";
    case BlameCategory::dependency: return "dependency";
    case BlameCategory::serialization: return "serialization";
    case BlameCategory::submit_lag: return "submit_lag";
    case BlameCategory::retry_backoff: return "retry_backoff";
    case BlameCategory::hedge: return "hedge";
    case BlameCategory::lookahead: return "lookahead";
    case BlameCategory::lane_idle: return "lane_idle";
  }
  return "?";
}

double BlameStep::gap_us() const {
  double gap = 0.0;
  for (int c = 0; c < kBlameCategoryCount; ++c) {
    const auto cat = static_cast<BlameCategory>(c);
    if (cat == BlameCategory::compute || cat == BlameCategory::retry_backoff ||
        cat == BlameCategory::hedge) {
      continue;
    }
    gap += parts[c];
  }
  return gap;
}

double BlameReport::attributed_us() const {
  double sum = 0.0;
  for (double v : totals) sum += v;
  return sum;
}

double BlameReport::coverage() const {
  if (makespan_us <= 0.0) return waterfall.empty() ? 0.0 : 1.0;
  return attributed_us() / makespan_us;
}

std::unordered_map<std::uint64_t, TraceAnnotation> blame_annotations(
    const LifecycleLog& log) {
  std::unordered_map<std::uint64_t, TraceAnnotation> notes;

  // Producer floors: max producer virtual completion per consumer (the
  // floor the §V-E auditor trusts — a virtual quantity a racing run cannot
  // inflate).  Producers missing from the stream contribute nothing; the
  // floor can only be too low, never too high.
  std::unordered_map<std::uint64_t, double> producer_max;
  for (const auto& [producer, consumer] : log.edges) {
    auto it = log.tasks.find(producer);
    if (it == log.tasks.end() || !it->second.has_virtual_times()) continue;
    double& pmax = producer_max.try_emplace(consumer, 0.0).first->second;
    pmax = std::max(pmax, it->second.virtual_end_us);
  }

  // Submit-time clock: fold clock advances and returns eagerly, exactly as
  // audit_races reconstructs it.  Hedge duplicates materialize mid-run; the
  // hedge_launch record carries their true floor (they never commit to the
  // trace, but annotate them anyway for completeness).
  std::unordered_map<std::uint64_t, double> hedge_floor;
  for (const Event& e : log.events) {
    if (e.type == EventType::hedge_launch) {
      auto [it, inserted] = hedge_floor.emplace(e.task, e.a);
      if (!inserted) it->second = std::min(it->second, e.a);
    }
  }
  std::unordered_map<std::uint64_t, double> submit_floor;
  // Per task: the backoff folded into its *latest* attempt's span (earlier
  // attempts' backoffs live inside their own committed !failed spans, which
  // blame already charges wholesale to retry_backoff — summing here would
  // double-charge the final span).
  std::unordered_map<std::uint64_t, std::pair<double, double>> retry_penalty;
  std::unordered_set<std::uint64_t> released, hedged, retried;
  double floor_clock = 0.0;
  for (const Event& e : log.events) {
    switch (e.type) {
      case EventType::task_submit: {
        auto hf = hedge_floor.find(e.task);
        submit_floor.emplace(e.task,
                             hf != hedge_floor.end() ? hf->second : floor_clock);
        break;
      }
      case EventType::clock_advance:
        if (e.a > floor_clock) floor_clock = e.a;
        break;
      case EventType::task_return:
        if (e.a > floor_clock) floor_clock = e.a;
        break;
      case EventType::retry_penalty: {
        auto [it, inserted] =
            retry_penalty.emplace(e.task, std::make_pair(e.b, e.a));
        if (!inserted && e.b >= it->second.first) {
          it->second = std::make_pair(e.b, e.a);
        }
        break;
      }
      case EventType::task_retry:
        retried.insert(e.task);
        break;
      case EventType::task_failed:
        retried.insert(e.task);
        break;
      case EventType::teq_release:
        released.insert(e.task);
        break;
      case EventType::hedge_launch:
        hedged.insert(e.other);  // the original raced by a duplicate
        hedged.insert(e.task);
        break;
      default:
        break;
    }
  }

  for (const auto& [id, lc] : log.tasks) {
    if (!lc.has_virtual_times() && !lc.poisoned) continue;
    TraceAnnotation note;
    auto pmax = producer_max.find(id);
    note.dep_floor_us = pmax != producer_max.end() ? pmax->second : 0.0;
    auto sub = submit_floor.find(id);
    note.submit_floor_us = sub != submit_floor.end() ? sub->second : -1.0;
    auto rb = retry_penalty.find(id);
    note.retry_backoff_us = rb != retry_penalty.end() ? rb->second.second : 0.0;
    if (retried.count(id)) note.flags |= kTraceFlagRetried;
    if (hedged.count(id)) note.flags |= kTraceFlagHedged;
    if (released.count(id)) note.flags |= kTraceFlagReleased;
    if (lc.poisoned) note.flags |= kTraceFlagSkipped;
    notes.emplace(id, note);
  }
  return notes;
}

namespace {

struct Node {
  TraceEvent e;
  std::string identity;
  bool failed = false;    // "!failed": the span is retry cost, not compute
  bool skipped = false;   // "!skipped": poisoned zero-length commit
  bool hedge_dup = false; // "!hedge": duplicate (never commits in practice)
  bool final_of_task = false;  // the last committed span of its task id
};

BlameReport build_blame_impl(const Trace& trace, const LifecycleLog* log) {
  BlameReport report;
  report.label = trace.label();
  const auto events = trace.sorted_events();
  report.events = events.size();
  if (events.empty()) return report;

  std::vector<Node> nodes(events.size());
  std::unordered_map<std::uint64_t, std::size_t> last_of_task;  // -> node idx
  double t0 = events.front().start_us;
  double t_end = events.front().end_us;
  for (std::size_t i = 0; i < events.size(); ++i) {
    Node& n = nodes[i];
    n.e = events[i];
    n.identity = identity_kernel(n.e.kernel);
    n.failed = label_has(n.e.kernel, "!failed");
    n.skipped = label_has(n.e.kernel, "!skipped");
    n.hedge_dup = label_has(n.e.kernel, "!hedge");
    t0 = std::min(t0, n.e.start_us);
    t_end = std::max(t_end, n.e.end_us);
    auto [it, inserted] = last_of_task.emplace(n.e.task_id, i);
    if (!inserted && n.e.end_us >= nodes[it->second].e.end_us) {
      it->second = i;
    }
    if (n.e.has_blame()) report.annotated = true;
  }
  for (const auto& [id, idx] : last_of_task) nodes[idx].final_of_task = true;
  report.tasks = last_of_task.size();
  report.t0_us = t0;
  report.makespan_us = t_end - t0;

  // Span decomposition per node: a failed attempt's whole span is retry
  // cost; a final span carries its task's folded backoff as retry cost and
  // the rest as compute (hedge-duplicate spans, were they ever committed,
  // count as hedge overhead).
  auto span_parts = [&](const Node& n, double& compute, double& retry,
                        double& hedge) {
    const double span = n.e.duration_us();
    compute = retry = hedge = 0.0;
    if (n.hedge_dup) {
      hedge = span;
    } else if (n.failed) {
      retry = span;
    } else {
      retry = n.final_of_task
                  ? std::min(std::max(n.e.retry_backoff_us, 0.0), span)
                  : 0.0;
      compute = span - retry;
    }
  };

  // Sorted completion indexes: per lane (binding predecessor lookup) and
  // global (the serialization floor: the latest completion anywhere at or
  // before a start — in the serialized engine, exactly the virtual clock
  // the start sampled).
  auto by_end = [&](std::size_t x, std::size_t y) {
    if (nodes[x].e.end_us != nodes[y].e.end_us) {
      return nodes[x].e.end_us < nodes[y].e.end_us;
    }
    return nodes[x].e.task_id < nodes[y].e.task_id;
  };
  std::map<int, std::vector<std::size_t>> lane_nodes;
  std::vector<std::size_t> all_nodes(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    all_nodes[i] = i;
    lane_nodes[nodes[i].e.worker].push_back(i);
  }
  std::sort(all_nodes.begin(), all_nodes.end(), by_end);
  for (auto& [lane, idxs] : lane_nodes) std::sort(idxs.begin(), idxs.end(), by_end);

  // Latest node in `idxs` with end <= t + kEps, excluding `self`; returns
  // nodes.size() when none qualifies.
  auto latest_before = [&](const std::vector<std::size_t>& idxs, double t,
                           std::size_t self) -> std::size_t {
    auto pos = std::upper_bound(
        idxs.begin(), idxs.end(), t + kEps,
        [&](double v, std::size_t i) { return v < nodes[i].e.end_us; });
    while (pos != idxs.begin()) {
      --pos;
      if (*pos != self) return *pos;
    }
    return nodes.size();
  };

  // Walk back from the timeline-ending event, tiling [t0, t_end]: at each
  // step the binding predecessor is the latest-completing admissible event
  // — the same-lane predecessor or (via the recorded producer floor) the
  // binding producer — exactly PR 2's binding chain, now over committed
  // events so failed attempts and annotations participate.
  std::size_t current = all_nodes.back();
  for (std::size_t i = all_nodes.size(); i-- > 0;) {
    // Deterministic chain head: max end, ties by the by_end order.
    if (nodes[all_nodes[i]].e.end_us < nodes[current].e.end_us) break;
    current = all_nodes[i];
  }

  std::unordered_set<std::size_t> visited;
  std::vector<BlameStep> chain;  // built back-to-front
  while (current < nodes.size() && visited.insert(current).second) {
    const Node& n = nodes[current];
    const double vs = n.e.start_us;
    BlameStep step;
    step.task_id = n.e.task_id;
    step.kernel = n.e.kernel;
    step.worker = n.e.worker;
    step.virtual_start_us = vs;
    step.virtual_end_us = n.e.end_us;
    double compute, retry, hedge;
    span_parts(n, compute, retry, hedge);
    step.parts[static_cast<int>(BlameCategory::compute)] = compute;
    step.parts[static_cast<int>(BlameCategory::retry_backoff)] = retry;
    step.parts[static_cast<int>(BlameCategory::hedge)] = hedge;

    // Binding predecessor: same-lane predecessor vs the producer floor.
    const std::size_t lane_pred =
        latest_before(lane_nodes[n.e.worker], vs, current);
    double lane_end = lane_pred < nodes.size()
                          ? nodes[lane_pred].e.end_us
                          : -std::numeric_limits<double>::infinity();
    const double dep = n.e.dep_floor_us;
    std::size_t binding = nodes.size();
    double lo = t0;
    if (dep >= 0.0 && dep > lane_end + kEps) {
      // The producer floor binds.  Continue the chain through the event
      // that completes at the floor; a missing producer (truncated trace)
      // terminates the chain and the gap below charges `dependency`.
      const std::size_t cand = latest_before(all_nodes, dep, current);
      if (cand < nodes.size() &&
          std::abs(nodes[cand].e.end_us - dep) <= kEps) {
        binding = cand;
        lo = nodes[cand].e.end_us;
      }
    } else if (lane_pred < nodes.size()) {
      binding = lane_pred;
      lo = lane_end;
    }

    // Classify the gap [lo, vs] by walking a cursor through the floors in
    // causal priority order; each rung consumes up to its floor.
    double cursor = std::min(lo, vs);
    auto rung = [&](BlameCategory cat, double to) {
      to = std::min(to, vs);
      if (to > cursor) {
        step.parts[static_cast<int>(cat)] += to - cursor;
        cursor = to;
      }
    };
    if (dep >= 0.0) rung(BlameCategory::dependency, std::min(dep, vs));
    if (n.e.submit_floor_us >= 0.0) {
      rung(BlameCategory::submit_lag, n.e.submit_floor_us);
    }
    const std::size_t ser = latest_before(all_nodes, vs, current);
    if (ser < nodes.size()) {
      rung(BlameCategory::serialization, nodes[ser].e.end_us);
    }
    rung((n.e.flags & kTraceFlagReleased) ? BlameCategory::lookahead
                                          : BlameCategory::lane_idle,
         vs);

    chain.push_back(std::move(step));
    current = binding;
  }
  std::reverse(chain.begin(), chain.end());
  report.waterfall = std::move(chain);

  // Budget totals and the per-kernel roll-up.
  std::unordered_set<std::uint64_t> chain_ids;
  for (const BlameStep& step : report.waterfall) {
    for (int c = 0; c < kBlameCategoryCount; ++c) {
      report.totals[c] += step.parts[c];
    }
    KernelBlame& k = report.kernels[identity_kernel(step.kernel)];
    ++k.chain_tasks;
    for (int c = 0; c < kBlameCategoryCount; ++c) {
      k.chain_us[c] += step.parts[c];
    }
  }
  for (const Node& n : nodes) {
    KernelBlame& k = report.kernels[n.identity];
    ++k.events;
    if (n.final_of_task) ++k.tasks;
    k.span_us += n.e.duration_us();
    double compute, retry, hedge;
    span_parts(n, compute, retry, hedge);
    k.retry_backoff_us += retry;
  }

  // Real-time (wall) per-stage decomposition, when the lifecycle is here.
  if (log != nullptr) {
    report.has_real_times = true;
    for (auto& [kernel, k] : report.kernels) {
      k.real_sched_wait_us = 0.0;
      k.real_prep_us = 0.0;
      k.real_body_us = 0.0;
      k.real_teq_wait_us = 0.0;
      k.real_drain_us = 0.0;
    }
    for (const auto& [id, lc] : log->tasks) {
      auto it = report.kernels.find(identity_kernel(lc.kernel));
      if (it == report.kernels.end()) continue;
      KernelBlame& k = it->second;
      auto add = [](double& acc, double from, double to) {
        if (!is_nan(from) && !is_nan(to) && to > from) acc += to - from;
      };
      add(k.real_sched_wait_us, lc.ready_us, lc.dispatch_us);
      add(k.real_prep_us, lc.dispatch_us, lc.start_us);
      add(k.real_body_us, lc.start_us, lc.teq_enter_us);
      add(k.real_teq_wait_us, lc.teq_enter_us, lc.teq_front_us);
      add(k.real_drain_us, lc.teq_front_us, lc.finish_us);
    }
    for (const Event& e : log->events) {
      if (e.type == EventType::hedge_win) report.hedge_wasted_us += e.b;
    }
  }
  return report;
}

}  // namespace

BlameReport build_blame(const Trace& trace) {
  return build_blame_impl(trace, nullptr);
}

BlameReport build_blame(const Trace& trace, const LifecycleLog& log) {
  return build_blame_impl(trace, &log);
}

std::string BlameReport::to_string(std::size_t max_steps) const {
  std::ostringstream os;
  os << strprintf(
      "blame: %s — %.1f us makespan over %zu tasks (%zu events), "
      "%.1f%% attributed%s\n",
      label.empty() ? "(unlabeled)" : label.c_str(), makespan_us, tasks,
      events, 100.0 * coverage(), annotated ? "" : " [no annotations]");
  os << "  makespan budget:\n";
  for (int c = 0; c < kBlameCategoryCount; ++c) {
    if (totals[c] <= 0.0) continue;
    const double share = makespan_us > 0.0 ? 100.0 * totals[c] / makespan_us
                                           : 0.0;
    os << strprintf("    %-14s %12.1f us  %5.1f%%\n",
                    trace::to_string(static_cast<BlameCategory>(c)),
                    totals[c], share);
  }
  if (hedge_wasted_us > 0.0) {
    os << strprintf("    (hedge losers threw away %.1f virtual us off-chain)\n",
                    hedge_wasted_us);
  }
  os << strprintf("  critical path: %zu links\n", waterfall.size());
  const std::size_t shown = std::min(max_steps, waterfall.size());
  // The most expensive links first: sort a copy by tiled width.
  std::vector<const BlameStep*> ranked;
  ranked.reserve(waterfall.size());
  for (const BlameStep& s : waterfall) ranked.push_back(&s);
  std::sort(ranked.begin(), ranked.end(),
            [](const BlameStep* a, const BlameStep* b) {
              double wa = 0.0, wb = 0.0;
              for (int c = 0; c < kBlameCategoryCount; ++c) {
                wa += a->parts[c];
                wb += b->parts[c];
              }
              if (wa != wb) return wa > wb;
              return a->task_id < b->task_id;
            });
  for (std::size_t i = 0; i < shown; ++i) {
    const BlameStep& s = *ranked[i];
    os << strprintf("    #%llu %-18s w%-3d [%.1f, %.1f]",
                    static_cast<unsigned long long>(s.task_id),
                    s.kernel.c_str(), s.worker, s.virtual_start_us,
                    s.virtual_end_us);
    for (int c = 0; c < kBlameCategoryCount; ++c) {
      if (s.parts[c] <= 0.0) continue;
      os << strprintf(" %s=%.1f",
                      trace::to_string(static_cast<BlameCategory>(c)),
                      s.parts[c]);
    }
    os << "\n";
  }
  if (waterfall.size() > shown) {
    os << strprintf("    ... %zu more links\n", waterfall.size() - shown);
  }
  return os.str();
}

std::string BlameReport::to_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"tasksim-blame-v1\"";
  os << ",\"label\":\"" << escape_json(label) << "\"";
  os << ",\"t0_us\":" << json_num(t0_us);
  os << ",\"makespan_us\":" << json_num(makespan_us);
  os << ",\"tasks\":" << tasks;
  os << ",\"events\":" << events;
  os << ",\"annotated\":" << (annotated ? "true" : "false");
  os << ",\"coverage\":" << json_num(coverage());
  os << ",\"attributed_us\":" << json_num(attributed_us());
  os << ",\"totals\":{";
  for (int c = 0; c < kBlameCategoryCount; ++c) {
    if (c > 0) os << ",";
    os << "\"" << trace::to_string(static_cast<BlameCategory>(c))
       << "\":" << json_num(totals[c]);
  }
  os << "}";
  os << ",\"hedge_wasted_us\":" << json_num(hedge_wasted_us);
  os << ",\"kernels\":{";
  bool first = true;
  for (const auto& [kernel, k] : kernels) {
    if (!first) os << ",";
    first = false;
    os << "\"" << escape_json(kernel) << "\":{";
    os << "\"tasks\":" << k.tasks << ",\"events\":" << k.events;
    os << ",\"span_us\":" << json_num(k.span_us);
    os << ",\"retry_backoff_us\":" << json_num(k.retry_backoff_us);
    os << ",\"chain_tasks\":" << k.chain_tasks;
    os << ",\"chain_us\":{";
    for (int c = 0; c < kBlameCategoryCount; ++c) {
      if (c > 0) os << ",";
      os << "\"" << trace::to_string(static_cast<BlameCategory>(c))
         << "\":" << json_num(k.chain_us[c]);
    }
    os << "}";
    if (has_real_times) {
      os << ",\"real\":{\"sched_wait_us\":" << json_num(k.real_sched_wait_us)
         << ",\"prep_us\":" << json_num(k.real_prep_us)
         << ",\"body_us\":" << json_num(k.real_body_us)
         << ",\"teq_wait_us\":" << json_num(k.real_teq_wait_us)
         << ",\"drain_us\":" << json_num(k.real_drain_us) << "}";
    } else {
      os << ",\"real\":null";
    }
    os << "}";
  }
  os << "}";
  os << ",\"waterfall\":[";
  for (std::size_t i = 0; i < waterfall.size(); ++i) {
    const BlameStep& s = waterfall[i];
    if (i > 0) os << ",";
    os << "{\"task\":" << s.task_id << ",\"kernel\":\""
       << escape_json(s.kernel) << "\",\"worker\":" << s.worker
       << ",\"start_us\":" << json_num(s.virtual_start_us)
       << ",\"end_us\":" << json_num(s.virtual_end_us) << ",\"parts\":{";
    bool first_part = true;
    for (int c = 0; c < kBlameCategoryCount; ++c) {
      if (s.parts[c] <= 0.0) continue;
      if (!first_part) os << ",";
      first_part = false;
      os << "\"" << trace::to_string(static_cast<BlameCategory>(c))
         << "\":" << json_num(s.parts[c]);
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

}  // namespace tasksim::trace
