#include "trace/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "stats/ks_test.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace tasksim::trace {

std::string TraceStats::to_string() const {
  std::ostringstream os;
  os << strprintf(
      "makespan=%s tasks=%zu workers=%d busy=%s utilization=%.1f%%\n",
      format_duration_us(makespan_us).c_str(), task_count, worker_count,
      format_duration_us(total_busy_us).c_str(), 100.0 * mean_utilization);
  for (const auto& [kernel, ks] : kernels) {
    os << strprintf("  %-10s n=%-6zu total=%-12s %s\n", kernel.c_str(),
                    ks.count, format_duration_us(ks.total_time_us).c_str(),
                    ks.duration.to_string().c_str());
  }
  return os.str();
}

TraceStats analyze(const Trace& trace) {
  TraceStats s;
  const auto events = trace.events();
  s.task_count = events.size();
  s.worker_count = trace.worker_count();
  s.makespan_us = trace.makespan_us();

  std::map<std::string, std::vector<double>> durations;
  for (const auto& e : events) {
    s.total_busy_us += e.duration_us();
    durations[e.kernel].push_back(e.duration_us());
  }
  // Degenerate traces (empty, all-zero-length events, or no workers) must
  // yield zeroed stats, never NaN/inf from the division.
  if (std::isfinite(s.makespan_us) && s.makespan_us > 0.0 &&
      s.worker_count > 0) {
    s.mean_utilization =
        s.total_busy_us / (s.makespan_us * static_cast<double>(s.worker_count));
  }
  for (auto& [kernel, samples] : durations) {
    KernelStats ks;
    ks.count = samples.size();
    ks.duration = stats::summarize(samples);
    for (double d : samples) ks.total_time_us += d;
    s.kernels.emplace(kernel, std::move(ks));
  }
  return s;
}

std::string TraceComparison::to_string() const {
  std::ostringstream os;
  os << strprintf(
      "real=%s sim=%s error=%+.2f%% start-order tau=%.3f matched=%zu\n",
      format_duration_us(real_makespan_us).c_str(),
      format_duration_us(sim_makespan_us).c_str(), makespan_error_pct,
      start_order_tau, matched_tasks);
  for (const auto& [kernel, d] : kernels) {
    os << strprintf("  %-10s KS=%.3f mean-err=%+.2f%% (n_real=%zu n_sim=%zu)\n",
                    kernel.c_str(), d.ks_statistic, d.mean_error_pct,
                    d.real_count, d.sim_count);
  }
  return os.str();
}

TraceComparison compare_traces(const Trace& real, const Trace& simulated) {
  TraceComparison c;
  c.real_makespan_us = real.makespan_us();
  c.sim_makespan_us = simulated.makespan_us();
  if (c.real_makespan_us > 0.0) {
    c.makespan_error_pct =
        100.0 * (c.sim_makespan_us - c.real_makespan_us) / c.real_makespan_us;
  }

  const auto real_events = real.events();
  const auto sim_events = simulated.events();

  // Match tasks by id for the start-order correlation.
  std::unordered_map<std::uint64_t, double> real_start;
  real_start.reserve(real_events.size());
  for (const auto& e : real_events) real_start.emplace(e.task_id, e.start_us);
  std::vector<double> xs, ys;
  for (const auto& e : sim_events) {
    if (auto it = real_start.find(e.task_id); it != real_start.end()) {
      xs.push_back(it->second);
      ys.push_back(e.start_us);
    }
  }
  c.matched_tasks = xs.size();
  if (xs.size() >= 2) c.start_order_tau = stats::kendall_tau(xs, ys);

  // Per-kernel duration distribution comparison.
  std::map<std::string, std::vector<double>> real_dur, sim_dur;
  for (const auto& e : real_events) real_dur[e.kernel].push_back(e.duration_us());
  for (const auto& e : sim_events) sim_dur[e.kernel].push_back(e.duration_us());
  for (const auto& [kernel, rd] : real_dur) {
    auto it = sim_dur.find(kernel);
    if (it == sim_dur.end()) continue;
    TraceComparison::KernelDelta delta;
    delta.real_count = rd.size();
    delta.sim_count = it->second.size();
    delta.ks_statistic = stats::ks_test_two_sample(rd, it->second).statistic;
    const double real_mean = stats::summarize(rd).mean;
    const double sim_mean = stats::summarize(it->second).mean;
    if (real_mean > 0.0) {
      delta.mean_error_pct = 100.0 * (sim_mean - real_mean) / real_mean;
    }
    c.kernels.emplace(kernel, delta);
  }
  return c;
}

std::vector<double> utilization_profile(const Trace& trace, int buckets) {
  TS_REQUIRE(buckets > 0, "buckets must be positive");
  std::vector<double> busy(static_cast<std::size_t>(buckets), 0.0);
  const auto events = trace.events();
  if (events.empty()) return busy;
  const double t0 = trace.start_us().value_or(0.0);
  const double span = trace.makespan_us();
  if (!std::isfinite(span) || span <= 0.0) return busy;
  const double bucket_width = span / buckets;
  const int workers = std::max(trace.worker_count(), 1);
  for (const auto& e : events) {
    // Distribute the event's duration over the buckets it overlaps.
    const double s = e.start_us - t0;
    const double t = e.end_us - t0;
    int b0 = std::clamp(static_cast<int>(s / bucket_width), 0, buckets - 1);
    int b1 = std::clamp(static_cast<int>(t / bucket_width), 0, buckets - 1);
    for (int b = b0; b <= b1; ++b) {
      const double lo = std::max(s, b * bucket_width);
      const double hi = std::min(t, (b + 1) * bucket_width);
      if (hi > lo) busy[static_cast<std::size_t>(b)] += hi - lo;
    }
  }
  for (double& v : busy) v /= bucket_width * workers;
  return busy;
}

}  // namespace tasksim::trace
