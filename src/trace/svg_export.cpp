#include "trace/svg_export.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"
#include "trace/color.hpp"
#include "trace/escape.hpp"

namespace tasksim::trace {

std::string render_svg(const Trace& trace, const SvgOptions& options) {
  const auto events = trace.sorted_events();
  const int workers = std::max(trace.worker_count(), 1);
  const double t0 = trace.start_us().value_or(0.0);
  double span = options.time_span_us.value_or(trace.makespan_us());
  if (span <= 0.0) span = 1.0;

  const int margin_left = 70;
  const int margin_top = options.title.empty() ? 10 : 34;
  const int axis_height = options.draw_axis ? 28 : 0;
  const int legend_height = options.draw_legend ? 22 : 0;
  const int lane_stride = options.lane_height_px + options.lane_gap_px;
  const int body_height = workers * lane_stride;
  const int width = margin_left + options.width_px + 20;
  const int height = margin_top + body_height + axis_height + legend_height + 10;

  const double scale = static_cast<double>(options.width_px) / span;

  std::ostringstream os;
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  os << strprintf(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" "
      "viewBox=\"0 0 %d %d\">\n",
      width, height, width, height);
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  if (!options.title.empty()) {
    os << strprintf(
        "<text x=\"%d\" y=\"20\" font-family=\"sans-serif\" font-size=\"14\" "
        "font-weight=\"bold\">%s</text>\n",
        margin_left, escape_xml(options.title).c_str());
  }

  // Worker lane labels and backgrounds.
  for (int w = 0; w < workers; ++w) {
    const int y = margin_top + w * lane_stride;
    os << strprintf(
        "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#f4f4f4\"/>\n",
        margin_left, y, options.width_px, options.lane_height_px);
    os << strprintf(
        "<text x=\"%d\" y=\"%d\" font-family=\"sans-serif\" font-size=\"9\" "
        "text-anchor=\"end\" fill=\"#444\">w%d</text>\n",
        margin_left - 6, y + options.lane_height_px - 4, w);
  }

  // Task rectangles.
  std::map<std::string, std::string> legend;  // kernel -> color
  for (const auto& e : events) {
    const double x = (e.start_us - t0) * scale;
    const double w = std::max(e.duration_us() * scale, 0.3);
    const int y = margin_top + e.worker * lane_stride;
    const std::string color = kernel_color(e.kernel);
    legend.emplace(e.kernel, color);
    os << strprintf(
        "<rect x=\"%.2f\" y=\"%d\" width=\"%.2f\" height=\"%d\" fill=\"%s\" "
        "stroke=\"#333\" stroke-width=\"0.2\"><title>%s #%llu [%s, %s]"
        "</title></rect>\n",
        margin_left + x, y, w, options.lane_height_px, color.c_str(),
        escape_xml(e.kernel).c_str(),
        static_cast<unsigned long long>(e.task_id),
        format_duration_us(e.start_us - t0).c_str(),
        format_duration_us(e.end_us - t0).c_str());
  }

  // Time axis with ~8 ticks.
  if (options.draw_axis) {
    const int axis_y = margin_top + body_height + 4;
    os << strprintf(
        "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#000\" "
        "stroke-width=\"1\"/>\n",
        margin_left, axis_y, margin_left + options.width_px, axis_y);
    const int ticks = 8;
    for (int i = 0; i <= ticks; ++i) {
      const double t = span * i / ticks;
      const double x = margin_left + t * scale;
      os << strprintf(
          "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\" stroke=\"#000\"/>\n",
          x, axis_y, x, axis_y + 4);
      os << strprintf(
          "<text x=\"%.1f\" y=\"%d\" font-family=\"sans-serif\" font-size=\"9\" "
          "text-anchor=\"middle\">%s</text>\n",
          x, axis_y + 15, format_duration_us(t).c_str());
    }
  }

  // Legend.
  if (options.draw_legend) {
    int x = margin_left;
    const int y = margin_top + body_height + axis_height + 6;
    for (const auto& [kernel, color] : legend) {
      os << strprintf(
          "<rect x=\"%d\" y=\"%d\" width=\"10\" height=\"10\" fill=\"%s\" "
          "stroke=\"#333\" stroke-width=\"0.3\"/>\n",
          x, y, color.c_str());
      os << strprintf(
          "<text x=\"%d\" y=\"%d\" font-family=\"sans-serif\" "
          "font-size=\"10\">%s</text>\n",
          x + 14, y + 9, escape_xml(kernel).c_str());
      x += 14 + 8 * static_cast<int>(kernel.size()) + 18;
    }
  }

  os << "</svg>\n";
  return os.str();
}

void write_svg(const Trace& trace, const std::string& path,
               const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) throw IoError(errno_detail("cannot open for writing: " + path));
  out << render_svg(trace, options);
  if (!out) throw IoError(errno_detail("write failed: " + path));
}

}  // namespace tasksim::trace
