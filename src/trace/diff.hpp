// diff.hpp — differential trace analysis: "why did run B regress vs A?"
//
// Two runs of the same task graph produce traces whose task ids are
// deterministic submission sequence numbers, but ids are brittle across
// policy changes (hedging spawns auxiliary tasks, retries multiply
// events).  Alignment therefore uses stable task identity: (identity
// kernel, per-kernel ordinal), where the identity kernel strips the
// engine's !suffix decorations and the ordinal numbers a kernel's tasks by
// ascending task id — submission is serial program order, so the i-th
// dgemm of run A is the i-th dgemm of run B even when absolute ids shift.
//
// The report attributes the makespan delta three ways:
//   * per task — self-time delta (committed spans incl. retry attempts),
//     start shift and completion shift, ranked into "top regressors",
//   * per kernel — aggregate self-time deltas, naming the kernel class
//     that grew the most,
//   * per category — the blame-budget shift between the two runs (both
//     sides run build_blame), naming the dominant category of the
//     regression.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/blame.hpp"
#include "trace/trace.hpp"

namespace tasksim::trace {

/// One aligned task's deltas (B relative to A).
struct TaskDelta {
  std::string kernel;         ///< identity kernel
  std::uint64_t ordinal = 0;  ///< per-kernel ordinal (stable identity)
  std::uint64_t task_a = 0, task_b = 0;  ///< raw ids in each run
  double self_a_us = 0.0, self_b_us = 0.0;  ///< committed span sums
  double d_self_us = 0.0;        ///< self_b - self_a
  double d_start_us = 0.0;       ///< first start shift
  double d_completion_us = 0.0;  ///< last end shift
};

struct KernelDelta {
  std::size_t tasks_a = 0, tasks_b = 0;
  double self_a_us = 0.0, self_b_us = 0.0;
  double d_self_us = 0.0;
};

struct CategoryDelta {
  double a_us = 0.0, b_us = 0.0;
  double delta_us = 0.0;
};

struct TraceDiff {
  std::string label_a, label_b;
  double makespan_a_us = 0.0, makespan_b_us = 0.0;
  double delta_us = 0.0;  ///< makespan_b - makespan_a
  std::size_t matched = 0;   ///< aligned task identities
  std::size_t only_a = 0, only_b = 0;  ///< unmatched identities
  /// Aligned tasks ranked by self-time growth (descending d_self_us).
  std::vector<TaskDelta> top_regressions;
  std::map<std::string, KernelDelta> kernels;
  /// Blame-budget shift per category (index = BlameCategory).
  std::array<CategoryDelta, kBlameCategoryCount> categories{};
  /// The kernel class with the largest self-time growth (empty when none
  /// grew) and the category with the largest budget growth.
  std::string dominant_kernel;
  std::string dominant_category;

  std::string to_string(std::size_t max_tasks = 10) const;
  /// Stable JSON document ("tasksim-diff-v1").
  std::string to_json() const;
};

/// Diff run B against baseline A.  `max_regressions` caps the ranked task
/// list (0 = keep every aligned task).
TraceDiff diff_traces(const Trace& a, const Trace& b,
                      std::size_t max_regressions = 32);

}  // namespace tasksim::trace
