#include "trace/text_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace tasksim::trace {

void save_trace(const Trace& trace, std::ostream& out) {
  // 17 significant digits round-trip any double exactly; set it before any
  // output and restore the caller's precision afterwards — the stream is
  // borrowed, not owned.
  const std::streamsize saved_precision = out.precision(17);
  // v1 when no event carries blame annotations (byte-stable with older
  // writers); v2 appends the four blame columns between the times and the
  // kernel so annotated traces stay causally analyzable offline.
  const bool v2 = trace.has_annotations();
  out << "# tasksim-trace " << (v2 ? "v2" : "v1") << " label=" << trace.label()
      << "\n";
  for (const auto& e : trace.sorted_events()) {
    out << e.task_id << ' ' << e.worker << ' ' << e.start_us << ' ' << e.end_us;
    if (v2) {
      out << ' ' << e.dep_floor_us << ' ' << e.submit_floor_us << ' '
          << e.retry_backoff_us << ' ' << e.flags;
    }
    out << ' ' << e.kernel << "\n";
  }
  out.precision(saved_precision);
}

void save_trace(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError(errno_detail("cannot open for writing: " + path));
  save_trace(trace, out);
  if (!out) throw IoError(errno_detail("write failed: " + path));
}

Trace load_trace(std::istream& in) {
  std::string line;
  TS_REQUIRE(static_cast<bool>(std::getline(in, line)), "empty trace file");
  const bool v2 = starts_with(line, "# tasksim-trace v2");
  TS_REQUIRE(v2 || starts_with(line, "# tasksim-trace v1"),
             "not a tasksim trace file: bad header");
  Trace trace;
  if (auto pos = line.find("label="); pos != std::string::npos) {
    trace.set_label(trim(line.substr(pos + 6)));
  }
  const std::size_t kernel_field = v2 ? 8 : 4;
  std::size_t line_no = 1;
  std::unordered_map<std::uint64_t, TraceAnnotation> notes;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto fields = split_whitespace(trimmed);
    TS_REQUIRE(fields.size() >= kernel_field + 1,
               "trace line " + std::to_string(line_no) + ": expected " +
                   std::to_string(kernel_field + 1) + " fields");
    const auto task_id = static_cast<std::uint64_t>(parse_int(fields[0]));
    const int worker = static_cast<int>(parse_int(fields[1]));
    const double start = parse_double(fields[2]);
    const double end = parse_double(fields[3]);
    TS_REQUIRE(std::isfinite(start) && std::isfinite(end),
               "trace line " + std::to_string(line_no) +
                   ": non-finite event time");
    TS_REQUIRE(end >= start, "trace line " + std::to_string(line_no) +
                                 ": event ends before it starts");
    if (v2) {
      TraceAnnotation note;
      note.dep_floor_us = parse_double(fields[4]);
      note.submit_floor_us = parse_double(fields[5]);
      note.retry_backoff_us = parse_double(fields[6]);
      note.flags = static_cast<std::uint32_t>(parse_int(fields[7]));
      TS_REQUIRE(std::isfinite(note.dep_floor_us) &&
                     std::isfinite(note.submit_floor_us) &&
                     std::isfinite(note.retry_backoff_us) &&
                     note.retry_backoff_us >= 0.0,
                 "trace line " + std::to_string(line_no) +
                     ": malformed blame fields");
      notes[task_id] = note;
    }
    // Kernel names may not contain whitespace; everything after the fixed
    // columns is rejoined defensively in case a name ever does.
    std::vector<std::string> rest(fields.begin() + kernel_field, fields.end());
    trace.record(task_id, join(rest, " "), worker, start, end);
  }
  if (!notes.empty()) trace.annotate(notes);
  return trace;
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError(errno_detail("cannot open for reading: " + path));
  return load_trace(in);
}

}  // namespace tasksim::trace
