#include "trace/text_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace tasksim::trace {

void save_trace(const Trace& trace, std::ostream& out) {
  // 17 significant digits round-trip any double exactly; set it before any
  // output and restore the caller's precision afterwards — the stream is
  // borrowed, not owned.
  const std::streamsize saved_precision = out.precision(17);
  out << "# tasksim-trace v1 label=" << trace.label() << "\n";
  for (const auto& e : trace.sorted_events()) {
    out << e.task_id << ' ' << e.worker << ' ' << e.start_us << ' ' << e.end_us
        << ' ' << e.kernel << "\n";
  }
  out.precision(saved_precision);
}

void save_trace(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError(errno_detail("cannot open for writing: " + path));
  save_trace(trace, out);
  if (!out) throw IoError(errno_detail("write failed: " + path));
}

Trace load_trace(std::istream& in) {
  std::string line;
  TS_REQUIRE(static_cast<bool>(std::getline(in, line)), "empty trace file");
  TS_REQUIRE(starts_with(line, "# tasksim-trace v1"),
             "not a tasksim trace file: bad header");
  Trace trace;
  if (auto pos = line.find("label="); pos != std::string::npos) {
    trace.set_label(trim(line.substr(pos + 6)));
  }
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto fields = split_whitespace(trimmed);
    TS_REQUIRE(fields.size() >= 5,
               "trace line " + std::to_string(line_no) + ": expected 5 fields");
    const auto task_id = static_cast<std::uint64_t>(parse_int(fields[0]));
    const int worker = static_cast<int>(parse_int(fields[1]));
    const double start = parse_double(fields[2]);
    const double end = parse_double(fields[3]);
    TS_REQUIRE(std::isfinite(start) && std::isfinite(end),
               "trace line " + std::to_string(line_no) +
                   ": non-finite event time");
    TS_REQUIRE(end >= start, "trace line " + std::to_string(line_no) +
                                 ": event ends before it starts");
    // Kernel names may not contain whitespace; everything after field 3 is
    // rejoined defensively in case a name ever does.
    std::vector<std::string> rest(fields.begin() + 4, fields.end());
    trace.record(task_id, join(rest, " "), worker, start, end);
  }
  return trace;
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError(errno_detail("cannot open for reading: " + path));
  return load_trace(in);
}

}  // namespace tasksim::trace
