#include "trace/diff.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "support/strings.hpp"
#include "trace/escape.hpp"

namespace tasksim::trace {

namespace {

std::string identity_kernel(const std::string& label) {
  const auto pos = label.find('!');
  return pos == std::string::npos ? label : label.substr(0, pos);
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// One run's per-task summary, keyed for alignment.
struct TaskSummary {
  std::uint64_t task_id = 0;
  std::string kernel;        ///< identity kernel
  double self_us = 0.0;      ///< sum of committed spans (retries included)
  double first_start_us = 0.0;
  double last_end_us = 0.0;
};

/// Fold a trace into per-task summaries ordered by task id, then assign
/// per-kernel ordinals: ids are deterministic submission sequence numbers,
/// so ordinal order is submission order within the kernel class.
std::map<std::pair<std::string, std::uint64_t>, TaskSummary> summarize(
    const Trace& trace) {
  std::map<std::uint64_t, TaskSummary> by_id;
  for (const TraceEvent& e : trace.sorted_events()) {
    auto [it, inserted] = by_id.try_emplace(e.task_id);
    TaskSummary& t = it->second;
    if (inserted) {
      t.task_id = e.task_id;
      t.kernel = identity_kernel(e.kernel);
      t.first_start_us = e.start_us;
      t.last_end_us = e.end_us;
    }
    t.self_us += e.duration_us();
    t.first_start_us = std::min(t.first_start_us, e.start_us);
    t.last_end_us = std::max(t.last_end_us, e.end_us);
  }
  std::map<std::string, std::uint64_t> next_ordinal;
  std::map<std::pair<std::string, std::uint64_t>, TaskSummary> keyed;
  for (auto& [id, t] : by_id) {  // ascending task id == submission order
    const std::uint64_t ordinal = next_ordinal[t.kernel]++;
    keyed.emplace(std::make_pair(t.kernel, ordinal), std::move(t));
  }
  return keyed;
}

}  // namespace

TraceDiff diff_traces(const Trace& a, const Trace& b,
                      std::size_t max_regressions) {
  TraceDiff diff;
  diff.label_a = a.label();
  diff.label_b = b.label();
  diff.makespan_a_us = a.makespan_us();
  diff.makespan_b_us = b.makespan_us();
  diff.delta_us = diff.makespan_b_us - diff.makespan_a_us;

  const auto tasks_a = summarize(a);
  const auto tasks_b = summarize(b);

  std::vector<TaskDelta> deltas;
  for (const auto& [key, ta] : tasks_a) {
    auto it = tasks_b.find(key);
    if (it == tasks_b.end()) {
      ++diff.only_a;
      KernelDelta& k = diff.kernels[key.first];
      ++k.tasks_a;
      k.self_a_us += ta.self_us;
      continue;
    }
    const TaskSummary& tb = it->second;
    ++diff.matched;
    TaskDelta d;
    d.kernel = key.first;
    d.ordinal = key.second;
    d.task_a = ta.task_id;
    d.task_b = tb.task_id;
    d.self_a_us = ta.self_us;
    d.self_b_us = tb.self_us;
    d.d_self_us = tb.self_us - ta.self_us;
    d.d_start_us = tb.first_start_us - ta.first_start_us;
    d.d_completion_us = tb.last_end_us - ta.last_end_us;
    deltas.push_back(std::move(d));
    KernelDelta& k = diff.kernels[key.first];
    ++k.tasks_a;
    ++k.tasks_b;
    k.self_a_us += ta.self_us;
    k.self_b_us += tb.self_us;
  }
  for (const auto& [key, tb] : tasks_b) {
    if (tasks_a.count(key)) continue;
    ++diff.only_b;
    KernelDelta& k = diff.kernels[key.first];
    ++k.tasks_b;
    k.self_b_us += tb.self_us;
  }
  for (auto& [kernel, k] : diff.kernels) {
    k.d_self_us = k.self_b_us - k.self_a_us;
  }

  std::sort(deltas.begin(), deltas.end(),
            [](const TaskDelta& x, const TaskDelta& y) {
              if (x.d_self_us != y.d_self_us) return x.d_self_us > y.d_self_us;
              if (x.kernel != y.kernel) return x.kernel < y.kernel;
              return x.ordinal < y.ordinal;
            });
  if (max_regressions > 0 && deltas.size() > max_regressions) {
    deltas.resize(max_regressions);
  }
  diff.top_regressions = std::move(deltas);

  // Category shift: blame both sides with whatever annotations they carry.
  const BlameReport blame_a = build_blame(a);
  const BlameReport blame_b = build_blame(b);
  for (int c = 0; c < kBlameCategoryCount; ++c) {
    diff.categories[c].a_us = blame_a.totals[c];
    diff.categories[c].b_us = blame_b.totals[c];
    diff.categories[c].delta_us = blame_b.totals[c] - blame_a.totals[c];
  }

  double best_kernel = 0.0;
  for (const auto& [kernel, k] : diff.kernels) {
    if (k.d_self_us > best_kernel) {
      best_kernel = k.d_self_us;
      diff.dominant_kernel = kernel;
    }
  }
  double best_category = 0.0;
  for (int c = 0; c < kBlameCategoryCount; ++c) {
    if (diff.categories[c].delta_us > best_category) {
      best_category = diff.categories[c].delta_us;
      diff.dominant_category = to_string(static_cast<BlameCategory>(c));
    }
  }
  return diff;
}

std::string TraceDiff::to_string(std::size_t max_tasks) const {
  std::ostringstream os;
  const double pct = makespan_a_us > 0.0 ? 100.0 * delta_us / makespan_a_us
                                         : 0.0;
  os << strprintf(
      "diff: %s -> %s: makespan %.1f us -> %.1f us (%+.1f us, %+.1f%%)\n",
      label_a.empty() ? "A" : label_a.c_str(),
      label_b.empty() ? "B" : label_b.c_str(), makespan_a_us, makespan_b_us,
      delta_us, pct);
  os << strprintf("  aligned %zu task identities (%zu only in A, %zu only "
                  "in B)\n",
                  matched, only_a, only_b);
  if (!dominant_kernel.empty() || !dominant_category.empty()) {
    os << strprintf("  dominant regressing kernel: %s; dominant category "
                    "shift: %s\n",
                    dominant_kernel.empty() ? "-" : dominant_kernel.c_str(),
                    dominant_category.empty() ? "-"
                                              : dominant_category.c_str());
  }
  os << "  category shift (B - A):\n";
  for (int c = 0; c < kBlameCategoryCount; ++c) {
    const CategoryDelta& d = categories[c];
    if (d.a_us == 0.0 && d.b_us == 0.0) continue;
    os << strprintf("    %-14s %12.1f -> %-12.1f (%+.1f us)\n",
                    trace::to_string(static_cast<BlameCategory>(c)), d.a_us,
                    d.b_us, d.delta_us);
  }
  os << "  per-kernel self time (B - A):\n";
  for (const auto& [kernel, k] : kernels) {
    os << strprintf("    %-14s %12.1f -> %-12.1f (%+.1f us, %zu/%zu tasks)\n",
                    kernel.c_str(), k.self_a_us, k.self_b_us, k.d_self_us,
                    k.tasks_a, k.tasks_b);
  }
  const std::size_t shown = std::min(max_tasks, top_regressions.size());
  if (shown > 0) os << "  top regressing tasks:\n";
  for (std::size_t i = 0; i < shown; ++i) {
    const TaskDelta& d = top_regressions[i];
    os << strprintf("    %s[%llu] self %+.1f us (%.1f -> %.1f), start "
                    "%+.1f, completion %+.1f\n",
                    d.kernel.c_str(),
                    static_cast<unsigned long long>(d.ordinal), d.d_self_us,
                    d.self_a_us, d.self_b_us, d.d_start_us,
                    d.d_completion_us);
  }
  return os.str();
}

std::string TraceDiff::to_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"tasksim-diff-v1\"";
  os << ",\"label_a\":\"" << escape_json(label_a) << "\"";
  os << ",\"label_b\":\"" << escape_json(label_b) << "\"";
  os << ",\"makespan_a_us\":" << json_num(makespan_a_us);
  os << ",\"makespan_b_us\":" << json_num(makespan_b_us);
  os << ",\"delta_us\":" << json_num(delta_us);
  os << ",\"matched\":" << matched;
  os << ",\"only_a\":" << only_a << ",\"only_b\":" << only_b;
  os << ",\"dominant_kernel\":\"" << escape_json(dominant_kernel) << "\"";
  os << ",\"dominant_category\":\"" << escape_json(dominant_category) << "\"";
  os << ",\"categories\":{";
  for (int c = 0; c < kBlameCategoryCount; ++c) {
    if (c > 0) os << ",";
    os << "\"" << trace::to_string(static_cast<BlameCategory>(c))
       << "\":{\"a_us\":" << json_num(categories[c].a_us)
       << ",\"b_us\":" << json_num(categories[c].b_us)
       << ",\"delta_us\":" << json_num(categories[c].delta_us) << "}";
  }
  os << "}";
  os << ",\"kernels\":{";
  bool first = true;
  for (const auto& [kernel, k] : kernels) {
    if (!first) os << ",";
    first = false;
    os << "\"" << escape_json(kernel) << "\":{\"tasks_a\":" << k.tasks_a
       << ",\"tasks_b\":" << k.tasks_b
       << ",\"self_a_us\":" << json_num(k.self_a_us)
       << ",\"self_b_us\":" << json_num(k.self_b_us)
       << ",\"delta_us\":" << json_num(k.d_self_us) << "}";
  }
  os << "}";
  os << ",\"top_regressions\":[";
  for (std::size_t i = 0; i < top_regressions.size(); ++i) {
    const TaskDelta& d = top_regressions[i];
    if (i > 0) os << ",";
    os << "{\"kernel\":\"" << escape_json(d.kernel)
       << "\",\"ordinal\":" << d.ordinal << ",\"task_a\":" << d.task_a
       << ",\"task_b\":" << d.task_b
       << ",\"self_a_us\":" << json_num(d.self_a_us)
       << ",\"self_b_us\":" << json_num(d.self_b_us)
       << ",\"d_self_us\":" << json_num(d.d_self_us)
       << ",\"d_start_us\":" << json_num(d.d_start_us)
       << ",\"d_completion_us\":" << json_num(d.d_completion_us) << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace tasksim::trace
