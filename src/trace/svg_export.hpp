// svg_export.hpp — Gantt-style SVG rendering of execution traces.
//
// Reproduces the paper's trace figures (Figures 6-7): one horizontal lane
// per worker, one colored rectangle per task, identical time axis across
// exports so a real trace and a simulated trace can be compared visually.
#pragma once

#include <optional>
#include <string>

#include "trace/trace.hpp"

namespace tasksim::trace {

struct SvgOptions {
  int width_px = 1400;          ///< drawing width of the timeline area
  int lane_height_px = 14;      ///< height of one worker lane
  int lane_gap_px = 2;
  bool draw_legend = true;
  bool draw_axis = true;
  std::string title;            ///< optional title above the timeline
  /// Fixed time axis [0, time_span_us]; when unset the trace's own span is
  /// used.  Figures 6-7 pass the real trace's span to both exports so the
  /// two SVGs share a time scale, as in the paper.
  std::optional<double> time_span_us;
};

/// Render the trace to an SVG document string.
std::string render_svg(const Trace& trace, const SvgOptions& options = {});

/// Render and write to `path`; throws IoError on failure.
void write_svg(const Trace& trace, const std::string& path,
               const SvgOptions& options = {});

}  // namespace tasksim::trace
