#include "trace/trace.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/profiler.hpp"

namespace tasksim::trace {

Trace::Trace(const Trace& other) {
  std::lock_guard<std::mutex> lock(other.mutex_);
  label_ = other.label_;
  events_ = other.events_;
}

Trace& Trace::operator=(const Trace& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mutex_, other.mutex_);
  label_ = other.label_;
  events_ = other.events_;
  return *this;
}

Trace::Trace(Trace&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mutex_);
  label_ = std::move(other.label_);
  events_ = std::move(other.events_);
}

Trace& Trace::operator=(Trace&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mutex_, other.mutex_);
  label_ = std::move(other.label_);
  events_ = std::move(other.events_);
  return *this;
}

void Trace::set_label(std::string label) {
  std::lock_guard<std::mutex> lock(mutex_);
  label_ = std::move(label);
}

std::string Trace::label() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return label_;
}

void Trace::record(std::uint64_t task_id, const std::string& kernel,
                   int worker, double start_us, double end_us) {
  TS_PROF_SCOPE(trace_append);
  TS_REQUIRE(end_us >= start_us, "trace event ends before it starts");
  TS_REQUIRE(worker >= 0, "negative worker index");
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(TraceEvent{task_id, kernel, worker, start_us, end_us});
}

void Trace::annotate(
    const std::unordered_map<std::uint64_t, TraceAnnotation>& notes) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (TraceEvent& e : events_) {
    auto it = notes.find(e.task_id);
    if (it == notes.end()) continue;
    e.dep_floor_us = it->second.dep_floor_us;
    e.submit_floor_us = it->second.submit_floor_us;
    e.retry_backoff_us = it->second.retry_backoff_us;
    e.flags = it->second.flags;
  }
}

bool Trace::has_annotations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const TraceEvent& e : events_) {
    if (e.has_blame()) return true;
  }
  return false;
}

std::size_t Trace::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Trace::sorted_events() const {
  std::vector<TraceEvent> out = events();
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.start_us != b.start_us) return a.start_us < b.start_us;
    return a.task_id < b.task_id;
  });
  return out;
}

std::vector<TraceEvent> Trace::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

int Trace::worker_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int max_worker = -1;
  for (const auto& e : events_) max_worker = std::max(max_worker, e.worker);
  return max_worker + 1;
}

double Trace::makespan_us() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.empty()) return 0.0;
  double lo = events_.front().start_us;
  double hi = events_.front().end_us;
  for (const auto& e : events_) {
    lo = std::min(lo, e.start_us);
    hi = std::max(hi, e.end_us);
  }
  return hi - lo;
}

std::optional<double> Trace::start_us() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.empty()) return std::nullopt;
  double lo = events_.front().start_us;
  for (const auto& e : events_) lo = std::min(lo, e.start_us);
  return lo;
}

void Trace::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

}  // namespace tasksim::trace
