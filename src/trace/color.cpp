#include "trace/color.hpp"

#include <array>
#include <cstdint>

#include "support/strings.hpp"

namespace tasksim::trace {

namespace {
// Qualitative fallback palette (ColorBrewer Set3-like, high contrast).
constexpr std::array<const char*, 12> kPalette = {
    "#8dd3c7", "#fdb462", "#bebada", "#fb8072", "#80b1d3", "#b3de69",
    "#fccde5", "#d9d9d9", "#bc80bd", "#ccebc5", "#ffed6f", "#ffffb3",
};

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}
}  // namespace

std::string kernel_color(const std::string& kernel) {
  const std::string k = to_lower(kernel);
  // Cholesky kernels.
  if (k == "dpotrf" || k == "dpotf2") return "#2ca02c";  // green
  if (k == "dtrsm") return "#1f77b4";                    // blue
  if (k == "dsyrk") return "#d62728";                    // red
  if (k == "dgemm") return "#9467bd";                    // purple
  // QR kernels.
  if (k == "dgeqrt") return "#2ca02c";
  if (k == "dormqr" || k == "dunmqr") return "#1f77b4";
  if (k == "dtsqrt") return "#ff7f0e";                   // orange
  if (k == "dtsmqr") return "#9467bd";
  return kPalette[fnv1a(k) % kPalette.size()];
}

}  // namespace tasksim::trace
