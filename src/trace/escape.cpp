#include "trace/escape.hpp"

#include <cstdio>

namespace tasksim::trace {

std::string escape_json(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string escape_xml(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      // Tab/LF/CR are legal XML characters but would be mangled by
      // attribute-value normalization; a reference survives verbatim.
      case '\t': out += "&#9;"; break;
      case '\n': out += "&#10;"; break;
      case '\r': out += "&#13;"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // XML 1.0 forbids the remaining C0 controls even as character
          // references; substitute U+FFFD so the document stays well-formed.
          out += "\xEF\xBF\xBD";
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace tasksim::trace
