#include "trace/chrome_export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "support/error.hpp"
#include "support/log.hpp"
#include "trace/escape.hpp"

namespace tasksim::trace {

namespace {

void append_trace(std::ostringstream& os, const Trace& trace, int pid,
                  bool& first) {
  const std::string label =
      trace.label().empty() ? ("trace-" + std::to_string(pid)) : trace.label();
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
     << ",\"args\":{\"name\":\"" << escape_json(label) << "\"}}";
  for (const auto& e : trace.sorted_events()) {
    os << ",\n{\"name\":\"" << escape_json(e.kernel) << "\",\"cat\":\"task\""
       << ",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << e.worker
       << ",\"ts\":" << e.start_us << ",\"dur\":" << e.duration_us()
       << ",\"args\":{\"task_id\":" << e.task_id << "}}";
  }
}
}  // namespace

CounterTrack occupancy_track(const std::vector<TraceEvent>& events,
                             const std::string& name, int pid) {
  // Sum of +1 deltas at starts and -1 deltas at ends, folded into one
  // sample per distinct timestamp (Chrome counters are step functions).
  std::map<double, double> deltas;
  for (const auto& e : events) {
    deltas[e.start_us] += 1.0;
    deltas[e.end_us] -= 1.0;
  }
  CounterTrack track;
  track.name = name;
  track.pid = pid;
  track.samples.reserve(deltas.size());
  double level = 0.0;
  bool warned = false;
  for (const auto& [ts, delta] : deltas) {
    level += delta;
    // An interval-consistent event set never goes negative (every end is
    // preceded by its start).  Surface the inconsistency instead of
    // clamping it away: a negative level means an end event without a
    // matching start — a malformed or truncated trace.
    if (level < 0.0 && !warned) {
      TS_LOG_WARN << "occupancy track '" << name
                  << "': in-flight count drops to " << level << " at t=" << ts
                  << " us (end event without a matching start; the input "
                     "trace is malformed)";
      warned = true;
    }
    // Zero-duration events cancel out; still emit the sample so the track
    // shows activity at that instant's neighbours correctly.
    track.samples.push_back({ts, level});
  }
  return track;
}

CounterTrack occupancy_track(const Trace& trace, const std::string& name,
                             int pid) {
  return occupancy_track(trace.events(), name, pid);
}

std::vector<CounterTrack> profiler_share_tracks(
    const prof::SampleSeries& series, int pid) {
  std::vector<CounterTrack> tracks;
  if (series.samples.empty()) return tracks;
  for (std::size_t p = 0; p < prof::kPhaseCount; ++p) {
    const auto phase = static_cast<prof::Phase>(p);
    bool any = false;
    for (const auto& sample : series.samples) {
      if (sample.excl_wall_us[p] > 0.0) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    CounterTrack track;
    track.name = std::string("prof: ") + prof::phase_name(phase);
    track.pid = pid;
    track.samples.reserve(series.samples.size());
    // The samples carry cumulative exclusive totals (summed over every
    // thread); the share over one interval is Δexcl / Δwall, which can
    // exceed 100% when several threads sit in the phase at once.
    double prev_wall = series.t0_us;
    double prev_excl = 0.0;
    for (const auto& sample : series.samples) {
      const double dt = sample.wall_us - prev_wall;
      const double dexcl = sample.excl_wall_us[p] - prev_excl;
      const double share = dt > 0.0 ? 100.0 * dexcl / dt : 0.0;
      track.samples.push_back({sample.wall_us - series.t0_us, share});
      prev_wall = sample.wall_us;
      prev_excl = sample.excl_wall_us[p];
    }
    tracks.push_back(std::move(track));
  }
  return tracks;
}

std::string render_chrome_json(const std::vector<const Trace*>& traces,
                               const std::vector<CounterTrack>& counters,
                               const std::vector<std::string>& extra_events) {
  std::ostringstream os;
  os.precision(15);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  int pid = 1;
  for (const Trace* trace : traces) {
    TS_REQUIRE(trace != nullptr, "null trace");
    append_trace(os, *trace, pid++, first);
  }
  for (const CounterTrack& track : counters) {
    for (const auto& sample : track.samples) {
      if (!first) os << ",\n";
      first = false;
      os << "{\"name\":\"" << escape_json(track.name)
         << "\",\"ph\":\"C\",\"pid\":" << track.pid
         << ",\"ts\":" << sample.ts_us << ",\"args\":{\"value\":"
         << sample.value << "}}";
    }
  }
  for (const std::string& event : extra_events) {
    if (!first) os << ",\n";
    first = false;
    os << event;
  }
  os << "\n]}\n";
  return os.str();
}

std::string render_chrome_json(const std::vector<const Trace*>& traces,
                               const std::vector<CounterTrack>& counters) {
  return render_chrome_json(traces, counters, {});
}

std::string render_chrome_json(const std::vector<const Trace*>& traces) {
  return render_chrome_json(traces, {});
}

std::string render_chrome_json(const Trace& trace) {
  return render_chrome_json(std::vector<const Trace*>{&trace});
}

void write_chrome_json(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError(errno_detail("cannot open for writing: " + path));
  out << render_chrome_json(trace);
  if (!out) throw IoError(errno_detail("write failed: " + path));
}

}  // namespace tasksim::trace
