#include "trace/chrome_export.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace tasksim::trace {

namespace {
std::string escape_json(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) break;  // drop controls
        out.push_back(c);
    }
  }
  return out;
}

void append_trace(std::ostringstream& os, const Trace& trace, int pid,
                  bool& first) {
  const std::string label =
      trace.label().empty() ? ("trace-" + std::to_string(pid)) : trace.label();
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
     << ",\"args\":{\"name\":\"" << escape_json(label) << "\"}}";
  for (const auto& e : trace.sorted_events()) {
    os << ",\n{\"name\":\"" << escape_json(e.kernel) << "\",\"cat\":\"task\""
       << ",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << e.worker
       << ",\"ts\":" << e.start_us << ",\"dur\":" << e.duration_us()
       << ",\"args\":{\"task_id\":" << e.task_id << "}}";
  }
}
}  // namespace

std::string render_chrome_json(const std::vector<const Trace*>& traces) {
  std::ostringstream os;
  os.precision(15);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  int pid = 1;
  for (const Trace* trace : traces) {
    TS_REQUIRE(trace != nullptr, "null trace");
    append_trace(os, *trace, pid++, first);
  }
  os << "\n]}\n";
  return os.str();
}

std::string render_chrome_json(const Trace& trace) {
  return render_chrome_json(std::vector<const Trace*>{&trace});
}

void write_chrome_json(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open for writing: " + path);
  out << render_chrome_json(trace);
  if (!out) throw IoError("write failed: " + path);
}

}  // namespace tasksim::trace
