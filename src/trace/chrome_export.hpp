// chrome_export.hpp — export traces in the Chrome Trace Event format
// (the JSON consumed by chrome://tracing and https://ui.perfetto.dev).
//
// Complements the paper-style SVG: the JSON viewer gives interactive zoom
// and per-event inspection, which is how one actually debugs a divergence
// between a real and a simulated trace.
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace tasksim::trace {

/// Render as a Chrome Trace Event JSON document ("traceEvents" array of
/// complete events; one pid per trace label, one tid per worker lane).
std::string render_chrome_json(const Trace& trace);

/// Render several traces (e.g. real and simulated) into one document so
/// the viewer shows them as separate processes on one timeline.
std::string render_chrome_json(const std::vector<const Trace*>& traces);

void write_chrome_json(const Trace& trace, const std::string& path);

}  // namespace tasksim::trace
