// chrome_export.hpp — export traces in the Chrome Trace Event format
// (the JSON consumed by chrome://tracing and https://ui.perfetto.dev).
//
// Complements the paper-style SVG: the JSON viewer gives interactive zoom
// and per-event inspection, which is how one actually debugs a divergence
// between a real and a simulated trace.
#pragma once

#include <string>
#include <vector>

#include "support/profiler.hpp"
#include "trace/escape.hpp"
#include "trace/trace.hpp"

namespace tasksim::trace {

/// One sample of a time-varying counter (Chrome "C" event).
struct CounterSample {
  double ts_us = 0.0;
  double value = 0.0;
};

/// A named counter series rendered alongside the task bars of the process
/// `pid` (pids are assigned 1..N in trace order by render_chrome_json).
struct CounterTrack {
  std::string name;
  int pid = 1;
  std::vector<CounterSample> samples;
};

/// Derive the number of in-flight tasks over time from a trace (+1 at each
/// event start, -1 at each end).  For a simulated trace this is exactly the
/// Task Execution Queue occupancy; for a real trace it is worker busyness.
/// A malformed event set (an end without a matching start) drives the count
/// negative; the inconsistency is reported via TS_LOG_WARN and the negative
/// level is emitted as-is rather than clamped away.
CounterTrack occupancy_track(const Trace& trace, const std::string& name,
                             int pid = 1);
CounterTrack occupancy_track(const std::vector<TraceEvent>& events,
                             const std::string& name, int pid = 1);

/// Convert a profiler sample series into per-phase counter tracks: one
/// "prof: <phase>" track per phase that accrued exclusive wall time, each
/// sample the phase's share (percent) of elapsed wall time over the
/// preceding sampling interval.  Timestamps are relative to the series
/// start, so the tracks line up with virtual timelines starting at 0.
std::vector<CounterTrack> profiler_share_tracks(
    const prof::SampleSeries& series, int pid = 1);

/// Render as a Chrome Trace Event JSON document ("traceEvents" array of
/// complete events; one pid per trace label, one tid per worker lane).
std::string render_chrome_json(const Trace& trace);

/// Render several traces (e.g. real and simulated) into one document so
/// the viewer shows them as separate processes on one timeline.
std::string render_chrome_json(const std::vector<const Trace*>& traces);

/// As above, plus counter tracks (queue depth, ready-pool depth, …)
/// rendered as Chrome counter events on their associated process.
std::string render_chrome_json(const std::vector<const Trace*>& traces,
                               const std::vector<CounterTrack>& counters);

/// As above, plus pre-rendered extra events (complete JSON objects, no
/// separators) appended to the traceEvents array — how the task-lifecycle
/// spans and dependency flow events of trace/lifecycle merge into one
/// document with the duration bars and counter tracks.
std::string render_chrome_json(const std::vector<const Trace*>& traces,
                               const std::vector<CounterTrack>& counters,
                               const std::vector<std::string>& extra_events);

void write_chrome_json(const Trace& trace, const std::string& path);

}  // namespace tasksim::trace
