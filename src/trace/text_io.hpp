// text_io.hpp — plain-text trace serialization (paper §V-A: "trace data can
// also be stored in a plain text file for further processing").
//
// Format: a header line `# tasksim-trace v1 label=<label>`, then one line
// per event: `<task_id> <worker> <start_us> <end_us> <kernel>`.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace tasksim::trace {

void save_trace(const Trace& trace, std::ostream& out);
void save_trace(const Trace& trace, const std::string& path);

Trace load_trace(std::istream& in);
Trace load_trace(const std::string& path);

}  // namespace tasksim::trace
