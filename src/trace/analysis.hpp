// analysis.hpp — quantitative trace statistics and real-vs-simulated trace
// comparison.
//
// The paper argues trace fidelity qualitatively (Figures 6-7 "look almost
// identical").  TaskSim backs that with numbers: makespan error, per-kernel
// duration distributions (two-sample KS), per-worker utilization, and the
// rank correlation between the orders in which the two runs started the
// same tasks.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "stats/descriptive.hpp"
#include "trace/trace.hpp"

namespace tasksim::trace {

/// Per-kernel-class aggregate over one trace.
struct KernelStats {
  std::size_t count = 0;
  stats::Summary duration;      ///< summary of event durations (us)
  double total_time_us = 0.0;   ///< sum of durations
};

struct TraceStats {
  double makespan_us = 0.0;
  std::size_t task_count = 0;
  int worker_count = 0;
  double total_busy_us = 0.0;       ///< sum of all task durations
  double mean_utilization = 0.0;    ///< busy / (makespan * workers)
  std::map<std::string, KernelStats> kernels;

  std::string to_string() const;
};

TraceStats analyze(const Trace& trace);

/// Comparison of a simulated trace against the real trace of the same
/// task graph.
struct TraceComparison {
  double real_makespan_us = 0.0;
  double sim_makespan_us = 0.0;
  /// Signed percentage error of the simulated makespan: 100*(sim-real)/real.
  double makespan_error_pct = 0.0;
  /// Kendall tau-b between real and simulated start times of the tasks
  /// common to both traces (1.0 = same start order).
  double start_order_tau = 0.0;
  /// Tasks present in both traces (matched by task_id).
  std::size_t matched_tasks = 0;
  /// Per kernel: two-sample KS statistic between real and simulated
  /// durations, plus mean-duration percentage error.
  struct KernelDelta {
    double ks_statistic = 0.0;
    double mean_error_pct = 0.0;
    std::size_t real_count = 0;
    std::size_t sim_count = 0;
  };
  std::map<std::string, KernelDelta> kernels;

  std::string to_string() const;
};

TraceComparison compare_traces(const Trace& real, const Trace& simulated);

/// Utilization profile: fraction of workers busy over `buckets` equal time
/// slices; used by tests to check that the simulated trace preserves the
/// characteristic ramp-up / plateau / tail shape of the real one.
std::vector<double> utilization_profile(const Trace& trace, int buckets);

}  // namespace tasksim::trace
