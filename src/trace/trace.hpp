// trace.hpp — execution-trace recording.
//
// The paper (§V-A) builds a rudimentary tracing environment because general
// tracing tools record wall-clock time, while the simulation needs traces in
// *virtual* time.  TaskSim's `Trace` records both kinds through the same
// interface: an event is (task id, kernel name, worker, start, end) in
// microseconds on whichever clock the producer used.  Recording is
// thread-safe and lock-cheap (per-call mutex; events are tiny), and traces
// can be exported to SVG (paper's visualization) or a plain-text format that
// round-trips through `load_trace` for offline analysis.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace tasksim::trace {

/// Per-event flags carried by blame annotations (trace/blame) and the v2
/// text format.
enum TraceEventFlag : std::uint32_t {
  kTraceFlagRetried = 1u << 0,   ///< injected failures preceded this task
  kTraceFlagHedged = 1u << 1,    ///< a hedge duplicate raced this task
  kTraceFlagReleased = 1u << 2,  ///< committed via a lookahead release
  kTraceFlagSkipped = 1u << 3,   ///< poisoned: committed a zero-length span
};

struct TraceEvent {
  std::uint64_t task_id = 0;   ///< scheduler-assigned task sequence number
  std::string kernel;          ///< kernel class, e.g. "dgemm"
  int worker = 0;              ///< executing worker index
  double start_us = 0.0;
  double end_us = 0.0;
  // Blame annotations (trace/blame): virtual floors recorded post-run from
  // the lifecycle stream so a saved trace stays causally analyzable.  A
  // negative floor means "not recorded" (v1 traces, real runs).
  double dep_floor_us = -1.0;     ///< max producer virtual completion
  double submit_floor_us = -1.0;  ///< virtual clock when the task was submitted
  double retry_backoff_us = 0.0;  ///< virtual backoff folded into the span
  std::uint32_t flags = 0;        ///< TraceEventFlag bitmask

  double duration_us() const { return end_us - start_us; }
  bool has_blame() const { return dep_floor_us >= 0.0 || submit_floor_us >= 0.0; }
};

/// One task's blame annotation, applied to every event with that task id
/// (retried tasks commit one event per attempt; the floors are per task).
struct TraceAnnotation {
  double dep_floor_us = -1.0;
  double submit_floor_us = -1.0;
  double retry_backoff_us = 0.0;
  std::uint32_t flags = 0;
};

/// Append-only, thread-safe event log with run metadata.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string label) : label_(std::move(label)) {}

  Trace(const Trace& other);
  Trace& operator=(const Trace& other);
  /// Moves lock the source; the source is left empty.  Never move a trace
  /// that is still being recorded into.
  Trace(Trace&& other) noexcept;
  Trace& operator=(Trace&& other) noexcept;

  void set_label(std::string label);
  std::string label() const;

  /// Record one completed task.  Callable concurrently.
  void record(std::uint64_t task_id, const std::string& kernel, int worker,
              double start_us, double end_us);

  /// Apply blame annotations post-run: every event whose task id appears in
  /// `notes` receives that task's floors and flags.  Events without an
  /// entry are left untouched.
  void annotate(const std::unordered_map<std::uint64_t, TraceAnnotation>& notes);

  /// True when any event carries blame annotations (controls whether
  /// text_io writes the v2 format).
  bool has_annotations() const;

  /// Number of events recorded so far.
  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// Snapshot of all events ordered by (start, task_id).
  std::vector<TraceEvent> sorted_events() const;

  /// Snapshot in recording order.
  std::vector<TraceEvent> events() const;

  /// Highest worker index seen + 1 (0 when empty).
  int worker_count() const;

  /// max(end) - min(start); 0 when empty.
  double makespan_us() const;

  /// Earliest event start (nullopt when empty).
  std::optional<double> start_us() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::string label_;
  std::vector<TraceEvent> events_;
};

}  // namespace tasksim::trace
