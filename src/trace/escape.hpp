// escape.hpp — string escaping shared by the trace exporters.
//
// Kernel labels flow into three serialized formats: JSON (chrome_export,
// the blame/diff reports), XML (svg_export), and the plain-text trace
// format.  Labels are normally plain kernel names, but the engine decorates
// them ("dgemm!failed") and nothing stops a caller from recording arbitrary
// text — so every exporter escapes through the same two helpers here rather
// than growing its own partial copy.
#pragma once

#include <string>

namespace tasksim::trace {

/// Escape a string for embedding in a JSON string literal: quotes,
/// backslashes, the short escapes (\n \t \r \b \f) and \uXXXX for the
/// remaining control characters, so arbitrary kernel/label text survives a
/// round-trip through the viewer.
std::string escape_json(const std::string& text);

/// Escape a string for embedding in XML attribute or element text: the
/// five predefined entities (& < > " ') plus the control characters XML 1.0
/// forbids outright — tab/LF/CR become numeric character references (legal
/// everywhere we emit them) and the remaining C0 controls become U+FFFD,
/// since no escape can make them well-formed.
std::string escape_xml(const std::string& text);

}  // namespace tasksim::trace
