// color.hpp — stable kernel-name -> color mapping for SVG traces.
//
// The well-known PLASMA kernels get the palette traditionally used in tile
// linear-algebra trace plots; any other kernel name hashes to a stable color
// from a qualitative palette so that the same kernel keeps the same color
// across the real and simulated trace of one experiment.
#pragma once

#include <string>

namespace tasksim::trace {

/// "#rrggbb" color for the given kernel class name.
std::string kernel_color(const std::string& kernel);

}  // namespace tasksim::trace
