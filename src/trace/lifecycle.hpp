// lifecycle.hpp — causal analysis of flight-recorder streams.
//
// The flight recorder (support/flight_recorder) captures raw per-thread
// event streams; this module turns a drained stream into per-task
// lifecycles and dependency edges, and runs the three analyses built on
// them:
//
//   * validate_stream    — well-formedness: every task reaches exactly one
//                          terminal state through legal transitions, every
//                          dependence edge references recorded tasks, and
//                          per-thread timestamps are monotone,
//   * audit_races        — reports every §V-E scheduling-race violation: a
//                          task returning with an earlier virtual
//                          completion time than a task that already
//                          returned (the virtual timeline went backward),
//                          with the exact task pair and timestamps,
//   * attribute_makespan — decomposes the simulated makespan along the
//                          binding chain (the tasks that determined when
//                          the virtual timeline ended) into kernel time,
//                          TEQ wait, scheduler wait, bookkeeping, and
//                          window-throttle wait,
//
// plus render_lifecycle_events, which emits Chrome async spans (ph "b"/"e")
// per task lifetime and flow events (ph "s"/"f") along dependency edges for
// merging into a chrome_export document.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "support/flight_recorder.hpp"

namespace tasksim::trace {

/// Assembled per-task timeline.  Wall-clock fields are NaN until the
/// corresponding event is observed; virtual fields are NaN for tasks that
/// never reached the simulation layer (real runs).
struct TaskLifecycle {
  std::uint64_t id = 0;
  std::string kernel;
  int worker = -1;

  double submit_us = std::numeric_limits<double>::quiet_NaN();
  double ready_us = std::numeric_limits<double>::quiet_NaN();
  double dispatch_us = std::numeric_limits<double>::quiet_NaN();
  double start_us = std::numeric_limits<double>::quiet_NaN();
  double teq_enter_us = std::numeric_limits<double>::quiet_NaN();
  double teq_front_us = std::numeric_limits<double>::quiet_NaN();
  double finish_us = std::numeric_limits<double>::quiet_NaN();

  double virtual_start_us = std::numeric_limits<double>::quiet_NaN();
  double virtual_end_us = std::numeric_limits<double>::quiet_NaN();

  bool returned = false;  ///< simulated body returned (task_return seen)
  bool finished = false;  ///< task function returned to the scheduler
  int failed_attempts = 0;  ///< injected failures before this task completed
  bool poisoned = false;    ///< skipped: a retry budget (its own or a
                            ///< producer's) was exhausted

  bool has_virtual_times() const {
    return virtual_start_us == virtual_start_us &&  // !NaN
           virtual_end_us == virtual_end_us;
  }
};

/// One TEQ occupancy: every attempt (successful or injected-failed) claims
/// a span of the virtual timeline.  Kept separately from TaskLifecycle —
/// which records only the final attempt — so the race auditor sees the
/// lane occupancy the failed attempts contributed.
struct AttemptSpan {
  std::uint64_t task = 0;
  int worker = -1;
  double virtual_start_us = 0.0;
  double virtual_end_us = 0.0;
};

struct LifecycleLog {
  /// The merged stream, ordered by wall time (as drained).
  std::vector<flightrec::Event> events;
  std::map<std::uint64_t, TaskLifecycle> tasks;
  /// Dependence edges (producer id, consumer id) in discovery order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;
  /// Every TEQ entry in record order (== one per execution attempt).
  std::vector<AttemptSpan> attempts;
  std::uint64_t dropped_events = 0;
  // Fault/robustness tallies over the stream.
  std::uint64_t failed_attempts = 0;   ///< task_failed events
  std::uint64_t retries = 0;           ///< task_retry events
  std::uint64_t poisoned = 0;          ///< task_poisoned events
  std::uint64_t fault_stalls = 0;      ///< fault_stall events
  std::uint64_t quiescence_timeouts = 0;  ///< quiescence_timeout events
  std::uint64_t watchdog_stalls = 0;   ///< watchdog_stall events
  /// Executor lanes the scheduler ran with (0 = unknown; set by the
  /// harness).  Lets audit_races treat never-dispatched lanes as
  /// virtually free.
  int worker_lanes = 0;
  /// True when lane 0 belongs to a participating master, which executes
  /// only inside wait_all and must not count as a claimable lane.
  bool master_lane0 = false;
};

/// Assemble per-task lifecycles and edges from a drained stream.
LifecycleLog build_lifecycle(flightrec::Stream stream);

/// Well-formedness check; returns human-readable violations (empty = ok).
/// Assumes the recorded run completed (every submitted task finished).
std::vector<std::string> validate_stream(const flightrec::Stream& stream);

/// One §V-E violation.  Three shapes of the same race:
///
///   * backward_return — `task` returned with a virtual completion time
///     (`task_completion_us`) earlier than `prior_task`, which had already
///     returned at `prior_completion_us` (the TEQ ordering was broken).
///   * inflated_start — `task` read virtual start `task_completion_us`
///     although it was demonstrably runnable at `prior_completion_us`,
///     the latest of its producers' virtual completions, the virtual
///     clock when it was submitted, and the completion of the last prior
///     task on a lane able to claim it: `prior_task`'s return advanced
///     the clock under it before it sampled.  This is the interleaving
///     the quiescence query (and the paper's yield/sleep fallback) exists
///     to prevent; it serializes the virtual timeline.
///   * late_submission — the virtual clock rose from `prior_completion_us`
///     to `task_completion_us` between two consecutive submissions (the
///     latter being `task`), the submitter never blocked on the window in
///     between, and some lane was virtually idle at the risen value.  A
///     safe advance with submission open requires every executor blocked
///     in the queue; workers outracing the submitter and draining its
///     tasks one by one is the fully serialized form of the race, in
///     which no dependence ever materializes (each producer finishes
///     before its consumer is submitted) and every recorded floor tracks
///     the corrupted clock itself — the submission-time rise is then the
///     only observable evidence.  `prior_task` is the return that last
///     advanced the clock.
struct RaceViolation {
  enum class Kind { backward_return, inflated_start, late_submission };
  Kind kind = Kind::backward_return;
  std::uint64_t task = 0;
  std::uint64_t prior_task = 0;
  double task_completion_us = 0.0;   ///< virtual (see kind)
  double prior_completion_us = 0.0;  ///< virtual (see kind)
  double wall_us = 0.0;              ///< when the violation was recorded
};

struct RaceAudit {
  std::vector<RaceViolation> violations;
  std::size_t tasks_returned = 0;

  /// Summary plus the first `max_listed` violations, one per line.
  std::string to_string(std::size_t max_listed = 8) const;
};

/// Scan the stream for §V-E scheduling-race evidence: task returns out of
/// virtual-completion order (the ordering the Task Execution Queue exists
/// to enforce), and virtual starts later than the moment the task became
/// runnable — its producers done, the submission window open, and a lane
/// free to claim it (the clock advanced underneath a task being
/// dispatched).
RaceAudit audit_races(const LifecycleLog& log);

/// Decomposition of the simulated makespan.  The "binding chain" is found
/// by walking back from the task that ends the virtual timeline, at each
/// step moving to the latest-finishing blocker (a dependence producer or
/// the previous task on the same worker).  Kernel time and gaps are
/// virtual-time quantities along that chain; the wait components are the
/// real (wall) time the chain's tasks spent in each lifecycle stage.
struct AttributionReport {
  double virtual_makespan_us = 0.0;
  std::size_t chain_length = 0;
  double chain_kernel_us = 0.0;   ///< virtual: sum of chain task durations
  double chain_gap_us = 0.0;      ///< virtual: makespan - chain kernel time
  double chain_teq_wait_us = 0.0; ///< real: TEQ enter → front
  double chain_sched_wait_us = 0.0;  ///< real: ready → dispatched
  double chain_bookkeeping_us = 0.0; ///< real: dispatch → TEQ enter and
                                     ///< TEQ front → function return
  double window_wait_us = 0.0;    ///< real: submitter window-blocked (run)
};

AttributionReport attribute_makespan(const LifecycleLog& log);

/// Chrome trace events for the lifecycle layer, as complete JSON objects
/// (no separators): one async span ("b"/"e", id = task id) per task with
/// virtual times, and one flow ("s"/"f") per dependency edge between tasks
/// with virtual times.  Merge into a document with render_chrome_json's
/// extra-events overload, using the pid of the simulated-trace process.
std::vector<std::string> render_lifecycle_events(const LifecycleLog& log,
                                                 int pid);

}  // namespace tasksim::trace
