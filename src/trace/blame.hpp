// blame.hpp — causal blame: "where did the makespan go?"
//
// PR 2's attribute_makespan names the binding chain (the tasks that
// determined when the virtual timeline ended) but lumps everything between
// chain tasks into one "chain gap".  This module decomposes the *entire*
// virtual makespan into mutually-exclusive categories, by tiling
// [t0, t_end] along the binding chain:
//
//   * each chain task's committed span splits into `compute` and
//     `retry_backoff` (the virtual backoff the fault plan folded into a
//     retried attempt's span; a failed attempt's whole partial span is
//     retry cost, not useful compute),
//   * each gap before a chain task's virtual start is classified by
//     walking a cursor through the task's recorded floors in causal
//     priority order: `dependency` (producers still running — only
//     reachable when the producer's span is missing from the trace),
//     `submit_lag` (the task did not exist yet: the submitter was behind
//     the workers), `serialization` (the §V-C discipline: a start samples
//     the global virtual clock, so completions elsewhere push it past the
//     moment all inputs were ready — the TEQ-front serialization cost),
//     and the residual `lookahead` (gap under a lookahead release, where
//     starts decouple from the global front) or `lane_idle` (anything
//     else),
//   * `hedge` carries the budget share of hedge-duplicate spans on the
//     chain (duplicates never commit, so it is structurally ~0; the wasted
//     duplicate time is reported separately, outside the budget).
//
// The tiling is exhaustive and exclusive by construction: the category
// totals sum to the measured makespan (bench/ablation_blame gates the sum
// at >= 97%, catching floor corruption or a broken walk).  In the fully
// serialized engine nearly every gap is `serialization` — a faithful
// statement about this simulator, where no virtual start can precede the
// global clock; `lane_idle`/`lookahead` only open up when lookahead
// releases decouple starts from the front.
//
// Inputs: a blame-annotated Trace (floors persisted by text_io v2 — the
// tools/analyze path), optionally paired with the run's LifecycleLog for
// the real-time (wall) per-stage decomposition: scheduler wait, dispatch
// prep, body overhead, TEQ-front wait, and post-front drain (under
// quiescence/yield mitigation, the mitigation sleep).  blame_annotations()
// derives the floors from a lifecycle stream, the same way the §V-E race
// auditor reconstructs them.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/lifecycle.hpp"
#include "trace/trace.hpp"

namespace tasksim::trace {

enum class BlameCategory : int {
  compute = 0,    ///< chain task spans doing modeled kernel work
  dependency,     ///< waiting on producers not present in the trace
  serialization,  ///< global virtual front past the runnable moment (§V-C)
  submit_lag,     ///< task not yet submitted (workers outran the submitter)
  retry_backoff,  ///< failed-attempt progress + virtual retry backoff
  hedge,          ///< hedge-duplicate spans on the chain (structurally ~0)
  lookahead,      ///< residual gap under a lookahead release
  lane_idle,      ///< residual gap with no recorded cause
};
inline constexpr int kBlameCategoryCount = 8;

const char* to_string(BlameCategory category);

/// One binding-chain link, in timeline order: the gap tiled before the
/// task's start, then its committed span.
struct BlameStep {
  std::uint64_t task_id = 0;
  std::string kernel;  ///< committed label (may carry !failed / !deadline)
  int worker = -1;
  double virtual_start_us = 0.0;
  double virtual_end_us = 0.0;
  /// Exhaustive tiling of [previous chain end, virtual_end_us]: the span
  /// categories (compute / retry_backoff / hedge) plus the gap categories.
  std::array<double, kBlameCategoryCount> parts{};

  double gap_us() const;  ///< everything except compute/retry/hedge span
};

/// Per-kernel roll-up (identity kernel: label with the !suffix stripped).
struct KernelBlame {
  std::size_t tasks = 0;       ///< distinct task ids
  std::size_t events = 0;      ///< committed spans (retries add events)
  double span_us = 0.0;        ///< sum of committed spans
  double retry_backoff_us = 0.0;  ///< backoff + failed-attempt progress
  std::size_t chain_tasks = 0;    ///< events on the binding chain
  /// Chain budget charged to this kernel's chain events (span + gap).
  std::array<double, kBlameCategoryCount> chain_us{};
  // Real (wall) per-stage time summed over this kernel's tasks; negative
  // when unknown (no lifecycle attached).
  double real_sched_wait_us = -1.0;  ///< ready -> dispatch
  double real_prep_us = -1.0;        ///< dispatch -> body entry
  double real_body_us = -1.0;        ///< body entry -> TEQ enter (sampling,
                                     ///< injected stalls, hedge management)
  double real_teq_wait_us = -1.0;    ///< TEQ enter -> front
  double real_drain_us = -1.0;       ///< front -> finish (mitigation sleep,
                                     ///< quiescence polling, commit)
};

struct BlameReport {
  std::string label;
  double t0_us = 0.0;
  double makespan_us = 0.0;
  std::size_t tasks = 0;   ///< distinct task ids in the trace
  std::size_t events = 0;  ///< committed spans
  /// Whether the trace carried blame annotations (floors).  Without them
  /// the tiling still sums to the makespan, but submit/dependency rungs
  /// collapse into serialization/lane_idle.
  bool annotated = false;
  bool has_real_times = false;  ///< lifecycle-derived wall stages present
  /// The makespan budget: category totals over the whole chain tiling.
  /// Sum == makespan by construction (coverage() gates it).
  std::array<double, kBlameCategoryCount> totals{};
  std::vector<BlameStep> waterfall;  ///< chain links, timeline order
  std::map<std::string, KernelBlame> kernels;
  /// Hedge-duplicate virtual time thrown away (outside the budget: losers
  /// never commit to the timeline).
  double hedge_wasted_us = 0.0;

  double attributed_us() const;
  /// attributed / makespan; 1.0 up to rounding.  The ablation gate.
  double coverage() const;

  /// Budget table plus the top waterfall steps.
  std::string to_string(std::size_t max_steps = 12) const;
  /// Stable JSON document ("tasksim-blame-v1").
  std::string to_json() const;
};

/// Derive per-task blame annotations from a lifecycle stream: producer
/// floors, folded submit-time clock, per-task retry backoff, and the
/// retried/hedged/released/skipped flags — the floors audit_races trusts.
std::unordered_map<std::uint64_t, TraceAnnotation> blame_annotations(
    const LifecycleLog& log);

/// Decompose a (preferably annotated) trace.
BlameReport build_blame(const Trace& trace);

/// As above, plus the real-time per-stage decomposition from the run's
/// lifecycle log.  The trace is expected to already carry the log's
/// annotations (the harness applies blame_annotations before calling).
BlameReport build_blame(const Trace& trace, const LifecycleLog& log);

}  // namespace tasksim::trace
