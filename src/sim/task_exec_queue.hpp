// task_exec_queue.hpp — the Task Execution Queue (paper §V-C).
//
// "The key element of the simulation environment": a priority queue ordered
// by simulated completion time.  Every simulated task enters the queue with
// its virtual completion time and blocks until it reaches the front, which
// forces task *functions* to return to the scheduler in virtual-completion
// order — the property that keeps the scheduler's subsequent decisions
// consistent with the virtual timeline.
//
// Ties in completion time are broken by entry order, so the queue order is
// total and deterministic given the entry sequence.
//
// Hot-path design (see DESIGN.md §9): the front ticket's sequence number is
// *published* in a single atomic, so `wait_front`/`is_front` fast paths are
// one acquire load and never touch the mutex.  Blocked waiters park on
// per-ticket slots (futex-style `atomic::wait`), and `leave` unparks only
// the *new front's* waiter — one wake per completion instead of the
// condvar broadcast that woke every blocked worker on every enter/leave.
// A later arrival that displaces the front (§V-E) wakes nobody at all: the
// displaced waiter is parked precisely because it is not the front, and
// displacement only makes that *more* true.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "support/metrics.hpp"

namespace tasksim::sim {

class TaskExecQueue {
 public:
  TaskExecQueue();

  /// Identifies one queue occupancy.
  struct Ticket {
    double completion_us = 0.0;
    std::uint64_t seq = 0;
  };

  /// Enter the queue with the given virtual completion time.  The time must
  /// be finite: a NaN key would violate the strict weak ordering of the
  /// underlying map and silently corrupt the queue order (InvalidArgument).
  Ticket enter(double completion_us);

  /// Block until `ticket` is the front (minimum) entry.
  void wait_front(const Ticket& ticket) const;

  /// Non-blocking front check (one atomic load).
  bool is_front(const Ticket& ticket) const {
    require_finite(ticket.completion_us);
    return front_seq_.load(std::memory_order_acquire) == ticket.seq;
  }

  /// Remove `ticket`, publish the new front, and unpark only the new
  /// front's waiter.  The ticket must be in the queue (normally the front,
  /// but removal of any entry is supported).
  void leave(const Ticket& ticket);

  /// Entries currently in the queue (== tasks whose functions are inside
  /// the simulation library right now).  Lock-free; polled by the
  /// watchdog's activity gate and the quiescence predicate.
  std::size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Cancel the queue: wake every parked waiter and make wait_front (and
  /// further enter calls) throw SimulationStalled carrying `reason`.
  /// `owner` (the engine's identity tag, e.g. "engine 3 ('sweep-3')") is
  /// woven into the error's what() so a stalled engine in a K-engine sweep
  /// is identifiable from the error alone.  Called by the watchdog's stall
  /// handler to turn a deadlocked simulation into a typed error on the
  /// blocked threads' own stacks.  This is the one path that still
  /// broadcasts — aborting is exceptional.
  void cancel(std::string reason, std::string owner = "");

  bool cancelled() const {
    return cancelled_flag_.load(std::memory_order_acquire);
  }

  /// Re-arm after a cancellation and reset the ticket sequence (between
  /// runs; the queue must be empty).  Resetting next_seq_ keeps the ticket
  /// seqs in flight-recorder `teq_displaced` events identical across
  /// back-to-back runs on one engine — cross-run trace determinism.
  void clear_cancel();

 private:
  using Key = std::pair<double, std::uint64_t>;
  static Key key(const Ticket& t) { return {t.completion_us, t.seq}; }
  static void require_finite(double completion_us);

  /// One blocked waiter.  Lives on the waiter's stack; registered in its
  /// map entry under the mutex, deregistered (again under the mutex) before
  /// the waiter returns or unwinds, so an unpark — always performed with
  /// the mutex held — can never touch a dead slot.
  struct ParkSlot {
    std::atomic<std::uint32_t> signaled{0};
  };

  /// Published-front sentinel: no entry is the front.  Ticket seqs are
  /// assigned from 0 upward and can never reach it.
  static constexpr std::uint64_t kNoFront = ~std::uint64_t{0};

  [[noreturn]] void throw_cancelled_locked() const;
  /// Signal one parked waiter (mutex held).  No-op for a null slot (front
  /// owner not waiting yet — it will take the lock-free fast path).
  void unpark_locked(ParkSlot* slot);
  void wait_front_slow(const Ticket& ticket) const;

  mutable std::mutex mutex_;
  /// Entries ordered by (completion_us, seq); the mapped slot is non-null
  /// while that ticket's owner is parked in wait_front.  Mutable because
  /// registering a parking slot is a logically-const operation of
  /// wait_front.
  mutable std::map<Key, ParkSlot*> entries_;
  std::uint64_t next_seq_ = 0;
  bool cancelled_ = false;
  std::string cancel_reason_;
  std::string cancel_owner_;

  /// Seq of the current front entry (kNoFront when empty), published with
  /// release under the mutex and read with acquire by the lock-free fast
  /// paths.  A reader that observes its own seq here synchronizes with the
  /// leave() that promoted it, ordering the previous task's clock advance
  /// before this task's return — the §V-C invariant without the lock.
  std::atomic<std::uint64_t> front_seq_{kNoFront};
  std::atomic<std::size_t> size_{0};
  std::atomic<bool> cancelled_flag_{false};

  // Instrumentation (global metrics registry; see DESIGN.md §2).
  metrics::Counter enters_;         ///< sim.queue.enters
  metrics::Counter displacements_;  ///< sim.queue.displacements
  metrics::Counter wakeups_;        ///< sim.queue.wakeups (unparks issued)
  metrics::Counter parks_;          ///< sim.queue.parks (waiters that blocked)
  metrics::Histogram wait_us_;      ///< sim.queue.wait_us (real µs blocked)
};

}  // namespace tasksim::sim
