// task_exec_queue.hpp — the Task Execution Queue (paper §V-C).
//
// "The key element of the simulation environment": a priority queue ordered
// by simulated completion time.  Every simulated task enters the queue with
// its virtual completion time and blocks until it reaches the front, which
// forces task *functions* to return to the scheduler in virtual-completion
// order — the property that keeps the scheduler's subsequent decisions
// consistent with the virtual timeline.
//
// Ties in completion time are broken by entry order, so the queue order is
// total and deterministic given the entry sequence.
//
// Hot-path design (see DESIGN.md §9): the front ticket's sequence number is
// *published* in a single atomic, so `wait_front`/`is_front` fast paths are
// one acquire load and never touch the mutex.  Blocked waiters park on
// per-ticket slots (futex-style `atomic::wait`), and `leave` unparks only
// the *new front's* waiter — one wake per completion instead of the
// condvar broadcast that woke every blocked worker on every enter/leave.
// A later arrival that displaces the front (§V-E) wakes nobody at all: the
// displaced waiter is parked precisely because it is not the front, and
// displacement only makes that *more* true.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "support/metrics.hpp"

namespace tasksim::sim {

class TaskExecQueue {
 public:
  TaskExecQueue();

  /// Identifies one queue occupancy.
  struct Ticket {
    double completion_us = 0.0;
    std::uint64_t seq = 0;
  };

  /// How a lookahead-armed wait ended (see wait_front_or_release).
  enum class WaitOutcome {
    front,          ///< the ticket is the queue front — the classic return
    released,       ///< the release gate granted an early (non-front) return
    front_blocked,  ///< the front is a released zombie awaiting its commit;
                    ///< the caller should drive the engine's commit drain
  };

  /// How a cancellable wait ended (see wait_front_cancellable).
  enum class CancellableWait {
    front,          ///< the ticket is the queue front — the caller commits
    cancelled,      ///< the cancellation token was set — the caller must
                    ///< leave() without committing any virtual time
    front_blocked,  ///< the front is a released zombie awaiting its commit;
                    ///< the caller should drive the engine's commit drain
  };

  /// The lookahead release-grant predicate, evaluated *outside* the queue
  /// mutex (it inspects engine and scheduler state).
  using ReleaseGate = std::function<bool()>;

  /// Published-front sentinel returned by front_seq() on an empty queue.
  static constexpr std::uint64_t kNoFrontSeq = ~std::uint64_t{0};

  /// Enter the queue with the given virtual completion time.  The time must
  /// be finite: a NaN key would violate the strict weak ordering of the
  /// underlying map and silently corrupt the queue order (InvalidArgument).
  Ticket enter(double completion_us);

  /// Block until `ticket` is the front (minimum) entry.
  void wait_front(const Ticket& ticket) const;

  /// Bounded-lookahead wait (DESIGN.md §11).  Blocks like wait_front, but a
  /// waiter within the safe horizon — `completion_us <= front completion +
  /// lookahead` — additionally evaluates `gate` and returns
  /// WaitOutcome::released when it grants.  Returns front_blocked instead
  /// of parking when the current front is a released zombie (the caller
  /// owns the commit drain; the queue cannot retire the entry itself).
  /// With lookahead 0 (the default) the horizon clause never fires and
  /// this is wait_front with a different return type.
  WaitOutcome wait_front_or_release(const Ticket& ticket,
                                    const ReleaseGate& gate) const;

  /// Cooperative-cancellation wait (straggler hedging, DESIGN.md §12).
  /// Blocks like wait_front, but re-checks `token` at every wake and
  /// returns CancellableWait::cancelled as soon as it is set — without
  /// committing anything; the caller must still leave().  The token check
  /// wins over the front check: a cancelled ticket that reaches the front
  /// must not be mistaken for a commit grant.  Returns front_blocked
  /// instead of parking behind a released zombie front (the caller owns
  /// the commit drain, exactly as in wait_front_or_release).  A parked
  /// waiter whose token is set asynchronously is woken either by the
  /// promotion that makes it the front (the engine's commit paths leave()
  /// the winner ahead of it) or by an explicit kick().  Cancelled waits
  /// skip the sim.queue.wait_us histogram.
  CancellableWait wait_front_cancellable(
      const Ticket& ticket, const std::atomic<bool>& token) const;

  /// Unpark `ticket`'s waiter if it is currently parked (no-op otherwise,
  /// including when the ticket already left).  Pair with an asynchronous
  /// cancellation-token store to force a parked wait_front_cancellable to
  /// re-check its token.
  void kick(const Ticket& ticket) const;

  /// Mark `ticket`'s entry as released: its owner returned early and the
  /// entry stays behind as a zombie holding the task's place in completion
  /// order until the engine commits it (then leave()).  Returns true when
  /// the entry is the current front — the caller must run the commit drain,
  /// because no future leave() will re-discover it.  Must be called by the
  /// ticket's owner (never while parked in a wait).
  bool mark_released(const Ticket& ticket);

  /// Seq of the published front entry (kNoFrontSeq when empty).
  std::uint64_t front_seq() const {
    return front_seq_.load(std::memory_order_acquire);
  }

  /// Arm the lookahead horizon: leave() additionally wakes parked waiters
  /// within `lookahead_us` of the new front so they re-evaluate their
  /// release gate.  0 (the default) restores strict is-front semantics.
  void set_lookahead(double lookahead_us);

  /// Non-blocking front check (one atomic load).
  bool is_front(const Ticket& ticket) const {
    require_finite(ticket.completion_us);
    return front_seq_.load(std::memory_order_acquire) == ticket.seq;
  }

  /// Remove `ticket`, publish the new front, and unpark only the new
  /// front's waiter.  The ticket must be in the queue (normally the front,
  /// but removal of any entry is supported).
  void leave(const Ticket& ticket);

  /// Entries currently in the queue (== tasks whose functions are inside
  /// the simulation library right now).  Lock-free; polled by the
  /// watchdog's activity gate and the quiescence predicate.
  std::size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Cancel the queue: wake every parked waiter and make wait_front (and
  /// further enter calls) throw SimulationStalled carrying `reason`.
  /// `owner` (the engine's identity tag, e.g. "engine 3 ('sweep-3')") is
  /// woven into the error's what() so a stalled engine in a K-engine sweep
  /// is identifiable from the error alone.  Called by the watchdog's stall
  /// handler to turn a deadlocked simulation into a typed error on the
  /// blocked threads' own stacks.  This is the one path that still
  /// broadcasts — aborting is exceptional.
  void cancel(std::string reason, std::string owner = "");

  bool cancelled() const {
    return cancelled_flag_.load(std::memory_order_acquire);
  }

  /// Re-arm after a cancellation and reset the ticket sequence (between
  /// runs; the queue must be empty).  Resetting next_seq_ keeps the ticket
  /// seqs in flight-recorder `teq_displaced` events identical across
  /// back-to-back runs on one engine — cross-run trace determinism.
  void clear_cancel();

 private:
  using Key = std::pair<double, std::uint64_t>;
  static Key key(const Ticket& t) { return {t.completion_us, t.seq}; }
  static void require_finite(double completion_us);

  /// One blocked waiter.  Lives on the waiter's stack; registered in its
  /// map entry under the mutex, deregistered (again under the mutex) before
  /// the waiter returns or unwinds, so an unpark — always performed with
  /// the mutex held — can never touch a dead slot.
  struct ParkSlot {
    std::atomic<std::uint32_t> signaled{0};
  };

  /// One queue occupancy.  `slot` is non-null while the ticket's owner is
  /// parked; `released` marks a lookahead zombie whose owner returned early
  /// and whose commit (clock advance + leave) the engine still owes.
  struct Entry {
    ParkSlot* slot = nullptr;
    bool released = false;
  };

  /// Published-front sentinel: no entry is the front.  Ticket seqs are
  /// assigned from 0 upward and can never reach it.
  static constexpr std::uint64_t kNoFront = kNoFrontSeq;

  [[noreturn]] void throw_cancelled_locked() const;
  /// Record a teq_cancelled flight event and throw (mutex held).  Every
  /// cancelled wait funnels through here so aborted waiters are visible in
  /// the §V-E trace as distinct from normal front returns.
  [[noreturn]] void cancelled_wait_locked(const Ticket& ticket) const;
  /// Signal one parked waiter (mutex held).  No-op for a null slot (front
  /// owner not waiting yet — it will take the lock-free fast path).
  void unpark_locked(ParkSlot* slot) const;
  void wait_front_slow(const Ticket& ticket) const;
  WaitOutcome wait_front_or_release_slow(const Ticket& ticket,
                                         const ReleaseGate& gate) const;
  CancellableWait wait_front_cancellable_slow(
      const Ticket& ticket, const std::atomic<bool>& token) const;

  mutable std::mutex mutex_;
  /// Entries ordered by (completion_us, seq).  Mutable because registering
  /// a parking slot is a logically-const operation of wait_front.
  mutable std::map<Key, Entry> entries_;
  std::uint64_t next_seq_ = 0;
  bool cancelled_ = false;
  std::string cancel_reason_;
  std::string cancel_owner_;
  /// Lookahead horizon in virtual µs (0 = strict §V-C order).  Written via
  /// set_lookahead before a run, read under mutex_ by waits and leave().
  double lookahead_ = 0.0;

  /// Seq of the current front entry (kNoFront when empty), published with
  /// release under the mutex and read with acquire by the lock-free fast
  /// paths.  A reader that observes its own seq here synchronizes with the
  /// leave() that promoted it, ordering the previous task's clock advance
  /// before this task's return — the §V-C invariant without the lock.
  std::atomic<std::uint64_t> front_seq_{kNoFront};
  std::atomic<std::size_t> size_{0};
  std::atomic<bool> cancelled_flag_{false};

  // Instrumentation (global metrics registry; see DESIGN.md §2).
  metrics::Counter enters_;         ///< sim.queue.enters
  metrics::Counter displacements_;  ///< sim.queue.displacements
  metrics::Counter wakeups_;        ///< sim.queue.wakeups (unparks issued)
  metrics::Counter parks_;          ///< sim.queue.parks (waiters that blocked)
  metrics::Counter horizon_blocks_;  ///< sim.lookahead.horizon_blocks (waits
                                     ///< that parked beyond the horizon)
  metrics::Histogram wait_us_;      ///< sim.queue.wait_us (real µs blocked)
};

}  // namespace tasksim::sim
