// task_exec_queue.hpp — the Task Execution Queue (paper §V-C).
//
// "The key element of the simulation environment": a priority queue ordered
// by simulated completion time.  Every simulated task enters the queue with
// its virtual completion time and blocks until it reaches the front, which
// forces task *functions* to return to the scheduler in virtual-completion
// order — the property that keeps the scheduler's subsequent decisions
// consistent with the virtual timeline.
//
// Ties in completion time are broken by entry order, so the queue order is
// total and deterministic given the entry sequence.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <utility>

#include "support/metrics.hpp"

namespace tasksim::sim {

class TaskExecQueue {
 public:
  TaskExecQueue();

  /// Identifies one queue occupancy.
  struct Ticket {
    double completion_us = 0.0;
    std::uint64_t seq = 0;
  };

  /// Enter the queue with the given virtual completion time.
  Ticket enter(double completion_us);

  /// Block until `ticket` is the front (minimum) entry.
  void wait_front(const Ticket& ticket) const;

  /// Non-blocking front check.
  bool is_front(const Ticket& ticket) const;

  /// Remove `ticket` and wake waiters.  The ticket must be in the queue
  /// (normally the front, but removal of any entry is supported).
  void leave(const Ticket& ticket);

  /// Entries currently in the queue (== tasks whose functions are inside
  /// the simulation library right now).
  std::size_t size() const;

  /// Cancel the queue: wake every waiter and make wait_front (and further
  /// enter calls) throw SimulationStalled carrying `reason`.  Called by
  /// the watchdog's stall handler to turn a deadlocked simulation into a
  /// typed error on the blocked threads' own stacks.
  void cancel(std::string reason);

  bool cancelled() const;

  /// Re-arm after a cancellation (between runs; the queue must be empty).
  void clear_cancel();

 private:
  using Key = std::pair<double, std::uint64_t>;
  static Key key(const Ticket& t) { return {t.completion_us, t.seq}; }

  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  std::set<Key> entries_;
  std::uint64_t next_seq_ = 0;
  bool cancelled_ = false;
  std::string cancel_reason_;

  // Instrumentation (global metrics registry; see DESIGN.md §2).
  metrics::Counter enters_;         ///< sim.queue.enters
  metrics::Counter displacements_;  ///< sim.queue.displacements
  metrics::Histogram wait_us_;      ///< sim.queue.wait_us (real µs blocked)
};

}  // namespace tasksim::sim
