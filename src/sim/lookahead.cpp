#include "sim/lookahead.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace tasksim::sim {

const char* to_string(LookaheadMode mode) {
  switch (mode) {
    case LookaheadMode::off: return "off";
    case LookaheadMode::conservative: return "conservative";
    case LookaheadMode::optimistic: return "optimistic";
  }
  return "?";
}

LookaheadMode parse_lookahead_mode(const std::string& text) {
  if (text == "off") return LookaheadMode::off;
  if (text == "conservative") return LookaheadMode::conservative;
  if (text == "optimistic") return LookaheadMode::optimistic;
  throw InvalidArgument("unknown lookahead mode '" + text +
                        "' (expected off|conservative|optimistic)");
}

void CompletionGovernor::defer(std::uint64_t seq, PendingCommit commit) {
  std::lock_guard<std::mutex> lock(mutex_);
  const bool inserted = pending_.emplace(seq, std::move(commit)).second;
  TS_REQUIRE(inserted, "duplicate deferred commit for one queue ticket");
}

bool CompletionGovernor::is_pending(std::uint64_t seq) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.find(seq) != pending_.end();
}

bool CompletionGovernor::take(std::uint64_t seq, PendingCommit& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return false;
  out = std::move(it->second);
  pending_.erase(it);
  return true;
}

std::size_t CompletionGovernor::pending_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

std::vector<std::pair<std::uint64_t, CompletionGovernor::PendingCommit>>
CompletionGovernor::take_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::uint64_t, PendingCommit>> all(
      pending_.begin(), pending_.end());
  pending_.clear();
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return all;
}

RepairReport repair_virtual_trace(const trace::LifecycleLog& log,
                                  const trace::RaceAudit& audit) {
  RepairReport report;
  report.violations = audit.violations.size();

  // Replay order: recorded virtual start, ties by id — the order the
  // speculative engine *intended*, which respects every recorded edge
  // (a consumer's start is floored by its producers' completions even
  // when speculation inflated it).
  struct Item {
    std::uint64_t id;
    double start;
    double duration;
    int worker;
  };
  std::vector<Item> items;
  for (const auto& [id, lc] : log.tasks) {
    if (!lc.returned) continue;
    if (!lc.has_virtual_times()) {
      ++report.unrepaired;
      continue;
    }
    report.observed_makespan_us =
        std::max(report.observed_makespan_us, lc.virtual_end_us);
    items.push_back(Item{id, lc.virtual_start_us,
                         lc.virtual_end_us - lc.virtual_start_us, lc.worker});
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.start != b.start ? a.start < b.start : a.id < b.id;
  });

  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> producers;
  for (const auto& [producer, consumer] : log.edges) {
    producers[consumer].push_back(producer);
  }

  // Dependency-only ASAP replay: each task starts at the max of its
  // producers' repaired completions.  Deliberately lane-unaware — an
  // optimistic release frees its worker early, so the recorded lane
  // placement itself is an artifact of the speculation and replaying it
  // would re-impose the distortion.  When the recorded parallelism fit the
  // lanes, the result equals the serialized schedule; oversubscribed
  // phases are lower-bounded by the dependency critical path.
  std::unordered_map<std::uint64_t, double> repaired_end;
  repaired_end.reserve(items.size());
  for (const Item& item : items) {
    double floor = 0.0;
    const auto deps = producers.find(item.id);
    if (deps != producers.end()) {
      for (const std::uint64_t producer : deps->second) {
        const auto it = repaired_end.find(producer);
        if (it != repaired_end.end()) {
          floor = std::max(floor, it->second);
        } else if (log.tasks.count(producer) != 0 &&
                   log.tasks.at(producer).has_virtual_times()) {
          // Producer replays later (speculation recorded the consumer's
          // start before the producer's): fall back to its recorded end.
          // Counted as unrepairable — the replay order cannot honor the
          // edge exactly.
          floor = std::max(floor, log.tasks.at(producer).virtual_end_us);
          ++report.unrepaired;
        }
      }
    }
    const double end = floor + item.duration;
    repaired_end.emplace(item.id, end);
    report.repaired_makespan_us = std::max(report.repaired_makespan_us, end);
    ++report.repaired_tasks;
  }
  return report;
}

}  // namespace tasksim::sim
