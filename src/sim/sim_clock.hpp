// sim_clock.hpp — the global simulation clock (paper §V: "the simulation
// clock ... stored as a double precision floating point number which is of
// sufficient resolution for the tasks we deal with that operate at the
// micro-second resolution").
//
// The clock is monotone: it only moves forward, to the virtual completion
// time of whichever simulated task returns, and is read by tasks to obtain
// their virtual start time.
#pragma once

#include <mutex>

#include "support/metrics.hpp"

namespace tasksim::sim {

class SimClock {
 public:
  SimClock();

  /// Current virtual time in microseconds.
  double now() const;

  /// Advance to `time_us` if it is later than the current value; returns
  /// the (possibly unchanged) clock value.
  double advance_to(double time_us);

  /// Reset to zero (between simulations).
  void reset();

 private:
  mutable std::mutex mutex_;
  double now_us_ = 0.0;
  metrics::Counter advances_;  ///< sim.clock_advances (forward moves only)
};

}  // namespace tasksim::sim
