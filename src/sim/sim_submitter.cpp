#include "sim/sim_submitter.hpp"

namespace tasksim::sim {

sched::TaskId SimSubmitter::submit(const std::string& kernel,
                                   std::function<void()> body,
                                   sched::AccessList accesses, int priority) {
  // The body is deliberately dropped: simulated tasks perform no work
  // (paper §V: "the tasks no longer contribute useful work").
  (void)body;
  engine_.set_submission_open(true);
  sched::TaskDescriptor desc;
  desc.kernel = kernel;
  desc.accesses = std::move(accesses);
  desc.priority = priority;
  // The fault ordinal is assigned here, at submit time: submission is
  // serial program order, so the ordinal — and with it every fault
  // decision — is independent of worker interleaving.
  const std::uint64_t ordinal = engine_.register_submission(kernel);
  desc.function = [this, kernel, ordinal](sched::TaskContext& ctx) {
    engine_.execute(ctx, kernel, ordinal);
  };
  return runtime_.submit(std::move(desc));
}

sched::TaskId SimSubmitter::submit_hetero(const std::string& kernel,
                                          std::function<void()> body,
                                          std::function<void()> accel_body,
                                          sched::AccessList accesses,
                                          int priority) {
  (void)body;
  (void)accel_body;
  engine_.set_submission_open(true);
  sched::TaskDescriptor desc;
  desc.kernel = kernel;
  desc.accesses = std::move(accesses);
  desc.priority = priority;
  const std::uint64_t ordinal = engine_.register_submission(kernel);
  auto simulate = [this, kernel, ordinal](sched::TaskContext& ctx) {
    engine_.execute(ctx, kernel, ordinal);
  };
  desc.function = simulate;
  desc.accel_function = simulate;
  return runtime_.submit(std::move(desc));
}

}  // namespace tasksim::sim
