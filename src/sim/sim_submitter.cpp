#include "sim/sim_submitter.hpp"

namespace tasksim::sim {

sched::TaskId SimSubmitter::submit(const std::string& kernel,
                                   std::function<void()> body,
                                   sched::AccessList accesses, int priority) {
  // The body is deliberately dropped: simulated tasks perform no work
  // (paper §V: "the tasks no longer contribute useful work").
  (void)body;
  engine_.set_submission_open(true);
  sched::TaskDescriptor desc;
  desc.kernel = kernel;
  desc.accesses = std::move(accesses);
  desc.priority = priority;
  desc.function = [this, kernel](sched::TaskContext& ctx) {
    engine_.execute(ctx, kernel);
  };
  return runtime_.submit(std::move(desc));
}

sched::TaskId SimSubmitter::submit_hetero(const std::string& kernel,
                                          std::function<void()> body,
                                          std::function<void()> accel_body,
                                          sched::AccessList accesses,
                                          int priority) {
  (void)body;
  (void)accel_body;
  engine_.set_submission_open(true);
  sched::TaskDescriptor desc;
  desc.kernel = kernel;
  desc.accesses = std::move(accesses);
  desc.priority = priority;
  auto simulate = [this, kernel](sched::TaskContext& ctx) {
    engine_.execute(ctx, kernel);
  };
  desc.function = simulate;
  desc.accel_function = simulate;
  return runtime_.submit(std::move(desc));
}

}  // namespace tasksim::sim
