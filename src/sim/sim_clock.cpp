#include "sim/sim_clock.hpp"

#include <algorithm>

namespace tasksim::sim {

SimClock::SimClock() : advances_(metrics::counter("sim.clock_advances")) {}

double SimClock::now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return now_us_;
}

double SimClock::advance_to(double time_us) {
  bool advanced = false;
  double now;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    advanced = time_us > now_us_;
    now_us_ = std::max(now_us_, time_us);
    now = now_us_;
  }
  if (advanced) advances_.inc();
  return now;
}

void SimClock::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  now_us_ = 0.0;
}

}  // namespace tasksim::sim
