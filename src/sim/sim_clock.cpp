#include "sim/sim_clock.hpp"

#include <algorithm>

namespace tasksim::sim {

double SimClock::now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return now_us_;
}

double SimClock::advance_to(double time_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  now_us_ = std::max(now_us_, time_us);
  return now_us_;
}

void SimClock::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  now_us_ = 0.0;
}

}  // namespace tasksim::sim
