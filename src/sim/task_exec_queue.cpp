#include "sim/task_exec_queue.hpp"

#include "support/error.hpp"
#include "support/flight_recorder.hpp"
#include "support/profiler.hpp"
#include "support/timing.hpp"

namespace tasksim::sim {

TaskExecQueue::TaskExecQueue()
    : enters_(metrics::counter("sim.queue.enters")),
      displacements_(metrics::counter("sim.queue.displacements")),
      wait_us_(metrics::histogram("sim.queue.wait_us")) {}

TaskExecQueue::Ticket TaskExecQueue::enter(double completion_us) {
  TS_PROF_SCOPE(teq_mutex);
  std::lock_guard<std::mutex> lock(mutex_);
  if (cancelled_) {
    throw SimulationStalled("task execution queue cancelled", cancel_reason_);
  }
  Ticket ticket{completion_us, next_seq_++};
  // A later-arriving entry with an earlier completion time displaces the
  // previous front, whose waiter must re-block (the §V-E race surface).
  const bool displaces =
      !entries_.empty() && key(ticket) < *entries_.begin();
  if (displaces) {
    // Identified by ticket sequence numbers (the queue does not know task
    // ids): `task` = displaced front's seq, `other` = entering seq.
    const Key front = *entries_.begin();
    flightrec::FlightRecorder::global().record(
        flightrec::EventType::teq_displaced, front.second, -1, front.first,
        ticket.completion_us, ticket.seq);
  }
  entries_.insert(key(ticket));
  enters_.inc();
  if (displaces) displacements_.inc();
  // A new entry can become the front, unblocking nobody (the new owner is
  // not waiting yet) — but it can also *displace* the previous front, whose
  // waiter must re-evaluate; wake everyone.
  cv_.notify_all();
  return ticket;
}

void TaskExecQueue::wait_front(const Ticket& ticket) const {
  std::unique_lock<std::mutex> lock(mutex_);
  TS_REQUIRE(entries_.count(key(ticket)) == 1, "ticket not in queue");
  if (cancelled_) {
    throw SimulationStalled("task execution queue cancelled", cancel_reason_);
  }
  if (*entries_.begin() == key(ticket)) return;
  // Only the genuinely blocked path is profiled: the fast path above is a
  // lock + set lookup and would drown the wait signal in probe counts.
  prof::ScopedPhase prof_scope(prof::Phase::teq_wait);
  const double blocked_from = wall_time_us();
  cv_.wait(lock, [&] {
    return cancelled_ || *entries_.begin() == key(ticket);
  });
  wait_us_.observe(wall_time_us() - blocked_from);
  if (cancelled_) {
    throw SimulationStalled("task execution queue cancelled", cancel_reason_);
  }
}

bool TaskExecQueue::is_front(const Ticket& ticket) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !entries_.empty() && *entries_.begin() == key(ticket);
}

void TaskExecQueue::leave(const Ticket& ticket) {
  TS_PROF_SCOPE(teq_mutex);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto erased = entries_.erase(key(ticket));
    TS_REQUIRE(erased == 1, "leaving with a ticket that is not in the queue");
  }
  cv_.notify_all();
}

std::size_t TaskExecQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void TaskExecQueue::cancel(std::string reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (cancelled_) return;
    cancelled_ = true;
    cancel_reason_ = std::move(reason);
  }
  cv_.notify_all();
}

bool TaskExecQueue::cancelled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cancelled_;
}

void TaskExecQueue::clear_cancel() {
  std::lock_guard<std::mutex> lock(mutex_);
  TS_REQUIRE(entries_.empty(), "cannot re-arm a cancelled queue in use");
  cancelled_ = false;
  cancel_reason_.clear();
}

}  // namespace tasksim::sim
