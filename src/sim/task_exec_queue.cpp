#include "sim/task_exec_queue.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/flight_recorder.hpp"
#include "support/profiler.hpp"
#include "support/timing.hpp"

namespace tasksim::sim {

TaskExecQueue::TaskExecQueue()
    : enters_(metrics::counter("sim.queue.enters")),
      displacements_(metrics::counter("sim.queue.displacements")),
      wakeups_(metrics::counter("sim.queue.wakeups")),
      parks_(metrics::counter("sim.queue.parks")),
      wait_us_(metrics::histogram("sim.queue.wait_us")) {}

void TaskExecQueue::require_finite(double completion_us) {
  if (!std::isfinite(completion_us)) {
    throw InvalidArgument(
        "task execution queue: non-finite virtual completion time (" +
        std::to_string(completion_us) +
        " us) — a NaN/inf key would corrupt the queue order");
  }
}

void TaskExecQueue::throw_cancelled_locked() const {
  std::string what = "task execution queue cancelled";
  if (!cancel_owner_.empty()) what = cancel_owner_ + ": " + what;
  throw SimulationStalled(what, cancel_reason_);
}

void TaskExecQueue::unpark_locked(ParkSlot* slot) {
  if (slot == nullptr) return;  // the new front's owner is not parked
  wakeups_.inc();
  // Both the store and the notify happen with the mutex held: the waiter
  // deregisters its slot under the same mutex before its stack frame dies,
  // so the slot cannot be destroyed mid-notify.
  slot->signaled.store(1, std::memory_order_release);
  slot->signaled.notify_one();
}

TaskExecQueue::Ticket TaskExecQueue::enter(double completion_us) {
  require_finite(completion_us);
  TS_PROF_SCOPE(teq_mutex);
  std::lock_guard<std::mutex> lock(mutex_);
  if (cancelled_) throw_cancelled_locked();
  Ticket ticket{completion_us, next_seq_++};
  const bool was_empty = entries_.empty();
  // A later-arriving entry with an earlier completion time displaces the
  // previous front, whose waiter must re-block (the §V-E race surface).
  const bool displaces = !was_empty && key(ticket) < entries_.begin()->first;
  if (displaces) {
    // Identified by ticket sequence numbers (the queue does not know task
    // ids): `task` = displaced front's seq, `other` = entering seq.
    const Key front = entries_.begin()->first;
    flightrec::current().record(
        flightrec::EventType::teq_displaced, front.second, -1, front.first,
        ticket.completion_us, ticket.seq);
  }
  entries_.emplace(key(ticket), nullptr);
  size_.store(entries_.size(), std::memory_order_release);
  enters_.inc();
  if (displaces) displacements_.inc();
  if (was_empty || displaces) {
    // The enterer itself is the new front.  Nobody needs waking: the new
    // owner is this thread (not waiting), and the displaced previous
    // front's waiter is parked precisely because it is not the front —
    // displacement only makes that more true.  The seed implementation
    // broadcast to every waiter here; that was the thundering herd.
    TS_PROF_SCOPE(teq_publish);
    front_seq_.store(ticket.seq, std::memory_order_release);
  }
  return ticket;
}

void TaskExecQueue::wait_front(const Ticket& ticket) const {
  require_finite(ticket.completion_us);
  // Lock-free fast path: the published front is us and no cancellation is
  // pending.  The acquire load synchronizes with the leave() (or our own
  // enter()) that published our seq, so everything the previous front did
  // before leaving — clock advance, trace append — is visible here.
  if (!cancelled_flag_.load(std::memory_order_acquire) &&
      front_seq_.load(std::memory_order_acquire) == ticket.seq) {
    return;
  }
  wait_front_slow(ticket);
}

void TaskExecQueue::wait_front_slow(const Ticket& ticket) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = entries_.find(key(ticket));
  TS_REQUIRE(it != entries_.end(), "ticket not in queue");
  if (cancelled_) throw_cancelled_locked();
  if (it == entries_.begin()) return;
  // Only the genuinely blocked path is profiled: the fast path above is an
  // atomic load and would drown the wait signal in probe counts.
  prof::ScopedPhase prof_scope(prof::Phase::teq_wait);
  parks_.inc();
  const double blocked_from = wall_time_us();
  ParkSlot slot;
  it->second = &slot;
  for (;;) {
    lock.unlock();
    {
      // Futex-style park: blocked until this ticket's slot is signaled —
      // by the leave() that makes it the front, or by cancel().
      TS_PROF_SCOPE(teq_park);
      std::uint32_t observed = slot.signaled.load(std::memory_order_acquire);
      while (observed == 0) {
        slot.signaled.wait(0, std::memory_order_acquire);
        observed = slot.signaled.load(std::memory_order_acquire);
      }
    }
    lock.lock();
    if (cancelled_) {
      // Deregister before unwinding; skip the wait_us observation — a
      // cancelled wait is not a queue-ordering wait, and recording its
      // bogus duration would pollute the sim.queue.wait_us distribution.
      it->second = nullptr;
      throw_cancelled_locked();
    }
    if (it == entries_.begin()) {
      it->second = nullptr;
      wait_us_.observe(wall_time_us() - blocked_from);
      return;
    }
    // Unparked but displaced again before we re-acquired the mutex (§V-E
    // displacement storm): re-arm the slot — under the mutex, so no unpark
    // can interleave with the reset — and park again.
    slot.signaled.store(0, std::memory_order_relaxed);
  }
}

void TaskExecQueue::leave(const Ticket& ticket) {
  require_finite(ticket.completion_us);
  TS_PROF_SCOPE(teq_mutex);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key(ticket));
  TS_REQUIRE(it != entries_.end(),
             "leaving with a ticket that is not in the queue");
  const bool was_front = it == entries_.begin();
  entries_.erase(it);
  size_.store(entries_.size(), std::memory_order_release);
  {
    TS_PROF_SCOPE(teq_publish);
    if (entries_.empty()) {
      if (was_front) front_seq_.store(kNoFront, std::memory_order_release);
    } else if (was_front) {
      // Publish the new front and wake only its waiter.  Every other
      // parked waiter stays parked: their turn has not come, and waking
      // them (as the seed's notify_all did) only made N-1 threads fight
      // over the mutex to re-discover that fact.
      auto& [new_front, slot] = *entries_.begin();
      front_seq_.store(new_front.second, std::memory_order_release);
      unpark_locked(slot);
    }
    // Removing a non-front entry leaves the front unchanged: no
    // publication, no wakeups.
  }
}

void TaskExecQueue::cancel(std::string reason, std::string owner) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (cancelled_) return;
  cancelled_ = true;
  cancel_reason_ = std::move(reason);
  cancel_owner_ = std::move(owner);
  cancelled_flag_.store(true, std::memory_order_release);
  // The one remaining broadcast: every parked waiter must wake to throw
  // SimulationStalled from its own stack.  Aborting a stalled simulation
  // is exceptional, so the herd is acceptable here.
  for (auto& [entry_key, slot] : entries_) unpark_locked(slot);
}

void TaskExecQueue::clear_cancel() {
  std::lock_guard<std::mutex> lock(mutex_);
  TS_REQUIRE(entries_.empty(), "cannot re-arm a cancelled queue in use");
  cancelled_ = false;
  cancel_reason_.clear();
  cancel_owner_.clear();
  cancelled_flag_.store(false, std::memory_order_release);
  front_seq_.store(kNoFront, std::memory_order_release);
  // Restart the ticket sequence so a re-armed engine's flight-recorder
  // events (teq_displaced seqs) are bit-identical to the first run's.
  next_seq_ = 0;
}

}  // namespace tasksim::sim
