#include "sim/task_exec_queue.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/flight_recorder.hpp"
#include "support/profiler.hpp"
#include "support/timing.hpp"

namespace tasksim::sim {

TaskExecQueue::TaskExecQueue()
    : enters_(metrics::counter("sim.queue.enters")),
      displacements_(metrics::counter("sim.queue.displacements")),
      wakeups_(metrics::counter("sim.queue.wakeups")),
      parks_(metrics::counter("sim.queue.parks")),
      horizon_blocks_(metrics::counter("sim.lookahead.horizon_blocks")),
      wait_us_(metrics::histogram("sim.queue.wait_us")) {}

void TaskExecQueue::require_finite(double completion_us) {
  if (!std::isfinite(completion_us)) {
    throw InvalidArgument(
        "task execution queue: non-finite virtual completion time (" +
        std::to_string(completion_us) +
        " us) — a NaN/inf key would corrupt the queue order");
  }
}

void TaskExecQueue::throw_cancelled_locked() const {
  std::string what = "task execution queue cancelled";
  if (!cancel_owner_.empty()) what = cancel_owner_ + ": " + what;
  throw SimulationStalled(what, cancel_reason_);
}

void TaskExecQueue::cancelled_wait_locked(const Ticket& ticket) const {
  // Identified by ticket seq (the queue does not know task ids): `other` =
  // the cancelled waiter's seq, `a` = its virtual completion time.
  flightrec::current().record(flightrec::EventType::teq_cancelled,
                              flightrec::kNoTask, -1, ticket.completion_us,
                              0.0, ticket.seq);
  throw_cancelled_locked();
}

void TaskExecQueue::unpark_locked(ParkSlot* slot) const {
  if (slot == nullptr) return;  // the new front's owner is not parked
  wakeups_.inc();
  // Both the store and the notify happen with the mutex held: the waiter
  // deregisters its slot under the same mutex before its stack frame dies,
  // so the slot cannot be destroyed mid-notify.
  slot->signaled.store(1, std::memory_order_release);
  slot->signaled.notify_one();
}

TaskExecQueue::Ticket TaskExecQueue::enter(double completion_us) {
  require_finite(completion_us);
  TS_PROF_SCOPE(teq_mutex);
  std::lock_guard<std::mutex> lock(mutex_);
  if (cancelled_) throw_cancelled_locked();
  Ticket ticket{completion_us, next_seq_++};
  const bool was_empty = entries_.empty();
  // A later-arriving entry with an earlier completion time displaces the
  // previous front, whose waiter must re-block (the §V-E race surface).
  const bool displaces = !was_empty && key(ticket) < entries_.begin()->first;
  if (displaces) {
    // Identified by ticket sequence numbers (the queue does not know task
    // ids): `task` = displaced front's seq, `other` = entering seq.
    const Key front = entries_.begin()->first;
    flightrec::current().record(
        flightrec::EventType::teq_displaced, front.second, -1, front.first,
        ticket.completion_us, ticket.seq);
  }
  entries_.emplace(key(ticket), Entry{});
  size_.store(entries_.size(), std::memory_order_release);
  enters_.inc();
  if (displaces) displacements_.inc();
  if (was_empty || displaces) {
    // The enterer itself is the new front.  Nobody needs waking: the new
    // owner is this thread (not waiting), and the displaced previous
    // front's waiter is parked precisely because it is not the front —
    // displacement only makes that more true.  The seed implementation
    // broadcast to every waiter here; that was the thundering herd.
    TS_PROF_SCOPE(teq_publish);
    front_seq_.store(ticket.seq, std::memory_order_release);
  }
  return ticket;
}

void TaskExecQueue::wait_front(const Ticket& ticket) const {
  require_finite(ticket.completion_us);
  // Lock-free fast path: the published front is us and no cancellation is
  // pending.  The acquire load synchronizes with the leave() (or our own
  // enter()) that published our seq, so everything the previous front did
  // before leaving — clock advance, trace append — is visible here.
  if (!cancelled_flag_.load(std::memory_order_acquire) &&
      front_seq_.load(std::memory_order_acquire) == ticket.seq) {
    return;
  }
  wait_front_slow(ticket);
}

void TaskExecQueue::wait_front_slow(const Ticket& ticket) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = entries_.find(key(ticket));
  TS_REQUIRE(it != entries_.end(), "ticket not in queue");
  if (cancelled_) cancelled_wait_locked(ticket);
  if (it == entries_.begin()) return;
  // Only the genuinely blocked path is profiled: the fast path above is an
  // atomic load and would drown the wait signal in probe counts.
  prof::ScopedPhase prof_scope(prof::Phase::teq_wait);
  parks_.inc();
  const double blocked_from = wall_time_us();
  ParkSlot slot;
  it->second.slot = &slot;
  for (;;) {
    lock.unlock();
    {
      // Futex-style park: blocked until this ticket's slot is signaled —
      // by the leave() that makes it the front, or by cancel().
      TS_PROF_SCOPE(teq_park);
      std::uint32_t observed = slot.signaled.load(std::memory_order_acquire);
      while (observed == 0) {
        slot.signaled.wait(0, std::memory_order_acquire);
        observed = slot.signaled.load(std::memory_order_acquire);
      }
    }
    lock.lock();
    if (cancelled_) {
      // Deregister before unwinding; skip the wait_us observation — a
      // cancelled wait is not a queue-ordering wait, and recording its
      // bogus duration would pollute the sim.queue.wait_us distribution.
      it->second.slot = nullptr;
      cancelled_wait_locked(ticket);
    }
    if (it == entries_.begin()) {
      it->second.slot = nullptr;
      wait_us_.observe(wall_time_us() - blocked_from);
      return;
    }
    // Unparked but displaced again before we re-acquired the mutex (§V-E
    // displacement storm): re-arm the slot — under the mutex, so no unpark
    // can interleave with the reset — and park again.
    slot.signaled.store(0, std::memory_order_relaxed);
  }
}

TaskExecQueue::WaitOutcome TaskExecQueue::wait_front_or_release(
    const Ticket& ticket, const ReleaseGate& gate) const {
  require_finite(ticket.completion_us);
  // Same lock-free fast path as wait_front: being the published front is
  // always the preferred outcome, and needs no horizon or gate check.
  if (!cancelled_flag_.load(std::memory_order_acquire) &&
      front_seq_.load(std::memory_order_acquire) == ticket.seq) {
    return WaitOutcome::front;
  }
  return wait_front_or_release_slow(ticket, gate);
}

TaskExecQueue::WaitOutcome TaskExecQueue::wait_front_or_release_slow(
    const Ticket& ticket, const ReleaseGate& gate) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = entries_.find(key(ticket));
  TS_REQUIRE(it != entries_.end(), "ticket not in queue");
  prof::ScopedPhase prof_scope(prof::Phase::teq_wait);
  ParkSlot slot;
  bool parked = false;
  bool horizon_counted = false;
  double blocked_from = 0.0;
  for (;;) {
    if (cancelled_) {
      it->second.slot = nullptr;
      cancelled_wait_locked(ticket);
    }
    const auto front_it = entries_.begin();
    if (it == front_it) {
      if (parked) wait_us_.observe(wall_time_us() - blocked_from);
      return WaitOutcome::front;
    }
    if (front_it->second.released) {
      // The front is a zombie the engine has not committed yet.  Parking
      // would deadlock (no leave() is coming until someone commits), and
      // the queue cannot commit it — hand the drain duty to the caller.
      // Checked before the release gate so the commit drain always has a
      // driver even when this waiter could itself release.
      return WaitOutcome::front_blocked;
    }
    if (ticket.completion_us <= front_it->first.first + lookahead_) {
      // Within the safe horizon.  The grant predicate inspects engine and
      // scheduler state, so it runs outside the queue mutex; the relock
      // re-checks everything the gate's answer was conditioned on.
      lock.unlock();
      const bool granted = gate();
      lock.lock();
      if (cancelled_) {
        it->second.slot = nullptr;
        cancelled_wait_locked(ticket);
      }
      const auto front_now = entries_.begin();
      if (it == front_now) {
        if (parked) wait_us_.observe(wall_time_us() - blocked_from);
        return WaitOutcome::front;
      }
      if (front_now->second.released) return WaitOutcome::front_blocked;
      if (granted &&
          ticket.completion_us <= front_now->first.first + lookahead_) {
        // Release cascade: the gate is engine-global state, so the next
        // parked in-horizon waiter would almost certainly pass it too —
        // wake exactly one before returning.  Together with leave()'s
        // single-candidate wake this replaces the per-commit horizon
        // herd: a grant moment drains every eligible waiter one wake at
        // a time, a denial wakes nobody.
        const double horizon_now = front_now->first.first + lookahead_;
        for (auto next = std::next(front_now); next != entries_.end();
             ++next) {
          if (next == it || next->second.released) continue;
          if (next->first.first > horizon_now) break;
          if (next->second.slot != nullptr) {
            unpark_locked(next->second.slot);
            break;
          }
          // A live in-horizon waiter that is awake (mid-gate or between
          // parks) needs no wake — but it may also be about to park
          // having seen a denied gate, so keep scanning for a parked one.
        }
        return WaitOutcome::released;
      }
      // Denied (or the front moved under us): park until the front
      // changes; leave()'s horizon wake re-runs the gate.
    } else if (!horizon_counted) {
      horizon_blocks_.inc();
      horizon_counted = true;
    }
    if (!parked) {
      parks_.inc();
      parked = true;
      blocked_from = wall_time_us();
    }
    slot.signaled.store(0, std::memory_order_relaxed);
    it->second.slot = &slot;
    lock.unlock();
    {
      TS_PROF_SCOPE(teq_park);
      std::uint32_t observed = slot.signaled.load(std::memory_order_acquire);
      while (observed == 0) {
        slot.signaled.wait(0, std::memory_order_acquire);
        observed = slot.signaled.load(std::memory_order_acquire);
      }
    }
    lock.lock();
    it->second.slot = nullptr;
  }
}

TaskExecQueue::CancellableWait TaskExecQueue::wait_front_cancellable(
    const Ticket& ticket, const std::atomic<bool>& token) const {
  require_finite(ticket.completion_us);
  // The token check precedes the front check even on the fast path: a
  // hedge duplicate whose winner already committed must never read "front"
  // as a licence to commit a second span for the same task.
  if (token.load(std::memory_order_acquire)) {
    return CancellableWait::cancelled;
  }
  if (!cancelled_flag_.load(std::memory_order_acquire) &&
      front_seq_.load(std::memory_order_acquire) == ticket.seq) {
    return CancellableWait::front;
  }
  return wait_front_cancellable_slow(ticket, token);
}

TaskExecQueue::CancellableWait TaskExecQueue::wait_front_cancellable_slow(
    const Ticket& ticket, const std::atomic<bool>& token) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = entries_.find(key(ticket));
  TS_REQUIRE(it != entries_.end(), "ticket not in queue");
  prof::ScopedPhase prof_scope(prof::Phase::teq_wait);
  ParkSlot slot;
  bool parked = false;
  double blocked_from = 0.0;
  for (;;) {
    if (cancelled_) {
      it->second.slot = nullptr;
      cancelled_wait_locked(ticket);
    }
    if (token.load(std::memory_order_acquire)) {
      // Cancelled waits skip the wait_us observation: they are hedging
      // losers, not queue-ordering waits, and their duration would pollute
      // the sim.queue.wait_us distribution.
      it->second.slot = nullptr;
      return CancellableWait::cancelled;
    }
    const auto front_it = entries_.begin();
    if (it == front_it) {
      it->second.slot = nullptr;
      if (parked) wait_us_.observe(wall_time_us() - blocked_from);
      return CancellableWait::front;
    }
    if (front_it->second.released) {
      // Parking behind an uncommitted zombie would deadlock — hand the
      // commit-drain duty to the caller (same contract as
      // wait_front_or_release).
      it->second.slot = nullptr;
      return CancellableWait::front_blocked;
    }
    if (!parked) {
      parks_.inc();
      parked = true;
      blocked_from = wall_time_us();
    }
    slot.signaled.store(0, std::memory_order_relaxed);
    it->second.slot = &slot;
    lock.unlock();
    {
      TS_PROF_SCOPE(teq_park);
      std::uint32_t observed = slot.signaled.load(std::memory_order_acquire);
      while (observed == 0) {
        slot.signaled.wait(0, std::memory_order_acquire);
        observed = slot.signaled.load(std::memory_order_acquire);
      }
    }
    lock.lock();
    it->second.slot = nullptr;
  }
}

void TaskExecQueue::kick(const Ticket& ticket) const {
  require_finite(ticket.completion_us);
  TS_PROF_SCOPE(teq_mutex);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key(ticket));
  if (it == entries_.end()) return;  // already left — nothing to wake
  unpark_locked(it->second.slot);
}

bool TaskExecQueue::mark_released(const Ticket& ticket) {
  require_finite(ticket.completion_us);
  TS_PROF_SCOPE(teq_mutex);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key(ticket));
  TS_REQUIRE(it != entries_.end(),
             "releasing a ticket that is not in the queue");
  TS_REQUIRE(it->second.slot == nullptr,
             "releasing a ticket whose owner is parked");
  it->second.released = true;
  return it == entries_.begin();
}

void TaskExecQueue::set_lookahead(double lookahead_us) {
  TS_REQUIRE(!(lookahead_us < 0.0) && !std::isnan(lookahead_us),
             "lookahead must be a non-negative horizon (µs)");
  std::lock_guard<std::mutex> lock(mutex_);
  lookahead_ = lookahead_us;
}

void TaskExecQueue::leave(const Ticket& ticket) {
  require_finite(ticket.completion_us);
  TS_PROF_SCOPE(teq_mutex);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key(ticket));
  TS_REQUIRE(it != entries_.end(),
             "leaving with a ticket that is not in the queue");
  const bool was_front = it == entries_.begin();
  entries_.erase(it);
  size_.store(entries_.size(), std::memory_order_release);
  {
    TS_PROF_SCOPE(teq_publish);
    if (entries_.empty()) {
      if (was_front) front_seq_.store(kNoFront, std::memory_order_release);
    } else if (was_front) {
      // Publish the new front and wake only its waiter.  Every other
      // parked waiter stays parked: their turn has not come, and waking
      // them (as the seed's notify_all did) only made N-1 threads fight
      // over the mutex to re-discover that fact.
      const auto front_it = entries_.begin();
      front_seq_.store(front_it->first.second, std::memory_order_release);
      unpark_locked(front_it->second.slot);
      if (lookahead_ > 0.0) {
        // Lookahead wakes (DESIGN.md §11): the first live waiter is woken
        // when it sits within the horizon of the *new* front (it becomes
        // the release candidate and re-runs its gate) or when the new
        // front is itself a released zombie (it becomes the commit-drain
        // driver, returning front_blocked from its wait).  Deeper
        // in-horizon waiters stay parked: waking them all per commit is a
        // thundering herd that re-discovers a denied gate N-1 times, and
        // a *granted* gate cascade-wakes the next waiter from
        // wait_front_or_release_slow instead — grant moments still
        // release in batch, denial moments wake nobody further.
        const double horizon = front_it->first.first + lookahead_;
        const bool need_poller = front_it->second.released;
        for (auto next = std::next(front_it); next != entries_.end();
             ++next) {
          if (next->second.released) continue;  // zombies are not parked
          if (need_poller || next->first.first <= horizon) {
            unpark_locked(next->second.slot);
          }
          break;
        }
      }
    }
    // Removing a non-front entry leaves the front unchanged: no
    // publication, no wakeups.
  }
}

void TaskExecQueue::cancel(std::string reason, std::string owner) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (cancelled_) return;
  cancelled_ = true;
  cancel_reason_ = std::move(reason);
  cancel_owner_ = std::move(owner);
  cancelled_flag_.store(true, std::memory_order_release);
  // The one remaining broadcast: every parked waiter must wake to throw
  // SimulationStalled from its own stack.  Aborting a stalled simulation
  // is exceptional, so the herd is acceptable here.
  for (auto& [entry_key, entry] : entries_) unpark_locked(entry.slot);
}

void TaskExecQueue::clear_cancel() {
  std::lock_guard<std::mutex> lock(mutex_);
  TS_REQUIRE(entries_.empty(), "cannot re-arm a cancelled queue in use");
  cancelled_ = false;
  cancel_reason_.clear();
  cancel_owner_.clear();
  cancelled_flag_.store(false, std::memory_order_release);
  front_seq_.store(kNoFront, std::memory_order_release);
  // Restart the ticket sequence so a re-armed engine's flight-recorder
  // events (teq_displaced seqs) are bit-identical to the first run's.
  next_seq_ = 0;
}

}  // namespace tasksim::sim
