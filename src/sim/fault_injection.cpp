#include "sim/fault_injection.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/profiler.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace tasksim::sim {

namespace {

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

double uniform01(std::uint64_t h) {
  // 53 mantissa bits, same construction as Rng::uniform().
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void validate_rule(const std::string& kernel, const KernelFaultRule& rule) {
  const std::string where = " (fault rule for '" + kernel + "')";
  TS_REQUIRE(rule.fail_probability >= 0.0 && rule.fail_probability <= 1.0,
             "fail probability must be in [0, 1]" + where);
  TS_REQUIRE(rule.progress_fraction >= 0.0 && rule.progress_fraction <= 1.0,
             "progress fraction must be in [0, 1]" + where);
  TS_REQUIRE(rule.stall_us >= 0.0 && std::isfinite(rule.stall_us),
             "stall must be a non-negative finite duration" + where);
  TS_REQUIRE(rule.stall_probability >= 0.0 && rule.stall_probability <= 1.0,
             "stall probability must be in [0, 1]" + where);
  validate_tail_rule(kernel, rule.tail);
}

}  // namespace

void FaultPlanConfig::validate() const {
  for (const auto& [kernel, rule] : rules) {
    TS_REQUIRE(!kernel.empty(), "fault rule with an empty kernel name");
    validate_rule(kernel, rule);
  }
  TS_REQUIRE(retry_backoff_us >= 0.0 && std::isfinite(retry_backoff_us),
             "retry backoff must be a non-negative finite duration");
  TS_REQUIRE(
      retry_backoff_cap_us >= 0.0 && std::isfinite(retry_backoff_cap_us),
      "retry backoff cap must be a non-negative finite duration");
  TS_REQUIRE(dispatch_delay_us >= 0.0 && std::isfinite(dispatch_delay_us),
             "dispatch delay must be a non-negative finite duration");
  TS_REQUIRE(
      bookkeeping_delay_us >= 0.0 && std::isfinite(bookkeeping_delay_us),
      "bookkeeping delay must be a non-negative finite duration");
}

FaultPlan::FaultPlan(FaultPlanConfig config) : config_(std::move(config)) {
  config_.validate();
}

const KernelFaultRule* FaultPlan::rule_for(const std::string& kernel) const {
  auto it = config_.rules.find(kernel);
  if (it == config_.rules.end()) it = config_.rules.find("*");
  return it == config_.rules.end() ? nullptr : &it->second;
}

std::uint64_t FaultPlan::hash(const std::string& kernel,
                              std::uint64_t ordinal,
                              std::uint64_t salt) const {
  // SplitMix64 chain: each input perturbs the state, each step scrambles.
  std::uint64_t state = config_.seed;
  splitmix64(state);
  state ^= fnv1a(kernel);
  splitmix64(state);
  state ^= ordinal;
  splitmix64(state);
  state ^= salt;
  return splitmix64(state);
}

std::uint64_t FaultPlan::register_submission(const std::string& kernel) {
  TS_PROF_SCOPE(fault_eval);
  std::lock_guard<std::mutex> lock(mutex_);
  return ordinals_[kernel]++;
}

FaultDecision FaultPlan::decide(const std::string& kernel,
                                std::uint64_t ordinal, int attempt) const {
  TS_PROF_SCOPE(fault_eval);
  FaultDecision decision;
  const KernelFaultRule* rule = rule_for(kernel);
  if (rule == nullptr) return decision;

  // Stalls apply per attempt (a retried task can stall again).
  if (rule->stall_us > 0.0 && rule->stall_probability > 0.0) {
    const std::uint64_t h =
        hash(kernel, ordinal, 0x57A11ULL + static_cast<std::uint64_t>(attempt));
    if (uniform01(h) < rule->stall_probability) {
      decision.stall_us = rule->stall_us;
    }
  }

  // Heavy-tail straggling applies per attempt (a retried attempt can
  // straggle independently).  The straggle coin and the magnitude draw use
  // distinct salts so tuning the probability never changes which magnitude
  // a straggling attempt gets.
  if (rule->tail.active()) {
    const std::uint64_t h =
        hash(kernel, ordinal, 0x7A11ULL + static_cast<std::uint64_t>(attempt));
    if (uniform01(h) < rule->tail.probability) {
      decision.tail_multiplier = sample_tail_multiplier(
          rule->tail,
          hash(kernel, ordinal,
               0x7A1FULL + static_cast<std::uint64_t>(attempt)));
    }
  }

  // Failures apply to first attempts only: a retry models re-running the
  // kernel after the transient fault cleared.
  if (attempt == 0) {
    bool fail = false;
    if (rule->fail_every_nth > 0 &&
        (ordinal + 1) % rule->fail_every_nth == 0) {
      fail = true;
    }
    if (!fail && rule->fail_probability > 0.0) {
      const std::uint64_t h = hash(kernel, ordinal, 0xFA11ULL);
      fail = uniform01(h) < rule->fail_probability;
    }
    if (fail) {
      decision.fail = true;
      decision.progress_fraction = rule->progress_fraction;
    }
  }
  return decision;
}

std::uint64_t FaultPlan::sample_seed(const std::string& kernel,
                                     std::uint64_t ordinal,
                                     int attempt) const {
  return hash(kernel, ordinal,
              0x5A3DULL + static_cast<std::uint64_t>(attempt));
}

double FaultPlan::backoff_us(int attempt) const {
  if (attempt < 1 || config_.retry_backoff_us <= 0.0) return 0.0;
  const double backoff =
      config_.retry_backoff_us * std::ldexp(1.0, attempt - 1);
  return std::min(backoff, config_.retry_backoff_cap_us);
}

void FaultPlan::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  ordinals_.clear();
}

FaultPlanConfig parse_fault_spec(const std::string& spec) {
  FaultPlanConfig config;
  for (const std::string& entry : split(spec, ';')) {
    const std::string trimmed = trim(entry);
    if (trimmed.empty()) continue;
    const auto colon = trimmed.find(':');
    TS_REQUIRE(colon != std::string::npos && colon > 0,
               "fault spec entry '" + trimmed +
                   "' is not of the form <kernel>:<key>=<value>,...");
    const std::string kernel = trim(trimmed.substr(0, colon));
    if (kernel == "@plan") {
      // Plan-wide knobs, not a kernel rule.
      for (const std::string& assignment :
           split(trimmed.substr(colon + 1), ',')) {
        const auto eq = assignment.find('=');
        TS_REQUIRE(eq != std::string::npos,
                   "fault spec assignment '" + assignment +
                       "' is not of the form <key>=<value>");
        const std::string k = trim(assignment.substr(0, eq));
        const std::string value = trim(assignment.substr(eq + 1));
        if (k == "backoff") {
          config.retry_backoff_us = parse_double(value);
          TS_REQUIRE(config.retry_backoff_us >= 0.0 &&
                         std::isfinite(config.retry_backoff_us),
                     "@plan backoff must be a non-negative finite duration");
        } else if (k == "backoffcap") {
          config.retry_backoff_cap_us = parse_double(value);
          TS_REQUIRE(
              config.retry_backoff_cap_us >= 0.0 &&
                  std::isfinite(config.retry_backoff_cap_us),
              "@plan backoffcap must be a non-negative finite duration");
        } else {
          throw InvalidArgument("unknown @plan spec key '" + k +
                                "' (valid: backoff, backoffcap)");
        }
      }
      continue;
    }
    KernelFaultRule rule;
    for (const std::string& assignment :
         split(trimmed.substr(colon + 1), ',')) {
      const auto eq = assignment.find('=');
      TS_REQUIRE(eq != std::string::npos,
                 "fault spec assignment '" + assignment +
                     "' is not of the form <key>=<value>");
      const std::string k = trim(assignment.substr(0, eq));
      const std::string value = trim(assignment.substr(eq + 1));
      if (k == "p") {
        rule.fail_probability = parse_double(value);
      } else if (k == "nth") {
        const long long nth = parse_int(value);
        TS_REQUIRE(nth >= 0, "nth must be non-negative in fault spec");
        rule.fail_every_nth = static_cast<std::uint64_t>(nth);
      } else if (k == "frac") {
        rule.progress_fraction = parse_double(value);
      } else if (k == "stall") {
        rule.stall_us = parse_double(value);
      } else if (k == "stallp") {
        rule.stall_probability = parse_double(value);
      } else if (k == "tailp") {
        rule.tail.probability = parse_double(value);
      } else if (k == "tailmult") {
        rule.tail.multiplier = parse_double(value);
      } else if (k == "taildist") {
        rule.tail.distribution = parse_tail_distribution(value);
      } else if (k == "tailshape") {
        rule.tail.shape = parse_double(value);
      } else {
        throw InvalidArgument("unknown fault spec key '" + k +
                              "' (valid: p, nth, frac, stall, stallp, "
                              "tailp, tailmult, taildist, tailshape)");
      }
    }
    // A stall rule with a stall duration but no explicit probability means
    // "always stall".
    if (rule.stall_us > 0.0 && rule.stall_probability == 0.0) {
      rule.stall_probability = 1.0;
    }
    TS_REQUIRE(config.rules.emplace(kernel, rule).second,
               "duplicate fault rule for kernel '" + kernel + "'");
  }
  config.validate();
  return config;
}

}  // namespace tasksim::sim
