#include "sim/dag_replay.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "dag/algorithms.hpp"
#include "support/error.hpp"

namespace tasksim::sim {

DurationFn model_duration_fn(const KernelModelSet& models, Rng& rng) {
  return [&models, &rng](const dag::Node& node) {
    return models.sample(node.kernel, rng);
  };
}

DurationFn weight_duration_fn() {
  return [](const dag::Node& node) { return node.weight_us; };
}

DagReplayResult replay_dag(const dag::TaskGraph& graph,
                           const DurationFn& duration,
                           const DagReplayOptions& options) {
  TS_REQUIRE(options.workers >= 1, "need at least one virtual worker");
  const std::size_t n = graph.node_count();

  // Optional list-scheduling priority: upward rank (critical-path length
  // from the node to a leaf, inclusive).
  std::vector<double> rank(n, 0.0);
  if (options.prioritize_critical_path && n > 0) {
    const auto order = dag::topological_order(graph);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const dag::NodeId id = *it;
      double best = 0.0;
      for (dag::NodeId succ : graph.successors(id)) {
        best = std::max(best, rank[succ]);
      }
      rank[id] = best + graph.node(id).weight_us;
    }
  }

  struct ReadyEntry {
    double ready_time;
    double neg_rank;  // higher rank first when prioritized
    dag::NodeId id;
    bool operator>(const ReadyEntry& other) const {
      if (ready_time != other.ready_time) return ready_time > other.ready_time;
      if (neg_rank != other.neg_rank) return neg_rank > other.neg_rank;
      return id > other.id;
    }
  };
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>,
                      std::greater<ReadyEntry>>
      ready;

  struct Running {
    double finish_time;
    int worker;
    dag::NodeId id;
    bool operator>(const Running& other) const {
      if (finish_time != other.finish_time)
        return finish_time > other.finish_time;
      return id > other.id;
    }
  };
  std::priority_queue<Running, std::vector<Running>, std::greater<Running>>
      running;

  std::vector<std::size_t> in_degree(n, 0);
  for (dag::NodeId id = 0; id < n; ++id) {
    in_degree[id] = graph.predecessors(id).size();
    if (in_degree[id] == 0) {
      ready.push({0.0, options.prioritize_critical_path ? -rank[id] : 0.0, id});
    }
  }

  std::vector<int> free_workers;
  for (int w = options.workers - 1; w >= 0; --w) free_workers.push_back(w);

  DagReplayResult result;
  result.timeline.set_label("dag-replay");
  double now = 0.0;
  std::size_t completed = 0;

  while (completed < n) {
    // Dispatch every ready task that can start now onto free workers.
    while (!free_workers.empty() && !ready.empty() &&
           ready.top().ready_time <= now) {
      const ReadyEntry entry = ready.top();
      ready.pop();
      const int worker = free_workers.back();
      free_workers.pop_back();
      const double dur = std::max(duration(graph.node(entry.id)), 0.0);
      result.timeline.record(entry.id, graph.node(entry.id).kernel, worker,
                             now, now + dur);
      running.push({now + dur, worker, entry.id});
    }

    // Advance time to the next event: a completion, or a task becoming
    // ready while workers idle.
    if (running.empty()) {
      TS_ASSERT(!ready.empty(), "DES stalled with no events");
      now = std::max(now, ready.top().ready_time);
      continue;
    }
    double next_event = running.top().finish_time;
    if (!free_workers.empty() && !ready.empty()) {
      next_event = std::min(next_event, std::max(now, ready.top().ready_time));
    }
    now = next_event;

    // Retire all completions at `now`.
    while (!running.empty() && running.top().finish_time <= now) {
      const Running done = running.top();
      running.pop();
      free_workers.push_back(done.worker);
      ++completed;
      for (dag::NodeId succ : graph.successors(done.id)) {
        if (--in_degree[succ] == 0) {
          ready.push({now,
                      options.prioritize_critical_path ? -rank[succ] : 0.0,
                      succ});
        }
      }
    }
  }

  result.makespan_us = result.timeline.makespan_us();
  return result;
}

}  // namespace tasksim::sim
