// sim_submitter.hpp — the drop-in simulated KernelSubmitter (paper §V-D).
//
// "In order to use the simulation library, the developer simply replaces
// the calls to each computational kernel with a call to the simulated
// kernel."  SimSubmitter is that replacement at the submitter seam: it
// accepts the same (kernel, body, accesses) triple as RealSubmitter but
// discards the body and submits a task whose function calls
// SimEngine::execute.  The *real* data addresses still flow into the
// scheduler — as the paper notes, the memory locations are required for the
// dependence analysis even though the memory is never touched.
#pragma once

#include "sched/submitter.hpp"
#include "sim/sim_engine.hpp"

namespace tasksim::sim {

class SimSubmitter final : public sched::KernelSubmitter {
 public:
  SimSubmitter(sched::Runtime& runtime, SimEngine& engine)
      : runtime_(runtime), engine_(engine) {}

  sched::TaskId submit(const std::string& kernel, std::function<void()> body,
                       sched::AccessList accesses, int priority = 0) override;

  /// Heterogeneous tasks: the simulated body is the same engine call (the
  /// engine selects the accelerator model by lane); the task is marked
  /// accel-capable so the scheduler may place it on accelerator lanes.
  sched::TaskId submit_hetero(const std::string& kernel,
                              std::function<void()> body,
                              std::function<void()> accel_body,
                              sched::AccessList accesses,
                              int priority = 0) override;

  void finish() override {
    engine_.set_submission_open(false);
    runtime_.wait_all();
    // wait_all returns when every task *function* has returned — which,
    // under conservative lookahead, can leave released tasks whose virtual
    // commits (trace, clock) are still deferred in the queue.  Drain them
    // so virtual_time_us()/trace() are final. No-op outside lookahead.
    engine_.drain_releases();
  }
  sched::Runtime& runtime() override { return runtime_; }

  SimEngine& engine() { return engine_; }

 private:
  sched::Runtime& runtime_;
  SimEngine& engine_;
};

}  // namespace tasksim::sim
