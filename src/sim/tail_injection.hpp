// tail_injection.hpp — deterministic heavy-tail virtual-duration inflation.
//
// Production schedulers live or die on the *tail*: one straggling task on
// the critical path dominates end-to-end latency.  A TailRule inflates the
// sampled virtual duration of a straggling attempt by a multiplicative
// factor drawn from a heavy-tailed distribution (lognormal or bounded-shape
// Pareto).  Both the "does this attempt straggle" coin and the magnitude
// draw are pure functions of hashes supplied by the FaultPlan — the same
// (seed, kernel, ordinal, attempt) hashing discipline as failures and
// stalls — so tail injection is independent of thread interleaving: the
// same seed straggles the same attempts by the same factors in every run.
//
// The multiplier is clamped to >= 1: tail injection only ever *inflates*
// durations, so a clean run is always a lower bound on a tailed one and
// "recovered inflation" is well defined for the hedging ablation.
#pragma once

#include <cstdint>
#include <string>

namespace tasksim::sim {

/// Magnitude distribution for straggler inflation factors.
enum class TailDistribution {
  /// multiplier * exp(shape * z), z ~ N(0,1).  shape = 0 degenerates to a
  /// deterministic `multiplier` inflation (useful for exact-math tests).
  lognormal,
  /// multiplier * (1 - u)^(-1/shape), u ~ U[0,1); requires shape > 0.
  pareto,
};

const char* to_string(TailDistribution dist);

/// Parse "lognormal" | "pareto"; anything else throws InvalidArgument with
/// the enumerated options.
TailDistribution parse_tail_distribution(const std::string& text);

/// Heavy-tail inflation behaviour for one kernel class.  Inactive by
/// default (probability 0): no draw is made and the attempt runs at its
/// sampled duration.
struct TailRule {
  /// Probability that an attempt straggles.
  double probability = 0.0;
  /// Base inflation factor applied to a straggling attempt (>= 1).
  double multiplier = 1.0;
  TailDistribution distribution = TailDistribution::lognormal;
  /// Dispersion: lognormal sigma (>= 0) or Pareto alpha (> 0).
  double shape = 0.0;

  bool active() const { return probability > 0.0; }
};

/// TS_REQUIRE every field of `rule` into its documented domain; `kernel`
/// names the rule in the error message.
void validate_tail_rule(const std::string& kernel, const TailRule& rule);

/// Inflation factor for a straggling attempt: a deterministic function of
/// `magnitude_hash` (a full-entropy 64-bit hash, e.g. FaultPlan::hash with
/// the tail-magnitude salt).  Always >= 1.
double sample_tail_multiplier(const TailRule& rule,
                              std::uint64_t magnitude_hash);

}  // namespace tasksim::sim
