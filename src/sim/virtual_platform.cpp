#include "sim/virtual_platform.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace tasksim::sim {

void VirtualPlatform::on_submit(sched::TaskId id,
                                const sched::TaskDescriptor& desc) {
  std::lock_guard<std::mutex> lock(mutex_);
  TaskInfo info;
  info.id = id;
  info.kernel = desc.kernel;

  auto add_pred = [&](sched::TaskId pred) {
    if (pred == id) return;
    auto& preds = info.predecessors;
    if (std::find(preds.begin(), preds.end(), pred) == preds.end()) {
      preds.push_back(pred);
    }
  };

  // Same hazard analysis as the schedulers (RaW / WaR / WaW).
  for (const sched::Access& access : desc.accesses) {
    auto it = objects_.find(access.address);
    if (it == objects_.end()) continue;
    const ObjectState& state = it->second;
    if (sched::reads(access.mode) && state.has_writer) {
      add_pred(state.last_writer);
    }
    if (sched::writes(access.mode)) {
      if (!state.readers_since_write.empty()) {
        for (sched::TaskId reader : state.readers_since_write) add_pred(reader);
      } else if (state.has_writer) {
        add_pred(state.last_writer);
      }
    }
  }
  for (const sched::Access& access : desc.accesses) {
    ObjectState& state = objects_[access.address];
    if (sched::writes(access.mode)) {
      state.has_writer = true;
      state.last_writer = id;
      state.readers_since_write.clear();
    } else {
      state.readers_since_write.push_back(id);
    }
  }

  index_.emplace(id, tasks_.size());
  tasks_.push_back(std::move(info));
}

void VirtualPlatform::on_finish(sched::TaskId id, const std::string& /*kernel*/,
                                int worker, double start_wall_us,
                                double /*end_wall_us*/, double start_cpu_us,
                                double end_cpu_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(id);
  TS_ASSERT(it != index_.end(), "finish for a task that was never submitted");
  TaskInfo& info = tasks_[it->second];
  info.worker = worker;
  info.start_wall_us = start_wall_us;
  info.cpu_duration_us = end_cpu_us - start_cpu_us;
  info.executed = true;
}

trace::Trace VirtualPlatform::replay() const {
  std::lock_guard<std::mutex> lock(mutex_);
  trace::Trace timeline("virtual-platform");

  // Process tasks in real start order: every predecessor finished (in real
  // time) before its successor started, so predecessors sort earlier and
  // their virtual end times are available when needed.
  std::vector<const TaskInfo*> order;
  order.reserve(tasks_.size());
  for (const TaskInfo& info : tasks_) {
    TS_REQUIRE(info.executed, "replay before all tasks finished");
    order.push_back(&info);
  }
  std::sort(order.begin(), order.end(),
            [](const TaskInfo* a, const TaskInfo* b) {
              if (a->start_wall_us != b->start_wall_us) {
                return a->start_wall_us < b->start_wall_us;
              }
              return a->id < b->id;
            });

  std::unordered_map<int, double> worker_clock;
  std::unordered_map<sched::TaskId, double> virtual_end;
  virtual_end.reserve(order.size());

  for (const TaskInfo* info : order) {
    double start = worker_clock[info->worker];
    for (sched::TaskId pred : info->predecessors) {
      auto it = virtual_end.find(pred);
      TS_ASSERT(it != virtual_end.end(),
                "predecessor not replayed before successor");
      start = std::max(start, it->second);
    }
    const double end = start + info->cpu_duration_us;
    worker_clock[info->worker] = end;
    virtual_end.emplace(info->id, end);
    timeline.record(info->id, info->kernel, info->worker, start, end);
  }
  return timeline;
}

double VirtualPlatform::virtual_makespan_us() const {
  return replay().makespan_us();
}

std::size_t VirtualPlatform::task_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

void VirtualPlatform::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  tasks_.clear();
  index_.clear();
  objects_.clear();
}

}  // namespace tasksim::sim
