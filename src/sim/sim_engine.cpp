#include "sim/sim_engine.hpp"

#include <sched.h>
#include <unistd.h>

#include <algorithm>
#include <sstream>
#include <thread>

#include "sched/runtime.hpp"
#include "support/error.hpp"
#include "support/flight_recorder.hpp"
#include "support/log.hpp"
#include "support/profiler.hpp"
#include "support/timing.hpp"

namespace tasksim::sim {

const char* to_string(RaceMitigation mitigation) {
  switch (mitigation) {
    case RaceMitigation::none: return "none";
    case RaceMitigation::yield_sleep: return "yield_sleep";
    case RaceMitigation::quiescence: return "quiescence";
  }
  return "?";
}

RaceMitigation parse_race_mitigation(const std::string& name) {
  if (name == "none") return RaceMitigation::none;
  if (name == "yield_sleep" || name == "sleep" || name == "yield") {
    return RaceMitigation::yield_sleep;
  }
  if (name == "quiescence") return RaceMitigation::quiescence;
  throw InvalidArgument("unknown race mitigation: '" + name +
                        "' (valid: none, yield_sleep (aliases: yield, "
                        "sleep), quiescence)");
}

SimEngine::SimEngine(const KernelModelSet& models, SimEngineOptions options)
    : models_(models),
      options_(options),
      telemetry_(&telemetry::current()),
      rng_(options.seed),
      executed_(metrics::counter("sim.tasks_executed")),
      quiescence_timeouts_(metrics::counter("sim.quiescence_timeouts")),
      quiescence_spins_(metrics::counter("sim.quiescence_spins")),
      quiescence_spin_iters_(metrics::histogram("sim.quiescence_spin_iters")),
      fault_failures_(metrics::counter("sim.fault.failed_attempts")),
      fault_stalls_(metrics::counter("sim.fault.stalls")),
      fault_skips_(metrics::counter("sim.fault.skipped_tasks")),
      watchdog_stalls_(metrics::counter("sim.watchdog.stalls")),
      executed_base_(executed_.value()),
      quiescence_timeouts_base_(quiescence_timeouts_.value()),
      fault_failures_base_(fault_failures_.value()),
      fault_stalls_base_(fault_stalls_.value()) {
  TS_REQUIRE(options_.sleep_us >= 0.0, "sleep_us must be non-negative");
  TS_REQUIRE(options_.quiescence_timeout_us >= 0.0,
             "quiescence_timeout_us must be non-negative");
  TS_REQUIRE(options_.min_duration_us > 0.0,
             "min_duration_us must be positive");
  TS_REQUIRE(options_.watchdog_timeout_us >= 0.0,
             "watchdog_timeout_us must be non-negative");
  if (options_.watchdog_timeout_us > 0.0 &&
      options_.mitigation == RaceMitigation::quiescence) {
    TS_REQUIRE(options_.watchdog_timeout_us > options_.quiescence_timeout_us,
               "the watchdog timeout must exceed the quiescence timeout, or "
               "a legitimately timed-out wait would be declared a stall");
  }
  trace_.set_label("simulated");
  if (options_.watchdog_timeout_us > 0.0) start_watchdog();
}

SimEngine::~SimEngine() { watchdog_.stop(); }

std::uint64_t SimEngine::register_submission(const std::string& kernel) {
  if (options_.faults == nullptr || !options_.faults->active()) return 0;
  // const_cast-free: ordinal assignment mutates the plan, which the
  // harness owns; engines hold it const for decide()/sample_seed().
  return const_cast<FaultPlan*>(options_.faults)->register_submission(kernel);
}

void SimEngine::start_watchdog() {
  watchdog_.set_owner(telemetry_->describe());
  watchdog_.add_beacon("sim.tasks_executed",
                       [this] { return executed_.value(); });
  // Beacons resolved by name must be captured as handles here, on the
  // engine's own (bound) thread: the lambdas run on the watchdog thread,
  // where metrics::counter() would resolve that thread's context — the
  // process default, not this engine's — and watch the wrong registry.
  watchdog_.add_beacon(
      "sim.queue.enters",
      [handle = metrics::counter("sim.queue.enters")] { return handle.value(); });
  watchdog_.add_beacon("sim.fault.failed_attempts",
                       [this] { return fault_failures_.value(); });
  watchdog_.add_beacon("sim.virtual_clock_us", [this] {
    return static_cast<std::uint64_t>(clock_.now());
  });
  watchdog_.add_beacon(
      "sched.tasks_submitted",
      [handle = metrics::counter("sched.tasks_submitted")] {
        return handle.value();
      });
  watchdog_.add_beacon(
      "sched.tasks_completed",
      [handle = metrics::counter("sched.tasks_completed")] {
        return handle.value();
      });
  watchdog_.set_activity_gate([this] {
    return submission_open() || queue_.size() > 0 ||
           in_flight_.load(std::memory_order_acquire) > 0;
  });
  watchdog_.set_stall_handler(
      [this](const StallReport& report) { on_stall(report); });
  WatchdogOptions options;
  options.stall_timeout_us = options_.watchdog_timeout_us;
  options.poll_interval_us = options_.watchdog_poll_us;
  watchdog_.start(options);
}

void SimEngine::on_stall(const StallReport& report) {
  watchdog_stalls_.inc();
  flightrec::FlightRecorder& fr = telemetry_->recorder();
  fr.record(flightrec::EventType::watchdog_stall, flightrec::kNoTask, -1,
            report.stalled_for_us);

  std::ostringstream os;
  os << report.to_string();
  os << "engine state: virtual clock " << clock_.now() << " us, "
     << queue_.size() << " task(s) in the execution queue, "
     << in_flight_.load(std::memory_order_acquire)
     << " simulated body(ies) in flight, submission "
     << (submission_open() ? "open" : "closed") << "\n";

  // Flight-recorder tail: the most recent events are the actionable part
  // of the dump (who last moved, who everyone is waiting on).  Draining
  // consumes the stream, but this simulation is being aborted anyway.
  flightrec::Stream stream = fr.drain();
  if (!stream.events.empty()) {
    constexpr std::size_t kTail = 40;
    const std::size_t first =
        stream.events.size() > kTail ? stream.events.size() - kTail : 0;
    os << "flight recorder (last " << stream.events.size() - first << " of "
       << stream.events.size() << " events):\n";
    for (std::size_t i = first; i < stream.events.size(); ++i) {
      const flightrec::Event& ev = stream.events[i];
      os << "  [" << ev.wall_us << "] " << flightrec::to_string(ev.type);
      if (ev.task != flightrec::kNoTask) os << " task=" << ev.task;
      if (ev.worker >= 0) os << " worker=" << ev.worker;
      os << " a=" << ev.a << " b=" << ev.b << "\n";
    }
  }

  TS_LOG_ERROR << "watchdog declared " << telemetry_->describe()
               << " stalled after " << report.stalled_for_us
               << " us; cancelling the task execution queue";
  stalled_.store(true, std::memory_order_release);
  // Wakes every thread blocked in the queue; they throw SimulationStalled
  // carrying this report (tagged with the engine identity) from their own
  // stacks.
  queue_.cancel(os.str(), telemetry_->describe());
}

void SimEngine::interruptible_stall(double us) {
  const double until = wall_time_us() + us;
  while (wall_time_us() < until) {
    if (stalled_.load(std::memory_order_acquire)) return;
    const double remaining = until - wall_time_us();
    ::usleep(static_cast<useconds_t>(
        std::max(0.0, std::min(remaining, 1000.0))));
  }
}

bool SimEngine::scheduler_safe(const sched::TaskContext& ctx) const {
  const sched::Runtime* rt = ctx.runtime;
  TS_ASSERT(rt != nullptr, "simulated task without a runtime context");
  const std::size_t in_queue = queue_.size();
  // (a) every executor is blocked in the queue: any future task must start
  // after some queued task returns, i.e. at a later virtual time.
  if (in_queue >= static_cast<std::size_t>(rt->active_executor_count())) {
    return true;
  }
  // (b) the submitter may still insert a task that would start at the
  // current (earlier) clock: wait while submission is open — unless the
  // submitter itself is blocked on the task window, in which case it needs
  // completions to make progress.
  if (submission_open() && !rt->submitter_waiting()) return false;
  // (c) nothing can be racing: no ready task reachable by an idle
  // executor, no bookkeeping (release or dispatch) in flight, and every
  // running task has already entered the queue (running > queued would
  // mean a worker claimed a task whose simulated body has not reached us
  // yet).
  return !rt->ready_task_reachable() && rt->bookkeeping_in_flight() == 0 &&
         static_cast<int>(in_queue) == rt->running_task_count();
}

double SimEngine::execute(sched::TaskContext& ctx,
                          const std::string& base_kernel,
                          std::uint64_t fault_ordinal) {
  flightrec::FlightRecorder& fr = telemetry_->recorder();

  // Poisoned fast path: a producer (or this task itself) exhausted its
  // retry budget.  Record the skip on the virtual trace — zero-length, at
  // the current clock — and return without touching clock or queue.
  if (ctx.poisoned) {
    fault_skips_.inc();
    const double now = clock_.now();
    trace_.record(ctx.id, base_kernel + "!skipped", ctx.worker, now, now);
    return 0.0;
  }

  struct InFlight {
    std::atomic<int>& count;
    explicit InFlight(std::atomic<int>& c) : count(c) {
      count.fetch_add(1, std::memory_order_acq_rel);
    }
    ~InFlight() { count.fetch_sub(1, std::memory_order_acq_rel); }
  } in_flight_guard(in_flight_);

  // Accelerator lanes draw from the "<kernel>@accel" model when one exists
  // (heterogeneous extension; falls back to the CPU model otherwise).
  std::string kernel = base_kernel;
  if (ctx.runtime != nullptr && ctx.runtime->lane_is_accelerator(ctx.worker)) {
    const std::string accel_key = base_kernel + "@accel";
    if (models_.has_model(accel_key)) kernel = accel_key;
  }

  // Fault plan: decisions are pure functions of (seed, kernel, submission
  // ordinal, attempt) — identical across runs whatever the interleaving.
  const FaultPlan* plan = options_.faults;
  const bool plan_active = plan != nullptr && plan->active();
  FaultDecision decision;
  if (plan_active) {
    decision = plan->decide(base_kernel, fault_ordinal, ctx.attempt);
    if (decision.stall_us > 0.0) {
      fault_stalls_.inc();
      fr.record(flightrec::EventType::fault_stall, ctx.id, ctx.worker,
                decision.stall_us);
      TS_PROF_SCOPE(fault_stall);
      interruptible_stall(decision.stall_us);
    }
  }
  if (stalled_.load(std::memory_order_acquire)) {
    throw SimulationStalled(
        telemetry_->describe() + ": simulation cancelled by the watchdog",
        "see the stall report on the first failure");
  }

  // 1. Virtual start time: the clock only advances when simulated tasks
  // return, so "now" is the time the executing worker became free.
  const double start = clock_.now();

  // 2. Virtual duration.  Under an active fault plan the sample comes
  // from a deterministic per-(task, attempt) stream so that retries and
  // thread interleaving cannot shift anyone else's draws; otherwise from
  // the shared engine RNG with the startup-model logic.
  double duration;
  if (plan_active) {
    Rng attempt_rng(plan->sample_seed(base_kernel, fault_ordinal, ctx.attempt));
    duration = models_.sample(kernel, attempt_rng, options_.min_duration_us);
  } else {
    std::lock_guard<std::mutex> lock(rng_mutex_);
    const KernelModelSet* source = &models_;
    if (options_.startup_models != nullptr &&
        options_.startup_models->has_model(kernel) &&
        warmed_up_.emplace(ctx.worker, kernel).second) {
      source = options_.startup_models;
    }
    duration = source->sample(kernel, rng_, options_.min_duration_us);
  }

  // Retry attempts pay the exponential virtual-time backoff penalty, and a
  // failed attempt only progresses a fraction of its sampled duration
  // before dying; both are part of the virtual span committed to the TEQ.
  const double backoff = plan_active ? plan->backoff_us(ctx.attempt) : 0.0;
  const double progress =
      decision.fail ? duration * decision.progress_fraction : duration;
  const double virtual_span = backoff + progress;
  const double end = start + virtual_span;

  // 3. Enter the Task Execution Queue and wait to become the front.  The
  // failed attempt travels the same path as a success: its partial
  // progress must be committed to the virtual timeline in completion
  // order, or the retry would be scheduled against a corrupted clock.
  const TaskExecQueue::Ticket ticket = queue_.enter(end);
  try {
    fr.record(flightrec::EventType::teq_enter, ctx.id, ctx.worker, start, end,
              ticket.seq);

    if (options_.mitigation == RaceMitigation::yield_sleep) {
      // Give the scheduler a chance to finish bookkeeping that could insert
      // an earlier-completing task (paper §V-E's portable mitigation).
      TS_PROF_SCOPE(mitigation_sleep);
      sched_yield();
      ::usleep(static_cast<useconds_t>(options_.sleep_us));
    }

    queue_.wait_front(ticket);
    fr.record(flightrec::EventType::teq_front, ctx.id, ctx.worker, start, end,
              ticket.seq);

    if (options_.mitigation == RaceMitigation::quiescence) {
      // The poll's own exclusive time is the predicate + yield cost; the TEQ
      // re-blocks inside the loop show up separately as sim.teq_wait.
      TS_PROF_SCOPE(quiescence_poll);
      const double wait_start = wall_time_us();
      std::uint64_t spins = 0;
      while (!scheduler_safe(ctx)) {
        const double waited = wall_time_us() - wait_start;
        if (waited > options_.quiescence_timeout_us) {
          quiescence_timeouts_.inc();
          fr.record(flightrec::EventType::quiescence_timeout, ctx.id,
                    ctx.worker, end, waited);
          TS_LOG_WARN << "quiescence wait timed out for kernel " << kernel
                      << " (task " << ctx.id << ", virtual completion " << end
                      << " us, waited " << waited << " us)";
          break;
        }
        ++spins;
        std::this_thread::yield();
        // A later-arriving task may have displaced us from the front while
        // we yielded; re-establish the ordering invariant before
        // re-checking.
        queue_.wait_front(ticket);
      }
      if (spins > 0) {
        quiescence_spins_.inc(spins);
        quiescence_spin_iters_.observe(static_cast<double>(spins));
        fr.record(flightrec::EventType::quiescence_spin, ctx.id, ctx.worker,
                  static_cast<double>(spins));
      }
    }
  } catch (...) {
    // Cancelled while waiting (watchdog): release the slot so the other
    // waiters' front checks stay meaningful during the drain.
    queue_.leave(ticket);
    throw;
  }

  // 4. Record the event, advance the clock, release the queue slot, and
  // return to the scheduler "as if" the kernel had computed (or died).
  trace_.record(ctx.id, decision.fail ? kernel + "!failed" : kernel,
                ctx.worker, start, end);
  fr.record(flightrec::EventType::clock_advance, ctx.id, ctx.worker, end);
  clock_.advance_to(end);
  executed_.inc();
  // task_return is recorded while this task still owns the queue front, so
  // the returns appear in the recorder in the order the task functions
  // actually returned — the ordering the race auditor checks.
  fr.record(flightrec::EventType::task_return, ctx.id, ctx.worker, end);
  queue_.leave(ticket);

  if (decision.fail) {
    fault_failures_.inc();
    throw TaskFailure(ctx.id, ctx.attempt,
                      "injected failure: kernel " + base_kernel + ", task " +
                          std::to_string(ctx.id) + ", attempt " +
                          std::to_string(ctx.attempt));
  }
  return virtual_span;
}

void SimEngine::reset() {
  TS_REQUIRE(queue_.size() == 0, "cannot reset with simulated tasks in flight");
  clock_.reset();
  trace_.clear();
  executed_base_ = executed_.value();
  quiescence_timeouts_base_ = quiescence_timeouts_.value();
  fault_failures_base_ = fault_failures_.value();
  fault_stalls_base_ = fault_stalls_.value();
  warmed_up_.clear();
  // Re-arm after a watchdog cancellation so the engine is reusable, and —
  // unconditionally — restart the TEQ ticket sequence so back-to-back runs
  // on one engine emit identical ticket seqs in flight-recorder
  // teq_displaced events (cross-run trace determinism).
  stalled_.store(false, std::memory_order_release);
  queue_.clear_cancel();
}

}  // namespace tasksim::sim
