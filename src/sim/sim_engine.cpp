#include "sim/sim_engine.hpp"

#include <sched.h>
#include <unistd.h>

#include <algorithm>
#include <sstream>
#include <thread>

#include "sched/runtime.hpp"
#include "support/error.hpp"
#include "support/flight_recorder.hpp"
#include "support/log.hpp"
#include "support/profiler.hpp"
#include "support/timing.hpp"

namespace tasksim::sim {

const char* to_string(RaceMitigation mitigation) {
  switch (mitigation) {
    case RaceMitigation::none: return "none";
    case RaceMitigation::yield_sleep: return "yield_sleep";
    case RaceMitigation::quiescence: return "quiescence";
  }
  return "?";
}

RaceMitigation parse_race_mitigation(const std::string& name) {
  if (name == "none") return RaceMitigation::none;
  if (name == "yield_sleep" || name == "sleep" || name == "yield") {
    return RaceMitigation::yield_sleep;
  }
  if (name == "quiescence") return RaceMitigation::quiescence;
  throw InvalidArgument("unknown race mitigation: '" + name +
                        "' (valid: none, yield_sleep (aliases: yield, "
                        "sleep), quiescence)");
}

SimEngine::SimEngine(const KernelModelSet& models, SimEngineOptions options)
    : models_(models),
      options_(options),
      telemetry_(&telemetry::current()),
      rng_(options.seed),
      executed_(metrics::counter("sim.tasks_executed")),
      quiescence_timeouts_(metrics::counter("sim.quiescence_timeouts")),
      quiescence_spins_(metrics::counter("sim.quiescence_spins")),
      quiescence_spin_iters_(metrics::histogram("sim.quiescence_spin_iters")),
      fault_failures_(metrics::counter("sim.fault.failed_attempts")),
      fault_stalls_(metrics::counter("sim.fault.stalls")),
      fault_skips_(metrics::counter("sim.fault.skipped_tasks")),
      watchdog_stalls_(metrics::counter("sim.watchdog.stalls")),
      releases_(metrics::counter("sim.lookahead.releases")),
      horizon_blocks_(metrics::counter("sim.lookahead.horizon_blocks")),
      executed_base_(executed_.value()),
      quiescence_timeouts_base_(quiescence_timeouts_.value()),
      fault_failures_base_(fault_failures_.value()),
      fault_stalls_base_(fault_stalls_.value()),
      releases_base_(releases_.value()),
      horizon_blocks_base_(horizon_blocks_.value()) {
  TS_REQUIRE(options_.sleep_us >= 0.0, "sleep_us must be non-negative");
  TS_REQUIRE(options_.quiescence_timeout_us >= 0.0,
             "quiescence_timeout_us must be non-negative");
  TS_REQUIRE(options_.min_duration_us > 0.0,
             "min_duration_us must be positive");
  TS_REQUIRE(options_.watchdog_timeout_us >= 0.0,
             "watchdog_timeout_us must be non-negative");
  if (options_.watchdog_timeout_us > 0.0 &&
      options_.mitigation == RaceMitigation::quiescence) {
    TS_REQUIRE(options_.watchdog_timeout_us > options_.quiescence_timeout_us,
               "the watchdog timeout must exceed the quiescence timeout, or "
               "a legitimately timed-out wait would be declared a stall");
  }
  TS_REQUIRE(options_.lookahead_us >= 0.0,
             "lookahead_us must be a non-negative horizon");
  // lookahead_us == 0 disables the lookahead path outright whatever the
  // mode: the horizon clause could never fire, and routing through the
  // strict code path reproduces the serialized engine bit for bit.
  lookahead_on_ = options_.lookahead_mode != LookaheadMode::off &&
                  options_.lookahead_us > 0.0;
  if (lookahead_on_) queue_.set_lookahead(options_.lookahead_us);
  trace_.set_label("simulated");
  if (options_.watchdog_timeout_us > 0.0) start_watchdog();
}

SimEngine::~SimEngine() { watchdog_.stop(); }

std::uint64_t SimEngine::register_submission(const std::string& kernel) {
  if (options_.faults == nullptr || !options_.faults->active()) return 0;
  // const_cast-free: ordinal assignment mutates the plan, which the
  // harness owns; engines hold it const for decide()/sample_seed().
  return const_cast<FaultPlan*>(options_.faults)->register_submission(kernel);
}

void SimEngine::start_watchdog() {
  watchdog_.set_owner(telemetry_->describe());
  watchdog_.add_beacon("sim.tasks_executed",
                       [this] { return executed_.value(); });
  // Beacons resolved by name must be captured as handles here, on the
  // engine's own (bound) thread: the lambdas run on the watchdog thread,
  // where metrics::counter() would resolve that thread's context — the
  // process default, not this engine's — and watch the wrong registry.
  watchdog_.add_beacon(
      "sim.queue.enters",
      [handle = metrics::counter("sim.queue.enters")] { return handle.value(); });
  watchdog_.add_beacon("sim.fault.failed_attempts",
                       [this] { return fault_failures_.value(); });
  watchdog_.add_beacon("sim.virtual_clock_us", [this] {
    return static_cast<std::uint64_t>(clock_.now());
  });
  watchdog_.add_beacon(
      "sched.tasks_submitted",
      [handle = metrics::counter("sched.tasks_submitted")] {
        return handle.value();
      });
  watchdog_.add_beacon(
      "sched.tasks_completed",
      [handle = metrics::counter("sched.tasks_completed")] {
        return handle.value();
      });
  watchdog_.set_activity_gate([this] {
    return submission_open() || queue_.size() > 0 ||
           in_flight_.load(std::memory_order_acquire) > 0;
  });
  watchdog_.set_stall_handler(
      [this](const StallReport& report) { on_stall(report); });
  WatchdogOptions options;
  options.stall_timeout_us = options_.watchdog_timeout_us;
  options.poll_interval_us = options_.watchdog_poll_us;
  watchdog_.start(options);
}

void SimEngine::on_stall(const StallReport& report) {
  watchdog_stalls_.inc();
  flightrec::FlightRecorder& fr = telemetry_->recorder();
  fr.record(flightrec::EventType::watchdog_stall, flightrec::kNoTask, -1,
            report.stalled_for_us);

  std::ostringstream os;
  os << report.to_string();
  os << "engine state: virtual clock " << clock_.now() << " us, "
     << queue_.size() << " task(s) in the execution queue, "
     << in_flight_.load(std::memory_order_acquire)
     << " simulated body(ies) in flight, submission "
     << (submission_open() ? "open" : "closed") << "\n";

  // Flight-recorder tail: the most recent events are the actionable part
  // of the dump (who last moved, who everyone is waiting on).  Draining
  // consumes the stream, but this simulation is being aborted anyway.
  flightrec::Stream stream = fr.drain();
  if (!stream.events.empty()) {
    constexpr std::size_t kTail = 40;
    const std::size_t first =
        stream.events.size() > kTail ? stream.events.size() - kTail : 0;
    os << "flight recorder (last " << stream.events.size() - first << " of "
       << stream.events.size() << " events):\n";
    for (std::size_t i = first; i < stream.events.size(); ++i) {
      const flightrec::Event& ev = stream.events[i];
      os << "  [" << ev.wall_us << "] " << flightrec::to_string(ev.type);
      if (ev.task != flightrec::kNoTask) os << " task=" << ev.task;
      if (ev.worker >= 0) os << " worker=" << ev.worker;
      os << " a=" << ev.a << " b=" << ev.b << "\n";
    }
  }

  TS_LOG_ERROR << "watchdog declared " << telemetry_->describe()
               << " stalled after " << report.stalled_for_us
               << " us; cancelling the task execution queue";
  stalled_.store(true, std::memory_order_release);
  // Wakes every thread blocked in the queue; they throw SimulationStalled
  // carrying this report (tagged with the engine identity) from their own
  // stacks.
  queue_.cancel(os.str(), telemetry_->describe());
}

void SimEngine::interruptible_stall(double us) {
  const double until = wall_time_us() + us;
  while (wall_time_us() < until) {
    if (stalled_.load(std::memory_order_acquire)) return;
    const double remaining = until - wall_time_us();
    ::usleep(static_cast<useconds_t>(
        std::max(0.0, std::min(remaining, 1000.0))));
  }
}

bool SimEngine::scheduler_safe(const sched::TaskContext& ctx) const {
  const sched::Runtime* rt = ctx.runtime;
  TS_ASSERT(rt != nullptr, "simulated task without a runtime context");
  // Live occupancy: a released-but-uncommitted zombie holds a queue slot
  // but no worker, so it must not count as a blocked executor — a raw
  // queue size would both fire clause (a) spuriously (commits while a
  // ready task is claimable deflate its eventual start) and starve clause
  // (c) (live == running could never hold again).  With lookahead off
  // there are no zombies and this is exactly the queue size, bit for bit.
  const std::size_t in_queue = live_queue_size();
  // (a) every executor is blocked in the queue: any future task must start
  // after some queued task returns, i.e. at a later virtual time.
  if (in_queue >= static_cast<std::size_t>(rt->active_executor_count())) {
    return true;
  }
  // (b) the submitter may still insert a task that would start at the
  // current (earlier) clock: wait while submission is open — unless the
  // submitter itself is blocked on the task window, in which case it needs
  // completions to make progress.
  if (submission_open() && !rt->submitter_waiting()) return false;
  // (c) nothing can be racing: no ready task reachable by an idle
  // executor, no bookkeeping (release or dispatch) in flight, and every
  // running task has already entered the queue (running > queued would
  // mean a worker claimed a task whose simulated body has not reached us
  // yet).
  return !rt->ready_task_reachable() && rt->bookkeeping_in_flight() == 0 &&
         static_cast<int>(in_queue) == rt->running_task_count();
}

std::size_t SimEngine::live_queue_size() const {
  const std::size_t total = queue_.size();
  const std::size_t pending = governor_.pending_count();
  // A payload registers momentarily before its queue entry is marked
  // released, so `pending` can transiently exceed the zombies actually in
  // the queue; clamping errs toward a smaller live count, which only makes
  // the safety predicates stricter.
  return total > pending ? total - pending : 0;
}

bool SimEngine::release_safe(const sched::TaskContext& ctx) const {
  const sched::Runtime* rt = ctx.runtime;
  TS_ASSERT(rt != nullptr, "simulated task without a runtime context");
  // The submitter could still insert a task that belongs earlier on the
  // virtual timeline (same reasoning as scheduler_safe clause (b)).
  if (submission_open() && !rt->submitter_waiting()) return false;
  // No ready task anywhere (reachable or not: an unreachable ready task
  // would be claimed at a deflated clock once a lane frees), no
  // bookkeeping that could produce one, and every running task blocked in
  // the queue.  Under this state any claim that follows the release is of
  // a task made ready by a completed producer, so its floor
  // (virtual_floor_us) equals the serialized engine's clock at the same
  // claim — released starts land exactly where strict ordering would put
  // them.  Deliberately *stronger* than scheduler_safe: its clause (a)
  // (all executors blocked) admits ready-but-unclaimed tasks, which would
  // deflate under a released worker's early claim.
  return rt->ready_task_count() == 0 && rt->bookkeeping_in_flight() == 0 &&
         static_cast<int>(live_queue_size()) == rt->running_task_count();
}

bool SimEngine::commit_safe(const sched::TaskContext& ctx,
                            bool self_in_queue) const {
  const sched::Runtime* rt = ctx.runtime;
  TS_ASSERT(rt != nullptr, "simulated task without a runtime context");
  // scheduler_safe over *live* occupancy: zombies hold queue slots but no
  // worker, so they must not count as blocked executors.  When the caller
  // has already left the queue (just committed its own front return) its
  // task still counts as running until the post-return bookkeeping, so
  // one running slot is adjusted out.
  const int self_adjust = self_in_queue ? 0 : 1;
  const std::size_t live = live_queue_size();
  if (live + static_cast<std::size_t>(self_adjust) >=
      static_cast<std::size_t>(rt->active_executor_count())) {
    return true;
  }
  if (submission_open() && !rt->submitter_waiting()) return false;
  return !rt->ready_task_reachable() && rt->bookkeeping_in_flight() == 0 &&
         static_cast<int>(live) == rt->running_task_count() - self_adjust;
}

bool SimEngine::commit_pending_releases(const sched::TaskContext* ctx,
                                        bool self_in_queue, bool force) {
  flightrec::FlightRecorder& fr = telemetry_->recorder();
  bool any = false;
  for (;;) {
    const std::uint64_t front = queue_.front_seq();
    if (front == TaskExecQueue::kNoFrontSeq) break;
    if (!governor_.is_pending(front)) break;  // a live task owns the front
    if (!force && (ctx == nullptr || !commit_safe(*ctx, self_in_queue))) {
      break;
    }
    CompletionGovernor::PendingCommit pc;
    if (!governor_.take(front, pc)) break;  // another committer won the race
    // Replay the deferred §V-C commit exactly as the serialized engine
    // would have performed it at the front: trace append, clock advance
    // (the flight event strictly before the published clock moves, so a
    // stream reader's folded floor can never lag the clock it observes),
    // task_return, queue leave — which publishes the next front and keeps
    // this loop walking the zombie chain in completion order.
    trace_.record(pc.task, pc.kernel, pc.worker, pc.start_us, pc.end_us);
    fr.record(flightrec::EventType::clock_advance, pc.task, pc.worker,
              pc.end_us);
    clock_.advance_to(pc.end_us);
    executed_.inc();
    fr.record(flightrec::EventType::task_return, pc.task, pc.worker,
              pc.end_us);
    queue_.leave(TaskExecQueue::Ticket{pc.end_us, front});
    any = true;
  }
  return any;
}

void SimEngine::drain_releases() {
  if (!lookahead_on_) return;
  // Post-wait_all: the scheduler is fully drained, so every remaining
  // queue entry is a zombie and the commits are trivially safe.
  commit_pending_releases(nullptr, /*self_in_queue=*/false, /*force=*/true);
}

bool SimEngine::acquire_front_or_release(sched::TaskContext& ctx,
                                         const TaskExecQueue::Ticket& ticket) {
  const bool optimistic =
      options_.lookahead_mode == LookaheadMode::optimistic;
  const TaskExecQueue::ReleaseGate gate = [&]() {
    // Optimistic mode releases on the horizon alone — detection and
    // repair happen post-hoc; conservative mode proves safety first.
    TS_PROF_SCOPE(lookahead_check);
    return optimistic || release_safe(ctx);
  };
  for (;;) {
    switch (queue_.wait_front_or_release(ticket, gate)) {
      case TaskExecQueue::WaitOutcome::front:
        return false;
      case TaskExecQueue::WaitOutcome::released:
        return true;
      case TaskExecQueue::WaitOutcome::front_blocked:
        break;
    }
    // The front is a released zombie awaiting its commit, and this waiter
    // is the designated drain driver (no leave() is coming on its own).
    // Poll commit_safe with the quiescence timeout as the pathological
    // bound, mirroring the serialized engine's wait.
    TS_PROF_SCOPE(lookahead_check);
    const double wait_start = wall_time_us();
    for (;;) {
      if (commit_pending_releases(&ctx, /*self_in_queue=*/true)) break;
      if (queue_.cancelled()) queue_.wait_front(ticket);  // throws
      if (queue_.front_seq() == ticket.seq) break;  // promoted meanwhile
      const double waited = wall_time_us() - wait_start;
      if (waited > options_.quiescence_timeout_us) {
        quiescence_timeouts_.inc();
        telemetry_->recorder().record(
            flightrec::EventType::quiescence_timeout, ctx.id, ctx.worker,
            ticket.completion_us, waited);
        commit_pending_releases(&ctx, /*self_in_queue=*/true, /*force=*/true);
        break;
      }
      // Plain yield, no sleep backoff: a sleeping drain driver delays the
      // claims that depend on its commits, and late claims start at the
      // advanced clock rather than their floor (start = max(clock,
      // floor)) — measured as whole lost rounds on chain workloads.
      std::this_thread::yield();
    }
  }
}

double SimEngine::execute(sched::TaskContext& ctx,
                          const std::string& base_kernel,
                          std::uint64_t fault_ordinal) {
  flightrec::FlightRecorder& fr = telemetry_->recorder();

  // Poisoned fast path: a producer (or this task itself) exhausted its
  // retry budget.  Record the skip on the virtual trace — zero-length, at
  // the current clock — and return without touching clock or queue.
  if (ctx.poisoned) {
    fault_skips_.inc();
    const double now = lookahead_on_
                           ? std::max(clock_.now(), ctx.virtual_floor_us)
                           : clock_.now();
    trace_.record(ctx.id, base_kernel + "!skipped", ctx.worker, now, now);
    ctx.virtual_end_us = now;
    return 0.0;
  }

  struct InFlight {
    std::atomic<int>& count;
    explicit InFlight(std::atomic<int>& c) : count(c) {
      count.fetch_add(1, std::memory_order_acq_rel);
    }
    ~InFlight() { count.fetch_sub(1, std::memory_order_acq_rel); }
  } in_flight_guard(in_flight_);

  // Accelerator lanes draw from the "<kernel>@accel" model when one exists
  // (heterogeneous extension; falls back to the CPU model otherwise).
  std::string kernel = base_kernel;
  if (ctx.runtime != nullptr && ctx.runtime->lane_is_accelerator(ctx.worker)) {
    const std::string accel_key = base_kernel + "@accel";
    if (models_.has_model(accel_key)) kernel = accel_key;
  }

  // Fault plan: decisions are pure functions of (seed, kernel, submission
  // ordinal, attempt) — identical across runs whatever the interleaving.
  const FaultPlan* plan = options_.faults;
  const bool plan_active = plan != nullptr && plan->active();
  FaultDecision decision;
  if (plan_active) {
    decision = plan->decide(base_kernel, fault_ordinal, ctx.attempt);
    if (decision.stall_us > 0.0) {
      fault_stalls_.inc();
      fr.record(flightrec::EventType::fault_stall, ctx.id, ctx.worker,
                decision.stall_us);
      TS_PROF_SCOPE(fault_stall);
      interruptible_stall(decision.stall_us);
    }
  }
  if (stalled_.load(std::memory_order_acquire)) {
    throw SimulationStalled(
        telemetry_->describe() + ": simulation cancelled by the watchdog",
        "see the stall report on the first failure");
  }

  // 1. Virtual start time: the clock only advances when simulated tasks
  // return, so "now" is the time the executing worker became free.  Under
  // lookahead the clock may lag behind released-but-uncommitted
  // completions, so the start is additionally floored by the latest
  // producer completion (the dependence part of the §V-E runnable floor);
  // the strict path reads the clock alone, bit for bit as before — for it
  // the clock subsumes every producer floor anyway.
  const double start = lookahead_on_
                           ? std::max(clock_.now(), ctx.virtual_floor_us)
                           : clock_.now();

  // 2. Virtual duration.  Under an active fault plan the sample comes
  // from a deterministic per-(task, attempt) stream so that retries and
  // thread interleaving cannot shift anyone else's draws; otherwise from
  // the shared engine RNG with the startup-model logic.
  double duration;
  if (plan_active) {
    Rng attempt_rng(plan->sample_seed(base_kernel, fault_ordinal, ctx.attempt));
    duration = models_.sample(kernel, attempt_rng, options_.min_duration_us);
  } else {
    std::lock_guard<std::mutex> lock(rng_mutex_);
    const KernelModelSet* source = &models_;
    if (options_.startup_models != nullptr &&
        options_.startup_models->has_model(kernel) &&
        warmed_up_.emplace(ctx.worker, kernel).second) {
      source = options_.startup_models;
    }
    duration = source->sample(kernel, rng_, options_.min_duration_us);
  }

  // Retry attempts pay the exponential virtual-time backoff penalty, and a
  // failed attempt only progresses a fraction of its sampled duration
  // before dying; both are part of the virtual span committed to the TEQ.
  const double backoff = plan_active ? plan->backoff_us(ctx.attempt) : 0.0;
  const double progress =
      decision.fail ? duration * decision.progress_fraction : duration;
  const double virtual_span = backoff + progress;
  const double end = start + virtual_span;

  // 3. Enter the Task Execution Queue and wait to become the front.  The
  // failed attempt travels the same path as a success: its partial
  // progress must be committed to the virtual timeline in completion
  // order, or the retry would be scheduled against a corrupted clock.
  const TaskExecQueue::Ticket ticket = queue_.enter(end);
  bool released = false;
  try {
    fr.record(flightrec::EventType::teq_enter, ctx.id, ctx.worker, start, end,
              ticket.seq);

    if (lookahead_on_ &&
        options_.lookahead_mode == LookaheadMode::conservative) {
      // Entering the queue is a commit trigger: a zombie promoted to the
      // front earlier may be waiting for any thread to reach a safe point.
      commit_pending_releases(&ctx, /*self_in_queue=*/true);
    }

    if (options_.mitigation == RaceMitigation::yield_sleep) {
      // Give the scheduler a chance to finish bookkeeping that could insert
      // an earlier-completing task (paper §V-E's portable mitigation).
      TS_PROF_SCOPE(mitigation_sleep);
      sched_yield();
      ::usleep(static_cast<useconds_t>(options_.sleep_us));
    }

    if (!lookahead_on_) {
      queue_.wait_front(ticket);
    } else {
      released = acquire_front_or_release(ctx, ticket);
    }
    if (!released) {
      fr.record(flightrec::EventType::teq_front, ctx.id, ctx.worker, start,
                end, ticket.seq);

      if (options_.mitigation == RaceMitigation::quiescence) {
        // The poll's own exclusive time is the predicate + yield cost; the
        // TEQ re-blocks inside the loop show up separately as sim.teq_wait.
        TS_PROF_SCOPE(quiescence_poll);
        const double wait_start = wall_time_us();
        std::uint64_t spins = 0;
        bool timed_out = false;
        for (;;) {
          while (!scheduler_safe(ctx)) {
            const double waited = wall_time_us() - wait_start;
            if (waited > options_.quiescence_timeout_us) {
              quiescence_timeouts_.inc();
              fr.record(flightrec::EventType::quiescence_timeout, ctx.id,
                        ctx.worker, end, waited);
              TS_LOG_WARN << "quiescence wait timed out for kernel " << kernel
                          << " (task " << ctx.id << ", virtual completion "
                          << end << " us, waited " << waited << " us)";
              timed_out = true;
              break;
            }
            ++spins;
            std::this_thread::yield();
            // A later-arriving task may have displaced us from the front
            // while we yielded; re-establish the ordering invariant before
            // re-checking.  Under lookahead the displacement can also turn
            // into a release grant mid-poll.
            if (!lookahead_on_) {
              queue_.wait_front(ticket);
            } else if (acquire_front_or_release(ctx, ticket)) {
              released = true;
              break;
            }
          }
          if (released || timed_out || !lookahead_on_) break;
          // Quiescence alone does not pin this waiter to the front under
          // lookahead: a live front plus this displaced waiter is a legal
          // quiescent state (the strict path cannot reach here displaced —
          // wait_front re-pins frontness before every predicate
          // evaluation).  Committing while displaced would reorder the
          // timeline, so re-establish frontness (or take the release
          // grant) and re-verify quiescence for the new configuration.
          if (queue_.front_seq() == ticket.seq) break;
          if (acquire_front_or_release(ctx, ticket)) {
            released = true;
            break;
          }
        }
        if (spins > 0) {
          quiescence_spins_.inc(spins);
          quiescence_spin_iters_.observe(static_cast<double>(spins));
          fr.record(flightrec::EventType::quiescence_spin, ctx.id, ctx.worker,
                    static_cast<double>(spins));
        }
      }
    }
    if (released) {
      releases_.inc();
      fr.record(flightrec::EventType::teq_release, ctx.id, ctx.worker, end,
                clock_.now(), ticket.seq);
    }
  } catch (...) {
    // Cancelled while waiting (watchdog): release the slot so the other
    // waiters' front checks stay meaningful during the drain.
    queue_.leave(ticket);
    throw;
  }

  // The virtual completion travels back through the runtime's task record
  // into successors' floors (and, on failure, into the retry's floor).
  ctx.virtual_end_us = end;

  if (!released ||
      options_.lookahead_mode == LookaheadMode::optimistic) {
    // 4. Record the event, advance the clock, release the queue slot, and
    // return to the scheduler "as if" the kernel had computed (or died).
    // An optimistic release commits here too — immediately and out of
    // completion order; the flight recorder captures the resulting §V-E
    // misordering for the post-run audit and repair.
    trace_.record(ctx.id, decision.fail ? kernel + "!failed" : kernel,
                  ctx.worker, start, end);
    fr.record(flightrec::EventType::clock_advance, ctx.id, ctx.worker, end);
    clock_.advance_to(end);
    executed_.inc();
    // task_return is recorded while this task still owns the queue front
    // (strict path), so the returns appear in the recorder in the order
    // the task functions actually returned — the ordering the race
    // auditor checks.
    fr.record(flightrec::EventType::task_return, ctx.id, ctx.worker, end);
    queue_.leave(ticket);
    // The leave may promote a zombie to the front, but this thread must
    // NOT drain it: its own return bookkeeping is still pending, and that
    // on_complete may ready a successor whose floor lies below the
    // zombies' completions — draining here would advance the clock over
    // it (an inflated start the §V-E audit rightly flags).  The zombie
    // waits for a committer whose bookkeeping is provably finished: the
    // next queue enter, a live waiter finding the front blocked, or the
    // final drain.  (A thread between leave and bookkeeping keeps its
    // running slot without a live queue slot, so live == running fails
    // for every such committer until the readied successor is claimed
    // and entered — that asymmetry is what makes those triggers sound.)
  } else {
    // Conservative deferred commit: the queue entry stays behind as a
    // zombie holding the task's place in completion order, and the commit
    // payload is registered *before* the release mark so any thread that
    // finds the zombie at the front can take it.  When the entry is
    // already the front, no leave() will ever re-discover it — this
    // thread drives the drain itself.
    CompletionGovernor::PendingCommit pending;
    pending.task = ctx.id;
    pending.worker = ctx.worker;
    pending.start_us = start;
    pending.end_us = end;
    pending.kernel = decision.fail ? kernel + "!failed" : kernel;
    governor_.defer(ticket.seq, std::move(pending));
    // Even when the release mark makes this entry the new front, the
    // commit is left for a thread with finished bookkeeping (see the
    // front-commit path above): this thread's own return processing is
    // still ahead of it.
    queue_.mark_released(ticket);
  }

  if (decision.fail) {
    fault_failures_.inc();
    throw TaskFailure(ctx.id, ctx.attempt,
                      "injected failure: kernel " + base_kernel + ", task " +
                          std::to_string(ctx.id) + ", attempt " +
                          std::to_string(ctx.attempt));
  }
  return virtual_span;
}

void SimEngine::reset() {
  // Abandon released-but-uncommitted zombies (aborted runs only; a normal
  // finish() drains them): their deferred commits die with the run, but
  // the queue entries must go before the emptiness check below.
  for (auto& [seq, pending] : governor_.take_all()) {
    queue_.leave(TaskExecQueue::Ticket{pending.end_us, seq});
  }
  TS_REQUIRE(queue_.size() == 0, "cannot reset with simulated tasks in flight");
  clock_.reset();
  trace_.clear();
  executed_base_ = executed_.value();
  quiescence_timeouts_base_ = quiescence_timeouts_.value();
  fault_failures_base_ = fault_failures_.value();
  fault_stalls_base_ = fault_stalls_.value();
  releases_base_ = releases_.value();
  horizon_blocks_base_ = horizon_blocks_.value();
  warmed_up_.clear();
  // Re-arm after a watchdog cancellation so the engine is reusable, and —
  // unconditionally — restart the TEQ ticket sequence so back-to-back runs
  // on one engine emit identical ticket seqs in flight-recorder
  // teq_displaced events (cross-run trace determinism).
  stalled_.store(false, std::memory_order_release);
  queue_.clear_cancel();
}

}  // namespace tasksim::sim
