#include "sim/sim_engine.hpp"

#include <sched.h>
#include <unistd.h>

#include <thread>

#include "sched/runtime.hpp"
#include "support/error.hpp"
#include "support/flight_recorder.hpp"
#include "support/log.hpp"
#include "support/timing.hpp"

namespace tasksim::sim {

const char* to_string(RaceMitigation mitigation) {
  switch (mitigation) {
    case RaceMitigation::none: return "none";
    case RaceMitigation::yield_sleep: return "yield_sleep";
    case RaceMitigation::quiescence: return "quiescence";
  }
  return "?";
}

RaceMitigation parse_race_mitigation(const std::string& name) {
  if (name == "none") return RaceMitigation::none;
  if (name == "yield_sleep" || name == "sleep" || name == "yield") {
    return RaceMitigation::yield_sleep;
  }
  if (name == "quiescence") return RaceMitigation::quiescence;
  throw InvalidArgument("unknown race mitigation: '" + name +
                        "' (valid: none, yield_sleep (aliases: yield, "
                        "sleep), quiescence)");
}

SimEngine::SimEngine(const KernelModelSet& models, SimEngineOptions options)
    : models_(models),
      options_(options),
      rng_(options.seed),
      executed_(metrics::counter("sim.tasks_executed")),
      quiescence_timeouts_(metrics::counter("sim.quiescence_timeouts")),
      quiescence_spins_(metrics::counter("sim.quiescence_spins")),
      quiescence_spin_iters_(metrics::histogram("sim.quiescence_spin_iters")),
      executed_base_(executed_.value()),
      quiescence_timeouts_base_(quiescence_timeouts_.value()) {
  trace_.set_label("simulated");
}

bool SimEngine::scheduler_safe(const sched::TaskContext& ctx) const {
  const sched::Runtime* rt = ctx.runtime;
  TS_ASSERT(rt != nullptr, "simulated task without a runtime context");
  const std::size_t in_queue = queue_.size();
  // (a) every executor is blocked in the queue: any future task must start
  // after some queued task returns, i.e. at a later virtual time.
  if (in_queue >= static_cast<std::size_t>(rt->active_executor_count())) {
    return true;
  }
  // (b) the submitter may still insert a task that would start at the
  // current (earlier) clock: wait while submission is open — unless the
  // submitter itself is blocked on the task window, in which case it needs
  // completions to make progress.
  if (submission_open() && !rt->submitter_waiting()) return false;
  // (c) nothing can be racing: no ready task reachable by an idle
  // executor, no bookkeeping (release or dispatch) in flight, and every
  // running task has already entered the queue (running > queued would
  // mean a worker claimed a task whose simulated body has not reached us
  // yet).
  return !rt->ready_task_reachable() && rt->bookkeeping_in_flight() == 0 &&
         static_cast<int>(in_queue) == rt->running_task_count();
}

double SimEngine::execute(sched::TaskContext& ctx, const std::string& base_kernel) {
  // Accelerator lanes draw from the "<kernel>@accel" model when one exists
  // (heterogeneous extension; falls back to the CPU model otherwise).
  std::string kernel = base_kernel;
  if (ctx.runtime != nullptr && ctx.runtime->lane_is_accelerator(ctx.worker)) {
    const std::string accel_key = base_kernel + "@accel";
    if (models_.has_model(accel_key)) kernel = accel_key;
  }

  // 1. Virtual start time: the clock only advances when simulated tasks
  // return, so "now" is the time the executing worker became free.
  const double start = clock_.now();

  // 2. Virtual duration from the kernel's fitted model; the first
  // invocation per (worker, kernel) uses the startup model when provided.
  double duration;
  {
    std::lock_guard<std::mutex> lock(rng_mutex_);
    const KernelModelSet* source = &models_;
    if (options_.startup_models != nullptr &&
        options_.startup_models->has_model(kernel) &&
        warmed_up_.emplace(ctx.worker, kernel).second) {
      source = options_.startup_models;
    }
    duration = source->sample(kernel, rng_, options_.min_duration_us);
  }
  const double end = start + duration;

  // 3. Enter the Task Execution Queue and wait to become the front.
  const TaskExecQueue::Ticket ticket = queue_.enter(end);
  flightrec::FlightRecorder& fr = flightrec::FlightRecorder::global();
  fr.record(flightrec::EventType::teq_enter, ctx.id, ctx.worker, start, end,
            ticket.seq);

  if (options_.mitigation == RaceMitigation::yield_sleep) {
    // Give the scheduler a chance to finish bookkeeping that could insert
    // an earlier-completing task (paper §V-E's portable mitigation).
    sched_yield();
    ::usleep(static_cast<useconds_t>(options_.sleep_us));
  }

  queue_.wait_front(ticket);
  fr.record(flightrec::EventType::teq_front, ctx.id, ctx.worker, start, end,
            ticket.seq);

  if (options_.mitigation == RaceMitigation::quiescence) {
    const double wait_start = wall_time_us();
    std::uint64_t spins = 0;
    while (!scheduler_safe(ctx)) {
      if (wall_time_us() - wait_start > options_.quiescence_timeout_us) {
        quiescence_timeouts_.inc();
        TS_LOG_WARN << "quiescence wait timed out for kernel " << kernel
                    << " (task " << ctx.id << ")";
        break;
      }
      ++spins;
      std::this_thread::yield();
      // A later-arriving task may have displaced us from the front while we
      // yielded; re-establish the ordering invariant before re-checking.
      queue_.wait_front(ticket);
    }
    if (spins > 0) {
      quiescence_spins_.inc(spins);
      quiescence_spin_iters_.observe(static_cast<double>(spins));
      fr.record(flightrec::EventType::quiescence_spin, ctx.id, ctx.worker,
                static_cast<double>(spins));
    }
  }

  // 4. Record the event, advance the clock, release the queue slot, and
  // return to the scheduler "as if" the kernel had computed.
  trace_.record(ctx.id, kernel, ctx.worker, start, end);
  fr.record(flightrec::EventType::clock_advance, ctx.id, ctx.worker, end);
  clock_.advance_to(end);
  executed_.inc();
  // task_return is recorded while this task still owns the queue front, so
  // the returns appear in the recorder in the order the task functions
  // actually returned — the ordering the race auditor checks.
  fr.record(flightrec::EventType::task_return, ctx.id, ctx.worker, end);
  queue_.leave(ticket);
  return duration;
}

void SimEngine::reset() {
  TS_REQUIRE(queue_.size() == 0, "cannot reset with simulated tasks in flight");
  clock_.reset();
  trace_.clear();
  executed_base_ = executed_.value();
  quiescence_timeouts_base_ = quiescence_timeouts_.value();
  warmed_up_.clear();
}

}  // namespace tasksim::sim
