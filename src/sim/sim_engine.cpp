#include "sim/sim_engine.hpp"

#include <sched.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "sched/runtime.hpp"
#include "support/error.hpp"
#include "support/flight_recorder.hpp"
#include "support/log.hpp"
#include "support/profiler.hpp"
#include "support/timing.hpp"

namespace tasksim::sim {

namespace {

// Same construction as the fault plan's kernel hash (fault_injection.cpp);
// duplicated locally so the hedge stream exists even without a fault plan.
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

const char* to_string(RaceMitigation mitigation) {
  switch (mitigation) {
    case RaceMitigation::none: return "none";
    case RaceMitigation::yield_sleep: return "yield_sleep";
    case RaceMitigation::quiescence: return "quiescence";
  }
  return "?";
}

RaceMitigation parse_race_mitigation(const std::string& name) {
  if (name == "none") return RaceMitigation::none;
  if (name == "yield_sleep" || name == "sleep" || name == "yield") {
    return RaceMitigation::yield_sleep;
  }
  if (name == "quiescence") return RaceMitigation::quiescence;
  throw InvalidArgument("unknown race mitigation: '" + name +
                        "' (valid: none, yield_sleep (aliases: yield, "
                        "sleep), quiescence)");
}

SimEngine::SimEngine(const KernelModelSet& models, SimEngineOptions options)
    : models_(models),
      options_(options),
      telemetry_(&telemetry::current()),
      rng_(options.seed),
      executed_(metrics::counter("sim.tasks_executed")),
      quiescence_timeouts_(metrics::counter("sim.quiescence_timeouts")),
      quiescence_spins_(metrics::counter("sim.quiescence_spins")),
      quiescence_spin_iters_(metrics::histogram("sim.quiescence_spin_iters")),
      fault_failures_(metrics::counter("sim.fault.failed_attempts")),
      fault_stalls_(metrics::counter("sim.fault.stalls")),
      fault_skips_(metrics::counter("sim.fault.skipped_tasks")),
      watchdog_stalls_(metrics::counter("sim.watchdog.stalls")),
      releases_(metrics::counter("sim.lookahead.releases")),
      horizon_blocks_(metrics::counter("sim.lookahead.horizon_blocks")),
      hedge_launched_(metrics::counter("sim.hedge.launched")),
      hedge_won_(metrics::counter("sim.hedge.won")),
      hedge_cancelled_(metrics::counter("sim.hedge.cancelled")),
      hedge_wasted_us_(metrics::counter("sim.hedge.wasted_us")),
      deadline_breaches_(metrics::counter("sim.deadline.breaches")),
      executed_base_(executed_.value()),
      quiescence_timeouts_base_(quiescence_timeouts_.value()),
      fault_failures_base_(fault_failures_.value()),
      fault_stalls_base_(fault_stalls_.value()),
      releases_base_(releases_.value()),
      horizon_blocks_base_(horizon_blocks_.value()),
      hedge_launched_base_(hedge_launched_.value()),
      hedge_won_base_(hedge_won_.value()),
      hedge_cancelled_base_(hedge_cancelled_.value()),
      hedge_wasted_us_base_(hedge_wasted_us_.value()),
      deadline_breaches_base_(deadline_breaches_.value()) {
  TS_REQUIRE(options_.sleep_us >= 0.0, "sleep_us must be non-negative");
  TS_REQUIRE(options_.quiescence_timeout_us >= 0.0,
             "quiescence_timeout_us must be non-negative");
  TS_REQUIRE(options_.min_duration_us > 0.0,
             "min_duration_us must be positive");
  TS_REQUIRE(options_.watchdog_timeout_us >= 0.0,
             "watchdog_timeout_us must be non-negative");
  if (options_.watchdog_timeout_us > 0.0 &&
      options_.mitigation == RaceMitigation::quiescence) {
    TS_REQUIRE(options_.watchdog_timeout_us > options_.quiescence_timeout_us,
               "the watchdog timeout must exceed the quiescence timeout, or "
               "a legitimately timed-out wait would be declared a stall");
  }
  TS_REQUIRE(options_.lookahead_us >= 0.0,
             "lookahead_us must be a non-negative horizon");
  // lookahead_us == 0 disables the lookahead path outright whatever the
  // mode: the horizon clause could never fire, and routing through the
  // strict code path reproduces the serialized engine bit for bit.
  lookahead_on_ = options_.lookahead_mode != LookaheadMode::off &&
                  options_.lookahead_us > 0.0;
  if (lookahead_on_) queue_.set_lookahead(options_.lookahead_us);
  TS_REQUIRE(options_.deadline_us >= 0.0 && std::isfinite(options_.deadline_us),
             "deadline_us must be a non-negative finite duration");
  if (options_.hedging.enabled) {
    options_.hedging.validate();
    // Per-kernel triggers from the clean (un-inflated) duration models.
    // Fixed seed: thresholds are a property of the models, identical
    // across runs and engines regardless of the engine seed.
    Rng threshold_rng(0x7123ab1eULL);
    for (const std::string& name : models_.kernel_names()) {
      std::vector<double> samples(
          static_cast<std::size_t>(options_.hedging.threshold_samples));
      for (double& s : samples) {
        s = models_.sample(name, threshold_rng, options_.min_duration_us);
      }
      const double trigger = sched::hedge_trigger_from_samples(
          std::move(samples), options_.hedging.quantile,
          options_.hedging.margin);
      if (trigger >= 0.0) hedge_thresholds_.set(name, trigger);
    }
  }
  trace_.set_label("simulated");
  if (options_.watchdog_timeout_us > 0.0) start_watchdog();
}

SimEngine::~SimEngine() { watchdog_.stop(); }

std::uint64_t SimEngine::register_submission(const std::string& kernel) {
  if (options_.faults == nullptr || !options_.faults->active()) return 0;
  // const_cast-free: ordinal assignment mutates the plan, which the
  // harness owns; engines hold it const for decide()/sample_seed().
  return const_cast<FaultPlan*>(options_.faults)->register_submission(kernel);
}

std::uint64_t SimEngine::hedge_seed(const std::string& kernel,
                                    sched::TaskId task, int attempt) const {
  // SplitMix64 chain over (engine seed, kernel, task, attempt) — the same
  // shape as FaultPlan::hash but keyed by task id and a hedge-only salt,
  // so the duplicate's draw is independent of every fault-plan stream.
  std::uint64_t state = options_.seed;
  splitmix64(state);
  state ^= fnv1a(kernel);
  splitmix64(state);
  state ^= task;
  splitmix64(state);
  state ^= 0x4ED6EULL + static_cast<std::uint64_t>(attempt);
  return splitmix64(state);
}

void SimEngine::start_watchdog() {
  watchdog_.set_owner(telemetry_->describe());
  watchdog_.add_beacon("sim.tasks_executed",
                       [this] { return executed_.value(); });
  // Beacons resolved by name must be captured as handles here, on the
  // engine's own (bound) thread: the lambdas run on the watchdog thread,
  // where metrics::counter() would resolve that thread's context — the
  // process default, not this engine's — and watch the wrong registry.
  watchdog_.add_beacon(
      "sim.queue.enters",
      [handle = metrics::counter("sim.queue.enters")] { return handle.value(); });
  watchdog_.add_beacon("sim.fault.failed_attempts",
                       [this] { return fault_failures_.value(); });
  watchdog_.add_beacon("sim.virtual_clock_us", [this] {
    return static_cast<std::uint64_t>(clock_.now());
  });
  watchdog_.add_beacon(
      "sched.tasks_submitted",
      [handle = metrics::counter("sched.tasks_submitted")] {
        return handle.value();
      });
  watchdog_.add_beacon(
      "sched.tasks_completed",
      [handle = metrics::counter("sched.tasks_completed")] {
        return handle.value();
      });
  watchdog_.set_activity_gate([this] {
    return submission_open() || queue_.size() > 0 ||
           in_flight_.load(std::memory_order_acquire) > 0;
  });
  watchdog_.set_stall_handler(
      [this](const StallReport& report) { on_stall(report); });
  WatchdogOptions options;
  options.stall_timeout_us = options_.watchdog_timeout_us;
  options.poll_interval_us = options_.watchdog_poll_us;
  watchdog_.start(options);
}

void SimEngine::on_stall(const StallReport& report) {
  watchdog_stalls_.inc();
  flightrec::FlightRecorder& fr = telemetry_->recorder();
  fr.record(flightrec::EventType::watchdog_stall, flightrec::kNoTask, -1,
            report.stalled_for_us);

  std::ostringstream os;
  os << report.to_string();
  os << "engine state: virtual clock " << clock_.now() << " us, "
     << queue_.size() << " task(s) in the execution queue, "
     << in_flight_.load(std::memory_order_acquire)
     << " simulated body(ies) in flight, submission "
     << (submission_open() ? "open" : "closed") << "\n";

  // Flight-recorder tail: the most recent events are the actionable part
  // of the dump (who last moved, who everyone is waiting on).  Draining
  // consumes the stream, but this simulation is being aborted anyway.
  flightrec::Stream stream = fr.drain();
  if (!stream.events.empty()) {
    constexpr std::size_t kTail = 40;
    const std::size_t first =
        stream.events.size() > kTail ? stream.events.size() - kTail : 0;
    os << "flight recorder (last " << stream.events.size() - first << " of "
       << stream.events.size() << " events):\n";
    for (std::size_t i = first; i < stream.events.size(); ++i) {
      const flightrec::Event& ev = stream.events[i];
      os << "  [" << ev.wall_us << "] " << flightrec::to_string(ev.type);
      if (ev.task != flightrec::kNoTask) os << " task=" << ev.task;
      if (ev.worker >= 0) os << " worker=" << ev.worker;
      os << " a=" << ev.a << " b=" << ev.b << "\n";
    }
  }

  TS_LOG_ERROR << "watchdog declared " << telemetry_->describe()
               << " stalled after " << report.stalled_for_us
               << " us; cancelling the task execution queue";
  stalled_.store(true, std::memory_order_release);
  // Wakes every thread blocked in the queue; they throw SimulationStalled
  // carrying this report (tagged with the engine identity) from their own
  // stacks.
  queue_.cancel(os.str(), telemetry_->describe());
}

void SimEngine::interruptible_stall(double us) {
  const double until = wall_time_us() + us;
  while (wall_time_us() < until) {
    if (stalled_.load(std::memory_order_acquire)) return;
    const double remaining = until - wall_time_us();
    ::usleep(static_cast<useconds_t>(
        std::max(0.0, std::min(remaining, 1000.0))));
  }
}

bool SimEngine::scheduler_safe(const sched::TaskContext& ctx) const {
  const sched::Runtime* rt = ctx.runtime;
  TS_ASSERT(rt != nullptr, "simulated task without a runtime context");
  // Live occupancy: a released-but-uncommitted zombie holds a queue slot
  // but no worker, so it must not count as a blocked executor — a raw
  // queue size would both fire clause (a) spuriously (commits while a
  // ready task is claimable deflate its eventual start) and starve clause
  // (c) (live == running could never hold again).  With lookahead off
  // there are no zombies and this is exactly the queue size, bit for bit.
  const std::size_t in_queue = live_queue_size();
  // (a) every executor is blocked in the queue: any future task must start
  // after some queued task returns, i.e. at a later virtual time.
  if (in_queue >= static_cast<std::size_t>(rt->active_executor_count())) {
    return true;
  }
  // (b) the submitter may still insert a task that would start at the
  // current (earlier) clock: wait while submission is open — unless the
  // submitter itself is blocked on the task window, in which case it needs
  // completions to make progress.
  if (submission_open() && !rt->submitter_waiting()) return false;
  // (c) nothing can be racing: no ready task reachable by an idle
  // executor, no bookkeeping (release or dispatch) in flight, and every
  // running task has already entered the queue (running > queued would
  // mean a worker claimed a task whose simulated body has not reached us
  // yet).
  return !rt->ready_task_reachable() && rt->bookkeeping_in_flight() == 0 &&
         static_cast<int>(in_queue) == rt->running_task_count();
}

std::size_t SimEngine::live_queue_size() const {
  const std::size_t total = queue_.size();
  // A payload registers momentarily before its queue entry is marked
  // released, so `pending` can transiently exceed the zombies actually in
  // the queue; likewise hedge_tickets_ rises before the duplicate's enter
  // and falls after its leave.  Both clamp toward a smaller live count,
  // which only makes the safety predicates stricter.  Hedge duplicates
  // must not count at all: their tickets hold completion-order slots but
  // no pool lane, so to the scheduler-state predicates they are neither
  // blocked executors nor running tasks.
  const std::size_t off =
      governor_.pending_count() +
      static_cast<std::size_t>(
          std::max(0, hedge_tickets_.load(std::memory_order_acquire)));
  return total > off ? total - off : 0;
}

bool SimEngine::release_safe(const sched::TaskContext& ctx) const {
  const sched::Runtime* rt = ctx.runtime;
  TS_ASSERT(rt != nullptr, "simulated task without a runtime context");
  // The submitter could still insert a task that belongs earlier on the
  // virtual timeline (same reasoning as scheduler_safe clause (b)).
  if (submission_open() && !rt->submitter_waiting()) return false;
  // No ready task anywhere (reachable or not: an unreachable ready task
  // would be claimed at a deflated clock once a lane frees), no
  // bookkeeping that could produce one, and every running task blocked in
  // the queue.  Under this state any claim that follows the release is of
  // a task made ready by a completed producer, so its floor
  // (virtual_floor_us) equals the serialized engine's clock at the same
  // claim — released starts land exactly where strict ordering would put
  // them.  Deliberately *stronger* than scheduler_safe: its clause (a)
  // (all executors blocked) admits ready-but-unclaimed tasks, which would
  // deflate under a released worker's early claim.
  return rt->ready_task_count() == 0 && rt->bookkeeping_in_flight() == 0 &&
         static_cast<int>(live_queue_size()) == rt->running_task_count();
}

bool SimEngine::commit_safe(const sched::TaskContext& ctx,
                            bool self_in_queue) const {
  const sched::Runtime* rt = ctx.runtime;
  TS_ASSERT(rt != nullptr, "simulated task without a runtime context");
  // scheduler_safe over *live* occupancy: zombies hold queue slots but no
  // worker, so they must not count as blocked executors.  When the caller
  // has already left the queue (just committed its own front return) its
  // task still counts as running until the post-return bookkeeping, so
  // one running slot is adjusted out.
  const int self_adjust = self_in_queue ? 0 : 1;
  const std::size_t live = live_queue_size();
  if (live + static_cast<std::size_t>(self_adjust) >=
      static_cast<std::size_t>(rt->active_executor_count())) {
    return true;
  }
  if (submission_open() && !rt->submitter_waiting()) return false;
  return !rt->ready_task_reachable() && rt->bookkeeping_in_flight() == 0 &&
         static_cast<int>(live) == rt->running_task_count() - self_adjust;
}

bool SimEngine::commit_pending_releases(const sched::TaskContext* ctx,
                                        bool self_in_queue, bool force) {
  flightrec::FlightRecorder& fr = telemetry_->recorder();
  bool any = false;
  for (;;) {
    const std::uint64_t front = queue_.front_seq();
    if (front == TaskExecQueue::kNoFrontSeq) break;
    if (!governor_.is_pending(front)) break;  // a live task owns the front
    if (!force && (ctx == nullptr || !commit_safe(*ctx, self_in_queue))) {
      break;
    }
    CompletionGovernor::PendingCommit pc;
    if (!governor_.take(front, pc)) break;  // another committer won the race
    // Replay the deferred §V-C commit exactly as the serialized engine
    // would have performed it at the front: trace append, clock advance
    // (the flight event strictly before the published clock moves, so a
    // stream reader's folded floor can never lag the clock it observes),
    // task_return, queue leave — which publishes the next front and keeps
    // this loop walking the zombie chain in completion order.
    trace_.record(pc.task, pc.kernel, pc.worker, pc.start_us, pc.end_us);
    fr.record(flightrec::EventType::clock_advance, pc.task, pc.worker,
              pc.end_us);
    clock_.advance_to(pc.end_us);
    executed_.inc();
    fr.record(flightrec::EventType::task_return, pc.task, pc.worker,
              pc.end_us);
    // A hedged task's cancellation token is set strictly before the leave
    // that can promote its duplicate — the same ordering the inline commit
    // paths guarantee.
    if (pc.hedge != nullptr) {
      pc.hedge->committed.store(true, std::memory_order_release);
    }
    queue_.leave(TaskExecQueue::Ticket{pc.end_us, front});
    any = true;
  }
  return any;
}

void SimEngine::drain_releases() {
  if (!lookahead_on_) return;
  // Post-wait_all: the scheduler is fully drained, so every remaining
  // queue entry is a zombie and the commits are trivially safe.
  commit_pending_releases(nullptr, /*self_in_queue=*/false, /*force=*/true);
}

bool SimEngine::acquire_front_or_release(sched::TaskContext& ctx,
                                         const TaskExecQueue::Ticket& ticket) {
  const bool optimistic =
      options_.lookahead_mode == LookaheadMode::optimistic;
  const TaskExecQueue::ReleaseGate gate = [&]() {
    // Optimistic mode releases on the horizon alone — detection and
    // repair happen post-hoc; conservative mode proves safety first.
    TS_PROF_SCOPE(lookahead_check);
    return optimistic || release_safe(ctx);
  };
  for (;;) {
    switch (queue_.wait_front_or_release(ticket, gate)) {
      case TaskExecQueue::WaitOutcome::front:
        return false;
      case TaskExecQueue::WaitOutcome::released:
        return true;
      case TaskExecQueue::WaitOutcome::front_blocked:
        break;
    }
    // The front is a released zombie awaiting its commit, and this waiter
    // is the designated drain driver (no leave() is coming on its own).
    // Poll commit_safe with the quiescence timeout as the pathological
    // bound, mirroring the serialized engine's wait.
    TS_PROF_SCOPE(lookahead_check);
    const double wait_start = wall_time_us();
    for (;;) {
      if (commit_pending_releases(&ctx, /*self_in_queue=*/true)) break;
      if (queue_.cancelled()) queue_.wait_front(ticket);  // throws
      if (queue_.front_seq() == ticket.seq) break;  // promoted meanwhile
      const double waited = wall_time_us() - wait_start;
      if (waited > options_.quiescence_timeout_us) {
        quiescence_timeouts_.inc();
        telemetry_->recorder().record(
            flightrec::EventType::quiescence_timeout, ctx.id, ctx.worker,
            ticket.completion_us, waited);
        commit_pending_releases(&ctx, /*self_in_queue=*/true, /*force=*/true);
        break;
      }
      // Plain yield, no sleep backoff: a sleeping drain driver delays the
      // claims that depend on its commits, and late claims start at the
      // advanced clock rather than their floor (start = max(clock,
      // floor)) — measured as whole lost rounds on chain workloads.
      std::this_thread::yield();
    }
  }
}

double SimEngine::execute(sched::TaskContext& ctx,
                          const std::string& base_kernel,
                          std::uint64_t fault_ordinal) {
  flightrec::FlightRecorder& fr = telemetry_->recorder();

  // Poisoned fast path: a producer (or this task itself) exhausted its
  // retry budget.  Record the skip on the virtual trace — zero-length, at
  // the current clock — and return without touching clock or queue.
  if (ctx.poisoned) {
    fault_skips_.inc();
    const double now = lookahead_on_
                           ? std::max(clock_.now(), ctx.virtual_floor_us)
                           : clock_.now();
    trace_.record(ctx.id, base_kernel + "!skipped", ctx.worker, now, now);
    ctx.virtual_end_us = now;
    return 0.0;
  }

  struct InFlight {
    std::atomic<int>& count;
    explicit InFlight(std::atomic<int>& c) : count(c) {
      count.fetch_add(1, std::memory_order_acq_rel);
    }
    ~InFlight() { count.fetch_sub(1, std::memory_order_acq_rel); }
  } in_flight_guard(in_flight_);

  // Accelerator lanes draw from the "<kernel>@accel" model when one exists
  // (heterogeneous extension; falls back to the CPU model otherwise).
  std::string kernel = base_kernel;
  if (ctx.runtime != nullptr && ctx.runtime->lane_is_accelerator(ctx.worker)) {
    const std::string accel_key = base_kernel + "@accel";
    if (models_.has_model(accel_key)) kernel = accel_key;
  }

  // Fault plan: decisions are pure functions of (seed, kernel, submission
  // ordinal, attempt) — identical across runs whatever the interleaving.
  const FaultPlan* plan = options_.faults;
  const bool plan_active = plan != nullptr && plan->active();
  FaultDecision decision;
  if (plan_active) {
    decision = plan->decide(base_kernel, fault_ordinal, ctx.attempt);
    if (decision.stall_us > 0.0) {
      fault_stalls_.inc();
      fr.record(flightrec::EventType::fault_stall, ctx.id, ctx.worker,
                decision.stall_us);
      TS_PROF_SCOPE(fault_stall);
      interruptible_stall(decision.stall_us);
    }
  }
  if (stalled_.load(std::memory_order_acquire)) {
    throw SimulationStalled(
        telemetry_->describe() + ": simulation cancelled by the watchdog",
        "see the stall report on the first failure");
  }

  // 1. Virtual start time: the clock only advances when simulated tasks
  // return, so "now" is the time the executing worker became free.  Under
  // lookahead the clock may lag behind released-but-uncommitted
  // completions, so the start is additionally floored by the latest
  // producer completion (the dependence part of the §V-E runnable floor);
  // the strict path reads the clock alone, bit for bit as before — for it
  // the clock subsumes every producer floor anyway.
  const double start = lookahead_on_
                           ? std::max(clock_.now(), ctx.virtual_floor_us)
                           : clock_.now();

  // 2. Virtual duration.  Under an active fault plan the sample comes
  // from a deterministic per-(task, attempt) stream so that retries and
  // thread interleaving cannot shift anyone else's draws; otherwise from
  // the shared engine RNG with the startup-model logic.
  double duration;
  if (plan_active) {
    Rng attempt_rng(plan->sample_seed(base_kernel, fault_ordinal, ctx.attempt));
    duration = models_.sample(kernel, attempt_rng, options_.min_duration_us);
  } else {
    std::lock_guard<std::mutex> lock(rng_mutex_);
    const KernelModelSet* source = &models_;
    if (options_.startup_models != nullptr &&
        options_.startup_models->has_model(kernel) &&
        warmed_up_.emplace(ctx.worker, kernel).second) {
      source = options_.startup_models;
    }
    duration = source->sample(kernel, rng_, options_.min_duration_us);
  }

  // Heavy-tail inflation (deterministic, from the fault plan): a straggling
  // attempt's clean draw is multiplied, so the quantile trigger built from
  // the clean models detects exactly the inflated attempts.
  if (decision.straggles()) duration *= decision.tail_multiplier;

  // Retry attempts pay the exponential virtual-time backoff penalty, and a
  // failed attempt only progresses a fraction of its sampled duration
  // before dying; both are part of the virtual span committed to the TEQ.
  const double backoff = plan_active ? plan->backoff_us(ctx.attempt) : 0.0;
  const double progress =
      decision.fail ? duration * decision.progress_fraction : duration;
  double virtual_span = backoff + progress;

  // Virtual-time deadline (abort/poison modes): truncate the span at the
  // deadline; the truncated interval commits through the normal paths, so
  // the timeline stays §V-E consistent, and DeadlineExceeded is thrown
  // after the commit.  A breach overrides an injected failure — the
  // deadline fired first on the virtual timeline.  DeadlineMode::hedge
  // instead caps the hedge trigger below.
  bool deadline_breached = false;
  if ((options_.deadline_mode == sched::DeadlineMode::abort ||
       options_.deadline_mode == sched::DeadlineMode::poison) &&
      options_.deadline_us > 0.0 && virtual_span > options_.deadline_us) {
    deadline_breached = true;
    virtual_span = options_.deadline_us;
  }
  if (backoff > 0.0) {
    // The backoff share of the committed span, recorded here because only
    // the engine knows the plan's schedule (blame charges it to
    // retry_backoff, not compute).  A deadline truncation caps it.
    fr.record(flightrec::EventType::retry_penalty, ctx.id, ctx.worker,
              std::min(backoff, virtual_span),
              static_cast<double>(ctx.attempt));
  }
  const double end = start + virtual_span;

  // Straggler hedging (DESIGN.md §12): when this span overruns the
  // kernel's quantile trigger, race a duplicate attempt on another lane
  // and commit the winner interval [start, min(end, duplicate end)].
  // Failed attempts are not hedged (the retry machinery owns them), nor
  // are deadline-truncated ones (already capped), nor any task on a
  // runtime without auxiliary-task support.
  std::shared_ptr<sched::HedgeToken> hedge_token;
  double dup_start = 0.0;
  double commit_end = end;
  if (!decision.fail && !deadline_breached && ctx.runtime != nullptr &&
      ctx.runtime->supports_auxiliary_tasks()) {
    double trigger = options_.hedging.enabled
                         ? hedge_thresholds_.trigger_for(base_kernel)
                         : -1.0;
    if (options_.deadline_mode == sched::DeadlineMode::hedge &&
        options_.deadline_us > 0.0) {
      trigger = trigger < 0.0 ? options_.deadline_us
                              : std::min(trigger, options_.deadline_us);
    }
    if (trigger >= 0.0 && virtual_span > backoff + trigger) {
      // The duplicate starts the moment the straggle is detectable
      // (trigger µs into the attempt) and draws a fresh clean-model
      // duration from its own deterministic stream.
      dup_start = start + backoff + trigger;
      Rng dup_rng(hedge_seed(kernel, ctx.id, ctx.attempt));
      const double dup_duration =
          models_.sample(kernel, dup_rng, options_.min_duration_us);
      commit_end = std::min(end, dup_start + dup_duration);
      hedge_token = std::make_shared<sched::HedgeToken>();
    }
  }

  // 3. Enter the Task Execution Queue and wait to become the front.  The
  // failed attempt travels the same path as a success: its partial
  // progress must be committed to the virtual timeline in completion
  // order, or the retry would be scheduled against a corrupted clock.
  // A hedged task enters at the *winner* completion — and does so before
  // spawning the duplicate, so its ticket is strictly ahead of the
  // duplicate's at the tied key and the fixed-role protocol holds: the
  // original always commits, the duplicate always cancels.
  const TaskExecQueue::Ticket ticket = queue_.enter(commit_end);
  bool released = false;
  try {
    fr.record(flightrec::EventType::teq_enter, ctx.id, ctx.worker, start,
              commit_end, ticket.seq);

    if (hedge_token != nullptr) {
      hedge_launched_.inc();
      const double wasted = commit_end - dup_start;
      hedge_wasted_us_.inc(
          static_cast<std::uint64_t>(std::llround(std::max(0.0, wasted))));
      sched::TaskDescriptor dup;
      dup.kernel = base_kernel + "!hedge";
      dup.function = [this, dup_start, winner_end = commit_end,
                      token = hedge_token,
                      original = ctx.id](sched::TaskContext& dup_ctx) {
        execute_hedge_duplicate(dup_ctx, dup_start, winner_end, token,
                                original);
      };
      const sched::TaskId dup_id =
          ctx.runtime->spawn_auxiliary(std::move(dup), ctx.worker);
      // hedge_launch doubles as the duplicate's submission floor for the
      // §V-E auditor: the duplicate legitimately materializes mid-run at
      // dup_start, not at the stream's submit horizon.
      fr.record(flightrec::EventType::hedge_launch, dup_id, ctx.worker,
                dup_start, commit_end, ctx.id);
      if (commit_end < end) {
        hedge_won_.inc();
        fr.record(flightrec::EventType::hedge_win, ctx.id, ctx.worker,
                  commit_end, wasted, dup_id);
      }
    }

    if (lookahead_on_ &&
        options_.lookahead_mode == LookaheadMode::conservative) {
      // Entering the queue is a commit trigger: a zombie promoted to the
      // front earlier may be waiting for any thread to reach a safe point.
      commit_pending_releases(&ctx, /*self_in_queue=*/true);
    }

    if (options_.mitigation == RaceMitigation::yield_sleep) {
      // Give the scheduler a chance to finish bookkeeping that could insert
      // an earlier-completing task (paper §V-E's portable mitigation).
      TS_PROF_SCOPE(mitigation_sleep);
      sched_yield();
      ::usleep(static_cast<useconds_t>(options_.sleep_us));
    }

    if (!lookahead_on_) {
      queue_.wait_front(ticket);
    } else {
      released = acquire_front_or_release(ctx, ticket);
    }
    if (!released) {
      fr.record(flightrec::EventType::teq_front, ctx.id, ctx.worker, start,
                commit_end, ticket.seq);

      if (options_.mitigation == RaceMitigation::quiescence) {
        // The poll's own exclusive time is the predicate + yield cost; the
        // TEQ re-blocks inside the loop show up separately as sim.teq_wait.
        TS_PROF_SCOPE(quiescence_poll);
        const double wait_start = wall_time_us();
        std::uint64_t spins = 0;
        bool timed_out = false;
        for (;;) {
          while (!scheduler_safe(ctx)) {
            const double waited = wall_time_us() - wait_start;
            if (waited > options_.quiescence_timeout_us) {
              quiescence_timeouts_.inc();
              fr.record(flightrec::EventType::quiescence_timeout, ctx.id,
                        ctx.worker, commit_end, waited);
              TS_LOG_WARN << "quiescence wait timed out for kernel " << kernel
                          << " (task " << ctx.id << ", virtual completion "
                          << commit_end << " us, waited " << waited << " us)";
              timed_out = true;
              break;
            }
            ++spins;
            std::this_thread::yield();
            // A later-arriving task may have displaced us from the front
            // while we yielded; re-establish the ordering invariant before
            // re-checking.  Under lookahead the displacement can also turn
            // into a release grant mid-poll.
            if (!lookahead_on_) {
              queue_.wait_front(ticket);
            } else if (acquire_front_or_release(ctx, ticket)) {
              released = true;
              break;
            }
          }
          if (released || timed_out || !lookahead_on_) break;
          // Quiescence alone does not pin this waiter to the front under
          // lookahead: a live front plus this displaced waiter is a legal
          // quiescent state (the strict path cannot reach here displaced —
          // wait_front re-pins frontness before every predicate
          // evaluation).  Committing while displaced would reorder the
          // timeline, so re-establish frontness (or take the release
          // grant) and re-verify quiescence for the new configuration.
          if (queue_.front_seq() == ticket.seq) break;
          if (acquire_front_or_release(ctx, ticket)) {
            released = true;
            break;
          }
        }
        if (spins > 0) {
          quiescence_spins_.inc(spins);
          quiescence_spin_iters_.observe(static_cast<double>(spins));
          fr.record(flightrec::EventType::quiescence_spin, ctx.id, ctx.worker,
                    static_cast<double>(spins));
        }
      }
    }
    if (released) {
      releases_.inc();
      fr.record(flightrec::EventType::teq_release, ctx.id, ctx.worker,
                commit_end, clock_.now(), ticket.seq);
    }
  } catch (...) {
    // Cancelled while waiting (watchdog): release the slot so the other
    // waiters' front checks stay meaningful during the drain.
    queue_.leave(ticket);
    throw;
  }

  // The virtual completion travels back through the runtime's task record
  // into successors' floors (and, on failure, into the retry's floor).
  // For a hedged task this is the *winner* completion: successors observe
  // whichever attempt finished first.
  ctx.virtual_end_us = commit_end;

  std::string label = kernel;
  if (deadline_breached) {
    label += "!deadline";
  } else if (decision.fail) {
    label += "!failed";
  }

  if (!released ||
      options_.lookahead_mode == LookaheadMode::optimistic) {
    // 4. Record the event, advance the clock, release the queue slot, and
    // return to the scheduler "as if" the kernel had computed (or died).
    // An optimistic release commits here too — immediately and out of
    // completion order; the flight recorder captures the resulting §V-E
    // misordering for the post-run audit and repair.
    trace_.record(ctx.id, label, ctx.worker, start, commit_end);
    fr.record(flightrec::EventType::clock_advance, ctx.id, ctx.worker,
              commit_end);
    clock_.advance_to(commit_end);
    executed_.inc();
    // task_return is recorded while this task still owns the queue front
    // (strict path), so the returns appear in the recorder in the order
    // the task functions actually returned — the ordering the race
    // auditor checks.
    fr.record(flightrec::EventType::task_return, ctx.id, ctx.worker,
              commit_end);
    // The duplicate's cancellation token is set strictly before the leave
    // that can promote it: a duplicate observing itself at the front is
    // therefore guaranteed to observe the token too (the front_seq acquire
    // synchronizes with this thread's release publication in leave()).
    if (hedge_token != nullptr) {
      hedge_token->committed.store(true, std::memory_order_release);
    }
    queue_.leave(ticket);
    // The leave may promote a zombie to the front, but this thread must
    // NOT drain it: its own return bookkeeping is still pending, and that
    // on_complete may ready a successor whose floor lies below the
    // zombies' completions — draining here would advance the clock over
    // it (an inflated start the §V-E audit rightly flags).  The zombie
    // waits for a committer whose bookkeeping is provably finished: the
    // next queue enter, a live waiter finding the front blocked, or the
    // final drain.  (A thread between leave and bookkeeping keeps its
    // running slot without a live queue slot, so live == running fails
    // for every such committer until the readied successor is claimed
    // and entered — that asymmetry is what makes those triggers sound.)
  } else {
    // Conservative deferred commit: the queue entry stays behind as a
    // zombie holding the task's place in completion order, and the commit
    // payload is registered *before* the release mark so any thread that
    // finds the zombie at the front can take it.  When the entry is
    // already the front, no leave() will ever re-discover it — this
    // thread drives the drain itself.
    CompletionGovernor::PendingCommit pending;
    pending.task = ctx.id;
    pending.worker = ctx.worker;
    pending.start_us = start;
    pending.end_us = commit_end;
    pending.kernel = std::move(label);
    pending.hedge = hedge_token;
    governor_.defer(ticket.seq, std::move(pending));
    // Even when the release mark makes this entry the new front, the
    // commit is left for a thread with finished bookkeeping (see the
    // front-commit path above): this thread's own return processing is
    // still ahead of it.
    queue_.mark_released(ticket);
  }

  if (deadline_breached) {
    deadline_breaches_.inc();
    fr.record(flightrec::EventType::deadline_breach, ctx.id, ctx.worker,
              options_.deadline_us, commit_end);
    throw DeadlineExceeded(
        ctx.id, options_.deadline_us, commit_end,
        options_.deadline_mode == sched::DeadlineMode::abort,
        "task " + std::to_string(ctx.id) + " (" + base_kernel +
            ") exceeded its virtual-time deadline of " +
            std::to_string(options_.deadline_us) + " us");
  }
  if (decision.fail) {
    fault_failures_.inc();
    throw TaskFailure(ctx.id, ctx.attempt,
                      "injected failure: kernel " + base_kernel + ", task " +
                          std::to_string(ctx.id) + ", attempt " +
                          std::to_string(ctx.attempt));
  }
  return virtual_span;
}

void SimEngine::execute_hedge_duplicate(
    sched::TaskContext& ctx, double dup_start, double winner_end,
    std::shared_ptr<sched::HedgeToken> token, sched::TaskId original) {
  flightrec::FlightRecorder& fr = telemetry_->recorder();

  struct InFlight {
    std::atomic<int>& count;
    explicit InFlight(std::atomic<int>& c) : count(c) {
      count.fetch_add(1, std::memory_order_acq_rel);
    }
    ~InFlight() { count.fetch_sub(1, std::memory_order_acq_rel); }
  } in_flight_guard(in_flight_);

  if (stalled_.load(std::memory_order_acquire)) {
    throw SimulationStalled(
        telemetry_->describe() + ": simulation cancelled by the watchdog",
        "see the stall report on the first failure");
  }

  // The duplicate never commits anything, on any path: the original owns
  // the winner interval [start, winner_end], and this attempt's only
  // timeline footprint is the lane it occupies for [dup_start, winner_end].
  // Its ticket (entered at the winner completion, strictly after the
  // original's) holds that occupancy in completion order until the
  // original's commit promotes-and-cancels it.
  ctx.virtual_end_us = winner_end;

  if (token->committed.load(std::memory_order_acquire)) {
    // The original committed before this duplicate even dispatched (e.g.
    // every lane was busy until after the winner's return).  Skip the
    // queue entirely — entering would add a zombie-like entry nobody
    // needs — but still count the cancellation: launched == cancelled is
    // the ticket-leak-freedom invariant.
    fr.record(flightrec::EventType::hedge_cancel, ctx.id, ctx.worker,
              winner_end, 0.0, original);
    hedge_cancelled_.inc();
    return;
  }

  // Count the ticket BEFORE entering: between the increment and the enter
  // the live count transiently undershoots, which is the strict direction
  // (the reverse order would let a committer count the duplicate as a
  // blocked executor for a moment — the exact bug the subtraction fixes).
  hedge_tickets_.fetch_add(1, std::memory_order_acq_rel);
  TaskExecQueue::Ticket ticket;
  try {
    ticket = queue_.enter(winner_end);
  } catch (...) {
    hedge_tickets_.fetch_sub(1, std::memory_order_acq_rel);
    throw;
  }
  try {
    fr.record(flightrec::EventType::teq_enter, ctx.id, ctx.worker, dup_start,
              winner_end, ticket.seq);
    if (lookahead_on_ &&
        options_.lookahead_mode == LookaheadMode::conservative) {
      commit_pending_releases(&ctx, /*self_in_queue=*/true);
    }
    for (;;) {
      const TaskExecQueue::CancellableWait outcome =
          queue_.wait_front_cancellable(ticket, token->committed);
      if (outcome == TaskExecQueue::CancellableWait::cancelled) break;
      if (outcome == TaskExecQueue::CancellableWait::front) {
        // Reaching the front means the original already left — and it set
        // the token strictly before that leave, so the acquire on the
        // published front makes the token store visible here.  (The
        // lock-free fast path alone could read a stale token *before* the
        // front check; this ordered re-check closes that window.)
        if (queue_.cancelled()) queue_.wait_front(ticket);  // throws
        TS_ASSERT(token->committed.load(std::memory_order_acquire),
                  "hedge duplicate reached the queue front before its "
                  "winner committed");
        break;
      }
      // front_blocked: the front is a released zombie awaiting its commit
      // and this waiter is the designated drain driver — same contract as
      // acquire_front_or_release, plus the token as an extra exit.
      TS_PROF_SCOPE(lookahead_check);
      const double wait_start = wall_time_us();
      for (;;) {
        if (commit_pending_releases(&ctx, /*self_in_queue=*/true)) break;
        if (queue_.cancelled()) queue_.wait_front(ticket);  // throws
        if (token->committed.load(std::memory_order_acquire)) break;
        if (queue_.front_seq() == ticket.seq) break;
        const double waited = wall_time_us() - wait_start;
        if (waited > options_.quiescence_timeout_us) {
          quiescence_timeouts_.inc();
          fr.record(flightrec::EventType::quiescence_timeout, ctx.id,
                    ctx.worker, winner_end, waited);
          commit_pending_releases(&ctx, /*self_in_queue=*/true,
                                  /*force=*/true);
          break;
        }
        std::this_thread::yield();
      }
    }
    fr.record(flightrec::EventType::hedge_cancel, ctx.id, ctx.worker,
              winner_end, 0.0, original);
    hedge_cancelled_.inc();
    queue_.leave(ticket);
    hedge_tickets_.fetch_sub(1, std::memory_order_acq_rel);
  } catch (...) {
    // Cancelled while waiting (watchdog): release the slot so the other
    // waiters' front checks stay meaningful during the drain.
    queue_.leave(ticket);
    hedge_tickets_.fetch_sub(1, std::memory_order_acq_rel);
    throw;
  }
}

void SimEngine::reset() {
  // Abandon released-but-uncommitted zombies (aborted runs only; a normal
  // finish() drains them): their deferred commits die with the run, but
  // the queue entries must go before the emptiness check below.
  for (auto& [seq, pending] : governor_.take_all()) {
    queue_.leave(TaskExecQueue::Ticket{pending.end_us, seq});
  }
  TS_REQUIRE(queue_.size() == 0, "cannot reset with simulated tasks in flight");
  clock_.reset();
  trace_.clear();
  executed_base_ = executed_.value();
  quiescence_timeouts_base_ = quiescence_timeouts_.value();
  fault_failures_base_ = fault_failures_.value();
  fault_stalls_base_ = fault_stalls_.value();
  releases_base_ = releases_.value();
  horizon_blocks_base_ = horizon_blocks_.value();
  hedge_launched_base_ = hedge_launched_.value();
  hedge_won_base_ = hedge_won_.value();
  hedge_cancelled_base_ = hedge_cancelled_.value();
  hedge_wasted_us_base_ = hedge_wasted_us_.value();
  deadline_breaches_base_ = deadline_breaches_.value();
  warmed_up_.clear();
  // Re-arm after a watchdog cancellation so the engine is reusable, and —
  // unconditionally — restart the TEQ ticket sequence so back-to-back runs
  // on one engine emit identical ticket seqs in flight-recorder
  // teq_displaced events (cross-run trace determinism).
  stalled_.store(false, std::memory_order_release);
  queue_.clear_cancel();
}

}  // namespace tasksim::sim
