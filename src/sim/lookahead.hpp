// lookahead.hpp — bounded-lookahead out-of-order completion (DESIGN.md §11).
//
// The Task Execution Queue serializes task returns in virtual-completion
// order, which is the correctness anchor of the whole simulation (§V-C) but
// also its scalability ceiling: with many oversubscribed workers, every
// completion waits for the global front.  The lookahead engine relaxes the
// strict is-front gate to a *safe horizon*: a waiter whose completion lies
// within `lookahead_us` of the current front may return early when a grant
// predicate proves no not-yet-submitted successor can observe the
// reordering.  Two modes:
//
//   * conservative — the released task's clock advance and trace append are
//     *deferred*: the queue entry stays behind as a zombie and the engine
//     commits zombies strictly in completion order at quiescence-safe
//     points.  The virtual timeline every observer reads is therefore
//     exactly as serialized as the strict engine's, and the §V-E audit
//     stays clean by construction.
//   * optimistic — released tasks commit immediately (out of order).  The
//     flight recorder captures the resulting §V-E misorderings post-hoc;
//     repair_virtual_trace then rebuilds the schedule from the recorded
//     dependency chain and reports the repaired makespan delta.
//
// This header owns the mode dial, the CompletionGovernor (the engine's
// ledger of released-but-uncommitted tasks), and the optimistic repair.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sched/hedging.hpp"
#include "sched/task.hpp"
#include "trace/lifecycle.hpp"

namespace tasksim::sim {

enum class LookaheadMode {
  off,           ///< strict §V-C order (the default)
  conservative,  ///< safe-horizon release with deferred in-order commit
  optimistic,    ///< speculative release; §V-E audit + post-hoc repair
};

const char* to_string(LookaheadMode mode);

/// Parse "off" / "conservative" / "optimistic" (throws InvalidArgument).
LookaheadMode parse_lookahead_mode(const std::string& text);

/// The engine's ledger of conservatively released tasks whose virtual-
/// timeline commit (trace append, clock advance, task_return, queue leave)
/// is still owed.  Keyed by TEQ ticket seq: the queue's zombie entry and
/// the pending payload describe the same occupancy.
class CompletionGovernor {
 public:
  /// Everything the deferred commit needs to replay the task's return.
  struct PendingCommit {
    sched::TaskId task = 0;
    int worker = -1;
    double start_us = 0.0;
    double end_us = 0.0;  ///< == the TEQ ticket's completion time
    std::string kernel;
    /// Cancellation token of this task's hedge duplicate (null when the
    /// task was not hedged).  The deferred committer stores it (release)
    /// strictly before the zombie's leave(), preserving the winner's
    /// token-before-promotion ordering on the deferred path too.
    std::shared_ptr<sched::HedgeToken> hedge;
  };

  /// Register a released task's commit payload.  Must happen *before* the
  /// queue entry is marked released, so any thread that finds the zombie
  /// at the front can always take its payload.
  void defer(std::uint64_t seq, PendingCommit commit);

  /// Whether `seq` has a registered, not-yet-taken payload.
  bool is_pending(std::uint64_t seq) const;

  /// Claim the payload for `seq`.  Returns false when another committer
  /// already took it (the commit drain races benignly; the loser backs
  /// off and the winner's leave() republishes the next front).
  bool take(std::uint64_t seq, PendingCommit& out);

  /// Released-but-uncommitted count.  The engine subtracts this from the
  /// queue size to get the *live* occupancy its safety predicates reason
  /// about (zombies hold queue slots but no worker).
  std::size_t pending_count() const;

  /// Drain every pending payload (reset/abandon paths), in seq order.
  std::vector<std::pair<std::uint64_t, PendingCommit>> take_all();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, PendingCommit> pending_;
};

/// Post-hoc repair of an optimistic run's virtual trace.  Rebuilds every
/// task's start/completion from the recorded dependency chain: tasks are
/// replayed in recorded virtual-start order, each starting at the max of
/// its producers' repaired completions, keeping its recorded duration
/// (ASAP on the dependency DAG).  Deliberately lane-unaware — speculation
/// frees workers early, so recorded lane placement is itself distorted;
/// when the recorded parallelism fit the lanes the result equals the
/// serialized schedule, and oversubscribed phases are lower-bounded by the
/// dependency critical path.
struct RepairReport {
  std::size_t violations = 0;       ///< §V-E findings in the observed trace
  std::size_t repaired_tasks = 0;   ///< tasks with recomputed times
  std::size_t unrepaired = 0;       ///< returned tasks lacking the virtual
                                    ///< times needed to replay them
  double observed_makespan_us = 0.0;
  double repaired_makespan_us = 0.0;

  double makespan_delta_us() const {
    return repaired_makespan_us - observed_makespan_us;
  }
};

RepairReport repair_virtual_trace(const trace::LifecycleLog& log,
                                  const trace::RaceAudit& audit);

}  // namespace tasksim::sim
