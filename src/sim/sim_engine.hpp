// sim_engine.hpp — the simulation engine (paper §V).
//
// The engine owns the paper's three crucial elements: the simulation clock,
// the simulated trace, and the Task Execution Queue.  A simulated kernel
// calls `execute(ctx, kernel)` instead of computing; the call
//
//   1. reads the simulation clock — the kernel's virtual start time,
//   2. samples the kernel's execution-time model — virtual duration,
//   3. enters the Task Execution Queue with its virtual completion time and
//      blocks until it is at the front,
//   4. applies the configured race mitigation (paper §V-E),
//   5. records the event in the virtual trace, advances the clock to its
//      completion time, leaves the queue, and returns — at which point the
//      real scheduler, none the wiser, performs its usual completion
//      bookkeeping and scheduling decisions.
//
// Race mitigations:
//   none        — return as soon as we are at the queue front (exhibits the
//                 paper's Figure-5 race; kept for the ablation bench),
//   yield_sleep — sched_yield + a short sleep before checking the front,
//                 the paper's portable mitigation,
//   quiescence  — wait until the scheduler reports a safe state, the
//                 generalization of the paper's QUARK-specific query:
//                 return only when (a) every active executor is blocked in
//                 the queue, or (b) no ready task is waiting, no completion
//                 bookkeeping is in flight, and every running task has
//                 arrived in the queue.  Guarded by a timeout to bound
//                 pathological waits.
#pragma once

#include <atomic>
#include <set>
#include <string>
#include <utility>

#include "sched/hedging.hpp"
#include "sched/task.hpp"
#include "sim/fault_injection.hpp"
#include "sim/kernel_model.hpp"
#include "sim/lookahead.hpp"
#include "sim/sim_clock.hpp"
#include "sim/task_exec_queue.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"
#include "support/watchdog.hpp"
#include "trace/trace.hpp"

namespace tasksim::sim {

enum class RaceMitigation { none, yield_sleep, quiescence };

const char* to_string(RaceMitigation mitigation);
RaceMitigation parse_race_mitigation(const std::string& name);

struct SimEngineOptions {
  RaceMitigation mitigation = RaceMitigation::quiescence;
  /// Sleep length for the yield_sleep mitigation.
  double sleep_us = 50.0;
  /// Give up waiting for quiescence after this long (wall time) and return
  /// anyway; a warning counter records how often this fired.
  double quiescence_timeout_us = 2e5;
  /// Lower bound on sampled durations.
  double min_duration_us = 1e-2;
  std::uint64_t seed = 0x51u;
  /// Optional first-invocation models (paper §VII's start-up penalty,
  /// implemented): when set, the *first* execution of each kernel class on
  /// each worker samples from these models instead of the steady-state
  /// ones, reproducing the per-thread initialization outliers visible in
  /// the paper's real traces (Figure 6).  Kernels without a startup model
  /// fall back to the steady-state model.  Not owned; must outlive the
  /// engine.
  const KernelModelSet* startup_models = nullptr;
  /// Optional fault plan (not owned; must outlive the engine).  When set
  /// and active, kernel durations are sampled from deterministic
  /// per-(task, attempt) streams — independent of thread interleaving —
  /// and the plan's failure/stall decisions apply.  Startup models are
  /// ignored under an active plan.
  const FaultPlan* faults = nullptr;
  /// Progress watchdog: declare the simulation stalled when no beacon
  /// (executed tasks, TEQ enters, virtual clock, scheduler completions)
  /// moves for this long while work is outstanding.  0 = disabled.  Must
  /// exceed quiescence_timeout_us under the quiescence mitigation, or a
  /// legitimate timed-out wait would be misread as a stall.
  double watchdog_timeout_us = 0.0;
  double watchdog_poll_us = 10'000.0;
  /// Bounded-lookahead out-of-order completion (DESIGN.md §11).  A waiter
  /// whose virtual completion lies within `lookahead_us` of the TEQ front
  /// may return before reaching the front — with a deferred in-order
  /// commit (conservative) or an immediate speculative one (optimistic).
  /// lookahead_us == 0 degenerates to the strict engine regardless of
  /// mode: the horizon clause can never fire, so the code path is
  /// disabled outright and the serialized order is reproduced bit for
  /// bit.
  LookaheadMode lookahead_mode = LookaheadMode::off;
  double lookahead_us = 0.0;
  /// Straggler hedging (DESIGN.md §12).  When enabled, per-kernel triggers
  /// are built at construction from the *clean* duration models (quantile ×
  /// margin over threshold_samples fixed-seed draws); a task whose virtual
  /// span exceeds its trigger races a duplicate attempt on another lane.
  /// Requires a runtime that supports_auxiliary_tasks(); others never
  /// hedge.
  sched::HedgeConfig hedging;
  /// Per-task virtual-time deadline in µs (0 = no deadlines).  A task whose
  /// virtual span would exceed it is truncated at the deadline and handled
  /// per deadline_mode: abort/poison throw DeadlineExceeded (never
  /// retried); hedge instead caps the hedge trigger at the deadline.
  double deadline_us = 0.0;
  sched::DeadlineMode deadline_mode = sched::DeadlineMode::off;
};

class SimEngine {
 public:
  /// `models` must outlive the engine.  The engine captures the
  /// constructing thread's telemetry context (telemetry::current()) for
  /// its metric handles, flight-recorder events, watchdog identity and
  /// stall reports — construct it inside the TelemetryScope it should
  /// report into (run_simulated does; the sweep driver binds a per-engine
  /// scope around it).  The context must outlive the engine.
  SimEngine(const KernelModelSet& models, SimEngineOptions options = {});
  ~SimEngine();

  /// The simulated kernel body.  Returns the virtual duration used (0 for
  /// a poisoned task, which records a zero-length "skipped" trace event
  /// and touches neither the clock nor the queue).  `fault_ordinal` is
  /// the per-kernel-class submission ordinal from register_submission();
  /// it keys the fault plan's deterministic decisions.  Throws
  /// TaskFailure when the plan fails this attempt (after committing the
  /// failed attempt's partial progress to the virtual timeline) and
  /// SimulationStalled when the watchdog cancelled the simulation.
  double execute(sched::TaskContext& ctx, const std::string& kernel,
                 std::uint64_t fault_ordinal = 0);

  /// Assign the submission ordinal for a task of `kernel` (serial,
  /// submit-time; see FaultPlan::register_submission).  Returns 0 when no
  /// fault plan is configured.
  std::uint64_t register_submission(const std::string& kernel);

  /// Virtual time reached so far (== predicted makespan after finish).
  double virtual_time_us() const { return clock_.now(); }

  const trace::Trace& trace() const { return trace_; }
  trace::Trace& trace() { return trace_; }

  /// Number of simulated kernels executed by *this* engine.  Backed by the
  /// "sim.tasks_executed" metric of the engine's telemetry context
  /// relative to a baseline captured at construction/reset.  Engines
  /// constructed under distinct TelemetryScopes own distinct registries,
  /// so concurrent engines never see each other's increments; engines on
  /// the shared default context must still run one at a time.
  std::uint64_t executed_tasks() const {
    return executed_.value() - executed_base_;
  }

  /// The telemetry context this engine instruments into (captured at
  /// construction).
  telemetry::TelemetryContext& telemetry() const { return *telemetry_; }

  /// Times the quiescence wait hit its timeout (should stay 0 in healthy
  /// runs).  Same baseline convention as executed_tasks().
  std::uint64_t quiescence_timeouts() const {
    return quiescence_timeouts_.value() - quiescence_timeouts_base_;
  }

  /// Injected failures / stalls this engine produced (same baseline
  /// convention as executed_tasks()).
  std::uint64_t failed_attempts() const {
    return fault_failures_.value() - fault_failures_base_;
  }
  std::uint64_t fault_stalls() const {
    return fault_stalls_.value() - fault_stalls_base_;
  }

  /// Hedging / deadline telemetry (same baseline convention as
  /// executed_tasks()).  After a drained run, hedges_cancelled ==
  /// hedges_launched: every duplicate left its ticket exactly once —
  /// the ticket-leak-freedom invariant the tests assert.
  std::uint64_t hedges_launched() const {
    return hedge_launched_.value() - hedge_launched_base_;
  }
  /// Hedge races the duplicate won (its completion beat the original's).
  std::uint64_t hedges_won() const {
    return hedge_won_.value() - hedge_won_base_;
  }
  std::uint64_t hedges_cancelled() const {
    return hedge_cancelled_.value() - hedge_cancelled_base_;
  }
  /// Duplicate lane-occupancy that duplicated work already done elsewhere,
  /// in rounded virtual µs (winner_end − dup_start per hedge: exactly one
  /// of the two racing attempts is useful).
  std::uint64_t hedge_wasted_us() const {
    return hedge_wasted_us_.value() - hedge_wasted_us_base_;
  }
  std::uint64_t deadline_breaches() const {
    return deadline_breaches_.value() - deadline_breaches_base_;
  }

  /// Lookahead telemetry (same baseline convention as executed_tasks()).
  /// released_tasks counts early (non-front) returns; horizon_blocks
  /// counts waits that parked because their completion lay beyond the
  /// safe horizon.
  std::uint64_t released_tasks() const {
    return releases_.value() - releases_base_;
  }
  std::uint64_t horizon_blocks() const {
    return horizon_blocks_.value() - horizon_blocks_base_;
  }

  /// Whether lookahead releases are armed (mode != off and a positive
  /// horizon).
  bool lookahead_enabled() const { return lookahead_on_; }
  LookaheadMode lookahead_mode() const { return options_.lookahead_mode; }

  /// Commit every pending conservative release unconditionally, in
  /// completion order.  Called by SimSubmitter::finish() after wait_all
  /// (the scheduler is fully drained there, so the commits are trivially
  /// safe) and usable by direct drivers of the engine.
  void drain_releases();

  /// True once the watchdog declared this simulation stalled.  The next
  /// execute() on any worker throws SimulationStalled carrying the dump.
  bool stalled() const { return stalled_.load(std::memory_order_acquire); }

  /// Submission gate for the quiescence mitigation.  While open (and the
  /// submitter is not blocked on the task window), a front task must wait:
  /// a not-yet-submitted task could otherwise be placed later on the
  /// virtual timeline than it would really start.  SimSubmitter manages
  /// this automatically; set it manually when driving the engine directly.
  void set_submission_open(bool open) {
    submission_open_.store(open, std::memory_order_release);
  }
  bool submission_open() const {
    return submission_open_.load(std::memory_order_acquire);
  }

  /// Reset clock, trace and counters for a fresh simulation (no simulated
  /// kernels may be in flight).
  void reset();

 private:
  bool scheduler_safe(const sched::TaskContext& ctx) const;
  /// Queue occupancy minus released-but-uncommitted zombies: the entries
  /// that still have a worker blocked behind them.  The lookahead safety
  /// predicates reason about this count, not the raw queue size.
  std::size_t live_queue_size() const;
  /// Conservative release grant (DESIGN.md §11): may the calling waiter
  /// return early?  Requires the submitter closed or window-blocked, no
  /// ready task anywhere, no bookkeeping in flight, and every running
  /// task blocked in the queue — the state in which any post-release
  /// claim is of a task made ready by a completed producer, whose floor
  /// (ctx.virtual_floor_us) then places its start exactly where the
  /// serialized engine would have.
  bool release_safe(const sched::TaskContext& ctx) const;
  /// May a pending release at the queue front commit (advance the clock)
  /// now?  scheduler_safe over live counts; `self_in_queue` is false when
  /// the caller already left the queue (its running count is adjusted
  /// out).
  bool commit_safe(const sched::TaskContext& ctx, bool self_in_queue) const;
  /// Commit pending releases from the queue front while the front is a
  /// zombie and commit_safe holds (or `force`).  Returns true when at
  /// least one commit happened.
  bool commit_pending_releases(const sched::TaskContext* ctx,
                               bool self_in_queue, bool force = false);
  /// wait_front + lookahead: loops wait_front_or_release, driving the
  /// commit drain whenever the front is an uncommitted zombie.  Returns
  /// true when the wait ended in an early release (false = front).
  bool acquire_front_or_release(sched::TaskContext& ctx,
                                const TaskExecQueue::Ticket& ticket);
  /// The duplicate attempt's simulated body (DESIGN.md §12).  Enters the
  /// TEQ at the winner completion (strictly after the original, so it sits
  /// behind it at the tied key), waits cancellably on `token`, and always
  /// leaves without committing any virtual time — the original owns the
  /// winner interval on every path.  `winner_end` doubles as the
  /// duplicate's ticket completion.
  void execute_hedge_duplicate(sched::TaskContext& ctx, double dup_start,
                               double winner_end,
                               std::shared_ptr<sched::HedgeToken> token,
                               sched::TaskId original);
  /// Deterministic per-(kernel, task, attempt) stream seed for the
  /// duplicate's clean-model duration draw.  Deliberately independent of
  /// the fault plan: the duplicate models a re-run that dodged the tail.
  std::uint64_t hedge_seed(const std::string& kernel, sched::TaskId task,
                           int attempt) const;
  void start_watchdog();
  void on_stall(const StallReport& report);
  /// Real-time sleep in small steps, aborting early when the watchdog
  /// declares a stall (so injected worker stalls cannot wedge the drain).
  void interruptible_stall(double us);

  const KernelModelSet& models_;
  SimEngineOptions options_;
  /// Captured from telemetry::current() at construction; not owned.
  telemetry::TelemetryContext* telemetry_;
  SimClock clock_;
  TaskExecQueue queue_;
  trace::Trace trace_;
  std::mutex rng_mutex_;
  Rng rng_;
  /// (worker, kernel) pairs that already executed once (startup modeling).
  std::set<std::pair<int, std::string>> warmed_up_;
  std::atomic<bool> submission_open_{false};
  /// Ledger of conservatively released, not-yet-committed tasks.
  CompletionGovernor governor_;
  /// Per-kernel hedge triggers, built at construction (read-only after).
  sched::HedgeThresholds hedge_thresholds_;
  /// options_.lookahead_mode != off && options_.lookahead_us > 0, resolved
  /// once at construction.
  bool lookahead_on_ = false;

  Watchdog watchdog_;
  std::atomic<bool> stalled_{false};
  /// Simulated bodies currently inside execute() (keeps the watchdog's
  /// activity gate honest for tasks stalled before entering the queue).
  std::atomic<int> in_flight_{0};
  /// Hedge-duplicate tickets currently in the TEQ.  A duplicate holds a
  /// completion-order slot but no pool lane (it runs on a dedicated
  /// thread, see RuntimeBase::spawn_auxiliary), so live_queue_size()
  /// subtracts these: counting them would let the all-executors-blocked
  /// shortcut fire while idle lanes and ready tasks exist.
  std::atomic<int> hedge_tickets_{0};

  // Instrumentation (the context's metrics registry; see DESIGN.md §2 and
  // §10).  The *_base_ values anchor the per-engine accessors above.
  metrics::Counter executed_;             ///< sim.tasks_executed
  metrics::Counter quiescence_timeouts_;  ///< sim.quiescence_timeouts
  metrics::Counter quiescence_spins_;     ///< sim.quiescence_spins
  metrics::Histogram quiescence_spin_iters_;  ///< per-wait spin iterations
  metrics::Counter fault_failures_;       ///< sim.fault.failed_attempts
  metrics::Counter fault_stalls_;         ///< sim.fault.stalls
  metrics::Counter fault_skips_;          ///< sim.fault.skipped_tasks
  metrics::Counter watchdog_stalls_;      ///< sim.watchdog.stalls
  metrics::Counter releases_;             ///< sim.lookahead.releases
  metrics::Counter horizon_blocks_;       ///< sim.lookahead.horizon_blocks
                                          ///< (incremented by the TEQ)
  metrics::Counter hedge_launched_;       ///< sim.hedge.launched
  metrics::Counter hedge_won_;            ///< sim.hedge.won
  metrics::Counter hedge_cancelled_;      ///< sim.hedge.cancelled
  metrics::Counter hedge_wasted_us_;      ///< sim.hedge.wasted_us
  metrics::Counter deadline_breaches_;    ///< sim.deadline.breaches
  std::uint64_t executed_base_ = 0;
  std::uint64_t quiescence_timeouts_base_ = 0;
  std::uint64_t fault_failures_base_ = 0;
  std::uint64_t fault_stalls_base_ = 0;
  std::uint64_t releases_base_ = 0;
  std::uint64_t horizon_blocks_base_ = 0;
  std::uint64_t hedge_launched_base_ = 0;
  std::uint64_t hedge_won_base_ = 0;
  std::uint64_t hedge_cancelled_base_ = 0;
  std::uint64_t hedge_wasted_us_base_ = 0;
  std::uint64_t deadline_breaches_base_ = 0;
};

}  // namespace tasksim::sim
