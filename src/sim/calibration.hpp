// calibration.hpp — collecting kernel-time samples from a real run
// (paper §V-B1).
//
// The paper's key timing insight: timing kernels in isolation (cold or warm
// cache) misrepresents their in-context behaviour, so the calibrator
// instead observes "the actual execution of the algorithm ... for a
// relatively small problem" under the real scheduler.  CalibrationObserver
// attaches to any runtime and records per-kernel durations; the MKL-style
// first-invocation outlier is handled by dropping the first
// `warmup_drop_per_worker` samples of each (worker, kernel) pair, exactly
// mirroring the paper's per-thread warm-up mitigation.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sched/observer.hpp"
#include "sim/kernel_model.hpp"
#include "support/metrics.hpp"

namespace tasksim::sim {

struct CalibrationOptions {
  enum class Clock { wall, thread_cpu };
  Clock clock = Clock::thread_cpu;
  /// Samples to discard per (worker, kernel) pair before recording.
  int warmup_drop_per_worker = 1;
};

class CalibrationObserver final : public sched::TaskObserver {
 public:
  using Options = CalibrationOptions;
  using Clock = CalibrationOptions::Clock;

  explicit CalibrationObserver(Options options = {});

  void on_finish(sched::TaskId id, const std::string& kernel, int worker,
                 double start_wall_us, double end_wall_us, double start_cpu_us,
                 double end_cpu_us) override;

  /// Recorded samples per kernel (copy; warm-up samples excluded).
  std::map<std::string, std::vector<double>> samples() const;

  /// All samples including warm-up ones (fallback for rare kernels whose
  /// few invocations were all consumed by the warm-up filter).
  std::map<std::string, std::vector<double>> raw_samples() const;

  /// The warm-up samples themselves (the first invocation(s) of each
  /// kernel per worker — the MKL-style initialization outliers).  Used by
  /// the startup-penalty extension (paper §VII suggests modeling the
  /// start-up penalty to improve small-problem accuracy).
  std::map<std::string, std::vector<double>> warmup_samples() const;

  /// Fit models of *first-invocation* durations per kernel, for
  /// SimEngineOptions::startup_models.  Kernels whose warm-up samples were
  /// never observed are omitted (the engine falls back to the steady-state
  /// model).
  KernelModelSet fit_startup(ModelFamily family) const;

  /// Samples recorded for one kernel (empty vector when none).
  std::vector<double> samples_for(const std::string& kernel) const;

  std::size_t total_samples() const;
  void clear();

  /// Fit the requested family to every kernel's samples.  Kernels left
  /// with fewer than 2 post-warm-up samples fall back to their raw
  /// samples; a kernel observed exactly once gets a constant model.
  KernelModelSet fit(ModelFamily family) const;

 private:
  Options options_;
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<double>> samples_;
  std::map<std::string, std::vector<double>> raw_samples_;
  std::map<std::string, std::vector<double>> warmup_samples_;
  std::map<std::pair<int, std::string>, int> dropped_;
  metrics::Counter samples_metric_;   ///< sim.calibration.samples
  metrics::Counter warmups_metric_;   ///< sim.calibration.warmup_samples
};

}  // namespace tasksim::sim
