// fault_injection.hpp — seeded, deterministic fault injection.
//
// A FaultPlan decides, per simulated task execution, whether the attempt
// fails, how much virtual progress the failed attempt made before dying,
// and whether the executing worker stalls (a real-time sleep) first.  The
// decisions are *pure functions* of (plan seed, kernel class, per-class
// submission ordinal, attempt index), computed by hashing — never by
// drawing from a shared RNG stream — so they are independent of thread
// interleaving: two runs with the same seed and the same submission order
// fail exactly the same attempts of exactly the same tasks, whatever the
// host scheduler does.
//
// The submission ordinal is assigned at submit time (submission is serial
// program order, the superscalar model) via register_submission() and
// captured into the task body, which is what makes the per-task decision
// stable across retries and across runs.
//
// The plan also carries the two scheduler-perturbation knobs used to
// provoke the paper's Figure-5 race deterministically (dispatch and
// bookkeeping delays, forwarded into RuntimeConfig by the harness) and
// the virtual-time retry-backoff schedule applied by the SimEngine.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/tail_injection.hpp"

namespace tasksim::sim {

/// Fault behaviour for one kernel class (or the "*" wildcard).
struct KernelFaultRule {
  /// Probability that a first attempt fails (retries never re-fail under
  /// this rule unless the probability draws them again).
  double fail_probability = 0.0;
  /// Fail the first attempt of every nth submission of this class
  /// (1-based; 0 = disabled).  Combines with fail_probability as OR.
  std::uint64_t fail_every_nth = 0;
  /// Fraction of the sampled virtual duration a failed attempt consumes
  /// before dying (partial progress), in [0, 1].
  double progress_fraction = 0.5;
  /// Injected *real* worker stall before the attempt executes…
  double stall_us = 0.0;
  /// …with this probability per attempt.
  double stall_probability = 0.0;
  /// Heavy-tail virtual-duration inflation (straggler injection).
  TailRule tail;
};

struct FaultPlanConfig {
  std::uint64_t seed = 0xFA17;
  /// Kernel class → rule; "*" matches every class without its own rule.
  std::map<std::string, KernelFaultRule> rules;
  /// Virtual-time retry backoff: attempt k (k >= 1) waits
  /// min(retry_backoff_us * 2^(k-1), retry_backoff_cap_us) before its
  /// kernel time starts.
  double retry_backoff_us = 50.0;
  double retry_backoff_cap_us = 10'000.0;
  /// Real-time scheduler perturbations (race provocation; forwarded to
  /// RuntimeConfig::dispatch_delay_us / bookkeeping_delay_us).
  double dispatch_delay_us = 0.0;
  double bookkeeping_delay_us = 0.0;

  /// TS_REQUIRE every numeric field into its documented domain.
  void validate() const;
};

/// What the plan decided for one (kernel, ordinal, attempt).
struct FaultDecision {
  bool fail = false;
  double progress_fraction = 1.0;  ///< meaningful when fail
  double stall_us = 0.0;           ///< real-time stall before executing
  /// Virtual-duration inflation factor (1 = no straggle; always >= 1).
  double tail_multiplier = 1.0;

  bool straggles() const { return tail_multiplier > 1.0; }
};

class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanConfig config);

  const FaultPlanConfig& config() const { return config_; }

  /// True when any rule exists (otherwise the plan never fails anything).
  bool active() const { return !config_.rules.empty(); }

  /// Assign the next per-class submission ordinal.  Called from the
  /// (single) submitting thread at submit time; the returned ordinal is
  /// captured into the task body.
  std::uint64_t register_submission(const std::string& kernel);

  /// Pure decision function; safe to call concurrently.
  FaultDecision decide(const std::string& kernel, std::uint64_t ordinal,
                       int attempt) const;

  /// Deterministic per-(kernel, ordinal, attempt) seed for duration
  /// sampling, so retried attempts re-sample without touching the shared
  /// engine RNG (whose draw order is interleaving-dependent).
  std::uint64_t sample_seed(const std::string& kernel, std::uint64_t ordinal,
                            int attempt) const;

  /// Virtual backoff before retry attempt `attempt` (>= 1) runs.
  double backoff_us(int attempt) const;

  /// Forget submission ordinals (between repeated runs, so every run of
  /// the same task graph sees the same ordinals).
  void reset();

 private:
  const KernelFaultRule* rule_for(const std::string& kernel) const;
  std::uint64_t hash(const std::string& kernel, std::uint64_t ordinal,
                     std::uint64_t salt) const;

  FaultPlanConfig config_;
  mutable std::mutex mutex_;  ///< guards ordinals_
  std::unordered_map<std::string, std::uint64_t> ordinals_;
};

/// Parse a fault spec string:
///
///   spec    := entry (';' entry)*
///   entry   := <kernel> ':' <key>=<value> (',' <key>=<value>)*
///            | '@plan' ':' <key>=<value> (',' <key>=<value>)*
///   e.g. "gemm:p=0.05,frac=0.5;*:nth=100,tailp=0.05,tailmult=20,
///         taildist=lognormal,tailshape=0.5;@plan:backoff=50,backoffcap=1e4"
///
/// Per-kernel keys: p (fail_probability), nth (fail_every_nth), frac
/// (progress_fraction), stall (stall_us), stallp (stall_probability),
/// tailp (tail.probability), tailmult (tail.multiplier, finite >= 1),
/// taildist (lognormal | pareto), tailshape (tail.shape).  The kernel "*"
/// is the wildcard rule.  The reserved entry "@plan" sets plan-wide knobs:
/// backoff (retry_backoff_us), backoffcap (retry_backoff_cap_us) — both
/// rejected when non-finite or negative.  The result is validated.
FaultPlanConfig parse_fault_spec(const std::string& spec);

}  // namespace tasksim::sim
