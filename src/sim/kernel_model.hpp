// kernel_model.hpp — per-kernel-class execution-time models (paper §V-B).
//
// A KernelModelSet maps kernel names ("dgemm", "dtsmqr", ...) to fitted
// probability distributions of their execution time.  Sampling is
// thread-safe and deterministic per seed.  Model files round-trip through
// save/load so a calibration run can feed many later simulations —
// including simulations on machines other than the one calibrated on.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "stats/distribution.hpp"
#include "support/rng.hpp"

namespace tasksim::sim {

/// Which family the calibrator fits (paper's candidates + ablation extras).
enum class ModelFamily {
  constant,   ///< point mass at the sample mean (ablation)
  normal,
  gamma,
  lognormal,
  empirical,  ///< bootstrap from the raw samples
  best,       ///< lowest-AIC of {normal, gamma, lognormal}
};

const char* to_string(ModelFamily family);
ModelFamily parse_model_family(const std::string& name);

class KernelModelSet {
 public:
  KernelModelSet() = default;

  KernelModelSet(const KernelModelSet& other);
  KernelModelSet& operator=(const KernelModelSet& other) = delete;
  KernelModelSet(KernelModelSet&&) = default;
  KernelModelSet& operator=(KernelModelSet&&) = default;

  void set_model(const std::string& kernel,
                 std::unique_ptr<stats::Distribution> dist);
  bool has_model(const std::string& kernel) const;
  const stats::Distribution& model(const std::string& kernel) const;

  /// Draw a duration (us) for the kernel, clamped to min_duration_us.
  /// Throws InvalidArgument for kernels without a model.
  double sample(const std::string& kernel, Rng& rng,
                double min_duration_us = 1e-2) const;

  /// Expected duration (model mean).
  double mean_us(const std::string& kernel) const;

  std::vector<std::string> kernel_names() const;
  std::size_t size() const { return models_.size(); }

  /// Text serialization: one `kernel <name> <distribution...>` line each.
  void save(const std::string& path) const;
  static KernelModelSet load(const std::string& path);

 private:
  std::map<std::string, std::unique_ptr<stats::Distribution>> models_;
};

/// Fit one family to each kernel's samples.
KernelModelSet fit_models(
    const std::map<std::string, std::vector<double>>& samples_by_kernel,
    ModelFamily family);

}  // namespace tasksim::sim
