#include "sim/tail_injection.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace tasksim::sim {

const char* to_string(TailDistribution dist) {
  switch (dist) {
    case TailDistribution::lognormal:
      return "lognormal";
    case TailDistribution::pareto:
      return "pareto";
  }
  return "?";
}

TailDistribution parse_tail_distribution(const std::string& text) {
  if (text == "lognormal") return TailDistribution::lognormal;
  if (text == "pareto") return TailDistribution::pareto;
  throw InvalidArgument("unknown tail distribution '" + text +
                        "' (valid: lognormal, pareto)");
}

void validate_tail_rule(const std::string& kernel, const TailRule& rule) {
  const std::string where = " (tail rule for '" + kernel + "')";
  TS_REQUIRE(rule.probability >= 0.0 && rule.probability <= 1.0,
             "tail probability must be in [0, 1]" + where);
  TS_REQUIRE(std::isfinite(rule.multiplier) && rule.multiplier >= 1.0,
             "tail multiplier must be a finite factor >= 1" + where);
  TS_REQUIRE(std::isfinite(rule.shape) && rule.shape >= 0.0,
             "tail shape must be a non-negative finite number" + where);
  if (rule.distribution == TailDistribution::pareto) {
    TS_REQUIRE(rule.shape > 0.0,
               "pareto tail requires shape (alpha) > 0" + where);
  }
}

double sample_tail_multiplier(const TailRule& rule,
                              std::uint64_t magnitude_hash) {
  // The hash seeds a private stream: the polar Box-Muller in Rng::normal
  // consumes a variable number of uniforms, which a single-hash construction
  // could not supply.  The stream is derived only from the hash, so the
  // draw stays a pure function of (seed, kernel, ordinal, attempt).
  double mult = rule.multiplier;
  switch (rule.distribution) {
    case TailDistribution::lognormal: {
      if (rule.shape > 0.0) {
        Rng rng(magnitude_hash);
        mult *= std::exp(rule.shape * rng.normal());
      }
      break;
    }
    case TailDistribution::pareto: {
      Rng rng(magnitude_hash);
      const double u = rng.uniform();  // in [0, 1): 1 - u never hits 0
      mult *= std::pow(1.0 - u, -1.0 / rule.shape);
      break;
    }
  }
  return std::max(mult, 1.0);
}

}  // namespace tasksim::sim
