// virtual_platform.hpp — the "real execution" ground truth on a host with
// too few cores (DESIGN.md §3).
//
// The paper's evaluation compares simulated runs against real 48-core
// executions.  This container has one core, so a wall-clock multi-worker
// run would measure time-slicing, not parallelism.  The virtual platform
// closes that gap: it observes a *real* execution (tasks do the actual
// numerical work; the scheduler makes all its usual decisions) and rebuilds
// the timeline that execution would have had on dedicated cores:
//
//   * every task's duration is its measured thread-CPU time (contention-
//     free under oversubscription),
//   * tasks on the same worker remain serialized in their real start order,
//   * a task cannot start before any of its data-hazard predecessors ends
//     (hazards recomputed from the submitted access lists with the same
//     analysis the schedulers use).
//
// The result is an exact replay of the schedule the runtime chose, charged
// with per-invocation measured kernel times — the closest observable
// analogue of the paper's "real trace".
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/observer.hpp"
#include "trace/trace.hpp"

namespace tasksim::sim {

class VirtualPlatform final : public sched::TaskObserver {
 public:
  VirtualPlatform() = default;

  void on_submit(sched::TaskId id, const sched::TaskDescriptor& desc) override;
  void on_finish(sched::TaskId id, const std::string& kernel, int worker,
                 double start_wall_us, double end_wall_us, double start_cpu_us,
                 double end_cpu_us) override;

  /// Rebuild the dedicated-core timeline.  Call after wait_all().
  trace::Trace replay() const;

  /// Virtual makespan of the replayed timeline (us).
  double virtual_makespan_us() const;

  std::size_t task_count() const;
  void clear();

 private:
  struct TaskInfo {
    sched::TaskId id = 0;
    std::string kernel;
    std::vector<sched::TaskId> predecessors;
    int worker = -1;
    double start_wall_us = 0.0;
    double cpu_duration_us = 0.0;
    bool executed = false;
  };

  struct ObjectState {
    bool has_writer = false;
    sched::TaskId last_writer = 0;
    std::vector<sched::TaskId> readers_since_write;
  };

  mutable std::mutex mutex_;
  std::vector<TaskInfo> tasks_;                       // indexed by dense id
  std::unordered_map<sched::TaskId, std::size_t> index_;
  std::unordered_map<const void*, ObjectState> objects_;
};

}  // namespace tasksim::sim
