// dag_replay.hpp — the pure-DES baseline comparator.
//
// The classic way to predict task-parallel performance — and what tools in
// the SimGrid/GridSim family of the paper's related-work section do — is to
// list-schedule the task DAG on P virtual processors inside a discrete-
// event simulation, with no real scheduler in the loop.  TaskSim implements
// this as the baseline: the accuracy gap between DAG replay and the
// scheduler-in-the-loop simulation is exactly the value the paper's
// approach adds (scheduler policy, queue discipline, stealing, windows and
// bookkeeping overheads all disappear in the baseline).
#pragma once

#include <functional>

#include "dag/graph.hpp"
#include "sim/kernel_model.hpp"
#include "trace/trace.hpp"

namespace tasksim::sim {

struct DagReplayOptions {
  int workers = 2;
  /// FIFO by ready time (ties by node id).  When true, higher
  /// TaskDescriptor-style priority is not available (the DAG has no
  /// priorities), so this orders by critical-path length instead.
  bool prioritize_critical_path = false;
};

/// Duration source for a node (sampled model, fixed weight, ...).
using DurationFn = std::function<double(const dag::Node&)>;

/// Duration function that samples `models` by kernel name with `rng`
/// (captured by reference; keep both alive).
DurationFn model_duration_fn(const KernelModelSet& models, Rng& rng);

/// Duration function that uses each node's weight_us.
DurationFn weight_duration_fn();

struct DagReplayResult {
  trace::Trace timeline;
  double makespan_us = 0.0;
};

/// Event-driven list scheduling of `graph` on `options.workers` processors.
DagReplayResult replay_dag(const dag::TaskGraph& graph,
                           const DurationFn& duration,
                           const DagReplayOptions& options);

}  // namespace tasksim::sim
