#include "sim/calibration.hpp"

namespace tasksim::sim {

CalibrationObserver::CalibrationObserver(Options options)
    : options_(options),
      samples_metric_(metrics::counter("sim.calibration.samples")),
      warmups_metric_(metrics::counter("sim.calibration.warmup_samples")) {}

void CalibrationObserver::on_finish(sched::TaskId /*id*/,
                                    const std::string& kernel, int worker,
                                    double start_wall_us, double end_wall_us,
                                    double start_cpu_us, double end_cpu_us) {
  const double duration = options_.clock == Clock::wall
                              ? end_wall_us - start_wall_us
                              : end_cpu_us - start_cpu_us;
  std::lock_guard<std::mutex> lock(mutex_);
  raw_samples_[kernel].push_back(duration);
  int& dropped = dropped_[{worker, kernel}];
  if (dropped < options_.warmup_drop_per_worker) {
    ++dropped;
    warmup_samples_[kernel].push_back(duration);
    warmups_metric_.inc();
    return;
  }
  samples_[kernel].push_back(duration);
  samples_metric_.inc();
}

std::map<std::string, std::vector<double>>
CalibrationObserver::warmup_samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return warmup_samples_;
}

KernelModelSet CalibrationObserver::fit_startup(ModelFamily family) const {
  const auto warmups = warmup_samples();
  std::map<std::string, std::vector<double>> fittable;
  KernelModelSet singles;
  for (const auto& [kernel, samples] : warmups) {
    if (samples.size() >= 2) {
      fittable.emplace(kernel, samples);
    } else if (samples.size() == 1) {
      singles.set_model(kernel,
                        std::make_unique<stats::ConstantDist>(samples[0]));
    }
  }
  KernelModelSet set = fit_models(fittable, family);
  for (const auto& name : singles.kernel_names()) {
    set.set_model(name, singles.model(name).clone());
  }
  return set;
}

std::map<std::string, std::vector<double>> CalibrationObserver::raw_samples()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return raw_samples_;
}

std::map<std::string, std::vector<double>> CalibrationObserver::samples()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

std::vector<double> CalibrationObserver::samples_for(
    const std::string& kernel) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = samples_.find(kernel);
  return it == samples_.end() ? std::vector<double>{} : it->second;
}

std::size_t CalibrationObserver::total_samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [kernel, samples] : samples_) total += samples.size();
  return total;
}

void CalibrationObserver::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.clear();
  raw_samples_.clear();
  warmup_samples_.clear();
  dropped_.clear();
}

KernelModelSet CalibrationObserver::fit(ModelFamily family) const {
  std::map<std::string, std::vector<double>> filtered = samples();
  const std::map<std::string, std::vector<double>> raw = raw_samples();

  std::map<std::string, std::vector<double>> fittable;
  KernelModelSet singles;
  for (const auto& [kernel, raw_sample] : raw) {
    auto it = filtered.find(kernel);
    const std::vector<double>& chosen =
        (it != filtered.end() && it->second.size() >= 2) ? it->second
                                                         : raw_sample;
    if (chosen.size() >= 2) {
      fittable.emplace(kernel, chosen);
    } else if (chosen.size() == 1) {
      singles.set_model(kernel,
                        std::make_unique<stats::ConstantDist>(chosen[0]));
    }
  }
  KernelModelSet set = fit_models(fittable, family);
  for (const auto& name : singles.kernel_names()) {
    set.set_model(name, singles.model(name).clone());
  }
  return set;
}

}  // namespace tasksim::sim
