#include "sim/kernel_model.hpp"

#include <algorithm>
#include <fstream>

#include "stats/fitting.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/profiler.hpp"
#include "support/strings.hpp"

namespace tasksim::sim {

const char* to_string(ModelFamily family) {
  switch (family) {
    case ModelFamily::constant: return "constant";
    case ModelFamily::normal: return "normal";
    case ModelFamily::gamma: return "gamma";
    case ModelFamily::lognormal: return "lognormal";
    case ModelFamily::empirical: return "empirical";
    case ModelFamily::best: return "best";
  }
  return "?";
}

ModelFamily parse_model_family(const std::string& name) {
  if (name == "constant") return ModelFamily::constant;
  if (name == "normal") return ModelFamily::normal;
  if (name == "gamma") return ModelFamily::gamma;
  if (name == "lognormal") return ModelFamily::lognormal;
  if (name == "empirical") return ModelFamily::empirical;
  if (name == "best") return ModelFamily::best;
  throw InvalidArgument("unknown model family: '" + name +
                        "' (valid: constant, normal, gamma, lognormal, "
                        "empirical, best)");
}

KernelModelSet::KernelModelSet(const KernelModelSet& other) {
  for (const auto& [kernel, dist] : other.models_) {
    models_.emplace(kernel, dist->clone());
  }
}

void KernelModelSet::set_model(const std::string& kernel,
                               std::unique_ptr<stats::Distribution> dist) {
  TS_REQUIRE(dist != nullptr, "null distribution for kernel " + kernel);
  models_[kernel] = std::move(dist);
}

bool KernelModelSet::has_model(const std::string& kernel) const {
  return models_.count(kernel) != 0;
}

const stats::Distribution& KernelModelSet::model(
    const std::string& kernel) const {
  auto it = models_.find(kernel);
  TS_REQUIRE(it != models_.end(), "no model for kernel '" + kernel + "'");
  return *it->second;
}

double KernelModelSet::sample(const std::string& kernel, Rng& rng,
                              double min_duration_us) const {
  TS_PROF_SCOPE(model_sample);
  // Normal models can produce (rare) non-positive durations; a virtual task
  // cannot run backwards, so clamp (the paper's models have tiny CV and are
  // effectively never clamped).
  return std::max(model(kernel).sample(rng), min_duration_us);
}

double KernelModelSet::mean_us(const std::string& kernel) const {
  return model(kernel).mean();
}

std::vector<std::string> KernelModelSet::kernel_names() const {
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [kernel, dist] : models_) names.push_back(kernel);
  return names;
}

void KernelModelSet::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw IoError(errno_detail("cannot open for writing: " + path));
  out << "# tasksim-kernel-models v1\n";
  for (const auto& [kernel, dist] : models_) {
    out << "kernel " << kernel << ' ' << dist->serialize() << "\n";
  }
  if (!out) throw IoError(errno_detail("write failed: " + path));
}

KernelModelSet KernelModelSet::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError(errno_detail("cannot open for reading: " + path));
  std::string line;
  TS_REQUIRE(static_cast<bool>(std::getline(in, line)) &&
                 starts_with(line, "# tasksim-kernel-models v1"),
             "not a kernel-model file: " + path);
  KernelModelSet set;
  while (std::getline(in, line)) {
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto fields = split_whitespace(trimmed);
    TS_REQUIRE(fields.size() >= 3 && fields[0] == "kernel",
               "malformed model line: " + trimmed);
    std::vector<std::string> rest(fields.begin() + 2, fields.end());
    set.set_model(fields[1], stats::parse_distribution(join(rest, " ")));
  }
  return set;
}

KernelModelSet fit_models(
    const std::map<std::string, std::vector<double>>& samples_by_kernel,
    ModelFamily family) {
  KernelModelSet set;
  for (const auto& [kernel, samples] : samples_by_kernel) {
    TS_REQUIRE(samples.size() >= 2,
               "kernel '" + kernel + "' has fewer than 2 samples");
    std::unique_ptr<stats::Distribution> dist;
    switch (family) {
      case ModelFamily::constant:
        dist = stats::fit_constant(samples);
        break;
      case ModelFamily::normal:
        dist = stats::fit_normal(samples);
        break;
      case ModelFamily::gamma:
        dist = stats::fit_gamma(samples);
        break;
      case ModelFamily::lognormal:
        dist = stats::fit_lognormal(samples);
        break;
      case ModelFamily::empirical:
        dist = std::make_unique<stats::EmpiricalDist>(samples);
        break;
      case ModelFamily::best:
        dist = stats::fit_best(samples);
        break;
    }
    // Fit-selection accounting: which family actually got chosen per
    // kernel (under `best` the winner varies with the sample shape).
    metrics::counter("sim.fit.selected." + dist->name()).inc();
    set.set_model(kernel, std::move(dist));
  }
  return set;
}

}  // namespace tasksim::sim
