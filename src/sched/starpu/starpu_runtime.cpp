#include "sched/starpu/starpu_runtime.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"
#include "support/flight_recorder.hpp"

namespace tasksim::sched {

const char* to_string(StarpuPolicy policy) {
  switch (policy) {
    case StarpuPolicy::eager: return "eager";
    case StarpuPolicy::prio: return "prio";
    case StarpuPolicy::ws: return "ws";
    case StarpuPolicy::dm: return "dm";
    case StarpuPolicy::dmda: return "dmda";
  }
  return "?";
}

StarpuPolicy parse_starpu_policy(const std::string& name) {
  if (name == "eager") return StarpuPolicy::eager;
  if (name == "prio") return StarpuPolicy::prio;
  if (name == "ws") return StarpuPolicy::ws;
  if (name == "dm") return StarpuPolicy::dm;
  if (name == "dmda") return StarpuPolicy::dmda;
  throw InvalidArgument("unknown StarPU policy: '" + name +
                        "' (valid: eager, prio, ws, dm, dmda)");
}

std::string accel_model_key(const std::string& kernel) {
  return kernel + "@accel";
}

StarpuRuntime::StarpuRuntime(RuntimeConfig config, StarpuOptions options)
    : RuntimeBase(config),
      options_(options),
      model_(options.model_prior_us) {
  TS_REQUIRE(options_.accelerator_lanes >= 0 &&
                 options_.accelerator_lanes < config.workers,
             "accelerator lanes must leave at least one CPU lane");
  TS_REQUIRE(options_.accelerator_lanes == 0 ||
                 options_.policy == StarpuPolicy::dm ||
                 options_.policy == StarpuPolicy::dmda,
             "heterogeneous lanes require the dm or dmda policy");
  switch (options_.policy) {
    case StarpuPolicy::eager:
      central_ = std::make_unique<CentralQueue>(QueueDiscipline::fifo);
      break;
    case StarpuPolicy::prio:
      central_ = std::make_unique<CentralQueue>(QueueDiscipline::priority);
      break;
    case StarpuPolicy::ws:
    case StarpuPolicy::dm:
    case StarpuPolicy::dmda:
      deques_ = std::make_unique<StealingDeques>(config.workers, config.seed);
      lane_load_us_.assign(static_cast<std::size_t>(config.workers), 0.0);
      break;
  }
  start_workers();
}

StarpuRuntime::~StarpuRuntime() { stop_workers(); }

std::string StarpuRuntime::name() const {
  return std::string("starpu/") + to_string(options_.policy);
}

double StarpuRuntime::expected_on_lane(const TaskRecord* task,
                                       int lane) const {
  if (lane_is_accelerator(lane)) {
    return model_.expected_us(accel_model_key(task->desc.kernel));
  }
  return model_.expected_us(task->desc.kernel);
}

int StarpuRuntime::pick_dm_lane(TaskRecord* task) {
  std::lock_guard<std::mutex> lock(dm_mutex_);
  int best = -1;
  double best_cost = std::numeric_limits<double>::max();
  double best_expected = 0.0;
  for (int lane = 0; lane < worker_count(); ++lane) {
    if (lane_is_accelerator(lane) && !accel_capable(task->desc)) continue;
    const double expected = expected_on_lane(task, lane);
    double cost = lane_load_us_[static_cast<std::size_t>(lane)] + expected;
    if (options_.policy == StarpuPolicy::dmda) {
      for (const Access& access : task->desc.accesses) {
        auto it = last_toucher_.find(access.address);
        if (it != last_toucher_.end() && it->second == lane) {
          cost -= options_.affinity_bonus * expected;
          break;
        }
      }
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = lane;
      best_expected = expected;
    }
  }
  TS_ASSERT(best >= 0, "no eligible lane for task");
  lane_load_us_[static_cast<std::size_t>(best)] += best_expected;
  task->policy_expected_us = best_expected;
  return best;
}

int StarpuRuntime::push_ready(TaskRecord* task, int worker_hint) {
  switch (options_.policy) {
    case StarpuPolicy::eager:
    case StarpuPolicy::prio:
      central_->push(task);
      return -1;  // shared queue: any executor can pop it
    case StarpuPolicy::ws: {
      int lane = worker_hint;
      if (lane < 0 || lane >= worker_count()) lane = 0;
      deques_->push(lane, task);
      return lane;
    }
    case StarpuPolicy::dm:
    case StarpuPolicy::dmda: {
      const int lane = pick_dm_lane(task);
      task->policy_lane = lane;
      recorder().record(flightrec::EventType::sched_lane_commit, task->id,
                        lane, task->policy_expected_us);
      deques_->push(lane, task);
      return lane;
    }
  }
  return -1;
}

TaskRecord* StarpuRuntime::pop_ready(int worker) {
  switch (options_.policy) {
    case StarpuPolicy::eager:
    case StarpuPolicy::prio:
      return central_->pop();
    case StarpuPolicy::ws:
      if (TaskRecord* task = deques_->pop_own(worker)) return task;
      return deques_->steal(worker);
    case StarpuPolicy::dm:
    case StarpuPolicy::dmda:
      // dm queues are placement commitments; no stealing.
      return deques_->pop_own(worker);
  }
  return nullptr;
}

std::size_t StarpuRuntime::ready_count() const {
  if (central_) return central_->size();
  return deques_->size();
}

bool StarpuRuntime::ready_task_reachable() const {
  if (options_.policy != StarpuPolicy::dm &&
      options_.policy != StarpuPolicy::dmda) {
    return RuntimeBase::ready_task_reachable();
  }
  for (int lane = 0; lane < worker_count(); ++lane) {
    if (deques_->size_of(lane) > 0 && executor_idle(lane)) return true;
  }
  return false;
}

void StarpuRuntime::on_task_finished(TaskRecord* task, int lane,
                                     double cpu_duration_us) {
  if (options_.profile_execution) {
    model_.update(lane_is_accelerator(lane)
                      ? accel_model_key(task->desc.kernel)
                      : task->desc.kernel,
                  cpu_duration_us);
  }
  if (options_.policy == StarpuPolicy::dm ||
      options_.policy == StarpuPolicy::dmda) {
    std::lock_guard<std::mutex> lock(dm_mutex_);
    const int charged = task->policy_lane;
    if (charged >= 0) {
      auto& load = lane_load_us_[static_cast<std::size_t>(charged)];
      load = std::max(0.0, load - task->policy_expected_us);
    }
    if (options_.policy == StarpuPolicy::dmda) {
      for (const Access& access : task->desc.accesses) {
        last_toucher_[access.address] = lane;
      }
    }
  }
}

TaskId submit_codelet(Runtime& runtime, const Codelet& codelet,
                      AccessList handles, int priority) {
  TS_REQUIRE(static_cast<bool>(codelet.cpu_func),
             "codelet '" + codelet.name + "' has no CPU implementation");
  TaskDescriptor desc;
  desc.kernel = codelet.name;
  desc.function = codelet.cpu_func;
  desc.accel_function = codelet.accel_func;
  desc.accesses = std::move(handles);
  desc.priority = priority != 0 ? priority : codelet.default_priority;
  return runtime.submit(std::move(desc));
}

}  // namespace tasksim::sched
