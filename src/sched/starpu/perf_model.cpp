#include "sched/starpu/perf_model.hpp"

namespace tasksim::sched {

void PerfModel::update(const std::string& kernel, double duration_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  history_[kernel].add(duration_us);
}

double PerfModel::expected_us(const std::string& kernel) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = history_.find(kernel);
  if (it == history_.end() || it->second.count() == 0) return prior_us_;
  return it->second.mean();
}

std::size_t PerfModel::sample_count(const std::string& kernel) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = history_.find(kernel);
  return it == history_.end() ? 0 : it->second.count();
}

std::map<std::string, stats::RunningStats> PerfModel::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return history_;
}

void PerfModel::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  history_.clear();
}

}  // namespace tasksim::sched
