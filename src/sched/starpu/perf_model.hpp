// perf_model.hpp — StarPU-style history-based performance model.
//
// StarPU "profiles each task execution and uses historical runtime data to
// schedule tasks on the appropriate resources" (paper §IV-A2).  This model
// keeps a running mean/variance of observed execution times per kernel
// class and answers expected-duration queries for the dm/dmda scheduling
// policies.  Unknown kernels return a configurable prior so that the very
// first instances can still be placed.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "stats/descriptive.hpp"

namespace tasksim::sched {

class PerfModel {
 public:
  explicit PerfModel(double prior_us = 100.0) : prior_us_(prior_us) {}

  /// Record an observed execution time.
  void update(const std::string& kernel, double duration_us);

  /// Expected duration: historical mean, or the prior when unseen.
  double expected_us(const std::string& kernel) const;

  /// Number of samples recorded for the kernel.
  std::size_t sample_count(const std::string& kernel) const;

  /// Snapshot of all per-kernel statistics.
  std::map<std::string, stats::RunningStats> snapshot() const;

  void clear();

 private:
  double prior_us_;
  mutable std::mutex mutex_;
  std::map<std::string, stats::RunningStats> history_;
};

}  // namespace tasksim::sched
