// starpu_runtime.hpp — StarPU-flavoured scheduler (paper §IV-A2).
//
// StarPU's defining features reproduced here:
//
//   * codelets — a named kernel abstraction submitted with data handles
//     (see `Codelet` / `submit_codelet` below),
//   * implicit data dependences derived from access modes,
//   * pluggable scheduling policies selected by name, the interesting ones
//     being the performance-model-driven dm ("deque model": place each
//     ready task on the worker with the earliest expected finish) and dmda
//     (dm + data-affinity bonus for the worker that last touched one of the
//     task's buffers),
//   * execution profiling feeding the history-based performance model,
//     which can also be primed from a previous run's fitted kernel models
//     (StarPU persists history files; priming reproduces that).
//
// Policies:
//   eager — one global FIFO, workers take when free
//   prio  — one global priority queue
//   ws    — per-worker deques with stealing
//   dm    — per-worker queues, earliest-expected-finish placement
//   dmda  — dm plus data-affinity bonus
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "sched/ready_pools.hpp"
#include "sched/runtime_base.hpp"
#include "sched/starpu/perf_model.hpp"

namespace tasksim::sched {

enum class StarpuPolicy { eager, prio, ws, dm, dmda };

const char* to_string(StarpuPolicy policy);
StarpuPolicy parse_starpu_policy(const std::string& name);

struct StarpuOptions {
  StarpuPolicy policy = StarpuPolicy::dmda;
  /// Record measured task durations into the performance model (real
  /// executions).  Simulated executions turn this off and prime the model
  /// instead — the equivalent of StarPU loading its on-disk history.
  bool profile_execution = true;
  /// Prior expected duration for kernels with no history (us).
  double model_prior_us = 100.0;
  /// dmda: subtracted from a worker's expected finish when it last touched
  /// one of the task's buffers, expressed as a fraction of the task's
  /// expected duration.
  double affinity_bonus = 0.25;
  /// Heterogeneous execution (paper §VII's GPU extension, implemented):
  /// the last `accelerator_lanes` worker lanes model accelerators.  Tasks
  /// with an accel_function may be placed there (and their durations are
  /// modeled/profiled under the "<kernel>@accel" key); CPU-only tasks are
  /// restricted to CPU lanes.  Requires the dm or dmda policy, whose
  /// expected-finish placement is exactly how StarPU schedules across
  /// heterogeneous resources.
  int accelerator_lanes = 0;
};

/// Performance-model key for a kernel on an accelerator lane.
std::string accel_model_key(const std::string& kernel);

class StarpuRuntime final : public RuntimeBase {
 public:
  StarpuRuntime(RuntimeConfig config, StarpuOptions options = {});
  ~StarpuRuntime() override;

  std::string name() const override;

  PerfModel& perf_model() { return model_; }
  const PerfModel& perf_model() const { return model_; }

  /// Toggle execution profiling.  Simulated runs disable it (the measured
  /// durations of simulated bodies are meaningless) and prime the model
  /// from fitted kernel models instead — StarPU's history-file reload.
  void set_profiling(bool on) { options_.profile_execution = on; }

  bool lane_is_accelerator(int lane) const override {
    return lane >= worker_count() - options_.accelerator_lanes;
  }

 protected:
  int push_ready(TaskRecord* task, int worker_hint) override;
  TaskRecord* pop_ready(int worker) override;
  std::size_t ready_count() const override;
  void on_task_finished(TaskRecord* task, int lane,
                        double cpu_duration_us) override;

 public:
  /// dm/dmda commit tasks to lanes: a committed task is only reachable
  /// when its own lane's executor is idle.
  bool ready_task_reachable() const override;

 private:
  int pick_dm_lane(TaskRecord* task);
  /// Expected duration of `task` on `lane` (accelerator lanes use the
  /// "@accel" model key).
  double expected_on_lane(const TaskRecord* task, int lane) const;

  StarpuOptions options_;
  PerfModel model_;

  // eager / prio
  std::unique_ptr<CentralQueue> central_;
  // ws / dm / dmda
  std::unique_ptr<StealingDeques> deques_;

  // dm/dmda expected-load accounting and data affinity.
  std::mutex dm_mutex_;
  std::vector<double> lane_load_us_;
  std::unordered_map<const void*, int> last_toucher_;
};

/// StarPU-style codelet: a named kernel with per-target implementations.
/// The CPU implementation is required; the accelerator implementation is
/// optional and enables placement on accelerator lanes.
struct Codelet {
  std::string name;
  TaskFunction cpu_func;
  TaskFunction accel_func;  ///< optional
  int default_priority = 0;
};

/// Submit `codelet` with the given data handles; the runtime derives the
/// implicit dependences from the access modes, as StarPU does.
TaskId submit_codelet(Runtime& runtime, const Codelet& codelet,
                      AccessList handles, int priority = 0);

}  // namespace tasksim::sched
