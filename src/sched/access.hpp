// access.hpp — data-access annotations on tasks.
//
// In the superscalar model (paper §IV-A) the developer declares, for every
// task, which data it reads and writes.  The scheduler derives RaW, WaR and
// WaW hazards from these declarations and serializes conflicting tasks.
// Data objects are identified by their base address: as in QUARK/StarPU/
// OmpSs, two references conflict iff they name the same base address (tiles
// never overlap partially in the tile algorithms, mirroring real usage).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tasksim::sched {

enum class AccessMode : std::uint8_t {
  read = 1,
  write = 2,
  read_write = 3,
};

inline bool reads(AccessMode mode) {
  return mode == AccessMode::read || mode == AccessMode::read_write;
}

inline bool writes(AccessMode mode) {
  return mode == AccessMode::write || mode == AccessMode::read_write;
}

const char* to_string(AccessMode mode);

struct Access {
  const void* address = nullptr;
  std::size_t size_bytes = 0;  ///< informational (trace/DOT annotations)
  AccessMode mode = AccessMode::read;
};

/// Convenience constructors mirroring the pragma-style annotations
/// (`in`, `out`, `inout`) of OmpSs and the R/W/RW flags of QUARK.
inline Access in(const void* addr, std::size_t size = 0) {
  return Access{addr, size, AccessMode::read};
}
inline Access out(const void* addr, std::size_t size = 0) {
  return Access{addr, size, AccessMode::write};
}
inline Access inout(const void* addr, std::size_t size = 0) {
  return Access{addr, size, AccessMode::read_write};
}

using AccessList = std::vector<Access>;

}  // namespace tasksim::sched
