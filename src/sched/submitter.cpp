#include "sched/submitter.hpp"

#include "support/error.hpp"

namespace tasksim::sched {

TaskId RealSubmitter::submit(const std::string& kernel,
                             std::function<void()> body, AccessList accesses,
                             int priority) {
  TS_REQUIRE(static_cast<bool>(body), "real submission requires a body");
  TaskDescriptor desc;
  desc.kernel = kernel;
  desc.function = [body = std::move(body)](TaskContext& ctx) {
    if (!ctx.poisoned) body();  // poisoned tasks are recorded, not run
  };
  desc.accesses = std::move(accesses);
  desc.priority = priority;
  return runtime_.submit(std::move(desc));
}

TaskId RealSubmitter::submit_hetero(const std::string& kernel,
                                    std::function<void()> body,
                                    std::function<void()> accel_body,
                                    AccessList accesses, int priority) {
  TS_REQUIRE(static_cast<bool>(body), "real submission requires a body");
  TS_REQUIRE(static_cast<bool>(accel_body),
             "hetero submission requires an accelerator body");
  TaskDescriptor desc;
  desc.kernel = kernel;
  desc.function = [body = std::move(body)](TaskContext& ctx) {
    if (!ctx.poisoned) body();
  };
  desc.accel_function = [accel_body = std::move(accel_body)](TaskContext& ctx) {
    if (!ctx.poisoned) accel_body();
  };
  desc.accesses = std::move(accesses);
  desc.priority = priority;
  return runtime_.submit(std::move(desc));
}

}  // namespace tasksim::sched
