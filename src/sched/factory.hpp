// factory.hpp — construct a runtime from a textual spec.
//
// Specs: "quark", "quark/nosteal",
//        "starpu" (= starpu/dmda), "starpu/eager", "starpu/prio",
//        "starpu/ws", "starpu/dm", "starpu/dmda",
//        "ompss" (= ompss/bf), "ompss/bf", "ompss/wf".
//
// The harness and benches select schedulers by these names, mirroring the
// paper's three-scheduler evaluation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/runtime.hpp"

namespace tasksim::sched {

std::unique_ptr<Runtime> make_runtime(const std::string& spec,
                                      const RuntimeConfig& config);

/// Specs accepted by make_runtime, one canonical name per distinct
/// configuration (used by tests that sweep all schedulers).
std::vector<std::string> known_runtime_specs();

}  // namespace tasksim::sched
