// task_builder.hpp — fluent task construction.
//
// The veneer that makes application code read like the pragma / flag
// annotations of the real schedulers:
//
//   TaskBuilder(runtime, "dgemm")
//       .reads(a, bytes).reads(b, bytes).readwrites(c, bytes)
//       .priority(1)
//       .run([=](TaskContext&) { dgemm(...); });
#pragma once

#include <string>
#include <utility>

#include "sched/runtime.hpp"

namespace tasksim::sched {

class TaskBuilder {
 public:
  TaskBuilder(Runtime& runtime, std::string kernel);

  TaskBuilder& reads(const void* addr, std::size_t bytes = 0);
  TaskBuilder& writes(const void* addr, std::size_t bytes = 0);
  TaskBuilder& readwrites(const void* addr, std::size_t bytes = 0);
  TaskBuilder& priority(int value);
  TaskBuilder& locality(int worker);

  /// Submit with the given body; returns the task id.  The builder is
  /// consumed (one submission per builder).
  TaskId run(TaskFunction body);

 private:
  Runtime& runtime_;
  TaskDescriptor desc_;
  bool submitted_ = false;
};

}  // namespace tasksim::sched
