#include "sched/task_builder.hpp"

#include "support/error.hpp"

namespace tasksim::sched {

TaskBuilder::TaskBuilder(Runtime& runtime, std::string kernel)
    : runtime_(runtime) {
  desc_.kernel = std::move(kernel);
}

TaskBuilder& TaskBuilder::reads(const void* addr, std::size_t bytes) {
  desc_.accesses.push_back(in(addr, bytes));
  return *this;
}

TaskBuilder& TaskBuilder::writes(const void* addr, std::size_t bytes) {
  desc_.accesses.push_back(out(addr, bytes));
  return *this;
}

TaskBuilder& TaskBuilder::readwrites(const void* addr, std::size_t bytes) {
  desc_.accesses.push_back(inout(addr, bytes));
  return *this;
}

TaskBuilder& TaskBuilder::priority(int value) {
  desc_.priority = value;
  return *this;
}

TaskBuilder& TaskBuilder::locality(int worker) {
  desc_.locality_hint = worker;
  return *this;
}

TaskId TaskBuilder::run(TaskFunction body) {
  TS_REQUIRE(!submitted_, "TaskBuilder already submitted");
  submitted_ = true;
  desc_.function = std::move(body);
  return runtime_.submit(std::move(desc_));
}

}  // namespace tasksim::sched
