// observer.hpp — task lifecycle observation hooks.
//
// Observers are how TaskSim instruments a runtime without modifying it:
// real-trace recording, kernel calibration (src/sim/calibration), DAG
// capture, and the virtual platform are all observers.  Hooks are invoked
// synchronously from scheduler threads, so implementations must be
// thread-safe and cheap.
#pragma once

#include <string>

#include "sched/task.hpp"

namespace tasksim::sched {

class TaskObserver {
 public:
  virtual ~TaskObserver() = default;

  /// Called on the submitting thread, in serial submission order, before
  /// dependence analysis.
  virtual void on_submit(TaskId id, const TaskDescriptor& desc) {
    (void)id;
    (void)desc;
  }

  /// Called on the submitting thread for each live dependence the hazard
  /// analysis derived for the just-submitted task (after on_submit, before
  /// the task can become ready).
  virtual void on_dependence(TaskId producer, TaskId consumer) {
    (void)producer;
    (void)consumer;
  }

  /// Called when the task's last dependence is satisfied (any thread).
  virtual void on_ready(TaskId id) { (void)id; }

  /// Called on the executing worker immediately before the task function.
  /// `wall_us` / `cpu_us` are the worker's wall and thread-CPU clocks.
  virtual void on_start(TaskId id, const std::string& kernel, int worker,
                        double wall_us, double cpu_us) {
    (void)id; (void)kernel; (void)worker; (void)wall_us; (void)cpu_us;
  }

  /// Called on the executing worker immediately after the task function
  /// returns, before completion bookkeeping.
  virtual void on_finish(TaskId id, const std::string& kernel, int worker,
                         double start_wall_us, double end_wall_us,
                         double start_cpu_us, double end_cpu_us) {
    (void)id; (void)kernel; (void)worker;
    (void)start_wall_us; (void)end_wall_us;
    (void)start_cpu_us; (void)end_cpu_us;
  }
};

}  // namespace tasksim::sched
