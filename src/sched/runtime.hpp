// runtime.hpp — the abstract superscalar runtime interface.
//
// Everything above the schedulers (tile algorithms, the simulation library,
// the experiment harness) is written against this interface, which is the
// concrete form of the paper's portability claim: the simulation layer
// neither knows nor cares whether the QUARK-, StarPU- or OmpSs-flavoured
// scheduler is underneath.
//
// The three queries at the bottom (`running_task_count`, `ready_task_count`,
// `bookkeeping_in_flight`) exist for one purpose: they are the portable
// generalization of the quiescence function the paper added to QUARK to
// close the scheduling race condition of §V-E.  See
// sim::RaceMitigation::quiescence for the exact safety predicate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/observer.hpp"
#include "sched/task.hpp"

namespace tasksim::sched {

class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Human-readable scheduler name, e.g. "quark" or "starpu/dmda".
  virtual std::string name() const = 0;

  /// Submit a task.  Must be called from a single thread, in serial program
  /// order (the superscalar model).  May block when the task window /
  /// throttle is full.  Returns the task's id (dense, submission-ordered).
  virtual TaskId submit(TaskDescriptor desc) = 0;

  /// Block until every submitted task has finished (barrier).  The runtime
  /// is reusable afterwards.  If `master_participates` was configured, the
  /// calling thread executes tasks while it waits.
  virtual void wait_all() = 0;

  /// Number of worker threads (excluding a participating master).
  virtual int worker_count() const = 0;

  /// Register an observer (not owned; must outlive the runtime or be
  /// removed).  Must not be called while tasks are in flight.
  virtual void add_observer(TaskObserver* observer) = 0;
  virtual void remove_observer(TaskObserver* observer) = 0;

  // --- scheduler-state queries used by the simulation layer -------------

  /// Tasks currently in TaskState::running (popped by a worker; the task
  /// function may not have reached the simulation library yet).
  virtual int running_task_count() const = 0;

  /// Tasks that are ready but not yet picked up by any worker.
  virtual std::size_t ready_task_count() const = 0;

  /// True when some ready task could be popped *right now* by an idle
  /// executor.  Differs from `ready_task_count() > 0` for policies that
  /// commit tasks to specific workers (StarPU dm/dmda, OmpSs immediate
  /// successor): a task committed to a busy worker cannot start before
  /// that worker's current task returns, so it cannot race an earlier
  /// virtual completion.
  virtual bool ready_task_reachable() const = 0;

  /// Completion-bookkeeping operations currently in progress: a task
  /// function has returned but its successors have not all been released
  /// yet.  Zero means the dependence state is quiescent.
  virtual int bookkeeping_in_flight() const = 0;

  /// Threads currently able to pop ready tasks: the spawned workers plus
  /// the master while it participates inside wait_all().
  virtual int active_executor_count() const = 0;

  /// True while the submitting thread is blocked on the task window.
  /// The simulation layer must not wait for submission to make progress
  /// when the submitter itself is waiting for completions.
  virtual bool submitter_waiting() const = 0;

  /// Heterogeneous lanes (StarPU-style accelerator support, paper §VII's
  /// GPU-task extension): true when `lane` models an accelerator.  The
  /// default runtime is homogeneous.
  virtual bool lane_is_accelerator(int lane) const {
    (void)lane;
    return false;
  }

  // --- auxiliary tasks (straggler hedging, DESIGN.md §12) ---------------

  /// True when this runtime can accept spawn_auxiliary() calls from inside
  /// a running task body.  The simulation engine checks this *before*
  /// deciding to hedge, so an unsupported runtime simply never hedges.
  virtual bool supports_auxiliary_tasks() const { return false; }

  /// Inject an auxiliary (dependency-free) task from a worker thread while
  /// the runtime is live — the hedge-duplicate path.  Unlike submit(), this
  /// is thread-safe, bypasses the task window and the dependency tracker,
  /// and prefers placing the task on a lane other than `origin_lane` (the
  /// hedged original's lane).  The auxiliary task counts toward wait_all's
  /// pending total.  Runtimes that do not support auxiliary tasks throw
  /// InvalidArgument.
  virtual TaskId spawn_auxiliary(TaskDescriptor desc, int origin_lane);

  // --- fault-injection statistics (since the last wait_all) -------------
  // Zero for runtimes without failure-aware completion.

  /// Task executions that ended in an injected failure.
  virtual std::uint64_t failed_attempt_count() const { return 0; }

  /// Failed tasks that were requeued for another attempt.
  virtual std::uint64_t retry_count() const { return 0; }

  /// Ids of tasks skipped because a retry budget was exhausted (their own
  /// or a transitive producer's), in completion order.
  virtual std::vector<TaskId> poisoned_tasks() const { return {}; }
};

/// What the runtime does when a task exhausts its retry budget.
enum class FailureMode : std::uint8_t {
  abort,   ///< record a structured TaskFailure; wait_all() rethrows it
  poison,  ///< skip the task and transitively poison its successors
};

const char* to_string(FailureMode mode);
FailureMode parse_failure_mode(const std::string& text);

/// Configuration shared by all runtime implementations.
struct RuntimeConfig {
  int workers = 2;
  /// Maximum number of live (submitted but unfinished) tasks before
  /// submit() blocks; 0 = unbounded.  QUARK calls this the task window,
  /// OmpSs the throttle limit.
  std::size_t window_size = 0;
  /// How many window slots must be free before a throttled submitter is
  /// woken.  1 (the default) models QUARK's eager master: it resumes the
  /// instant one slot opens — a wake + context switch per completion.
  /// Larger values batch the refill (fewer master wakes, same in-flight
  /// cap, slightly later submissions).  This is a property of the modeled
  /// runtime, not a host tuning knob: an eager and a batching master
  /// produce different claim timings, so real-run fidelity against QUARK
  /// requires 1.  Ignored when window_size == 0.
  std::size_t window_refill = 1;
  /// When true, wait_all() turns the calling thread into an extra worker
  /// (QUARK's master-participation; the paper notes core 0 runs fewer tasks
  /// because it also inserts tasks).
  bool master_participates = false;
  /// Seed for any scheduler-internal randomness (victim selection).
  std::uint64_t seed = 0x5eed;
  /// Yield the CPU after each executed task.  On hosts with fewer cores
  /// than workers this makes worker threads interleave approximately
  /// round-robin, so the task-to-worker assignment resembles the one a
  /// dedicated-core machine would produce — part of the virtual-platform
  /// substitution (DESIGN.md §3).  Off by default.
  bool yield_between_tasks = false;

  // --- failure-aware completion (fault injection, DESIGN.md §faults) -----
  /// Retries granted to a task whose execution raises TaskFailure before
  /// FailureMode applies.  0 = first failure is final.
  int max_task_retries = 3;
  FailureMode failure_mode = FailureMode::abort;
  /// Injected real-time delay between claiming a task and starting its
  /// body — widens the dispatch window in which the task is running but
  /// not yet in the TEQ, reproducing the paper's Figure-5 race without
  /// oversubscribing the host.  Debug/ablation knob; 0 = off.
  double dispatch_delay_us = 0.0;
  /// Injected real-time delay after a task body returns, before its
  /// completion bookkeeping runs — stretches the window in which a
  /// finished task still counts as running.  Debug/ablation knob; 0 = off.
  double bookkeeping_delay_us = 0.0;
  /// Critical-path-first priority: at submit time each task's priority is
  /// raised to 1 + max(predecessor priority), so deeper chains (longer
  /// remaining critical paths under a unit-depth heuristic) are preferred
  /// by priority-aware ready pools.  Explicit TaskDescriptor::priority
  /// values still win when larger.  Off by default.
  bool cp_priority = false;
};

}  // namespace tasksim::sched
