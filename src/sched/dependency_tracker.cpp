#include "sched/dependency_tracker.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/profiler.hpp"

namespace tasksim::sched {

namespace {

/// A task may reference the same address more than once (e.g. a tile passed
/// as both input and output argument).  Merge such references into a single
/// effective access mode before hazard analysis.
struct MergedAccess {
  const void* address;
  bool read;
  bool write;
};

void merge_accesses(const AccessList& accesses,
                    std::vector<MergedAccess>& merged) {
  merged.clear();
  for (const Access& a : accesses) {
    TS_REQUIRE(a.address != nullptr, "task access with null address");
    auto it = std::find_if(merged.begin(), merged.end(),
                           [&](const MergedAccess& m) {
                             return m.address == a.address;
                           });
    if (it == merged.end()) {
      merged.push_back(MergedAccess{a.address, reads(a.mode), writes(a.mode)});
    } else {
      it->read = it->read || reads(a.mode);
      it->write = it->write || writes(a.mode);
    }
  }
}

}  // namespace

bool DependencyTracker::add_dependence(TaskRecord* pred, TaskRecord* task) {
  if (pred == task) return false;
  if (pred->state.load(std::memory_order_relaxed) == TaskState::finished) {
    return false;
  }
  // Avoid counting the same predecessor twice for one task (e.g. the task
  // reads two tiles last written by the same predecessor).
  if (std::find(pred->successors.begin(), pred->successors.end(), task) !=
      pred->successors.end()) {
    return false;
  }
  pred->successors.push_back(task);
  task->remaining_deps.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool DependencyTracker::register_task(
    TaskRecord* task, std::vector<TaskRecord*>* new_predecessors) {
  TS_PROF_SCOPE(dependency);
  std::vector<MergedAccess> merged;
  merge_accesses(task->desc.accesses, merged);

  std::lock_guard<std::mutex> lock(mutex_);

  const auto link = [&](TaskRecord* pred) {
    // A poisoned producer taints its consumers even when the dependence is
    // no longer live (the producer already finished — as a skip).
    if (pred->poisoned.load(std::memory_order_relaxed)) {
      task->poisoned.store(true, std::memory_order_relaxed);
    }
    // Fold the producer's virtual completion into this task's runnable
    // floor.  For a still-running producer the value is folded again (and
    // authoritatively) at its on_complete; for an already-finished one this
    // link-time fold is the only chance — the dependence itself is dead.
    task->virtual_floor_us =
        std::max(task->virtual_floor_us,
                 pred->virtual_end_us.load(std::memory_order_acquire));
    if (add_dependence(pred, task) && new_predecessors != nullptr) {
      new_predecessors->push_back(pred);
    }
  };

  // Pass 1: derive hazards against the current state.  All of this task's
  // references observe the state left by *previous* tasks.
  for (const MergedAccess& m : merged) {
    auto it = objects_.find(m.address);
    if (it == objects_.end()) continue;
    ObjectState& state = it->second;
    if (m.read && state.last_writer != nullptr) {
      link(state.last_writer);  // RaW
    }
    if (m.write) {
      if (!state.readers_since_write.empty()) {
        for (TaskRecord* reader : state.readers_since_write) {
          link(reader);  // WaR
        }
      } else if (state.last_writer != nullptr) {
        link(state.last_writer);  // WaW
      }
    }
  }

  // Pass 2: install this task as the new state.
  for (const MergedAccess& m : merged) {
    ObjectState& state = objects_[m.address];
    if (m.write) {
      state.last_writer = task;
      state.readers_since_write.clear();
    } else {
      state.readers_since_write.push_back(task);
    }
  }

  return task->remaining_deps.load(std::memory_order_relaxed) == 0;
}

void DependencyTracker::on_complete(TaskRecord* task,
                                    std::vector<TaskRecord*>& newly_ready,
                                    bool poison_successors) {
  TS_PROF_SCOPE(dependency);
  std::lock_guard<std::mutex> lock(mutex_);
  task->state.store(TaskState::finished, std::memory_order_relaxed);
  for (TaskRecord* succ : task->successors) {
    if (poison_successors) {
      succ->poisoned.store(true, std::memory_order_relaxed);
    }
    succ->virtual_floor_us =
        std::max(succ->virtual_floor_us,
                 task->virtual_end_us.load(std::memory_order_acquire));
    const int remaining =
        succ->remaining_deps.fetch_sub(1, std::memory_order_relaxed) - 1;
    TS_ASSERT(remaining >= 0, "dependence count underflow");
    if (remaining == 0) newly_ready.push_back(succ);
  }
  task->successors.clear();
}

void DependencyTracker::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  objects_.clear();
}

std::size_t DependencyTracker::tracked_objects() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return objects_.size();
}

}  // namespace tasksim::sched
