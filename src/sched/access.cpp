#include "sched/access.hpp"

namespace tasksim::sched {

const char* to_string(AccessMode mode) {
  switch (mode) {
    case AccessMode::read: return "R";
    case AccessMode::write: return "W";
    case AccessMode::read_write: return "RW";
  }
  return "?";
}

}  // namespace tasksim::sched
