// quark_runtime.hpp — QUARK-flavoured scheduler (paper §IV-A3).
//
// QUARK (QUeuing And Runtime for Kernels, the PLASMA scheduler) keeps
// per-worker ready queues fed in insertion order, with locality-aware
// assignment and work stealing to balance load.  The master thread inserts
// tasks and participates in execution (QUARK's behaviour; the paper's
// Figures 6-7 note that core 0 runs fewer tasks because it also maintains
// the dependence graph).  This implementation adds the quiescence query the
// paper contributed to QUARK, generalized through
// Runtime::bookkeeping_in_flight().
//
// Knobs mirroring QUARK:
//   * task window (RuntimeConfig::window_size) — bounds the unfolded DAG,
//   * task priority (TaskDescriptor::priority) — jumps the local queue,
//   * locality hint (TaskDescriptor::locality_hint) — preferred worker,
//   * stealing on/off (QuarkOptions::steal).
#pragma once

#include <atomic>

#include "sched/ready_pools.hpp"
#include "sched/runtime_base.hpp"

namespace tasksim::sched {

struct QuarkOptions {
  bool steal = true;
};

class QuarkRuntime final : public RuntimeBase {
 public:
  QuarkRuntime(RuntimeConfig config, QuarkOptions options = {});
  ~QuarkRuntime() override;

  std::string name() const override { return "quark"; }

 protected:
  int push_ready(TaskRecord* task, int worker_hint) override;
  TaskRecord* pop_ready(int worker) override;
  std::size_t ready_count() const override;

 private:
  QuarkOptions options_;
  StealingDeques deques_;
  std::atomic<std::uint64_t> round_robin_{0};
};

}  // namespace tasksim::sched
