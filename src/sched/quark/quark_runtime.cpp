#include "sched/quark/quark_runtime.hpp"

#include "support/flight_recorder.hpp"

namespace tasksim::sched {

QuarkRuntime::QuarkRuntime(RuntimeConfig config, QuarkOptions options)
    : RuntimeBase(config),
      options_(options),
      deques_(config.workers, config.seed) {
  start_workers();
}

QuarkRuntime::~QuarkRuntime() { stop_workers(); }

int QuarkRuntime::push_ready(TaskRecord* task, int worker_hint) {
  int lane = worker_hint;
  if (lane < 0 || lane >= worker_count()) {
    // No locality preference: spread in submission order, like QUARK's
    // default assignment of tasks to worker queues.
    lane = static_cast<int>(round_robin_.fetch_add(1, std::memory_order_relaxed) %
                            static_cast<std::uint64_t>(worker_count()));
  }
  deques_.push(lane, task);
  return lane;
}

TaskRecord* QuarkRuntime::pop_ready(int worker) {
  if (TaskRecord* task = deques_.pop_own(worker)) return task;
  if (options_.steal) {
    if (TaskRecord* task = deques_.steal(worker)) {
      recorder().record(flightrec::EventType::sched_steal, task->id, worker);
      return task;
    }
  }
  return nullptr;
}

std::size_t QuarkRuntime::ready_count() const { return deques_.size(); }

}  // namespace tasksim::sched
