// hedging.hpp — straggler hedging and virtual-time deadlines (DESIGN.md §12).
//
// The tail-resilience policy layer shared by the simulation engine and the
// harness.  Hedging launches a duplicate attempt for a task whose virtual
// elapsed time exceeds a per-kernel quantile trigger; the first completion
// wins and the loser is cancelled cooperatively through a HedgeToken
// threaded into the Task Execution Queue (wait_front_cancellable).  The
// hedge state machine:
//
//   running ──(span > trigger)──> hedged: winner interval committed by the
//     ORIGINAL attempt (fixed roles: the original entered the TEQ first, so
//     at the tied completion key it is always ahead of the duplicate and
//     always performs the §V-C commit); the DUPLICATE occupies another lane
//     for [dup_start, winner_end], waits cancellably behind the original,
//     and always leaves without committing once the token is set.
//
// The token is set (release) by every commit path — strict, optimistic,
// and the CompletionGovernor's deferred replay — strictly *before* the
// winner's queue leave, so the duplicate can never observe itself at the
// front with the token unset (the leave that promotes it orders the token
// store first).
//
// Deadlines are pure virtual-time budgets: a task whose committed span
// would exceed `deadline_us` is truncated at the deadline and fails with
// DeadlineExceeded; DeadlineMode picks what that failure means.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace tasksim::sched {

/// What a virtual-time deadline breach does.
enum class DeadlineMode : std::uint8_t {
  off,     ///< deadlines not enforced
  abort,   ///< truncate + poison + fail the whole run (fatal)
  poison,  ///< truncate + poison the task's successor subtree
  hedge,   ///< hedge-on-breach: the deadline acts as (an upper bound on)
           ///< the hedge trigger instead of killing the task
};

const char* to_string(DeadlineMode mode);

/// Parse "off" / "abort" / "poison" / "hedge"; anything else throws
/// InvalidArgument with the enumerated options.
DeadlineMode parse_deadline_mode(const std::string& text);

/// Hedging knobs (forwarded from ExperimentConfig into SimEngineOptions).
struct HedgeConfig {
  bool enabled = false;
  /// Per-kernel trigger = quantile of the kernel's *clean* duration model…
  double quantile = 0.95;
  /// …times this slack factor (> 1 keeps ordinary draws from hedging).
  double margin = 1.5;
  /// Model draws per kernel used to estimate the quantile at engine
  /// construction (fixed seed: thresholds are run-independent).
  int threshold_samples = 512;

  void validate() const;
};

/// Cooperative cancellation token shared by a hedged pair.  `committed` is
/// set (release) by the winner's commit path strictly before its queue
/// leave; the duplicate polls it through wait_front_cancellable and leaves
/// without committing as soon as it is set.
struct HedgeToken {
  std::atomic<bool> committed{false};
};

/// Per-kernel hedge triggers (virtual µs of elapsed kernel time after
/// which a duplicate is launched).  Built once at engine construction;
/// read-only afterwards, so lookups are safe from any worker.
class HedgeThresholds {
 public:
  void set(const std::string& kernel, double trigger_us);

  /// Trigger for `kernel`, or a negative value when the kernel has no
  /// threshold (never hedge it).
  double trigger_for(const std::string& kernel) const;

  bool empty() const { return triggers_.empty(); }

 private:
  std::unordered_map<std::string, double> triggers_;
};

/// Quantile-times-margin trigger from a sample set (sorts a copy; linear
/// interpolation between order statistics).  Empty samples yield -1
/// (no threshold).
double hedge_trigger_from_samples(std::vector<double> samples,
                                  double quantile, double margin);

}  // namespace tasksim::sched
