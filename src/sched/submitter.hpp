// submitter.hpp — the seam between algorithms and execution mode.
//
// Tile algorithms submit kernels through this interface.  RealSubmitter
// executes kernel bodies on the runtime; the simulation library's
// SimSubmitter (src/sim/sim_submitter.hpp) submits the same tasks with the
// body replaced by a call into the simulation engine — the paper's
// "the programmer simply replaces each task function with a call to the
// simulation library" (§V).  Algorithm code is identical in both modes.
#pragma once

#include <functional>
#include <string>

#include "sched/runtime.hpp"

namespace tasksim::sched {

class KernelSubmitter {
 public:
  virtual ~KernelSubmitter() = default;

  /// Submit one kernel invocation.  `body` performs the computation;
  /// `accesses` declare its data references exactly as for Runtime::submit.
  virtual TaskId submit(const std::string& kernel, std::function<void()> body,
                        AccessList accesses, int priority = 0) = 0;

  /// Submit a kernel that also has an accelerator implementation
  /// (heterogeneous extension).  The default ignores `accel_body` and
  /// submits CPU-only; submitters targeting heterogeneous runtimes
  /// override it.
  virtual TaskId submit_hetero(const std::string& kernel,
                               std::function<void()> body,
                               std::function<void()> accel_body,
                               AccessList accesses, int priority = 0) {
    (void)accel_body;
    return submit(kernel, std::move(body), std::move(accesses), priority);
  }

  /// Barrier: return when all submitted kernels have completed.
  virtual void finish() = 0;

  /// The runtime that executes (or simulates) the kernels.
  virtual Runtime& runtime() = 0;
};

/// Executes kernel bodies for real.
class RealSubmitter final : public KernelSubmitter {
 public:
  explicit RealSubmitter(Runtime& runtime) : runtime_(runtime) {}

  TaskId submit(const std::string& kernel, std::function<void()> body,
                AccessList accesses, int priority = 0) override;
  TaskId submit_hetero(const std::string& kernel, std::function<void()> body,
                       std::function<void()> accel_body, AccessList accesses,
                       int priority = 0) override;
  void finish() override { runtime_.wait_all(); }
  Runtime& runtime() override { return runtime_; }

 private:
  Runtime& runtime_;
};

}  // namespace tasksim::sched
