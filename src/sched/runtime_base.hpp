// runtime_base.hpp — shared machinery of the three scheduler runtimes.
//
// RuntimeBase owns worker threads, task records, the dependency tracker,
// observers, the task window (submission throttling) and the state counters
// the simulation layer queries.  Concrete schedulers only decide *where
// ready tasks wait* and *which one a worker takes next*:
//
//    push_ready(task, worker)  — a task just became ready; returns the lane
//                                whose pool received it (-1 = shared pool)
//    pop_ready(worker)         — worker asks for its next task
//    ready_count()             — ready-but-unstarted tasks
//    route_released(...)       — optional hook for locality shortcuts
//
// Worker wakeups are targeted, not broadcast: each lane owns a futex-style
// parking slot (atomic epoch + parked flag), and a ready-task arrival wakes
// the destination lane's parked worker — or one other parked executor when
// the owner is busy — instead of notifying the whole pool (see DESIGN.md
// §9 for the no-lost-wakeup argument).
//
// Derived constructors must call start_workers() as their last statement
// (worker threads invoke the virtual queue methods, so the vtable must be
// complete); destructors must call stop_workers() first for the same reason.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "sched/dependency_tracker.hpp"
#include "sched/runtime.hpp"
#include "support/metrics.hpp"
#include "support/telemetry.hpp"

namespace tasksim::sched {

class RuntimeBase : public Runtime {
 public:
  ~RuntimeBase() override;

  TaskId submit(TaskDescriptor desc) final;
  void wait_all() final;
  int worker_count() const final;
  void add_observer(TaskObserver* observer) final;
  void remove_observer(TaskObserver* observer) final;

  int running_task_count() const final {
    return running_.load(std::memory_order_acquire);
  }
  std::size_t ready_task_count() const final { return ready_count(); }
  bool ready_task_reachable() const override {
    return ready_count() > 0 && any_idle_executor();
  }
  int bookkeeping_in_flight() const final {
    return bookkeeping_.load(std::memory_order_acquire);
  }

  /// Executors that can currently pop tasks: spawned workers plus the
  /// master while it participates inside wait_all().  Used by the
  /// simulation layer's all-busy shortcut.
  int active_executor_count() const final {
    return spawned_workers_ +
           (master_active_.load(std::memory_order_acquire) ? 1 : 0);
  }

  bool submitter_waiting() const final {
    return submitter_waiting_.load(std::memory_order_acquire);
  }

  bool supports_auxiliary_tasks() const final { return true; }

  /// Thread-safe auxiliary-task injection (hedge duplicates, DESIGN.md
  /// §12).  Unlike submit(), callable from worker threads while tasks are
  /// in flight: ids come from a disjoint high range so they can never
  /// collide with submission-ordered ids, and the task bypasses the task
  /// window and the dependency tracker (it is dependency-free by
  /// construction).  The body runs on a DEDICATED thread, not a pool
  /// lane: a hedge duplicate parks inside the TEQ for its whole race, and
  /// a parked duplicate sitting on a worker lane starves the lane pool —
  /// every lane busy, ready real tasks unreachable — which breaks the
  /// quiescence discipline's assumption that a ready-but-unclaimed task
  /// implies an idle lane will claim it at the current clock (§V-E
  /// inflated starts).  On its own thread the task is invisible to
  /// running_/lane_executing_/ready accounting; it only counts toward
  /// pending_, so wait_all() still drains (and joins) it.
  TaskId spawn_auxiliary(TaskDescriptor desc, int origin_lane) final;

  /// Tasks executed per worker lane (index 0 is the master lane when
  /// master participation is on).  Snapshot; useful for the paper's
  /// core-0 observation in Figures 6-7.
  std::vector<std::uint64_t> tasks_per_worker() const;

  // --- fault-injection statistics (reset when a new generation starts) ---
  std::uint64_t failed_attempt_count() const final {
    return failed_attempts_.load(std::memory_order_acquire);
  }
  std::uint64_t retry_count() const final {
    return retries_.load(std::memory_order_acquire);
  }
  std::vector<TaskId> poisoned_tasks() const final;

 protected:
  /// Captures the constructing thread's telemetry context
  /// (telemetry::current()): every worker thread binds it in worker_loop,
  /// so the runtime's metrics, profiler probes and flight-recorder events
  /// land in the owning engine's context even when K runtimes coexist.
  /// The context must outlive the runtime.
  explicit RuntimeBase(RuntimeConfig config);

  /// The context's flight recorder (for derived schedulers' policy-decision
  /// events: steals, lane commits, immediate-successor hits).
  flightrec::FlightRecorder& recorder() const {
    return telemetry_->recorder();
  }

  /// The telemetry context captured at construction.
  telemetry::TelemetryContext& telemetry() const { return *telemetry_; }

  // --- scheduler-specific ready pool (must be internally synchronized) ---
  /// Place a ready task; returns the lane whose per-worker pool received
  /// it, or -1 when it went to a shared pool any executor can pop from.
  /// The return value steers the targeted wakeup in dispatch_ready().
  virtual int push_ready(TaskRecord* task, int worker_hint) = 0;
  virtual TaskRecord* pop_ready(int worker) = 0;
  virtual std::size_t ready_count() const = 0;

  /// Hook invoked on the finishing worker with the tasks its completion
  /// released.  Default routes every task through push_ready.  Overrides
  /// (OmpSs immediate-successor) may keep some aside but must still account
  /// for them in ready_count() until popped.
  virtual void route_released(int worker, std::span<TaskRecord*> released);

  /// Hook invoked on the executing worker right after the task function
  /// returns, with the measured thread-CPU duration.  StarPU's dm/dmda
  /// policies use it to feed the history-based performance model and to
  /// release the load charged at enqueue time.
  virtual void on_task_finished(TaskRecord* task, int lane,
                                double cpu_duration_us);

  /// True when the executor owning `lane` exists and is not currently
  /// executing a task (the master lane counts only while the master is
  /// inside wait_all).
  bool executor_idle(int lane) const;

  /// Any executor currently idle?
  bool any_idle_executor() const;

  /// Transition a released task to ready and fire on_ready observers
  /// without enqueuing it; for route_released overrides that place the
  /// task somewhere other than the ready pool (e.g. an immediate slot).
  void mark_ready(TaskRecord* task);

  /// Enqueue an already-ready task (push_ready) and wake exactly one
  /// parked executor for it: the destination lane's owner when it is
  /// parked, otherwise any one parked executor.  This is the only wakeup
  /// a ready-task arrival causes.
  void dispatch_ready(TaskRecord* task, int worker_hint);

  void start_workers();
  void stop_workers();

  const RuntimeConfig& config() const { return config_; }

  /// First index usable by spawned workers (1 when the master occupies
  /// lane 0, else 0).
  int first_spawned_lane() const { return config_.master_participates ? 1 : 0; }

 private:
  /// One executor's parking slot.  `parked` advertises that the owner is
  /// about to block (set before the final pop re-check, so a concurrent
  /// push cannot be lost); `epoch` is the futex word the owner waits on.
  struct LanePark {
    std::atomic<std::uint32_t> epoch{0};
    std::atomic<bool> parked{false};
  };

  /// Consume `lane`'s parked flag and signal its epoch; false when the
  /// lane was not parked (or another waker got there first).
  bool try_wake_lane(int lane);
  /// Wake the parked owner of `lane`, or — when it is busy or the pool is
  /// shared (`lane` < 0) — one other parked executor.
  void wake_for_push(int lane);
  /// Signal every lane (stop, generation drain); the only broadcast left.
  void wake_all_lanes();

  void worker_loop(int lane);
  /// Body of one auxiliary task's dedicated thread: lifecycle events,
  /// the task function, completion bookkeeping (pending_ decrement).
  void run_auxiliary(TaskDescriptor desc, TaskId id, int lane);
  /// Join every auxiliary thread spawned since the last barrier.
  void join_auxiliary_threads();
  /// Atomically (w.r.t. the simulation-safety queries) pop a ready task
  /// and mark it running; nullptr when none available.  The dispatch
  /// window is covered by bookkeeping_in_flight so the simulation layer
  /// never observes a task that is neither ready nor running.
  TaskRecord* claim_task(int lane);
  void execute_task(TaskRecord* task, int lane);
  void make_ready(TaskRecord* task, int worker_hint);
  /// Requeue a failed task for another attempt (covered by bookkeeping_
  /// so the simulation safety predicate never loses sight of it).
  void requeue_for_retry(TaskRecord* task, int lane, double cpu_duration_us);
  /// Remember the first fatal error; wait_all() rethrows it after drain.
  void record_fatal(std::exception_ptr error);

  RuntimeConfig config_;
  /// Captured from telemetry::current() at construction; not owned.
  telemetry::TelemetryContext* telemetry_;
  int spawned_workers_ = 0;

  DependencyTracker tracker_;

  // Task records of the current generation (between wait_all barriers).
  std::vector<std::unique_ptr<TaskRecord>> records_;
  TaskId next_id_ = 0;

  /// First auxiliary task id: the top quarter of the id space, unreachable
  /// by submission-ordered ids, so aux ids are recognizable in traces and
  /// can never collide with a real task.
  static constexpr TaskId kAuxIdBase = TaskId{1} << 62;
  /// Dedicated threads running auxiliary tasks (hedge duplicates), guarded
  /// by state_mutex_ — they are spawned from worker threads.  Joined at the
  /// wait_all barrier (after pending_ drains, so the joins never block on
  /// simulated work) and in stop_workers as an exception-path safety net.
  std::vector<std::thread> aux_threads_;
  std::atomic<TaskId> next_aux_id_{kAuxIdBase};

  std::vector<TaskObserver*> observers_;

  // Parking / completion signaling.  Workers park on their own LanePark;
  // done_cv_ only signals the (single) master thread: the submitter blocked
  // on the task window or a non-participating master inside wait_all.  It
  // is notified on condition edges (window reopens, generation drains),
  // not on every completion.
  mutable std::mutex state_mutex_;
  std::condition_variable done_cv_;     // window reopened / pending_ == 0
  std::vector<std::unique_ptr<LanePark>> parks_;
  std::size_t pending_ = 0;             // submitted but unfinished
  bool stop_ = false;                   // guarded by state_mutex_
  std::atomic<bool> stop_flag_{false};  // lock-free mirror for park paths

  std::atomic<int> running_{0};
  std::atomic<int> bookkeeping_{0};
  std::atomic<bool> master_active_{false};
  std::atomic<bool> submitter_waiting_{false};

  // Fault-injection state for the current generation.
  std::atomic<std::uint64_t> failed_attempts_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::vector<TaskId> poisoned_ids_;     // guarded by state_mutex_
  std::exception_ptr fatal_error_;       // guarded by state_mutex_

  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> executed_per_lane_;
  std::vector<std::unique_ptr<std::atomic<bool>>> lane_executing_;
  std::vector<std::thread> threads_;

  // Instrumentation (the context's metrics registry; see DESIGN.md §2).
  metrics::Counter tasks_submitted_;      ///< sched.tasks_submitted
  metrics::Counter tasks_completed_;      ///< sched.tasks_completed
  metrics::Counter window_throttled_;     ///< sched.window_throttled
  metrics::Histogram window_wait_us_;     ///< µs the submitter was blocked
  metrics::Gauge ready_depth_;            ///< sched.ready_pool_depth
  metrics::Gauge bookkeeping_gauge_;      ///< sched.bookkeeping_in_flight
  metrics::Counter tasks_failed_;         ///< sched.tasks_failed
  metrics::Counter tasks_retried_;        ///< sched.tasks_retried
  metrics::Counter tasks_poisoned_;       ///< sched.tasks_poisoned
  metrics::Counter worker_wakeups_;       ///< sched.worker_wakeups (signals)
};

}  // namespace tasksim::sched
