#include "sched/factory.hpp"

#include "sched/ompss/ompss_runtime.hpp"
#include "sched/quark/quark_runtime.hpp"
#include "sched/starpu/starpu_runtime.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace tasksim::sched {

TaskId Runtime::spawn_auxiliary(TaskDescriptor desc, int origin_lane) {
  (void)desc;
  (void)origin_lane;
  throw InvalidArgument("runtime '" + name() +
                        "' does not support auxiliary tasks");
}

const char* to_string(FailureMode mode) {
  switch (mode) {
    case FailureMode::abort: return "abort";
    case FailureMode::poison: return "poison";
  }
  return "?";
}

FailureMode parse_failure_mode(const std::string& text) {
  const std::string lower = to_lower(text);
  if (lower == "abort") return FailureMode::abort;
  if (lower == "poison") return FailureMode::poison;
  throw InvalidArgument("unknown failure mode: '" + text +
                        "' (valid: abort, poison)");
}

std::unique_ptr<Runtime> make_runtime(const std::string& spec,
                                      const RuntimeConfig& config) {
  const auto parts = split(spec, '/');
  const std::string family = to_lower(parts[0]);
  const std::string variant = parts.size() > 1 ? to_lower(parts[1]) : "";
  TS_REQUIRE(parts.size() <= 2, "malformed runtime spec: " + spec);

  if (family == "quark") {
    QuarkOptions options;
    if (variant == "nosteal") {
      options.steal = false;
    } else {
      TS_REQUIRE(variant.empty(),
                 "unknown quark variant: '" + variant + "' (valid: nosteal)");
    }
    return std::make_unique<QuarkRuntime>(config, options);
  }
  if (family == "starpu") {
    StarpuOptions options;
    if (!variant.empty()) options.policy = parse_starpu_policy(variant);
    return std::make_unique<StarpuRuntime>(config, options);
  }
  if (family == "ompss") {
    OmpssOptions options;
    if (!variant.empty()) options.policy = parse_ompss_policy(variant);
    return std::make_unique<OmpssRuntime>(config, options);
  }
  throw InvalidArgument("unknown runtime family: '" + family +
                        "' (valid: " + join(known_runtime_specs(), ", ") +
                        ")");
}

std::vector<std::string> known_runtime_specs() {
  return {"quark",      "quark/nosteal", "starpu/eager", "starpu/prio",
          "starpu/ws",  "starpu/dm",     "starpu/dmda",  "ompss/bf",
          "ompss/wf"};
}

}  // namespace tasksim::sched
