// dependency_tracker.hpp — address-based data-hazard analysis.
//
// This is the piece every superscalar scheduler shares (paper §IV-A): tasks
// arrive in serial order carrying read/write annotations; the tracker
// derives RaW/WaR/WaW hazards per data object and maintains, for each task,
// the count of unsatisfied dependences plus the successor lists needed to
// release dependent tasks on completion.
//
// Threading contract: register_task is called by the (single) submitting
// thread; on_complete is called by worker threads.  Both take the tracker
// mutex — the coarse lock mirrors QUARK's design and keeps the hazard state
// and successor lists consistent.
#pragma once

#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "sched/task.hpp"

namespace tasksim::sched {

class DependencyTracker {
 public:
  /// Analyze `task->desc.accesses` against the current hazard state,
  /// populate predecessor counts / successor lists, and update the state.
  /// Returns true when the task has no unsatisfied dependences (ready now).
  /// When `new_predecessors` is non-null, every predecessor a live
  /// dependence was created from is appended to it (for dependence
  /// observers / the flight recorder's dep_edge events).
  bool register_task(TaskRecord* task,
                     std::vector<TaskRecord*>* new_predecessors = nullptr);

  /// Mark `task` complete and collect the successors whose dependence count
  /// dropped to zero into `newly_ready`.  When `poison_successors` is true
  /// (the task was skipped after exhausting its retry budget) every
  /// successor is marked poisoned under the tracker lock before release;
  /// the poison then propagates transitively as those successors complete.
  void on_complete(TaskRecord* task, std::vector<TaskRecord*>& newly_ready,
                   bool poison_successors = false);

  /// Forget all hazard state (between algorithm runs).  No tasks may be in
  /// flight.
  void reset();

  /// Number of distinct data objects currently tracked.
  std::size_t tracked_objects() const;

 private:
  struct ObjectState {
    TaskRecord* last_writer = nullptr;
    std::vector<TaskRecord*> readers_since_write;
  };

  /// Add `pred -> task` unless pred already finished; returns true when a
  /// live dependence was created.
  static bool add_dependence(TaskRecord* pred, TaskRecord* task);

  mutable std::mutex mutex_;
  std::unordered_map<const void*, ObjectState> objects_;
};

}  // namespace tasksim::sched
