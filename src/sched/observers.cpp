#include "sched/observers.hpp"

#include "support/error.hpp"

namespace tasksim::sched {

TracingObserver::TracingObserver(trace::Trace* trace, Clock clock)
    : trace_(trace), clock_(clock) {
  TS_REQUIRE(trace != nullptr, "TracingObserver needs a trace");
}

void TracingObserver::on_finish(TaskId id, const std::string& kernel,
                                int worker, double start_wall_us,
                                double end_wall_us, double start_cpu_us,
                                double end_cpu_us) {
  if (clock_ == Clock::wall) {
    trace_->record(id, kernel, worker, start_wall_us, end_wall_us);
  } else {
    trace_->record(id, kernel, worker, start_cpu_us, end_cpu_us);
  }
}

void DagCaptureObserver::on_submit(TaskId id, const TaskDescriptor& desc) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<dag::DataRef> refs;
  refs.reserve(desc.accesses.size());
  for (const Access& access : desc.accesses) {
    refs.push_back(dag::DataRef{access.address, reads(access.mode),
                                writes(access.mode)});
  }
  const dag::NodeId node = builder_.submit(desc.kernel, refs);
  if (!first_id_) first_id_ = id;
  TS_ASSERT(id == *first_id_ + node,
            "task ids must be dense within one capture (serial submission)");
}

dag::NodeId DagCaptureObserver::node_of(TaskId id) const {
  TS_REQUIRE(first_id_.has_value() && id >= *first_id_,
             "task id was not captured");
  return static_cast<dag::NodeId>(id - *first_id_);
}

void DagCaptureObserver::set_node_weight(TaskId id, double weight_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  builder_.mutable_graph().mutable_node(node_of(id)).weight_us = weight_us;
}

}  // namespace tasksim::sched
