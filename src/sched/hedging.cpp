#include "sched/hedging.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace tasksim::sched {

const char* to_string(DeadlineMode mode) {
  switch (mode) {
    case DeadlineMode::off:
      return "off";
    case DeadlineMode::abort:
      return "abort";
    case DeadlineMode::poison:
      return "poison";
    case DeadlineMode::hedge:
      return "hedge";
  }
  return "?";
}

DeadlineMode parse_deadline_mode(const std::string& text) {
  const std::string lower = to_lower(text);
  if (lower == "off") return DeadlineMode::off;
  if (lower == "abort") return DeadlineMode::abort;
  if (lower == "poison") return DeadlineMode::poison;
  if (lower == "hedge") return DeadlineMode::hedge;
  throw InvalidArgument("unknown deadline mode: '" + text +
                        "' (valid: off, abort, poison, hedge)");
}

void HedgeConfig::validate() const {
  TS_REQUIRE(quantile > 0.0 && quantile < 1.0,
             "hedge quantile must be in (0, 1)");
  TS_REQUIRE(margin >= 1.0 && std::isfinite(margin),
             "hedge margin must be a finite factor >= 1");
  TS_REQUIRE(threshold_samples > 0,
             "hedge threshold sample count must be positive");
}

void HedgeThresholds::set(const std::string& kernel, double trigger_us) {
  TS_REQUIRE(std::isfinite(trigger_us) && trigger_us >= 0.0,
             "hedge trigger for '" + kernel +
                 "' must be a non-negative finite duration");
  triggers_[kernel] = trigger_us;
}

double HedgeThresholds::trigger_for(const std::string& kernel) const {
  const auto it = triggers_.find(kernel);
  return it == triggers_.end() ? -1.0 : it->second;
}

double hedge_trigger_from_samples(std::vector<double> samples,
                                  double quantile, double margin) {
  if (samples.empty()) return -1.0;
  std::sort(samples.begin(), samples.end());
  const double rank = quantile * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  const double q = samples[lo] + frac * (samples[hi] - samples[lo]);
  return q * margin;
}

}  // namespace tasksim::sched
