// observers.hpp — stock observers: real-trace recording and DAG capture.
#pragma once

#include <mutex>
#include <optional>

#include "dag/builder.hpp"
#include "sched/observer.hpp"
#include "trace/trace.hpp"

namespace tasksim::sched {

/// Records every executed task into a trace::Trace using wall-clock or
/// thread-CPU timestamps.  Wall mode gives the classic real-execution trace
/// (paper Figure 6); CPU mode feeds the virtual platform's per-kernel
/// durations.
class TracingObserver final : public TaskObserver {
 public:
  enum class Clock { wall, thread_cpu };

  explicit TracingObserver(trace::Trace* trace, Clock clock = Clock::wall);

  void on_finish(TaskId id, const std::string& kernel, int worker,
                 double start_wall_us, double end_wall_us, double start_cpu_us,
                 double end_cpu_us) override;

 private:
  trace::Trace* trace_;
  Clock clock_;
};

/// Rebuilds the dependence DAG from the submission stream, like the DAG
/// export facilities of QUARK and StarPU (paper Figure 1).  Task ids map
/// 1:1 to node ids in submission order.
class DagCaptureObserver final : public TaskObserver {
 public:
  void on_submit(TaskId id, const TaskDescriptor& desc) override;

  /// Attach measured durations as node weights (call after the run).
  void set_node_weight(TaskId id, double weight_us);

  /// DAG node id for a captured task id (ids are dense per capture).
  dag::NodeId node_of(TaskId id) const;

  const dag::TaskGraph& graph() const { return builder_.graph(); }
  dag::TaskGraph take_graph() { return builder_.take_graph(); }

 private:
  std::mutex mutex_;
  dag::DagBuilder builder_;
  std::optional<TaskId> first_id_;
};

}  // namespace tasksim::sched
