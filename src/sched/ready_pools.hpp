// ready_pools.hpp — ready-task containers shared by the scheduler
// implementations.
//
// CentralQueue: one global pool with FIFO, LIFO, or priority discipline
// (OmpSs breadth-first / work-first, StarPU eager / prio).
// StealingDeques: per-worker deques with work stealing (QUARK, StarPU ws):
// owners pop from the front of their own deque, thieves steal from the back
// of a victim's.
//
// Both are internally synchronized and keep an atomic element count so that
// ready_count() — polled by the simulation layer's race-safety predicate —
// never takes a lock.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "sched/task.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace tasksim::sched {

enum class QueueDiscipline {
  fifo,      ///< breadth-first: oldest ready task first
  lifo,      ///< work-first: newest ready task first
  priority,  ///< highest TaskDescriptor::priority first, FIFO within a level
};

class CentralQueue {
 public:
  explicit CentralQueue(QueueDiscipline discipline);

  void push(TaskRecord* task);
  TaskRecord* pop();
  std::size_t size() const {
    return size_.load(std::memory_order_acquire);
  }

 private:
  QueueDiscipline discipline_;
  mutable std::mutex mutex_;
  std::deque<TaskRecord*> queue_;  // priority mode keeps it sorted
  std::atomic<std::size_t> size_{0};
};

class StealingDeques {
 public:
  /// `lanes` deques; `seed` drives victim selection.
  StealingDeques(int lanes, std::uint64_t seed);

  /// Push to the given lane; priority tasks (>0) go to the front so the
  /// owner picks them up next.
  void push(int lane, TaskRecord* task);

  /// Owner pop (front of own deque); returns nullptr when empty.
  TaskRecord* pop_own(int lane);

  /// Steal from another lane's back, scanning victims from a random start.
  /// Returns nullptr when every deque is empty.
  TaskRecord* steal(int thief);

  std::size_t size() const {
    return size_.load(std::memory_order_acquire);
  }

  /// Tasks currently queued on one lane.
  std::size_t size_of(int lane) const;

  int lanes() const { return static_cast<int>(deques_.size()); }

 private:
  struct Lane {
    mutable std::mutex mutex;
    std::deque<TaskRecord*> deque;
  };

  std::vector<std::unique_ptr<Lane>> deques_;
  std::atomic<std::size_t> size_{0};
  std::mutex rng_mutex_;
  Rng rng_;
  metrics::Counter steals_;  ///< sched.tasks_stolen (successful steals)
};

}  // namespace tasksim::sched
