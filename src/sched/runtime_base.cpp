#include "sched/runtime_base.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/flight_recorder.hpp"
#include "support/timing.hpp"

namespace tasksim::sched {

RuntimeBase::RuntimeBase(RuntimeConfig config)
    : config_(config),
      tasks_submitted_(metrics::counter("sched.tasks_submitted")),
      tasks_completed_(metrics::counter("sched.tasks_completed")),
      window_throttled_(metrics::counter("sched.window_throttled")),
      window_wait_us_(metrics::histogram("sched.window_wait_us")),
      ready_depth_(metrics::gauge("sched.ready_pool_depth")),
      bookkeeping_gauge_(metrics::gauge("sched.bookkeeping_in_flight")) {
  TS_REQUIRE(config_.workers >= 1, "runtime needs at least one worker");
  spawned_workers_ =
      config_.workers - (config_.master_participates ? 1 : 0);
  executed_per_lane_.reserve(static_cast<std::size_t>(config_.workers));
  lane_executing_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    executed_per_lane_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
    lane_executing_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
}

bool RuntimeBase::executor_idle(int lane) const {
  if (lane < 0 || lane >= config_.workers) return false;
  if (config_.master_participates && lane == 0 &&
      !master_active_.load(std::memory_order_acquire)) {
    return false;  // the master is not currently an executor
  }
  return !lane_executing_[static_cast<std::size_t>(lane)]->load(
      std::memory_order_acquire);
}

bool RuntimeBase::any_idle_executor() const {
  for (int lane = 0; lane < config_.workers; ++lane) {
    if (executor_idle(lane)) return true;
  }
  return false;
}

RuntimeBase::~RuntimeBase() {
  // Derived destructors must already have called stop_workers(); this is a
  // safety net for exception paths.
  stop_workers();
}

int RuntimeBase::worker_count() const { return config_.workers; }

void RuntimeBase::add_observer(TaskObserver* observer) {
  TS_REQUIRE(observer != nullptr, "null observer");
  std::lock_guard<std::mutex> lock(state_mutex_);
  TS_REQUIRE(pending_ == 0, "observers must be added at a barrier");
  observers_.push_back(observer);
}

void RuntimeBase::remove_observer(TaskObserver* observer) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  TS_REQUIRE(pending_ == 0, "observers must be removed at a barrier");
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

std::vector<std::uint64_t> RuntimeBase::tasks_per_worker() const {
  std::vector<std::uint64_t> out;
  out.reserve(executed_per_lane_.size());
  for (const auto& counter : executed_per_lane_) {
    out.push_back(counter->load(std::memory_order_relaxed));
  }
  return out;
}

void RuntimeBase::start_workers() {
  threads_.reserve(static_cast<std::size_t>(spawned_workers_));
  const int first = first_spawned_lane();
  for (int i = 0; i < spawned_workers_; ++i) {
    threads_.emplace_back([this, lane = first + i] { worker_loop(lane); });
  }
}

void RuntimeBase::stop_workers() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (stop_ && threads_.empty()) return;
    stop_ = true;
  }
  worker_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void RuntimeBase::notify_workers() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++ready_version_;
  }
  worker_cv_.notify_all();
}

TaskId RuntimeBase::submit(TaskDescriptor desc) {
  TS_REQUIRE(static_cast<bool>(desc.function), "task without a function");
  tasks_submitted_.inc();
  flightrec::FlightRecorder& fr = flightrec::FlightRecorder::global();
  // Task-window throttling (QUARK window / OmpSs throttle).
  if (config_.window_size > 0) {
    std::unique_lock<std::mutex> lock(state_mutex_);
    if (pending_ >= config_.window_size) {
      window_throttled_.inc();
      fr.record(flightrec::EventType::window_block);
      const double blocked_from = wall_time_us();
      submitter_waiting_.store(true, std::memory_order_release);
      done_cv_.wait(lock, [&] { return pending_ < config_.window_size; });
      submitter_waiting_.store(false, std::memory_order_release);
      const double waited = wall_time_us() - blocked_from;
      window_wait_us_.observe(waited);
      fr.record(flightrec::EventType::window_unblock, flightrec::kNoTask, -1,
                waited);
    }
  }

  auto record = std::make_unique<TaskRecord>();
  TaskRecord* task = record.get();
  task->id = next_id_++;
  task->desc = std::move(desc);

  if (fr.enabled()) {
    fr.name_task(task->id, task->desc.kernel);
    fr.record(flightrec::EventType::task_submit, task->id);
  }
  for (TaskObserver* obs : observers_) obs->on_submit(task->id, task->desc);

  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++pending_;
  }
  records_.push_back(std::move(record));

  // Collect the live predecessors only when someone will consume them: the
  // extra vector costs a few allocations per task otherwise.
  const bool want_edges = fr.enabled() || !observers_.empty();
  std::vector<TaskRecord*> predecessors;
  const bool ready_now =
      tracker_.register_task(task, want_edges ? &predecessors : nullptr);
  for (TaskRecord* pred : predecessors) {
    fr.record(flightrec::EventType::dep_edge, task->id, -1, 0.0, 0.0,
              pred->id);
    for (TaskObserver* obs : observers_) obs->on_dependence(pred->id, task->id);
  }
  if (ready_now) {
    make_ready(task, task->desc.locality_hint);
  }
  return task->id;
}

void RuntimeBase::make_ready(TaskRecord* task, int worker_hint) {
  task->state.store(TaskState::ready, std::memory_order_release);
  flightrec::FlightRecorder::global().record(flightrec::EventType::task_ready,
                                             task->id);
  for (TaskObserver* obs : observers_) obs->on_ready(task->id);
  push_ready(task, worker_hint);
  ready_depth_.set(static_cast<double>(ready_count()));
  notify_workers();
}

void RuntimeBase::on_task_finished(TaskRecord* task, int lane,
                                   double cpu_duration_us) {
  (void)task;
  (void)lane;
  (void)cpu_duration_us;
}

void RuntimeBase::mark_ready(TaskRecord* task) {
  task->state.store(TaskState::ready, std::memory_order_release);
  flightrec::FlightRecorder::global().record(flightrec::EventType::task_ready,
                                             task->id);
  for (TaskObserver* obs : observers_) obs->on_ready(task->id);
}

void RuntimeBase::route_released(int worker, std::span<TaskRecord*> released) {
  for (TaskRecord* task : released) {
    mark_ready(task);
    const int hint = task->desc.locality_hint >= 0 ? task->desc.locality_hint
                                                   : worker;
    push_ready(task, hint);
  }
}

TaskRecord* RuntimeBase::claim_task(int lane) {
  // The dispatch window (popped from the ready pool but not yet counted as
  // running) must be visible to the simulation layer's safety predicate;
  // cover it with the bookkeeping counter.
  bookkeeping_.fetch_add(1, std::memory_order_acq_rel);
  TaskRecord* task = pop_ready(lane);
  if (task != nullptr) {
    flightrec::FlightRecorder::global().record(
        flightrec::EventType::task_dispatch, task->id, lane);
    task->state.store(TaskState::running, std::memory_order_release);
    lane_executing_[static_cast<std::size_t>(lane)]->store(
        true, std::memory_order_release);
    running_.fetch_add(1, std::memory_order_acq_rel);
    ready_depth_.set(static_cast<double>(ready_count()));
  }
  bookkeeping_.fetch_sub(1, std::memory_order_acq_rel);
  return task;
}

void RuntimeBase::worker_loop(int lane) {
  for (;;) {
    TaskRecord* task = claim_task(lane);
    if (task != nullptr) {
      execute_task(task, lane);
      continue;
    }
    std::unique_lock<std::mutex> lock(state_mutex_);
    if (stop_) return;
    const std::uint64_t version = ready_version_;
    lock.unlock();
    // Recheck after capturing the version: a push between our failed pop
    // and the wait would otherwise be lost.
    task = claim_task(lane);
    if (task != nullptr) {
      execute_task(task, lane);
      continue;
    }
    lock.lock();
    worker_cv_.wait(lock,
                    [&] { return stop_ || ready_version_ != version; });
  }
}

void RuntimeBase::execute_task(TaskRecord* task, int lane) {
  const double start_wall = wall_time_us();
  const double start_cpu = thread_cpu_time_us();
  flightrec::FlightRecorder::global().record(flightrec::EventType::task_start,
                                             task->id, lane);
  for (TaskObserver* obs : observers_) {
    obs->on_start(task->id, task->desc.kernel, lane, start_wall, start_cpu);
  }

  TaskContext ctx{task->id, lane, this};
  if (lane_is_accelerator(lane) && accel_capable(task->desc)) {
    task->desc.accel_function(ctx);
  } else {
    task->desc.function(ctx);
  }

  const double end_wall = wall_time_us();
  const double end_cpu = thread_cpu_time_us();
  flightrec::FlightRecorder::global().record(flightrec::EventType::task_finish,
                                             task->id, lane);

  // Completion bookkeeping: visible through bookkeeping_in_flight() until
  // every released successor is routed to a ready pool.
  bookkeeping_gauge_.set(static_cast<double>(
      bookkeeping_.fetch_add(1, std::memory_order_acq_rel) + 1));

  for (TaskObserver* obs : observers_) {
    obs->on_finish(task->id, task->desc.kernel, lane, start_wall, end_wall,
                   start_cpu, end_cpu);
  }

  on_task_finished(task, lane, end_cpu - start_cpu);

  std::vector<TaskRecord*> released;
  tracker_.on_complete(task, released);
  if (!released.empty()) {
    route_released(lane, released);
    notify_workers();
  }

  executed_per_lane_[static_cast<std::size_t>(lane)]->fetch_add(
      1, std::memory_order_relaxed);

  bool all_done = false;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    TS_ASSERT(pending_ > 0, "completion without a pending task");
    --pending_;
    all_done = pending_ == 0;
  }
  done_cv_.notify_all();
  if (all_done) worker_cv_.notify_all();  // wake a participating master

  tasks_completed_.inc();
  bookkeeping_gauge_.set(static_cast<double>(
      bookkeeping_.fetch_sub(1, std::memory_order_acq_rel) - 1));
  // Mark the lane idle BEFORE dropping the running count: the quiescence
  // predicate treats an executing lane as unreachable for ready tasks, so
  // between these two stores at least one of "lane busy" (masks ready
  // tasks bound to it) and "running > queued" must hold or a simulated
  // return could slip through while this lane is about to pick up work.
  lane_executing_[static_cast<std::size_t>(lane)]->store(
      false, std::memory_order_release);
  running_.fetch_sub(1, std::memory_order_acq_rel);

  if (config_.yield_between_tasks) std::this_thread::yield();
}

void RuntimeBase::wait_all() {
  if (config_.master_participates) {
    master_active_.store(true, std::memory_order_release);
    for (;;) {
      TaskRecord* task = claim_task(0);
      if (task != nullptr) {
        execute_task(task, 0);
        continue;
      }
      std::unique_lock<std::mutex> lock(state_mutex_);
      if (pending_ == 0) break;
      const std::uint64_t version = ready_version_;
      lock.unlock();
      task = claim_task(0);
      if (task != nullptr) {
        execute_task(task, 0);
        continue;
      }
      lock.lock();
      worker_cv_.wait(lock, [&] {
        return stop_ || pending_ == 0 || ready_version_ != version;
      });
      if (stop_) break;
    }
    master_active_.store(false, std::memory_order_release);
  } else {
    std::unique_lock<std::mutex> lock(state_mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
  }

  // Quiesce the last worker's post-completion instructions before freeing
  // this generation's records.
  while (running_.load(std::memory_order_acquire) != 0 ||
         bookkeeping_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  tracker_.reset();
  records_.clear();
}

}  // namespace tasksim::sched
