#include "sched/runtime_base.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "support/error.hpp"
#include "support/flight_recorder.hpp"
#include "support/profiler.hpp"
#include "support/timing.hpp"

namespace tasksim::sched {

namespace {
void sleep_us(double us) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(us));
}
}  // namespace

RuntimeBase::RuntimeBase(RuntimeConfig config)
    : config_(config),
      telemetry_(&telemetry::current()),
      tasks_submitted_(metrics::counter("sched.tasks_submitted")),
      tasks_completed_(metrics::counter("sched.tasks_completed")),
      window_throttled_(metrics::counter("sched.window_throttled")),
      window_wait_us_(metrics::histogram("sched.window_wait_us")),
      ready_depth_(metrics::gauge("sched.ready_pool_depth")),
      bookkeeping_gauge_(metrics::gauge("sched.bookkeeping_in_flight")),
      tasks_failed_(metrics::counter("sched.tasks_failed")),
      tasks_retried_(metrics::counter("sched.tasks_retried")),
      tasks_poisoned_(metrics::counter("sched.tasks_poisoned")),
      worker_wakeups_(metrics::counter("sched.worker_wakeups")) {
  TS_REQUIRE(config_.workers >= 1, "runtime needs at least one worker");
  TS_REQUIRE(config_.max_task_retries >= 0,
             "max_task_retries must be non-negative");
  TS_REQUIRE(config_.dispatch_delay_us >= 0.0,
             "dispatch_delay_us must be non-negative");
  TS_REQUIRE(config_.bookkeeping_delay_us >= 0.0,
             "bookkeeping_delay_us must be non-negative");
  spawned_workers_ =
      config_.workers - (config_.master_participates ? 1 : 0);
  executed_per_lane_.reserve(static_cast<std::size_t>(config_.workers));
  lane_executing_.reserve(static_cast<std::size_t>(config_.workers));
  parks_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    executed_per_lane_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
    lane_executing_.push_back(std::make_unique<std::atomic<bool>>(false));
    parks_.push_back(std::make_unique<LanePark>());
  }
}

bool RuntimeBase::executor_idle(int lane) const {
  if (lane < 0 || lane >= config_.workers) return false;
  if (config_.master_participates && lane == 0 &&
      !master_active_.load(std::memory_order_acquire)) {
    return false;  // the master is not currently an executor
  }
  return !lane_executing_[static_cast<std::size_t>(lane)]->load(
      std::memory_order_acquire);
}

bool RuntimeBase::any_idle_executor() const {
  for (int lane = 0; lane < config_.workers; ++lane) {
    if (executor_idle(lane)) return true;
  }
  return false;
}

RuntimeBase::~RuntimeBase() {
  // Derived destructors must already have called stop_workers(); this is a
  // safety net for exception paths.
  stop_workers();
}

int RuntimeBase::worker_count() const { return config_.workers; }

void RuntimeBase::add_observer(TaskObserver* observer) {
  TS_REQUIRE(observer != nullptr, "null observer");
  std::lock_guard<std::mutex> lock(state_mutex_);
  TS_REQUIRE(pending_ == 0, "observers must be added at a barrier");
  observers_.push_back(observer);
}

void RuntimeBase::remove_observer(TaskObserver* observer) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  TS_REQUIRE(pending_ == 0, "observers must be removed at a barrier");
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

std::vector<TaskId> RuntimeBase::poisoned_tasks() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return poisoned_ids_;
}

void RuntimeBase::record_fatal(std::exception_ptr error) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (!fatal_error_) fatal_error_ = std::move(error);
}

std::vector<std::uint64_t> RuntimeBase::tasks_per_worker() const {
  std::vector<std::uint64_t> out;
  out.reserve(executed_per_lane_.size());
  for (const auto& counter : executed_per_lane_) {
    out.push_back(counter->load(std::memory_order_relaxed));
  }
  return out;
}

void RuntimeBase::start_workers() {
  threads_.reserve(static_cast<std::size_t>(spawned_workers_));
  const int first = first_spawned_lane();
  for (int i = 0; i < spawned_workers_; ++i) {
    threads_.emplace_back([this, lane = first + i] { worker_loop(lane); });
  }
}

void RuntimeBase::stop_workers() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (stop_ && threads_.empty()) return;
    stop_ = true;
  }
  stop_flag_.store(true, std::memory_order_seq_cst);
  wake_all_lanes();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  // Exception-path safety net: wait_all normally joins these at the
  // barrier.  An auxiliary task blocked in the TEQ here is woken by the
  // queue cancellation that accompanies every abort path.
  join_auxiliary_threads();
}

bool RuntimeBase::try_wake_lane(int lane) {
  LanePark& park = *parks_[static_cast<std::size_t>(lane)];
  // Consume the parked flag so a second push wakes a *different* executor
  // instead of double-signaling this one.
  if (!park.parked.exchange(false, std::memory_order_acq_rel)) return false;
  worker_wakeups_.inc();
  park.epoch.fetch_add(1, std::memory_order_release);
  park.epoch.notify_one();
  return true;
}

void RuntimeBase::wake_for_push(int lane) {
  // Preferred target: the parked owner of the destination lane.
  if (lane >= 0 && lane < config_.workers && try_wake_lane(lane)) return;
  // Owner busy or shared pool: one other parked executor (it can pop the
  // shared structure or steal).  No parked executor means everyone is
  // running and will re-claim on its own — no wake needed at all.
  for (int l = 0; l < config_.workers; ++l) {
    if (l != lane && try_wake_lane(l)) return;
  }
}

void RuntimeBase::wake_all_lanes() {
  for (int l = 0; l < config_.workers; ++l) {
    LanePark& park = *parks_[static_cast<std::size_t>(l)];
    park.parked.store(false, std::memory_order_release);
    park.epoch.fetch_add(1, std::memory_order_release);
    park.epoch.notify_all();
  }
}

TaskId RuntimeBase::submit(TaskDescriptor desc) {
  TS_PROF_SCOPE(submit);
  TS_REQUIRE(static_cast<bool>(desc.function), "task without a function");
  tasks_submitted_.inc();
  flightrec::FlightRecorder& fr = telemetry_->recorder();
  // Task-window throttling (QUARK window / OmpSs throttle).
  if (config_.window_size > 0) {
    std::unique_lock<std::mutex> lock(state_mutex_);
    if (pending_ >= config_.window_size) {
      window_throttled_.inc();
      fr.record(flightrec::EventType::window_block);
      const double blocked_from = wall_time_us();
      submitter_waiting_.store(true, std::memory_order_release);
      {
        TS_PROF_SCOPE(window_wait);
        done_cv_.wait(lock, [&] { return pending_ < config_.window_size; });
      }
      submitter_waiting_.store(false, std::memory_order_release);
      const double waited = wall_time_us() - blocked_from;
      window_wait_us_.observe(waited);
      fr.record(flightrec::EventType::window_unblock, flightrec::kNoTask, -1,
                waited);
    }
  }

  // First submission of a generation: reset the previous run's fault
  // statistics so accessors report the generation that is about to run.
  if (records_.empty()) {
    failed_attempts_.store(0, std::memory_order_release);
    retries_.store(0, std::memory_order_release);
    std::lock_guard<std::mutex> lock(state_mutex_);
    poisoned_ids_.clear();
  }

  auto record = std::make_unique<TaskRecord>();
  TaskRecord* task = record.get();
  task->id = next_id_++;
  task->desc = std::move(desc);

  if (fr.enabled()) {
    fr.name_task(task->id, task->desc.kernel);
    fr.record(flightrec::EventType::task_submit, task->id);
  }
  for (TaskObserver* obs : observers_) obs->on_submit(task->id, task->desc);

  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++pending_;
  }
  records_.push_back(std::move(record));

  // Collect the live predecessors only when someone will consume them: the
  // extra vector costs a few allocations per task otherwise.
  const bool want_edges = fr.enabled() || !observers_.empty();
  const bool want_preds = want_edges || config_.cp_priority;
  std::vector<TaskRecord*> predecessors;
  const bool ready_now =
      tracker_.register_task(task, want_preds ? &predecessors : nullptr);
  if (config_.cp_priority) {
    // Critical-path-first heuristic: depth = 1 + max predecessor depth,
    // folded into the priority the ready pools order by.  Predecessors were
    // all submitted earlier on this thread, so their priorities are final.
    // Already-finished predecessors are not in the list — their chains no
    // longer constrain the schedule, so skipping them only sharpens the
    // heuristic.
    int depth = 0;
    for (const TaskRecord* pred : predecessors) {
      depth = std::max(depth, pred->desc.priority + 1);
    }
    task->desc.priority = std::max(task->desc.priority, depth);
  }
  if (want_edges) {
    for (TaskRecord* pred : predecessors) {
      fr.record(flightrec::EventType::dep_edge, task->id, -1, 0.0, 0.0,
                pred->id);
      for (TaskObserver* obs : observers_) {
        obs->on_dependence(pred->id, task->id);
      }
    }
  }
  if (ready_now) {
    make_ready(task, task->desc.locality_hint);
  }
  return task->id;
}

TaskId RuntimeBase::spawn_auxiliary(TaskDescriptor desc, int origin_lane) {
  TS_REQUIRE(static_cast<bool>(desc.function),
             "auxiliary task without a function");
  tasks_submitted_.inc();
  const TaskId id = next_aux_id_.fetch_add(1, std::memory_order_relaxed);

  flightrec::FlightRecorder& fr = telemetry_->recorder();
  if (fr.enabled()) {
    fr.name_task(id, desc.kernel);
    fr.record(flightrec::EventType::task_submit, id, origin_lane);
  }
  // observers_ is only mutated at barriers (pending_ > 0 here since the
  // spawning task is itself pending), so reading it unlocked is safe —
  // same argument as the worker execute path.
  for (TaskObserver* obs : observers_) obs->on_submit(id, desc);

  // Label the duplicate with a lane other than the spawner's — the hedged
  // original occupies that one for the duration of the race.  The label is
  // where the duplicate's events and virtual occupancy land; the body runs
  // on its own thread (see the spawn_auxiliary contract in the header: a
  // duplicate parked on a pool lane would starve the lane pool and break
  // the quiescence discipline's ready-task-implies-idle-lane assumption).
  int lane = desc.locality_hint;
  if (lane < 0) {
    lane = config_.workers > 1 ? (origin_lane + 1) % config_.workers
                               : origin_lane;
  }

  // pending_ rises before the thread exists, so its decrement can never
  // underflow; the window predicate (pending_ < window_size) counts the
  // duplicate as in-flight work like any other task.
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++pending_;
  }
  std::thread runner([this, id, lane, fn = std::move(desc)]() mutable {
    run_auxiliary(std::move(fn), id, lane);
  });
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    aux_threads_.push_back(std::move(runner));
  }
  return id;
}

void RuntimeBase::run_auxiliary(TaskDescriptor desc, TaskId id, int lane) {
  // Same context inheritance as worker_loop: metrics and flight events from
  // this thread land in the owning engine's context.  Joined (wait_all or
  // stop_workers) before the runtime — and the context — is destroyed.
  telemetry::TelemetryScope telemetry_scope(*telemetry_);
  flightrec::FlightRecorder& fr = telemetry_->recorder();
  fr.record(flightrec::EventType::task_ready, id);
  fr.record(flightrec::EventType::task_dispatch, id, lane);

  const double start_wall = wall_time_us();
  const double start_cpu = thread_cpu_time_us();
  fr.record(flightrec::EventType::task_start, id, lane);
  for (TaskObserver* obs : observers_) obs->on_ready(id);
  for (TaskObserver* obs : observers_) {
    obs->on_start(id, desc.kernel, lane, start_wall, start_cpu);
  }

  TaskContext ctx{id, lane, this};
  try {
    desc.function(ctx);
  } catch (...) {
    // Watchdog cancellation (SimulationStalled) or a bug in the auxiliary
    // body: remember the first fatal error — wait_all() rethrows it after
    // the drain, exactly as for a pool task.  No retry/poison machinery:
    // auxiliary tasks have no successors and no retry budget.
    record_fatal(std::current_exception());
  }

  const double end_wall = wall_time_us();
  const double end_cpu = thread_cpu_time_us();
  fr.record(flightrec::EventType::task_finish, id, lane);
  for (TaskObserver* obs : observers_) {
    obs->on_finish(id, desc.kernel, lane, start_wall, end_wall, start_cpu,
                   end_cpu);
  }
  tasks_completed_.inc();

  bool all_done = false;
  bool window_reopened = false;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    TS_ASSERT(pending_ > 0, "auxiliary completion without a pending task");
    --pending_;
    all_done = pending_ == 0;
    const std::size_t refill = std::max<std::size_t>(1, config_.window_refill);
    window_reopened = config_.window_size > 0 &&
                      submitter_waiting_.load(std::memory_order_relaxed) &&
                      pending_ + refill <= config_.window_size;
  }
  if (all_done || window_reopened) done_cv_.notify_all();
  if (all_done) wake_all_lanes();  // release a parked participating master
}

void RuntimeBase::join_auxiliary_threads() {
  std::vector<std::thread> aux;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    aux.swap(aux_threads_);
  }
  for (std::thread& t : aux) {
    if (t.joinable()) t.join();
  }
}

void RuntimeBase::make_ready(TaskRecord* task, int worker_hint) {
  mark_ready(task);
  dispatch_ready(task, worker_hint);
}

void RuntimeBase::dispatch_ready(TaskRecord* task, int worker_hint) {
  const int lane = push_ready(task, worker_hint);
  ready_depth_.set(static_cast<double>(ready_count()));
  wake_for_push(lane);
}

void RuntimeBase::on_task_finished(TaskRecord* task, int lane,
                                   double cpu_duration_us) {
  (void)task;
  (void)lane;
  (void)cpu_duration_us;
}

void RuntimeBase::mark_ready(TaskRecord* task) {
  task->state.store(TaskState::ready, std::memory_order_release);
  telemetry_->recorder().record(flightrec::EventType::task_ready, task->id);
  for (TaskObserver* obs : observers_) obs->on_ready(task->id);
}

void RuntimeBase::route_released(int worker, std::span<TaskRecord*> released) {
  for (TaskRecord* task : released) {
    mark_ready(task);
    const int hint = task->desc.locality_hint >= 0 ? task->desc.locality_hint
                                                   : worker;
    dispatch_ready(task, hint);
  }
}

TaskRecord* RuntimeBase::claim_task(int lane) {
  TS_PROF_SCOPE(claim);
  // The dispatch window (popped from the ready pool but not yet counted as
  // running) must be visible to the simulation layer's safety predicate;
  // cover it with the bookkeeping counter.
  bookkeeping_.fetch_add(1, std::memory_order_acq_rel);
  TaskRecord* task = pop_ready(lane);
  if (task != nullptr) {
    telemetry_->recorder().record(flightrec::EventType::task_dispatch,
                                  task->id, lane);
    task->state.store(TaskState::running, std::memory_order_release);
    lane_executing_[static_cast<std::size_t>(lane)]->store(
        true, std::memory_order_release);
    running_.fetch_add(1, std::memory_order_acq_rel);
    ready_depth_.set(static_cast<double>(ready_count()));
  }
  bookkeeping_.fetch_sub(1, std::memory_order_acq_rel);
  return task;
}

void RuntimeBase::worker_loop(int lane) {
  // Inherit the runtime's telemetry context for the thread's lifetime:
  // every metric handle, profiler probe and flight-recorder event on this
  // worker lands in the owning engine's context, whatever thread pool
  // constructed the runtime.  The worker joins (stop_workers) before the
  // runtime — and therefore before the context — is destroyed.
  telemetry::TelemetryScope telemetry_scope(*telemetry_);
  prof::set_thread_name("worker-" + std::to_string(lane));
  LanePark& park = *parks_[static_cast<std::size_t>(lane)];
  for (;;) {
    // Per-iteration root scope: all of this lane's instrumented time nests
    // under it, and it re-samples enabled() each pass so runs profiled
    // after the workers started are still fully bracketed.
    prof::ScopedPhase iteration_scope(prof::Phase::worker_iteration);
    TaskRecord* task = claim_task(lane);
    if (task != nullptr) {
      execute_task(task, lane);
      continue;
    }
    if (stop_flag_.load(std::memory_order_acquire)) return;
    // Park protocol: capture the epoch, advertise parked, then re-check the
    // pools and the stop flag.  A push that lands after the failed re-claim
    // observes parked == true, consumes it and bumps the epoch, so the wait
    // below returns immediately — no lost wakeup (DESIGN.md §9).
    const std::uint32_t epoch = park.epoch.load(std::memory_order_acquire);
    park.parked.store(true, std::memory_order_seq_cst);
    task = claim_task(lane);
    if (task != nullptr) {
      park.parked.store(false, std::memory_order_relaxed);
      execute_task(task, lane);
      continue;
    }
    if (stop_flag_.load(std::memory_order_acquire)) {
      park.parked.store(false, std::memory_order_relaxed);
      return;
    }
    {
      TS_PROF_SCOPE(idle_wait);
      park.epoch.wait(epoch, std::memory_order_acquire);
    }
    park.parked.store(false, std::memory_order_relaxed);
  }
}

void RuntimeBase::requeue_for_retry(TaskRecord* task, int lane,
                                    double cpu_duration_us) {
  retries_.fetch_add(1, std::memory_order_acq_rel);
  tasks_retried_.inc();
  telemetry_->recorder().record(
      flightrec::EventType::task_retry, task->id, lane, 0.0,
      static_cast<double>(task->attempts.load(std::memory_order_relaxed)));

  // Cover the requeue with the bookkeeping counter so the simulation
  // safety predicate never observes the task as neither ready nor running.
  bookkeeping_gauge_.set(static_cast<double>(
      bookkeeping_.fetch_add(1, std::memory_order_acq_rel) + 1));
  // Release any per-lane load the policy charged for this attempt (StarPU
  // dm/dmda) before the re-push charges the next one.
  on_task_finished(task, lane, cpu_duration_us);
  task->state.store(TaskState::ready, std::memory_order_release);
  const int hint = task->desc.locality_hint >= 0 ? task->desc.locality_hint
                                                 : lane;
  const int dest = push_ready(task, hint);
  ready_depth_.set(static_cast<double>(ready_count()));
  bookkeeping_gauge_.set(static_cast<double>(
      bookkeeping_.fetch_sub(1, std::memory_order_acq_rel) - 1));
  // This lane is about to look for its next task anyway, so the requeued
  // attempt only needs a wake when it landed somewhere a *parked* executor
  // should pick it up.
  wake_for_push(dest);

  // Same ordering constraint as the completion path: lane idle before the
  // running count drops.
  lane_executing_[static_cast<std::size_t>(lane)]->store(
      false, std::memory_order_release);
  running_.fetch_sub(1, std::memory_order_acq_rel);
  if (config_.yield_between_tasks) std::this_thread::yield();
}

void RuntimeBase::execute_task(TaskRecord* task, int lane) {
  // Everything here that is not the task body itself is scheduler
  // bookkeeping; the body opens its own phase so it is excluded.
  TS_PROF_SCOPE(bookkeeping);
  // Injected dispatch latency: the task is counted running but has not yet
  // sampled the virtual clock — the §V-E race window, widened on demand.
  if (config_.dispatch_delay_us > 0.0) sleep_us(config_.dispatch_delay_us);

  const double start_wall = wall_time_us();
  const double start_cpu = thread_cpu_time_us();
  telemetry_->recorder().record(flightrec::EventType::task_start, task->id,
                                lane);
  for (TaskObserver* obs : observers_) {
    obs->on_start(task->id, task->desc.kernel, lane, start_wall, start_cpu);
  }

  TaskContext ctx{task->id, lane, this};
  ctx.attempt = task->attempts.load(std::memory_order_relaxed);
  ctx.poisoned = task->poisoned.load(std::memory_order_acquire);
  // The producer-completion part of the runnable floor, folded under the
  // tracker lock before this task was released (or at registration for
  // already-finished producers).
  ctx.virtual_floor_us = task->virtual_floor_us;

  bool failed = false;
  try {
    TS_PROF_SCOPE(task_body);
    if (lane_is_accelerator(lane) && accel_capable(task->desc)) {
      task->desc.accel_function(ctx);
    } else {
      task->desc.function(ctx);
    }
  } catch (const TaskFailure&) {
    failed = true;
    failed_attempts_.fetch_add(1, std::memory_order_acq_rel);
    tasks_failed_.inc();
    const int attempts =
        task->attempts.fetch_add(1, std::memory_order_acq_rel) + 1;
    telemetry_->recorder().record(flightrec::EventType::task_failed, task->id,
                                  lane, 0.0,
                                  static_cast<double>(attempts - 1));
    if (attempts <= config_.max_task_retries) {
      // The retried attempt must not start before the failed attempt's
      // virtual completion; no producer can fold concurrently (they all
      // finished before this task became ready), so a plain max is safe.
      task->virtual_floor_us =
          std::max(task->virtual_floor_us, ctx.virtual_end_us);
      requeue_for_retry(task, lane, thread_cpu_time_us() - start_cpu);
      return;
    }
    // Retry budget exhausted: this completion is final.  Poison so the
    // successors are skipped; under FailureMode::abort additionally store
    // the structured error for wait_all() to rethrow after the drain.
    task->poisoned.store(true, std::memory_order_release);
    if (config_.failure_mode == FailureMode::abort) {
      record_fatal(std::make_exception_ptr(TaskFailure(
          task->id, attempts - 1,
          "task " + std::to_string(task->id) + " (" + task->desc.kernel +
              ") failed " + std::to_string(attempts) +
              " attempts, retry budget " +
              std::to_string(config_.max_task_retries) + " exhausted")));
    }
  } catch (const DeadlineExceeded& deadline) {
    // Virtual-time deadline breach: the engine already truncated and
    // committed the span at the deadline, so the timeline is consistent —
    // but the task's output never materialized.  Never retried (the
    // attempt consumed its whole deadline budget); poison the successor
    // subtree, and under DeadlineMode::abort fail the run.
    failed = true;
    task->poisoned.store(true, std::memory_order_release);
    if (deadline.fatal()) record_fatal(std::current_exception());
  } catch (...) {
    // Non-fault error (e.g. SimulationStalled from the watchdog, or a bug
    // in a kernel body): abort the run but keep draining so wait_all can
    // rethrow from a quiesced scheduler instead of deadlocking.
    failed = true;
    task->poisoned.store(true, std::memory_order_release);
    record_fatal(std::current_exception());
  }

  const bool skipped = failed || ctx.poisoned;
  if (skipped) {
    tasks_poisoned_.inc();
    telemetry_->recorder().record(flightrec::EventType::task_poisoned,
                                  task->id, lane);
    std::lock_guard<std::mutex> lock(state_mutex_);
    poisoned_ids_.push_back(task->id);
  }

  // Injected completion latency: the body has returned but the completion
  // bookkeeping (and the successor release) has not started yet.
  if (config_.bookkeeping_delay_us > 0.0) sleep_us(config_.bookkeeping_delay_us);

  const double end_wall = wall_time_us();
  const double end_cpu = thread_cpu_time_us();
  telemetry_->recorder().record(flightrec::EventType::task_finish, task->id,
                                lane);

  // Completion bookkeeping: visible through bookkeeping_in_flight() until
  // every released successor is routed to a ready pool.
  bookkeeping_gauge_.set(static_cast<double>(
      bookkeeping_.fetch_add(1, std::memory_order_acq_rel) + 1));

  for (TaskObserver* obs : observers_) {
    obs->on_finish(task->id, task->desc.kernel, lane, start_wall, end_wall,
                   start_cpu, end_cpu);
  }

  on_task_finished(task, lane, end_cpu - start_cpu);

  // Publish this task's virtual completion before the tracker walks its
  // successors: on_complete folds it into their floors under its lock.
  task->virtual_end_us.store(
      std::max(task->virtual_end_us.load(std::memory_order_relaxed),
               ctx.virtual_end_us),
      std::memory_order_release);

  std::vector<TaskRecord*> released;
  tracker_.on_complete(task, released,
                       task->poisoned.load(std::memory_order_acquire));
  if (!released.empty()) {
    // route_released dispatches each task with its own targeted wake; no
    // pool-wide notification follows.
    route_released(lane, released);
  }

  executed_per_lane_[static_cast<std::size_t>(lane)]->fetch_add(
      1, std::memory_order_relaxed);

  bool all_done = false;
  bool window_reopened = false;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    TS_ASSERT(pending_ > 0, "completion without a pending task");
    --pending_;
    all_done = pending_ == 0;
    // Refill policy (RuntimeConfig::window_refill): waking the throttled
    // submitter the instant one slot frees costs a master wake + context
    // switch per completion — QUARK's eager semantics, and the default.
    // A refill > 1 batches the wakes (same in-flight cap, enforced by the
    // wait predicate pending_ < window_size; this only chooses when to
    // bother waking the master).
    const std::size_t refill =
        std::max<std::size_t>(1, config_.window_refill);
    window_reopened = config_.window_size > 0 &&
                      submitter_waiting_.load(std::memory_order_relaxed) &&
                      pending_ + refill <= config_.window_size;
  }
  // done_cv_ only has master-side waiters (throttled submitter, draining
  // non-participating master); signal on the condition edges instead of on
  // every completion.
  if (all_done || window_reopened) done_cv_.notify_all();
  if (all_done) wake_all_lanes();  // release a parked participating master

  tasks_completed_.inc();
  bookkeeping_gauge_.set(static_cast<double>(
      bookkeeping_.fetch_sub(1, std::memory_order_acq_rel) - 1));
  // Mark the lane idle BEFORE dropping the running count: the quiescence
  // predicate treats an executing lane as unreachable for ready tasks, so
  // between these two stores at least one of "lane busy" (masks ready
  // tasks bound to it) and "running > queued" must hold or a simulated
  // return could slip through while this lane is about to pick up work.
  lane_executing_[static_cast<std::size_t>(lane)]->store(
      false, std::memory_order_release);
  running_.fetch_sub(1, std::memory_order_acq_rel);

  if (config_.yield_between_tasks) std::this_thread::yield();
}

void RuntimeBase::wait_all() {
  // Exclusive time here is the master's blocked/drain time; a participating
  // master's claims and task executions open their own nested phases.
  TS_PROF_SCOPE(wait_all);
  if (config_.master_participates) {
    master_active_.store(true, std::memory_order_release);
    LanePark& park = *parks_[0];
    for (;;) {
      TaskRecord* task = claim_task(0);
      if (task != nullptr) {
        execute_task(task, 0);
        continue;
      }
      if (stop_flag_.load(std::memory_order_acquire)) break;
      // Same park protocol as worker_loop, with one extra wake source: the
      // generation draining.  The epoch is captured before the pending_
      // check, and the completion path bumps every lane's epoch on the
      // pending_ == 0 edge (after its own decrement under state_mutex_), so
      // a drain that races the check still cancels the wait.
      const std::uint32_t epoch = park.epoch.load(std::memory_order_acquire);
      park.parked.store(true, std::memory_order_seq_cst);
      task = claim_task(0);
      if (task != nullptr) {
        park.parked.store(false, std::memory_order_relaxed);
        execute_task(task, 0);
        continue;
      }
      bool drained = false;
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        drained = pending_ == 0 || stop_;
      }
      if (drained) {
        park.parked.store(false, std::memory_order_relaxed);
        break;
      }
      // Master blocked time stays attributed to the wait_all phase.
      park.epoch.wait(epoch, std::memory_order_acquire);
      park.parked.store(false, std::memory_order_relaxed);
    }
    master_active_.store(false, std::memory_order_release);
  } else {
    std::unique_lock<std::mutex> lock(state_mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
  }

  // Quiesce the last worker's post-completion instructions before freeing
  // this generation's records.
  while (running_.load(std::memory_order_acquire) != 0 ||
         bookkeeping_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  // Auxiliary threads have all passed their pending_ decrement (pending_
  // drained above), so these joins only wait out thread teardown.
  join_auxiliary_threads();
  tracker_.reset();
  records_.clear();

  // Fault statistics (failed_attempt_count / poisoned_tasks) survive the
  // barrier so callers can inspect the failed generation; only the stored
  // fatal error is consumed here.
  std::exception_ptr fatal;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    fatal = std::exchange(fatal_error_, nullptr);
  }
  if (fatal) std::rethrow_exception(fatal);
}

}  // namespace tasksim::sched
