// ompss_runtime.hpp — OmpSs/Nanos++-flavoured scheduler (paper §IV-A1).
//
// OmpSs is the compiler-assisted member of the trio (Mercurium lowers
// #pragma-annotated code to Nanos++ runtime calls); TaskSim reproduces the
// runtime side.  Features mirrored from Nanos++:
//
//   * in/out/inout dependence clauses — the `in()`/`out()`/`inout()` helpers
//     in sched/access.hpp are the direct analogue,
//   * ready-queue policies: breadth-first (FIFO, the Nanos++ default) and
//     work-first (LIFO),
//   * the immediate-successor optimization: a worker that finishes a task
//     directly continues with one of the tasks this completion released,
//     bypassing the global queue for locality,
//   * throttling of live tasks (RuntimeConfig::window_size).
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "sched/ready_pools.hpp"
#include "sched/runtime_base.hpp"

namespace tasksim::sched {

enum class OmpssPolicy { breadth_first, work_first };

const char* to_string(OmpssPolicy policy);
OmpssPolicy parse_ompss_policy(const std::string& name);

struct OmpssOptions {
  OmpssPolicy policy = OmpssPolicy::breadth_first;
  bool immediate_successor = true;
};

class OmpssRuntime final : public RuntimeBase {
 public:
  OmpssRuntime(RuntimeConfig config, OmpssOptions options = {});
  ~OmpssRuntime() override;

  std::string name() const override;

  /// Tasks parked in an immediate-successor slot are only reachable by the
  /// slot's own (idle) worker.
  bool ready_task_reachable() const override;

 protected:
  int push_ready(TaskRecord* task, int worker_hint) override;
  TaskRecord* pop_ready(int worker) override;
  std::size_t ready_count() const override;
  void route_released(int worker, std::span<TaskRecord*> released) override;

 private:
  OmpssOptions options_;
  CentralQueue queue_;
  /// Per-lane immediate-successor slot; owned (set and consumed) by that
  /// lane's worker, which makes a plain atomic pointer sufficient.
  std::vector<std::unique_ptr<std::atomic<TaskRecord*>>> immediate_;
  std::atomic<std::size_t> immediate_count_{0};
  metrics::Counter immediate_hits_;  ///< sched.immediate_successor_hits
};

}  // namespace tasksim::sched
