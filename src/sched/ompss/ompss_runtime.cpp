#include "sched/ompss/ompss_runtime.hpp"

#include "support/error.hpp"
#include "support/flight_recorder.hpp"

namespace tasksim::sched {

const char* to_string(OmpssPolicy policy) {
  switch (policy) {
    case OmpssPolicy::breadth_first: return "bf";
    case OmpssPolicy::work_first: return "wf";
  }
  return "?";
}

OmpssPolicy parse_ompss_policy(const std::string& name) {
  if (name == "bf" || name == "breadth_first") return OmpssPolicy::breadth_first;
  if (name == "wf" || name == "work_first") return OmpssPolicy::work_first;
  throw InvalidArgument("unknown OmpSs policy: '" + name +
                        "' (valid: bf (alias: breadth_first), wf (alias: "
                        "work_first))");
}

OmpssRuntime::OmpssRuntime(RuntimeConfig config, OmpssOptions options)
    : RuntimeBase(config),
      options_(options),
      queue_(options.policy == OmpssPolicy::breadth_first
                 ? QueueDiscipline::fifo
                 : QueueDiscipline::lifo),
      immediate_hits_(metrics::counter("sched.immediate_successor_hits")) {
  immediate_.reserve(static_cast<std::size_t>(config.workers));
  for (int i = 0; i < config.workers; ++i) {
    immediate_.push_back(std::make_unique<std::atomic<TaskRecord*>>(nullptr));
  }
  start_workers();
}

OmpssRuntime::~OmpssRuntime() { stop_workers(); }

std::string OmpssRuntime::name() const {
  return std::string("ompss/") + to_string(options_.policy);
}

int OmpssRuntime::push_ready(TaskRecord* task, int /*worker_hint*/) {
  queue_.push(task);
  return -1;  // central queue: any executor can pop it
}

TaskRecord* OmpssRuntime::pop_ready(int worker) {
  auto& slot = *immediate_[static_cast<std::size_t>(worker)];
  if (TaskRecord* task = slot.exchange(nullptr, std::memory_order_acq_rel)) {
    immediate_count_.fetch_sub(1, std::memory_order_acq_rel);
    return task;
  }
  return queue_.pop();
}

std::size_t OmpssRuntime::ready_count() const {
  return queue_.size() + immediate_count_.load(std::memory_order_acquire);
}

bool OmpssRuntime::ready_task_reachable() const {
  if (queue_.size() > 0 && any_idle_executor()) return true;
  for (int lane = 0; lane < worker_count(); ++lane) {
    if (immediate_[static_cast<std::size_t>(lane)]->load(
            std::memory_order_acquire) != nullptr &&
        executor_idle(lane)) {
      return true;
    }
  }
  return false;
}

void OmpssRuntime::route_released(int worker,
                                  std::span<TaskRecord*> released) {
  std::size_t start = 0;
  if (options_.immediate_successor && !released.empty()) {
    auto& slot = *immediate_[static_cast<std::size_t>(worker)];
    if (slot.load(std::memory_order_acquire) == nullptr) {
      TaskRecord* first = released[0];
      mark_ready(first);
      recorder().record(flightrec::EventType::sched_immediate, first->id,
                        worker);
      immediate_count_.fetch_add(1, std::memory_order_acq_rel);
      slot.store(first, std::memory_order_release);
      immediate_hits_.inc();
      start = 1;
    }
  }
  // The immediate-successor slot needs no wakeup — the finishing worker is
  // the only consumer and pops it on its next claim.  The rest go through
  // the shared queue with a targeted wake each.
  for (std::size_t i = start; i < released.size(); ++i) {
    mark_ready(released[i]);
    dispatch_ready(released[i], worker);
  }
}

}  // namespace tasksim::sched
