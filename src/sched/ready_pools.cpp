#include "sched/ready_pools.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace tasksim::sched {

CentralQueue::CentralQueue(QueueDiscipline discipline)
    : discipline_(discipline) {}

void CentralQueue::push(TaskRecord* task) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (discipline_) {
    case QueueDiscipline::fifo:
      queue_.push_back(task);
      break;
    case QueueDiscipline::lifo:
      queue_.push_front(task);
      break;
    case QueueDiscipline::priority: {
      // Keep descending by priority; equal priorities stay FIFO by
      // inserting after the last equal element.
      auto it = std::upper_bound(
          queue_.begin(), queue_.end(), task,
          [](const TaskRecord* a, const TaskRecord* b) {
            return a->desc.priority > b->desc.priority;
          });
      queue_.insert(it, task);
      break;
    }
  }
  size_.fetch_add(1, std::memory_order_release);
}

TaskRecord* CentralQueue::pop() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) return nullptr;
  TaskRecord* task = queue_.front();
  queue_.pop_front();
  size_.fetch_sub(1, std::memory_order_release);
  return task;
}

StealingDeques::StealingDeques(int lanes, std::uint64_t seed)
    : rng_(seed), steals_(metrics::counter("sched.tasks_stolen")) {
  TS_REQUIRE(lanes >= 1, "need at least one lane");
  deques_.reserve(static_cast<std::size_t>(lanes));
  for (int i = 0; i < lanes; ++i) {
    deques_.push_back(std::make_unique<Lane>());
  }
}

void StealingDeques::push(int lane, TaskRecord* task) {
  TS_REQUIRE(lane >= 0 && lane < lanes(), "lane out of range");
  Lane& l = *deques_[static_cast<std::size_t>(lane)];
  {
    std::lock_guard<std::mutex> lock(l.mutex);
    if (task->desc.priority > 0) {
      l.deque.push_front(task);
    } else {
      l.deque.push_back(task);
    }
  }
  size_.fetch_add(1, std::memory_order_release);
}

TaskRecord* StealingDeques::pop_own(int lane) {
  TS_REQUIRE(lane >= 0 && lane < lanes(), "lane out of range");
  Lane& l = *deques_[static_cast<std::size_t>(lane)];
  std::lock_guard<std::mutex> lock(l.mutex);
  if (l.deque.empty()) return nullptr;
  TaskRecord* task = l.deque.front();
  l.deque.pop_front();
  size_.fetch_sub(1, std::memory_order_release);
  return task;
}

std::size_t StealingDeques::size_of(int lane) const {
  TS_REQUIRE(lane >= 0 && lane < lanes(), "lane out of range");
  Lane& l = *deques_[static_cast<std::size_t>(lane)];
  std::lock_guard<std::mutex> lock(l.mutex);
  return l.deque.size();
}

TaskRecord* StealingDeques::steal(int thief) {
  if (size_.load(std::memory_order_acquire) == 0) return nullptr;
  const int n = lanes();
  int start;
  {
    std::lock_guard<std::mutex> lock(rng_mutex_);
    start = static_cast<int>(rng_.uniform_index(static_cast<std::uint64_t>(n)));
  }
  for (int i = 0; i < n; ++i) {
    const int victim = (start + i) % n;
    if (victim == thief) continue;
    Lane& l = *deques_[static_cast<std::size_t>(victim)];
    std::lock_guard<std::mutex> lock(l.mutex);
    if (l.deque.empty()) continue;
    TaskRecord* task = l.deque.back();
    l.deque.pop_back();
    size_.fetch_sub(1, std::memory_order_release);
    steals_.inc();
    return task;
  }
  return nullptr;
}

}  // namespace tasksim::sched
