// task.hpp — task descriptor and runtime-internal task record.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sched/access.hpp"

namespace tasksim::sched {

using TaskId = std::uint64_t;

class Runtime;

/// Execution context handed to a running task function.
struct TaskContext {
  TaskId id = 0;
  int worker = -1;        ///< index of the executing worker
  Runtime* runtime = nullptr;
  int attempt = 0;        ///< 0 on the first try, +1 per fault retry
  /// True when a producer (or this task itself) exhausted its retry
  /// budget under FailureMode::poison: the body must not do real work.
  /// The simulation layer records a zero-length "skipped" trace event;
  /// real-mode submitters skip the kernel body entirely.
  bool poisoned = false;
  /// Simulation only: the latest virtual completion among this task's
  /// producers (the dependence part of the §V-E runnable floor).  The
  /// lookahead engine uses it to place starts when the global clock is
  /// allowed to lag behind released completions; 0 outside lookahead runs.
  double virtual_floor_us = 0.0;
  /// Simulation only (out-parameter): the body stores its virtual
  /// completion here so the runtime can fold it into successors' floors.
  double virtual_end_us = 0.0;
};

using TaskFunction = std::function<void(TaskContext&)>;

/// What the developer submits: a kernel body plus its data references.
struct TaskDescriptor {
  std::string kernel;      ///< kernel class name (trace/model key)
  TaskFunction function;
  AccessList accesses;
  int priority = 0;        ///< larger = more urgent (policy-dependent)
  int locality_hint = -1;  ///< preferred worker, -1 = none
  /// Optional accelerator implementation (StarPU codelets, paper §IV-A2).
  /// When non-empty the task may be placed on an accelerator lane, where
  /// this function runs instead of `function`.  Empty = CPU-only.
  TaskFunction accel_function;
};

inline bool accel_capable(const TaskDescriptor& desc) {
  return static_cast<bool>(desc.accel_function);
}

/// Lifecycle of a task inside a runtime.
enum class TaskState : std::uint8_t {
  submitted,  ///< registered, waiting on dependences
  ready,      ///< all dependences satisfied, waiting for a worker
  running,    ///< a worker is executing the function
  finished,
};

/// Internal bookkeeping record.  Created at submit, owned by the runtime,
/// freed after wait_all() completes a generation.
struct TaskRecord {
  TaskId id = 0;
  TaskDescriptor desc;
  std::atomic<int> remaining_deps{0};
  std::atomic<TaskState> state{TaskState::submitted};
  std::vector<TaskRecord*> successors;  ///< filled under the tracker lock
  /// Scratch for scheduler policies (e.g. the expected duration StarPU's
  /// dm policy charged to a worker at enqueue time).
  double policy_expected_us = 0.0;
  int policy_lane = -1;
  /// Fault-injection state: failed attempts so far (the next execution is
  /// attempt `attempts`), and whether the task was poisoned — either its
  /// own retry budget ran out or a poisoned producer propagated to it.
  std::atomic<int> attempts{0};
  std::atomic<bool> poisoned{false};
  /// Simulation lookahead support.  The runnable floor (max virtual
  /// completion over producers seen so far) is maintained under the
  /// dependency tracker's lock: folded at link time for already-finished
  /// producers and again at each producer's on_complete.
  double virtual_floor_us = 0.0;
  /// This task's own virtual completion, published by the owning worker
  /// (release) just before on_complete.  Atomic because a submitter may
  /// read it at link time while the producer is still running — that read
  /// may legitimately see a stale value (the producer's on_complete fold
  /// is authoritative for live dependences); atomicity only keeps it from
  /// being torn.
  std::atomic<double> virtual_end_us{0.0};
};

}  // namespace tasksim::sched
