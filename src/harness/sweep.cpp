#include "harness/sweep.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "harness/report.hpp"
#include "stats/descriptive.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/sysinfo.hpp"
#include "support/telemetry.hpp"
#include "trace/chrome_export.hpp"

namespace tasksim::harness {

namespace {

double wall_now_us() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::micro>(
             clock::now().time_since_epoch())
      .count();
}

/// JSON numbers must be finite; clamp the NaN/inf edge cases (empty
/// samples, zero wall time) to 0 rather than emit invalid documents.
double finite(double value) { return std::isfinite(value) ? value : 0.0; }

std::string json_num(double value) {
  return strprintf("%.6g", finite(value));
}

/// Fleet-level pooled blame: sum the per-engine category totals (completed
/// engines that carried a BlameReport) and normalize by the pooled
/// makespan.  Returns a `"blame":{...}` JSON fragment, or `"blame":null`
/// when no engine ran with blame enabled — consumers degrade gracefully.
std::string pooled_blame_fragment(const std::vector<EngineRunResult>& engines) {
  std::array<double, trace::kBlameCategoryCount> totals{};
  double makespan_sum = 0.0;
  std::size_t counted = 0;
  for (const EngineRunResult& engine : engines) {
    if (!engine.ok || !engine.blame) continue;
    ++counted;
    makespan_sum += engine.blame->makespan_us;
    for (int c = 0; c < trace::kBlameCategoryCount; ++c) {
      totals[static_cast<std::size_t>(c)] +=
          engine.blame->totals[static_cast<std::size_t>(c)];
    }
  }
  if (counted == 0) return "\"blame\":null";
  std::ostringstream os;
  os << "\"blame\":{\"engines\":" << counted
     << ",\"makespan_sum_us\":" << json_num(makespan_sum) << ",\"totals\":{";
  for (int c = 0; c < trace::kBlameCategoryCount; ++c) {
    if (c > 0) os << ",";
    os << "\"" << trace::to_string(static_cast<trace::BlameCategory>(c))
       << "\":" << json_num(totals[static_cast<std::size_t>(c)]);
  }
  os << "},\"shares\":{";
  for (int c = 0; c < trace::kBlameCategoryCount; ++c) {
    if (c > 0) os << ",";
    os << "\"" << trace::to_string(static_cast<trace::BlameCategory>(c))
       << "\":"
       << json_num(makespan_sum > 0.0
                       ? totals[static_cast<std::size_t>(c)] / makespan_sum
                       : 0.0);
  }
  os << "}}";
  return os.str();
}

/// Engine progress for the streamer / aggregator.
enum EngineStatus : int {
  status_pending = 0,
  status_running = 1,
  status_done = 2,
  status_failed = 3,
};

}  // namespace

void SweepConfig::validate() const {
  base.validate();
  TS_REQUIRE(engines >= 1, "a sweep needs at least one engine");
  TS_REQUIRE(concurrency >= 0, "sweep concurrency must be >= 0 (0 = auto)");
  TS_REQUIRE(stream_interval_us >= 0.0,
             "the stream interval must be >= 0 (0 = no stream)");
  TS_REQUIRE(stream_interval_us == 0.0 || !stream_path.empty(),
             "a positive stream interval needs a stream_path to write to");
}

void SweepAggregator::add(EngineRunResult result) {
  std::lock_guard<std::mutex> lock(mutex_);
  results_.push_back(std::move(result));
}

std::size_t SweepAggregator::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return results_.size();
}

metrics::Snapshot SweepAggregator::merged_metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const EngineRunResult*> ordered;
  ordered.reserve(results_.size());
  for (const EngineRunResult& result : results_) ordered.push_back(&result);
  std::sort(ordered.begin(), ordered.end(),
            [](const EngineRunResult* a, const EngineRunResult* b) {
              return a->index < b->index;
            });
  metrics::Snapshot merged;
  for (const EngineRunResult* result : ordered) merged.merge(result->metrics);
  return merged;
}

FleetStats SweepAggregator::fleet_stats(double sweep_wall_us) const {
  FleetStats stats;
  std::vector<double> makespans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.engines = static_cast<int>(results_.size());
    for (const EngineRunResult& result : results_) {
      if (result.ok) {
        ++stats.completed;
        makespans.push_back(result.makespan_us);
      } else {
        ++stats.failed;
      }
      stats.tasks_total += result.tasks;
    }
  }
  stats.wall_us = sweep_wall_us;
  if (!makespans.empty()) {
    std::sort(makespans.begin(), makespans.end());
    stats.makespan_p50_us = stats::quantile_sorted(makespans, 0.50);
    stats.makespan_p95_us = stats::quantile_sorted(makespans, 0.95);
    stats.makespan_p99_us = stats::quantile_sorted(makespans, 0.99);
    stats.makespan_min_us = makespans.front();
    stats.makespan_max_us = makespans.back();
    double sum = 0.0;
    for (double m : makespans) sum += m;
    stats.makespan_mean_us = sum / static_cast<double>(makespans.size());
  }
  const metrics::Snapshot merged = merged_metrics();
  auto it = merged.histograms.find("sim.queue.wait_us");
  if (it != merged.histograms.end() && it->second.count > 0) {
    stats.queue_wait_p50_us = it->second.quantile(0.50);
    stats.queue_wait_p95_us = it->second.quantile(0.95);
    stats.queue_wait_p99_us = it->second.quantile(0.99);
  }
  if (sweep_wall_us > 0.0) {
    const double wall_s = sweep_wall_us * 1e-6;
    stats.throughput_tasks_per_s =
        static_cast<double>(stats.tasks_total) / wall_s;
    stats.throughput_engines_per_s =
        static_cast<double>(stats.completed) / wall_s;
  }
  return stats;
}

std::vector<EngineRunResult> SweepAggregator::take_results() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<EngineRunResult> out = std::move(results_);
  results_.clear();
  std::sort(out.begin(), out.end(),
            [](const EngineRunResult& a, const EngineRunResult& b) {
              return a.index < b.index;
            });
  return out;
}

std::string SweepResult::to_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"tasksim-sweep-report-v1\"";
  os << ",\"engines\":" << stats.engines;
  os << ",\"completed\":" << stats.completed;
  os << ",\"failed\":" << stats.failed;
  os << ",\"fleet\":{";
  os << "\"makespan_us\":{"
     << "\"p50\":" << json_num(stats.makespan_p50_us)
     << ",\"p95\":" << json_num(stats.makespan_p95_us)
     << ",\"p99\":" << json_num(stats.makespan_p99_us)
     << ",\"mean\":" << json_num(stats.makespan_mean_us)
     << ",\"min\":" << json_num(stats.makespan_min_us)
     << ",\"max\":" << json_num(stats.makespan_max_us) << "}";
  os << ",\"queue_wait_us\":{"
     << "\"p50\":" << json_num(stats.queue_wait_p50_us)
     << ",\"p95\":" << json_num(stats.queue_wait_p95_us)
     << ",\"p99\":" << json_num(stats.queue_wait_p99_us) << "}";
  os << ",\"tasks_total\":" << stats.tasks_total;
  os << ",\"wall_us\":" << json_num(stats.wall_us);
  os << ",\"throughput_tasks_per_s\":" << json_num(stats.throughput_tasks_per_s);
  os << ",\"throughput_engines_per_s\":"
     << json_num(stats.throughput_engines_per_s);
  os << "}";
  os << ",\"stream_lines\":" << stream_lines;
  os << "," << pooled_blame_fragment(engines);
  os << ",\"per_engine\":[";
  for (std::size_t i = 0; i < engines.size(); ++i) {
    const EngineRunResult& engine = engines[i];
    if (i > 0) os << ",";
    os << "{\"index\":" << engine.index;
    os << ",\"engine_id\":" << engine.engine_id;
    os << ",\"label\":\"" << trace::escape_json(engine.label) << "\"";
    os << ",\"ok\":" << (engine.ok ? "true" : "false");
    os << ",\"makespan_us\":" << json_num(engine.makespan_us);
    os << ",\"wall_us\":" << json_num(engine.wall_us);
    os << ",\"gflops\":" << json_num(engine.gflops);
    os << ",\"tasks\":" << engine.tasks;
    os << ",\"quiescence_timeouts\":" << engine.quiescence_timeouts;
    if (engine.blame) {
      os << ",\"blame_coverage\":" << json_num(engine.blame->coverage());
    }
    if (!engine.error.empty()) {
      os << ",\"error\":\"" << trace::escape_json(engine.error) << "\"";
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string sweep_report(const SweepResult& result) {
  std::ostringstream os;
  TextTable table;
  table.set_headers({"engine", "label", "ok", "makespan", "wall", "Gflop/s",
                     "tasks", "error"});
  for (const EngineRunResult& engine : result.engines) {
    table.add_row({std::to_string(engine.index), engine.label,
                   engine.ok ? "yes" : "NO",
                   format_duration_us(engine.makespan_us),
                   format_duration_us(engine.wall_us),
                   strprintf("%.2f", engine.gflops),
                   std::to_string(engine.tasks),
                   engine.error.empty() ? "-" : engine.error});
  }
  os << table.to_string();
  const FleetStats& stats = result.stats;
  os << strprintf(
      "fleet: %d engines (%d ok, %d failed), %zu tasks in %s "
      "(%.1f tasks/s, %.2f engines/s)\n",
      stats.engines, stats.completed, stats.failed, stats.tasks_total,
      format_duration_us(stats.wall_us).c_str(), stats.throughput_tasks_per_s,
      stats.throughput_engines_per_s);
  os << strprintf(
      "makespan: p50 %s  p95 %s  p99 %s  (mean %s, min %s, max %s)\n",
      format_duration_us(stats.makespan_p50_us).c_str(),
      format_duration_us(stats.makespan_p95_us).c_str(),
      format_duration_us(stats.makespan_p99_us).c_str(),
      format_duration_us(stats.makespan_mean_us).c_str(),
      format_duration_us(stats.makespan_min_us).c_str(),
      format_duration_us(stats.makespan_max_us).c_str());
  os << strprintf("queue wait: p50 %s  p95 %s  p99 %s\n",
                  format_duration_us(stats.queue_wait_p50_us).c_str(),
                  format_duration_us(stats.queue_wait_p95_us).c_str(),
                  format_duration_us(stats.queue_wait_p99_us).c_str());
  return os.str();
}

namespace {

/// The JSONL time-series streamer.  Runs on its own (unbound) thread;
/// reads engine progress through the status atomics and each context's
/// pre-resolved "sim.tasks_executed" counter handle (Counter::value()
/// merges shards under that context's registry lock — safe concurrently
/// with the engines).  One JSON document per line, flushed per tick, so
/// `tail -f stream.jsonl | jq` follows a live sweep.
class SweepStreamer {
 public:
  SweepStreamer(const SweepConfig& config,
                const std::vector<std::unique_ptr<telemetry::TelemetryContext>>&
                    contexts,
                const std::vector<std::atomic<int>>& status, double t0_us)
      : config_(config), contexts_(contexts), status_(status), t0_us_(t0_us) {
    for (const auto& context : contexts_) {
      executed_.push_back(context->metrics().counter("sim.tasks_executed"));
    }
    out_.open(config.stream_path, std::ios::trunc);
    if (!out_) {
      throw IoError(errno_detail("cannot open sweep stream '" +
                                 config.stream_path + "'"));
    }
    thread_ = std::thread([this] { loop(); });
  }

  /// Stop the ticker, emit the final (fleet-drained) line, and join.
  /// `final_extra` is a ready-made JSON fragment (e.g. the pooled blame
  /// section) appended to the final line only — mid-run ticks cannot carry
  /// it because blame reports exist only after an engine completes.
  std::size_t finish(const std::string& final_extra = std::string()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    final_extra_ = final_extra;
    emit_tick();
    out_.flush();
    return lines_;
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto interval = std::chrono::duration<double, std::micro>(
        config_.stream_interval_us);
    while (!stop_) {
      if (cv_.wait_for(lock, interval, [this] { return stop_; })) break;
      lock.unlock();
      emit_tick();
      lock.lock();
    }
  }

  void emit_tick() {
    const double now = wall_now_us();
    int pending = 0, running = 0, done = 0, failed = 0;
    for (const auto& status : status_) {
      switch (status.load(std::memory_order_acquire)) {
        case status_pending: ++pending; break;
        case status_running: ++running; break;
        case status_done: ++done; break;
        default: ++failed; break;
      }
    }
    std::uint64_t tasks_done = 0;
    for (const metrics::Counter& counter : executed_) {
      tasks_done += counter.value();
    }
    // First tick: the window is "since the sweep started", so the rate is
    // meaningful even when the whole sweep fits inside one interval.
    const double dt_us = now - (lines_ > 0 ? last_t_us_ : t0_us_);
    const double rate = dt_us > 0.0
                            ? static_cast<double>(tasks_done - last_tasks_) /
                                  (dt_us * 1e-6)
                            : 0.0;
    std::ostringstream os;
    os << "{\"schema\":\"tasksim-sweep-v1\"";
    os << ",\"t_us\":" << json_num(now - t0_us_);
    os << ",\"engines\":{\"total\":" << status_.size()
       << ",\"pending\":" << pending << ",\"running\":" << running
       << ",\"done\":" << done << ",\"failed\":" << failed << "}";
    os << ",\"tasks\":{\"done\":" << tasks_done
       << ",\"rate_per_s\":" << json_num(rate) << "}";
    os << ",\"phases\":{" << phase_shares() << "}";
    if (!final_extra_.empty()) os << "," << final_extra_;
    os << "}";
    out_ << os.str() << "\n";
    out_.flush();
    last_t_us_ = now;
    last_tasks_ = tasks_done;
    ++lines_;
  }

  /// Aggregate per-phase exclusive share of root-bracketed wall time
  /// across every engine profiler (empty unless profiling is armed).
  std::string phase_shares() const {
    if (!(config_.profile_engines || config_.base.profile)) return "";
    std::array<double, prof::kPhaseCount> excl{};
    double root_incl = 0.0;
    for (const auto& context : contexts_) {
      const prof::ProfileSnapshot snap = context->profiler().snapshot();
      const auto totals = snap.totals();
      for (std::size_t p = 0; p < prof::kPhaseCount; ++p) {
        const auto phase = static_cast<prof::Phase>(p);
        if (prof::phase_is_root(phase)) {
          root_incl += totals[p].incl_wall_us;
        } else {
          excl[p] += totals[p].excl_wall_us;
        }
      }
    }
    if (root_incl <= 0.0) return "";
    std::ostringstream os;
    bool first = true;
    for (std::size_t p = 0; p < prof::kPhaseCount; ++p) {
      const double share = excl[p] / root_incl;
      if (share < 0.0005) continue;
      if (!first) os << ",";
      first = false;
      os << "\"" << prof::phase_name(static_cast<prof::Phase>(p))
         << "\":" << json_num(share);
    }
    return os.str();
  }

  const SweepConfig& config_;
  const std::vector<std::unique_ptr<telemetry::TelemetryContext>>& contexts_;
  const std::vector<std::atomic<int>>& status_;
  const double t0_us_;
  std::vector<metrics::Counter> executed_;
  std::ofstream out_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::string final_extra_;  ///< set before the final emit_tick only
  std::size_t lines_ = 0;
  double last_t_us_ = 0.0;
  std::uint64_t last_tasks_ = 0;
};

}  // namespace

SweepResult run_sweep(const SweepConfig& config,
                      const sim::KernelModelSet& models) {
  config.validate();
  const int engines = config.engines;
  int pool = config.concurrency > 0
                 ? config.concurrency
                 : std::min(engines, hardware_threads());
  pool = std::max(1, std::min(pool, engines));

  // All contexts exist up front (not lazily per engine) so the streamer can
  // watch live counters for engines that have not started yet, and so every
  // engine's identity is fixed before any runs.  They are destroyed at the
  // end of this function, strictly after the driver pool joins — every
  // engine (and its worker threads, which hold shard pointers into the
  // context registry) dies inside run_simulated, well before its context.
  std::vector<std::unique_ptr<telemetry::TelemetryContext>> contexts;
  contexts.reserve(static_cast<std::size_t>(engines));
  for (int i = 0; i < engines; ++i) {
    contexts.push_back(std::make_unique<telemetry::TelemetryContext>(
        config.label_prefix + "-" + std::to_string(i)));
  }
  std::vector<std::atomic<int>> status(static_cast<std::size_t>(engines));

  SweepAggregator aggregator;
  const double t0_us = wall_now_us();

  std::unique_ptr<SweepStreamer> streamer;
  if (config.stream_interval_us > 0.0) {
    streamer =
        std::make_unique<SweepStreamer>(config, contexts, status, t0_us);
  }

  auto run_engine = [&](int index) {
    auto& slot = status[static_cast<std::size_t>(index)];
    slot.store(status_running, std::memory_order_release);
    telemetry::TelemetryContext& context =
        *contexts[static_cast<std::size_t>(index)];
    telemetry::TelemetryScope scope(context);

    ExperimentConfig engine_config = config.base;
    engine_config.seed = config.base.seed +
                         static_cast<std::uint64_t>(index) * config.seed_stride;
    engine_config.profile = config.base.profile || config.profile_engines;

    EngineRunResult engine_result;
    engine_result.index = index;
    engine_result.engine_id = context.engine_id();
    engine_result.label = context.label();
    try {
      RunResult run = run_simulated(engine_config, models);
      engine_result.ok = true;
      engine_result.makespan_us = run.makespan_us;
      engine_result.wall_us = run.wall_us;
      engine_result.gflops = run.gflops;
      engine_result.tasks = run.tasks;
      engine_result.quiescence_timeouts = run.quiescence_timeouts;
      engine_result.profile = run.profile;
      engine_result.blame = run.blame;
    } catch (const std::exception& e) {
      engine_result.ok = false;
      engine_result.error = e.what();
    }
    engine_result.metrics = context.metrics().snapshot();
    slot.store(engine_result.ok ? status_done : status_failed,
               std::memory_order_release);
    aggregator.add(std::move(engine_result));
  };

  std::atomic<int> next_index{0};
  std::vector<std::thread> drivers;
  drivers.reserve(static_cast<std::size_t>(pool));
  for (int t = 0; t < pool; ++t) {
    drivers.emplace_back([&] {
      for (;;) {
        const int index = next_index.fetch_add(1, std::memory_order_relaxed);
        if (index >= engines) return;
        run_engine(index);
      }
    });
  }
  for (std::thread& driver : drivers) driver.join();
  const double wall_us = wall_now_us() - t0_us;

  SweepResult result;
  result.fleet_metrics = aggregator.merged_metrics();
  result.stats = aggregator.fleet_stats(wall_us);
  result.engines = aggregator.take_results();
  // Finish the stream after the results are collected so the final line
  // can carry the fleet-pooled blame section (all drivers have joined, so
  // the tick itself is unchanged by the reorder).
  if (streamer) {
    result.stream_lines =
        streamer->finish(pooled_blame_fragment(result.engines));
  }
  streamer.reset();
  return result;
}

}  // namespace tasksim::harness
