// experiment.hpp — the calibrate → run → simulate → compare pipeline behind
// every evaluation figure (paper §VI).
//
// One ExperimentConfig describes a (scheduler, algorithm, matrix size, tile
// size, worker count) point.  The harness can:
//   * run_real       — execute the factorization for real, with the virtual
//                      platform rebuilding the dedicated-core timeline
//                      (DESIGN.md §3) and optional calibration sampling,
//   * run_simulated  — run the paper's simulation against fitted models,
//   * compare_real_vs_sim — the full pipeline for one point, producing the
//                      row format Figures 8–10 plot (real Gflop/s,
//                      simulated Gflop/s, percentage error).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "linalg/tile_matrix.hpp"
#include "sched/hedging.hpp"
#include "sched/runtime.hpp"
#include "sim/calibration.hpp"
#include "sim/fault_injection.hpp"
#include "sim/kernel_model.hpp"
#include "sim/sim_engine.hpp"
#include "support/profiler.hpp"
#include "trace/analysis.hpp"
#include "trace/blame.hpp"
#include "trace/lifecycle.hpp"
#include "trace/trace.hpp"

namespace tasksim::harness {

/// `chains` is not a factorization: NT independent serial chains of NT
/// uniform tasks (linalg/tile_chains), the constant-width synthetic the
/// lookahead ablation uses as the out-of-order completion best case.
enum class Algorithm { cholesky, qr, lu, chains };

const char* to_string(Algorithm algorithm);
Algorithm parse_algorithm(const std::string& name);

struct ExperimentConfig {
  std::string scheduler = "quark";
  Algorithm algorithm = Algorithm::qr;
  int n = 960;         ///< matrix dimension
  int nb = 96;         ///< tile size
  int workers = 4;     ///< worker lanes (real and simulated runs)
  std::size_t window_size = 0;
  bool master_participates = false;
  sim::RaceMitigation mitigation = sim::RaceMitigation::quiescence;
  std::uint64_t seed = 42;
  /// Verify the factorization numerically after a real run (O(n³) dense
  /// reconstruction — enable for small problems only).
  bool verify_numerics = false;
  /// Real executions per comparison point in compare_real_vs_sim; the run
  /// with the smallest makespan is the reference (standard
  /// noise-suppression on a shared host: interference only ever inflates
  /// a run).  Calibration samples pool across all repeats.
  int real_repeats = 1;
  /// Enable the flight recorder across run_simulated and attach the
  /// assembled lifecycle log to the result (race audit, makespan
  /// attribution, Chrome lifecycle spans).  Simulated runs only: real and
  /// simulated runs reuse the same dense task ids, so recording both would
  /// conflate their lifecycles.
  bool record_lifecycle = false;
  /// Per-thread flight-recorder ring capacity; 0 derives one from the
  /// task-count estimate for the configured problem.
  std::size_t recorder_capacity = 0;
  /// Fault injection for simulated runs: when set, run_simulated builds a
  /// FaultPlan from it and attaches it to the engine.  Ignored by run_real.
  std::optional<sim::FaultPlanConfig> faults;
  /// Retry budget per task for injected failures (see
  /// RuntimeConfig::max_task_retries).
  int max_task_retries = 3;
  /// What happens when a task exhausts its retry budget.
  sched::FailureMode failure_mode = sched::FailureMode::abort;
  /// Progress watchdog for simulated runs; 0 = disabled (see
  /// SimEngineOptions::watchdog_timeout_us).
  double watchdog_timeout_us = 0.0;
  /// Enable the wall-clock self-profiler (support/profiler) across the run
  /// and attach the merged per-thread phase snapshot to the result.  Works
  /// for both run_real and run_simulated.  The run arms the calling
  /// thread's *current* profiler: under a telemetry::TelemetryScope each
  /// run profiles into its own context (concurrent profiled runs are
  /// fine); unbound runs share the process-global profiler and must not
  /// overlap.
  bool profile = false;
  /// Sampling period for the profiler's time series (Chrome counter
  /// tracks); 0 = end-of-run totals only.  Requires `profile`.
  double profile_sample_us = 0.0;
  /// Path of a reference trace (text_io format).  When non-empty the run's
  /// timeline is compared against it (trace::compare_traces) and the
  /// TraceComparison attached to the result — e.g. point a simulated run at
  /// the saved trace of the matching real run.
  std::string reference_trace;
  /// Bounded-lookahead out-of-order completion for simulated runs
  /// (DESIGN.md §11): off reproduces the serialized engine; conservative
  /// releases within `lookahead_us` of the TEQ front with deferred
  /// in-order commits; optimistic releases speculatively and repairs the
  /// virtual trace post-hoc (forces the flight recorder on so the §V-E
  /// audit has a stream to detect misorderings in).  lookahead_us == 0
  /// degenerates to off regardless of mode.
  sim::LookaheadMode lookahead_mode = sim::LookaheadMode::off;
  double lookahead_us = 0.0;
  /// Straggler hedging for simulated runs (DESIGN.md §12): when enabled the
  /// engine duplicates any attempt whose virtual span exceeds a per-kernel
  /// quantile-based trigger; first completion wins and the loser is
  /// cancelled through the TEQ without committing virtual time.
  sched::HedgeConfig hedging;
  /// Per-task virtual-time deadline for simulated runs; 0 = no deadline
  /// (see SimEngineOptions::deadline_us / deadline_mode).
  double deadline_us = 0.0;
  sched::DeadlineMode deadline_mode = sched::DeadlineMode::off;
  /// Critical-path-first dispatch: priority = longest known dependence
  /// depth at submission (see RuntimeConfig::cp_priority).
  bool cp_priority = false;
  /// Causal blame decomposition for simulated runs (DESIGN.md §13): tile
  /// the makespan into mutually-exclusive wait-state categories along the
  /// executed critical path and attach the BlameReport to the result.
  /// Implies flight-recorder capture (the lifecycle stream supplies the
  /// dependency/submission floors); the run's timeline is annotated in
  /// place so a saved trace stays blame-capable offline.  Ignored by
  /// run_real (no lifecycle stream there).
  bool blame = false;

  /// Validate the numeric fields (throws InvalidArgument on nonsense:
  /// non-positive sizes, negative timeouts, out-of-range probabilities).
  void validate() const;
};

struct RunResult {
  trace::Trace timeline;      ///< virtual-platform (real) or simulated trace
  double makespan_us = 0.0;   ///< timeline makespan
  double wall_us = 0.0;       ///< wall-clock cost of performing the run
  double gflops = 0.0;        ///< algorithm flops / makespan
  std::size_t tasks = 0;
  std::optional<double> residual;  ///< when verify_numerics was on
  /// Simulated runs: how often the quiescence wait hit its timeout.
  std::uint64_t quiescence_timeouts = 0;
  /// Fault-injection statistics (simulated runs with config.faults set).
  std::uint64_t failed_attempts = 0;  ///< injected task failures
  std::uint64_t retries = 0;          ///< retry requeues performed
  std::vector<sched::TaskId> poisoned;  ///< tasks skipped, sorted by id
  /// Simulated runs with record_lifecycle: the assembled lifecycle log
  /// (shared so RunResult stays cheaply copyable).
  std::shared_ptr<trace::LifecycleLog> lifecycle;
  /// Runs with config.profile: where the run's real time went (shared so
  /// RunResult stays cheaply copyable).
  std::shared_ptr<prof::ProfileSnapshot> profile;
  /// Runs with config.profile and profile_sample_us > 0: the sampled
  /// per-phase exclusive-time series.
  std::shared_ptr<prof::SampleSeries> profile_samples;
  /// Runs with config.reference_trace: this timeline vs the reference.
  std::shared_ptr<trace::TraceComparison> comparison;
  /// Simulated runs with config.blame: where the makespan went (shared so
  /// RunResult stays cheaply copyable).
  std::shared_ptr<trace::BlameReport> blame;
  /// Lookahead statistics (simulated runs; all zero when lookahead is
  /// off).  `lookahead_violations` counts §V-E findings the audit made in
  /// an optimistic run's stream; `lookahead_unrepaired` the tasks the
  /// repair pass could not replay; `repaired_makespan_us` the makespan of
  /// the repaired virtual trace (0 outside optimistic runs) — compare it
  /// with makespan_us for the speculation-distortion delta.
  std::uint64_t lookahead_releases = 0;
  std::uint64_t lookahead_horizon_blocks = 0;
  std::uint64_t lookahead_violations = 0;
  std::uint64_t lookahead_unrepaired = 0;
  double repaired_makespan_us = 0.0;
  /// Hedging / deadline statistics (simulated runs; all zero when the
  /// resilience layer is off).  Post-drain, hedges_cancelled ==
  /// hedges_launched: every duplicate leaves the TEQ without committing.
  std::uint64_t hedges_launched = 0;
  std::uint64_t hedges_won = 0;
  std::uint64_t hedges_cancelled = 0;
  std::uint64_t hedge_wasted_us = 0;  ///< duplicate virtual µs thrown away
  std::uint64_t deadline_breaches = 0;
};

/// Algorithm flop count for the configured problem size.
double algorithm_flops(const ExperimentConfig& config);

/// Build the input matrix for the configured algorithm (SPD for Cholesky).
linalg::TileMatrix make_input_matrix(const ExperimentConfig& config);

/// Execute the factorization for real.  When `calibration` is non-null it
/// is attached for the duration of the run.
RunResult run_real(const ExperimentConfig& config,
                   sim::CalibrationObserver* calibration = nullptr);

/// Run the scheduler-in-the-loop simulation against `models`.
RunResult run_simulated(const ExperimentConfig& config,
                        const sim::KernelModelSet& models,
                        sim::SimEngineOptions engine_options = {});

/// One Figure-8/9/10 row.
struct ComparisonRow {
  int n = 0;
  double real_gflops = 0.0;
  double sim_gflops = 0.0;
  double error_pct = 0.0;      ///< 100 * (sim - real) / real, makespan-based
  double real_makespan_us = 0.0;
  double sim_makespan_us = 0.0;
  double real_wall_us = 0.0;   ///< wall cost of the real run
  double sim_wall_us = 0.0;    ///< wall cost of the simulation
  /// The simulated run's lifecycle log when record_lifecycle was on.
  std::shared_ptr<trace::LifecycleLog> sim_lifecycle;
};

/// Full pipeline: real run (with calibration) at this size, fit `family`
/// models, simulate, compare.  When `models` is provided the calibration
/// step is skipped and those models are used instead (e.g. calibrated at a
/// smaller size, the paper's intended workflow).
ComparisonRow compare_real_vs_sim(const ExperimentConfig& config,
                                  sim::ModelFamily family,
                                  const sim::KernelModelSet* models = nullptr);

/// Calibrate models by running the configured problem for real.
sim::KernelModelSet calibrate(const ExperimentConfig& config,
                              sim::ModelFamily family);

}  // namespace tasksim::harness
