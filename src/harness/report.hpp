// report.hpp — fixed-width text tables for benchmark output.
//
// Every figure bench prints the series the paper plots through this
// printer, so outputs are uniform and easy to diff into EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace tasksim::harness {

class TextTable {
 public:
  void set_headers(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);

  /// Render with per-column widths, a header underline, and two-space
  /// column separation.
  std::string to_string() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner: the experiment id and its paper reference.
void print_banner(const std::string& title);

}  // namespace tasksim::harness
