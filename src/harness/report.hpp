// report.hpp — fixed-width text tables for benchmark output.
//
// Every figure bench prints the series the paper plots through this
// printer, so outputs are uniform and easy to diff into EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "support/metrics.hpp"
#include "support/profiler.hpp"
#include "trace/analysis.hpp"
#include "trace/lifecycle.hpp"

namespace tasksim::harness {

class TextTable {
 public:
  void set_headers(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);

  /// Render with per-column widths, a header underline, and two-space
  /// column separation.
  std::string to_string() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner: the experiment id and its paper reference.
void print_banner(const std::string& title);

/// Render a metrics snapshot as a table: one row per counter / gauge /
/// histogram.  Zero-valued metrics are skipped unless `include_zero` —
/// benches report what happened, not everything that could have.
TextTable metrics_table(const metrics::Snapshot& snapshot,
                        bool include_zero = false);

/// Print the global registry's snapshot (banner + table) to stdout; the
/// uniform "metrics snapshot" block the benches append to their output.
void print_metrics_snapshot(const std::string& title = "metrics snapshot");

/// Render the makespan attribution (trace/lifecycle) as a component table:
/// the virtual quantities along the binding chain plus the real wait time
/// its tasks spent in each lifecycle stage.
TextTable attribution_table(const trace::AttributionReport& report);

/// Print the race audit and makespan attribution derived from a recorded
/// lifecycle log; the block benches print next to the metrics table.
void print_lifecycle_report(const trace::LifecycleLog& log,
                            const std::string& title = "lifecycle report");

/// Render a blame report's makespan budget as a table: one row per
/// nonzero category with its virtual time and share of the makespan.
TextTable blame_table(const trace::BlameReport& report);

/// Print the "where the makespan went" block: the budget table, coverage,
/// and the top waterfall steps along the executed critical path.
void print_blame(const trace::BlameReport& report,
                 const std::string& title = "where the makespan went");

/// Render a profiler snapshot as a per-phase table (merged across
/// threads): scope count, exclusive/inclusive wall time, the exclusive
/// share of root-bracketed time, and exclusive thread-CPU time.  Root
/// phases are listed last with their inclusive totals.
TextTable profile_table(const prof::ProfileSnapshot& snapshot);

/// Print the "where the time goes" block: the profile table plus the
/// thread list and the exclusive-time coverage of the run.
void print_profile(const prof::ProfileSnapshot& snapshot,
                   const std::string& title = "where the time goes");

/// Print a reference-vs-run trace comparison (makespan error, start-order
/// correlation, per-kernel KS statistics).
void print_trace_comparison(const trace::TraceComparison& comparison,
                            const std::string& title = "trace comparison");

/// Render one run as a JSON document ("tasksim-run-v1"): the config point,
/// headline results, and — when attached — the profile snapshot and the
/// reference-trace comparison.  The format CI uploads as an artifact.
std::string run_result_json(const ExperimentConfig& config,
                            const RunResult& result);

}  // namespace tasksim::harness
