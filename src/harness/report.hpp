// report.hpp — fixed-width text tables for benchmark output.
//
// Every figure bench prints the series the paper plots through this
// printer, so outputs are uniform and easy to diff into EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

#include "support/metrics.hpp"
#include "trace/lifecycle.hpp"

namespace tasksim::harness {

class TextTable {
 public:
  void set_headers(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);

  /// Render with per-column widths, a header underline, and two-space
  /// column separation.
  std::string to_string() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner: the experiment id and its paper reference.
void print_banner(const std::string& title);

/// Render a metrics snapshot as a table: one row per counter / gauge /
/// histogram.  Zero-valued metrics are skipped unless `include_zero` —
/// benches report what happened, not everything that could have.
TextTable metrics_table(const metrics::Snapshot& snapshot,
                        bool include_zero = false);

/// Print the global registry's snapshot (banner + table) to stdout; the
/// uniform "metrics snapshot" block the benches append to their output.
void print_metrics_snapshot(const std::string& title = "metrics snapshot");

/// Render the makespan attribution (trace/lifecycle) as a component table:
/// the virtual quantities along the binding chain plus the real wait time
/// its tasks spent in each lifecycle stage.
TextTable attribution_table(const trace::AttributionReport& report);

/// Print the race audit and makespan attribution derived from a recorded
/// lifecycle log; the block benches print next to the metrics table.
void print_lifecycle_report(const trace::LifecycleLog& log,
                            const std::string& title = "lifecycle report");

}  // namespace tasksim::harness
