#include "harness/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas_kernels.hpp"
#include "linalg/tile_chains.hpp"
#include "linalg/tile_cholesky.hpp"
#include "linalg/tile_lu.hpp"
#include "linalg/tile_qr.hpp"
#include "linalg/verify.hpp"
#include "sched/factory.hpp"
#include "sched/starpu/starpu_runtime.hpp"
#include "sched/submitter.hpp"
#include "sim/sim_submitter.hpp"
#include "sim/virtual_platform.hpp"
#include "support/error.hpp"
#include "support/flight_recorder.hpp"
#include "support/metrics.hpp"
#include "support/profiler.hpp"
#include "support/sysinfo.hpp"
#include "support/timing.hpp"
#include "trace/text_io.hpp"

namespace tasksim::harness {

const char* to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::cholesky: return "cholesky";
    case Algorithm::qr: return "qr";
    case Algorithm::lu: return "lu";
    case Algorithm::chains: return "chains";
  }
  return "?";
}

Algorithm parse_algorithm(const std::string& name) {
  if (name == "cholesky" || name == "potrf") return Algorithm::cholesky;
  if (name == "qr" || name == "geqrf") return Algorithm::qr;
  if (name == "lu" || name == "getrf") return Algorithm::lu;
  if (name == "chains") return Algorithm::chains;
  throw InvalidArgument("unknown algorithm: '" + name +
                        "' (valid: cholesky (alias: potrf), qr (alias: "
                        "geqrf), lu (alias: getrf), chains)");
}

void ExperimentConfig::validate() const {
  TS_REQUIRE(n > 0, "matrix dimension must be positive, got " +
                        std::to_string(n));
  TS_REQUIRE(nb > 0,
             "tile size must be positive, got " + std::to_string(nb));
  TS_REQUIRE(workers > 0,
             "worker count must be positive, got " + std::to_string(workers));
  TS_REQUIRE(real_repeats >= 1, "real_repeats must be at least 1, got " +
                                    std::to_string(real_repeats));
  TS_REQUIRE(max_task_retries >= 0,
             "max_task_retries must be non-negative, got " +
                 std::to_string(max_task_retries));
  TS_REQUIRE(std::isfinite(watchdog_timeout_us) && watchdog_timeout_us >= 0.0,
             "watchdog timeout must be finite and non-negative, got " +
                 std::to_string(watchdog_timeout_us));
  TS_REQUIRE(std::isfinite(profile_sample_us) && profile_sample_us >= 0.0,
             "profile_sample_us must be finite and non-negative, got " +
                 std::to_string(profile_sample_us));
  TS_REQUIRE(profile || profile_sample_us == 0.0,
             "profile_sample_us requires profile=true");
  TS_REQUIRE(std::isfinite(lookahead_us) && lookahead_us >= 0.0,
             "lookahead_us must be finite and non-negative, got " +
                 std::to_string(lookahead_us));
  TS_REQUIRE(std::isfinite(deadline_us) && deadline_us >= 0.0,
             "deadline_us must be finite and non-negative, got " +
                 std::to_string(deadline_us));
  TS_REQUIRE(deadline_mode == sched::DeadlineMode::off || deadline_us > 0.0,
             "deadline_mode requires a positive deadline_us");
  hedging.validate();
  if (faults) faults->validate();
}

double algorithm_flops(const ExperimentConfig& config) {
  switch (config.algorithm) {
    case Algorithm::cholesky: return linalg::flops_cholesky(config.n);
    case Algorithm::qr: return linalg::flops_qr(config.n);
    case Algorithm::lu: return linalg::flops_lu(config.n);
    // One add per element touched: NT² tasks × NB adds.
    case Algorithm::chains: {
      const double nt = static_cast<double>(config.n) / config.nb;
      return nt * nt * config.nb;
    }
  }
  return 0.0;
}

linalg::TileMatrix make_input_matrix(const ExperimentConfig& config) {
  Rng rng(config.seed);
  if (config.algorithm == Algorithm::qr) {
    return linalg::TileMatrix::from_dense(
        linalg::Matrix::random(config.n, config.n, rng), config.nb);
  }
  // Cholesky needs SPD; LU-without-pivoting needs diagonal dominance.
  return linalg::TileMatrix::from_dense(
      linalg::Matrix::random_diag_dominant(config.n, rng), config.nb);
}

namespace {

sched::RuntimeConfig runtime_config(const ExperimentConfig& config,
                                    bool real_execution) {
  sched::RuntimeConfig rc;
  rc.workers = config.workers;
  rc.window_size = config.window_size;
  rc.master_participates = config.master_participates;
  rc.seed = config.seed;
  // Oversubscribed real runs interleave workers fairly so the schedule the
  // virtual platform replays resembles a dedicated-core one (DESIGN.md §3).
  rc.yield_between_tasks =
      real_execution && config.workers > hardware_threads();
  rc.max_task_retries = config.max_task_retries;
  rc.failure_mode = config.failure_mode;
  rc.cp_priority = config.cp_priority;
  if (!real_execution && config.faults) {
    rc.dispatch_delay_us = config.faults->dispatch_delay_us;
    rc.bookkeeping_delay_us = config.faults->bookkeeping_delay_us;
  }
  return rc;
}

void finalize(RunResult& result, const ExperimentConfig& config) {
  result.makespan_us = result.timeline.makespan_us();
  if (result.makespan_us > 0.0) {
    // Gflop/s = flops / (us * 1e-6) / 1e9 = flops / (us * 1e3).
    result.gflops = algorithm_flops(config) / (result.makespan_us * 1e3);
  }
  if (!config.reference_trace.empty()) {
    const trace::Trace reference = trace::load_trace(config.reference_trace);
    result.comparison = std::make_shared<trace::TraceComparison>(
        trace::compare_traces(reference, result.timeline));
  }
}

/// Arms the calling thread's current profiler for one run (when
/// config.profile) and guarantees it is disabled again on every exit path.
/// Construct BEFORE the runtime so worker threads spawn — and name
/// themselves — inside the enabled window; capture() wants the runtime
/// destroyed first so the workers' final root scopes have been committed
/// on join.
///
/// The profiler reference is pinned at construction: enable, the sampler
/// it may start, disable and capture all hit the same instance even if the
/// TLS binding changes underneath.  With per-engine contexts the sampler
/// lifecycle is sound for concurrent runs: each lease arms its own
/// context's profiler (no cross-run enable/disable fights over the global
/// one), and the sampler is joined by disable() here — or at the latest by
/// ~TelemetryContext, which destroys its profiler before the registry and
/// recorder the context owns.
class ProfilerLease {
 public:
  explicit ProfilerLease(const ExperimentConfig& config)
      : profiler_(prof::current()), active_(config.profile) {
    if (active_) {
      profiler_.enable(config.profile_sample_us);
      profiler_.set_thread_name("master");
    }
  }
  ~ProfilerLease() {
    if (active_) profiler_.disable();
  }
  ProfilerLease(const ProfilerLease&) = delete;
  ProfilerLease& operator=(const ProfilerLease&) = delete;

  void capture(RunResult& result) {
    if (!active_) return;
    profiler_.disable();
    result.profile =
        std::make_shared<prof::ProfileSnapshot>(profiler_.snapshot());
    result.profile_samples =
        std::make_shared<prof::SampleSeries>(profiler_.samples());
  }

 private:
  prof::Profiler& profiler_;
  bool active_;
};

/// Per-thread ring capacity for a full recording of the configured run.
/// The submitting thread carries the heaviest stream (submit + ready +
/// every dependence edge); ~8 events per task with headroom covers it.
std::size_t recorder_capacity_for(const ExperimentConfig& config) {
  if (config.recorder_capacity > 0) return config.recorder_capacity;
  const std::size_t nt =
      static_cast<std::size_t>((config.n + config.nb - 1) / config.nb);
  const std::size_t tasks = nt * nt * nt;  // upper bound across algorithms
  const std::size_t estimate = tasks * 8 + 4096;
  const std::size_t lo = std::size_t{1} << 14;
  const std::size_t hi = std::size_t{1} << 22;
  return std::min(hi, std::max(lo, estimate));
}

}  // namespace

RunResult run_real(const ExperimentConfig& config,
                   sim::CalibrationObserver* calibration) {
  config.validate();
  linalg::TileMatrix a = make_input_matrix(config);
  std::optional<linalg::Matrix> original;
  if (config.verify_numerics) original = a.to_dense();

  ProfilerLease profiler_lease(config);
  sim::VirtualPlatform platform;
  auto runtime =
      sched::make_runtime(config.scheduler, runtime_config(config, true));
  runtime->add_observer(&platform);
  if (calibration != nullptr) runtime->add_observer(calibration);

  sched::RealSubmitter submitter(*runtime);
  Stopwatch stopwatch;
  RunResult result;

  if (config.algorithm == Algorithm::cholesky) {
    int info;
    {
      prof::ScopedPhase run_scope(prof::Phase::master_run);
      info = linalg::tile_cholesky(a, submitter);
    }
    TS_REQUIRE(info == 0, "Cholesky hit a non-SPD diagonal block (info=" +
                              std::to_string(info) + ")");
    result.wall_us = stopwatch.elapsed_us();
    if (config.verify_numerics) {
      result.residual = linalg::cholesky_residual(*original, a);
    }
  } else if (config.algorithm == Algorithm::lu) {
    int info;
    {
      prof::ScopedPhase run_scope(prof::Phase::master_run);
      info = linalg::tile_lu_nopiv(a, submitter);
    }
    TS_REQUIRE(info == 0,
               "LU hit a zero pivot (info=" + std::to_string(info) + ")");
    result.wall_us = stopwatch.elapsed_us();
    if (config.verify_numerics) {
      result.residual = linalg::lu_residual(*original, a);
    }
  } else if (config.algorithm == Algorithm::chains) {
    {
      prof::ScopedPhase run_scope(prof::Phase::master_run);
      linalg::tile_chains(a, submitter);
    }
    result.wall_us = stopwatch.elapsed_us();
    // Synthetic workload: nothing numerical to verify.
  } else {
    linalg::TileMatrix t = linalg::TileMatrix::zeros_like(a);
    {
      prof::ScopedPhase run_scope(prof::Phase::master_run);
      linalg::tile_qr(a, t, submitter);
    }
    result.wall_us = stopwatch.elapsed_us();
    if (config.verify_numerics) {
      result.residual = linalg::qr_residual(*original, a, t);
    }
  }

  result.timeline = platform.replay();
  result.tasks = platform.task_count();

  runtime->remove_observer(&platform);
  if (calibration != nullptr) runtime->remove_observer(calibration);
  if (config.profile) {
    runtime.reset();  // join the workers: commits their final root scopes
    profiler_lease.capture(result);
  }
  finalize(result, config);
  return result;
}

RunResult run_simulated(const ExperimentConfig& config,
                        const sim::KernelModelSet& models,
                        sim::SimEngineOptions engine_options) {
  config.validate();
  // Data is allocated (the scheduler needs real addresses for dependence
  // analysis) but never initialized or touched: simulated tasks do no work.
  linalg::TileMatrix a(config.n, config.nb);

  ProfilerLease profiler_lease(config);
  auto runtime =
      sched::make_runtime(config.scheduler, runtime_config(config, false));
  if (auto* starpu = dynamic_cast<sched::StarpuRuntime*>(runtime.get())) {
    // Prime the history model (StarPU's persisted-history equivalent) and
    // stop it from learning the meaningless durations of simulated bodies.
    starpu->set_profiling(false);
    for (const std::string& kernel : models.kernel_names()) {
      const double mean = models.mean_us(kernel);
      for (int i = 0; i < 4; ++i) starpu->perf_model().update(kernel, mean);
    }
  }

  engine_options.mitigation = config.mitigation;
  engine_options.seed = config.seed ^ 0x5157ULL;
  engine_options.lookahead_mode = config.lookahead_mode;
  engine_options.lookahead_us = config.lookahead_us;
  engine_options.hedging = config.hedging;
  engine_options.deadline_us = config.deadline_us;
  engine_options.deadline_mode = config.deadline_mode;
  std::optional<sim::FaultPlan> plan;
  if (config.faults) {
    plan.emplace(*config.faults);
    engine_options.faults = &*plan;
  }
  if (config.watchdog_timeout_us > 0.0) {
    engine_options.watchdog_timeout_us = config.watchdog_timeout_us;
  }
  sim::SimEngine engine(models, engine_options);
  sim::SimSubmitter submitter(*runtime, engine);

  // An optimistic lookahead run needs the flight-recorder stream even if
  // the caller did not ask for the lifecycle log: the §V-E audit of that
  // stream is what detects the speculation misorderings the repair pass
  // then fixes.
  const bool capture_lifecycle =
      config.record_lifecycle || config.blame ||
      (engine.lookahead_enabled() &&
       engine.lookahead_mode() == sim::LookaheadMode::optimistic);
  flightrec::FlightRecorder& recorder = flightrec::current();
  if (capture_lifecycle) {
    recorder.enable(recorder_capacity_for(config));
  }

  // QR workspace, allocated outside the root phase (like run_real): the
  // multi-megabyte zeroed allocation is setup, not simulation time.
  std::optional<linalg::TileMatrix> t;
  if (config.algorithm == Algorithm::qr) {
    t.emplace(linalg::TileMatrix::zeros_like(a));
  }
  Stopwatch stopwatch;
  RunResult result;
  try {
    // Submission + wait on this thread all happens inside the root phase
    // (the tile algorithms call submitter.finish(), i.e. wait_all).
    prof::ScopedPhase run_scope(prof::Phase::master_run);
    if (config.algorithm == Algorithm::cholesky) {
      linalg::tile_cholesky(a, submitter);
    } else if (config.algorithm == Algorithm::lu) {
      linalg::tile_lu_nopiv(a, submitter);
    } else if (config.algorithm == Algorithm::chains) {
      linalg::tile_chains(a, submitter);
    } else {
      linalg::tile_qr(a, *t, submitter);
    }
  } catch (...) {
    // The recorder outlives this run (context- or process-wide): leave it
    // disabled rather than armed for whatever the caller does next with
    // the error.  (The profiler lease's destructor handles the same for
    // the profiler.)
    if (capture_lifecycle) recorder.disable();
    throw;
  }
  result.wall_us = stopwatch.elapsed_us();
  result.failed_attempts = runtime->failed_attempt_count();
  result.retries = runtime->retry_count();
  result.poisoned = runtime->poisoned_tasks();
  std::sort(result.poisoned.begin(), result.poisoned.end());
  if (capture_lifecycle) {
    recorder.disable();
    result.lifecycle = std::make_shared<trace::LifecycleLog>(
        trace::build_lifecycle(recorder.drain()));
    result.lifecycle->worker_lanes = config.workers;
    result.lifecycle->master_lane0 = config.master_participates;
  }
  result.timeline = engine.trace();
  result.tasks = engine.executed_tasks();
  result.quiescence_timeouts = engine.quiescence_timeouts();
  result.hedges_launched = engine.hedges_launched();
  result.hedges_won = engine.hedges_won();
  result.hedges_cancelled = engine.hedges_cancelled();
  result.hedge_wasted_us = engine.hedge_wasted_us();
  result.deadline_breaches = engine.deadline_breaches();
  if (engine.lookahead_enabled()) {
    result.lookahead_releases = engine.released_tasks();
    result.lookahead_horizon_blocks = engine.horizon_blocks();
    if (engine.lookahead_mode() == sim::LookaheadMode::optimistic &&
        result.lifecycle) {
      // Post-hoc detection + repair (§V-E): audit the recorded stream for
      // speculation misorderings, then rebuild the schedule from the
      // recorded dependency chain.
      const trace::RaceAudit audit = trace::audit_races(*result.lifecycle);
      const sim::RepairReport repair =
          sim::repair_virtual_trace(*result.lifecycle, audit);
      result.lookahead_violations = repair.violations;
      result.lookahead_unrepaired = repair.unrepaired;
      result.repaired_makespan_us = repair.repaired_makespan_us;
      metrics::counter("sim.lookahead.violations").inc(repair.violations);
    }
  }
  if (config.blame && result.lifecycle) {
    // Annotate the timeline with the lifecycle-derived floors first so the
    // saved trace (text v2) carries everything build_blame needs offline,
    // then decompose.  Annotation only adds metadata — event times are
    // untouched, so finalize()'s makespan and any reference comparison see
    // the same timeline either way.
    result.timeline.annotate(trace::blame_annotations(*result.lifecycle));
    result.blame = std::make_shared<trace::BlameReport>(
        trace::build_blame(result.timeline, *result.lifecycle));
  }
  if (config.profile) {
    runtime.reset();  // join the workers: commits their final root scopes
    profiler_lease.capture(result);
  }
  finalize(result, config);
  return result;
}

sim::KernelModelSet calibrate(const ExperimentConfig& config,
                              sim::ModelFamily family) {
  sim::CalibrationObserver calibration;
  (void)run_real(config, &calibration);
  return calibration.fit(family);
}

ComparisonRow compare_real_vs_sim(const ExperimentConfig& config,
                                  sim::ModelFamily family,
                                  const sim::KernelModelSet* models) {
  ComparisonRow row;
  row.n = config.n;

  sim::CalibrationObserver calibration;
  RunResult real = run_real(config, models ? nullptr : &calibration);
  for (int r = 1; r < config.real_repeats; ++r) {
    ExperimentConfig repeat = config;
    repeat.seed = config.seed + static_cast<std::uint64_t>(r) * 7919;
    RunResult candidate = run_real(repeat, models ? nullptr : &calibration);
    if (candidate.makespan_us < real.makespan_us) real = std::move(candidate);
  }
  sim::KernelModelSet fitted;
  if (models == nullptr) {
    fitted = calibration.fit(family);
    models = &fitted;
  }
  RunResult sim = run_simulated(config, *models);

  row.sim_lifecycle = sim.lifecycle;
  row.real_gflops = real.gflops;
  row.sim_gflops = sim.gflops;
  row.real_makespan_us = real.makespan_us;
  row.sim_makespan_us = sim.makespan_us;
  row.real_wall_us = real.wall_us;
  row.sim_wall_us = sim.wall_us;
  if (real.makespan_us > 0.0) {
    row.error_pct =
        100.0 * (sim.makespan_us - real.makespan_us) / real.makespan_us;
  }
  return row;
}

}  // namespace tasksim::harness
