// autotune.hpp — simulator-driven tile-size tuning.
//
// The paper's stated end goal (§VI-B): "If it is possible to predict
// performance of an algorithm running on a particular scheduler
// configuration in a reduced time period, it will be possible to try a
// larger number of possible scheduling and algorithmic parameters".  This
// module is that use case: calibrate each candidate tile size on a small
// problem, then let the *simulator* predict full-size performance and pick
// the winner — far cheaper than running every candidate at full size.
#pragma once

#include <vector>

#include "harness/experiment.hpp"

namespace tasksim::harness {

struct AutotuneCandidate {
  int nb = 0;
  int n_used = 0;              ///< target n rounded down to a tile multiple
  double predicted_gflops = 0.0;
  double calibration_wall_us = 0.0;
  double simulation_wall_us = 0.0;
};

struct AutotuneResult {
  std::vector<AutotuneCandidate> candidates;  ///< in input order
  int best_nb = 0;
  double best_predicted_gflops = 0.0;
  double total_wall_us = 0.0;
};

struct AutotuneOptions {
  /// Tiles per side of the small calibration problem.
  int calibration_tiles = 4;
  sim::ModelFamily family = sim::ModelFamily::best;
};

/// Tune the tile size of `base` (its `nb` is ignored) over `candidates`.
AutotuneResult autotune_tile_size(const ExperimentConfig& base,
                                  const std::vector<int>& candidates,
                                  const AutotuneOptions& options = {});

}  // namespace tasksim::harness
