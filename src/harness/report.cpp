#include "harness/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "support/error.hpp"
#include "support/strings.hpp"
#include "trace/chrome_export.hpp"

namespace tasksim::harness {

void TextTable::set_headers(std::vector<std::string> headers) {
  headers_ = std::move(headers);
}

void TextTable::add_row(std::vector<std::string> cells) {
  TS_REQUIRE(headers_.empty() || cells.size() == headers_.size(),
             "row width does not match headers");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(headers_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) os << "  ";
      os << cells[i];
      for (std::size_t pad = cells[i].size(); pad < widths[i]; ++pad) os << ' ';
    }
    os << '\n';
  };
  if (!headers_.empty()) {
    emit(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w;
    total += 2 * (widths.size() - 1);
    for (std::size_t i = 0; i < total; ++i) os << '-';
    os << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void print_banner(const std::string& title) {
  std::string bar(title.size() + 4, '=');
  std::printf("\n%s\n= %s =\n%s\n", bar.c_str(), title.c_str(), bar.c_str());
}

TextTable metrics_table(const metrics::Snapshot& snapshot, bool include_zero) {
  TextTable table;
  table.set_headers({"metric", "kind", "value", "detail"});
  for (const auto& [name, value] : snapshot.counters) {
    if (value == 0 && !include_zero) continue;
    table.add_row({name, "counter", std::to_string(value), ""});
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (value == 0.0 && !include_zero) continue;
    table.add_row({name, "gauge", strprintf("%g", value), ""});
  }
  for (const auto& [name, stats] : snapshot.histograms) {
    if (stats.count == 0 && !include_zero) continue;
    table.add_row({name, "histogram", std::to_string(stats.count),
                   strprintf("sum=%.1f mean=%.2f p50~%.2f p95~%.2f",
                             stats.sum, stats.mean(), stats.quantile(0.5),
                             stats.quantile(0.95))});
  }
  return table;
}

void print_metrics_snapshot(const std::string& title) {
  const metrics::Snapshot snap = metrics::snapshot();
  std::printf("\n%s:\n", title.c_str());
  std::fputs(metrics_table(snap).to_string().c_str(), stdout);
}

TextTable attribution_table(const trace::AttributionReport& report) {
  TextTable table;
  table.set_headers({"component", "time", "share", "clock"});
  const double makespan = report.virtual_makespan_us;
  auto share = [&](double value) {
    if (makespan <= 0.0) return std::string("-");
    return strprintf("%5.1f%%", 100.0 * value / makespan);
  };
  auto row = [&](const char* name, double value, const char* clock) {
    table.add_row({name, strprintf("%.1f us", value), share(value), clock});
  };
  row("virtual makespan", makespan, "virtual");
  row("chain kernel time", report.chain_kernel_us, "virtual");
  row("chain gap (off-chain wait)", report.chain_gap_us, "virtual");
  row("chain TEQ wait", report.chain_teq_wait_us, "real");
  row("chain scheduler wait", report.chain_sched_wait_us, "real");
  row("chain bookkeeping", report.chain_bookkeeping_us, "real");
  row("window-throttle wait", report.window_wait_us, "real");
  table.add_row({"binding-chain length",
                 std::to_string(report.chain_length) + " tasks", "-", "-"});
  return table;
}

TextTable blame_table(const trace::BlameReport& report) {
  TextTable table;
  table.set_headers({"category", "virtual time", "share"});
  for (int c = 0; c < trace::kBlameCategoryCount; ++c) {
    const double us = report.totals[static_cast<std::size_t>(c)];
    if (us <= 0.0) continue;
    const std::string share =
        report.makespan_us > 0.0
            ? strprintf("%5.1f%%", 100.0 * us / report.makespan_us)
            : std::string("-");
    table.add_row({trace::to_string(static_cast<trace::BlameCategory>(c)),
                   format_duration_us(us), share});
  }
  if (report.hedge_wasted_us > 0.0) {
    // Outside the budget: losing duplicates never commit to the timeline.
    table.add_row({"(hedge waste, off-budget)",
                   format_duration_us(report.hedge_wasted_us), "-"});
  }
  return table;
}

void print_blame(const trace::BlameReport& report, const std::string& title) {
  std::printf("\n%s:\n", title.c_str());
  std::fputs(blame_table(report).to_string().c_str(), stdout);
  std::printf("coverage: %.1f%% of the %s makespan attributed across %zu "
              "chain link(s)%s\n",
              100.0 * report.coverage(),
              format_duration_us(report.makespan_us).c_str(),
              report.waterfall.size(),
              report.annotated ? "" : " [trace carried no annotations]");
}

TextTable profile_table(const prof::ProfileSnapshot& snapshot) {
  TextTable table;
  table.set_headers(
      {"phase", "count", "excl wall", "share", "incl wall", "excl cpu"});
  const auto totals = snapshot.totals();
  const double root_incl = snapshot.root_incl_wall_us();
  auto add = [&](prof::Phase phase) {
    const prof::PhaseStats& s = totals[static_cast<std::size_t>(phase)];
    if (s.count == 0 && s.excl_wall_us == 0.0 && s.incl_wall_us == 0.0) return;
    const std::string share =
        root_incl > 0.0 ? strprintf("%5.1f%%", 100.0 * s.excl_wall_us / root_incl)
                        : std::string("-");
    table.add_row({prof::phase_name(phase), std::to_string(s.count),
                   format_duration_us(s.excl_wall_us), share,
                   format_duration_us(s.incl_wall_us),
                   format_duration_us(s.excl_cpu_us)});
  };
  // Non-root phases first, ordered by exclusive wall time (the ranking the
  // overhead story cares about); roots last as the denominators.
  std::vector<prof::Phase> phases;
  for (std::size_t i = 0; i < prof::kPhaseCount; ++i) {
    const auto phase = static_cast<prof::Phase>(i);
    if (!prof::phase_is_root(phase)) phases.push_back(phase);
  }
  std::sort(phases.begin(), phases.end(), [&](prof::Phase a, prof::Phase b) {
    return totals[static_cast<std::size_t>(a)].excl_wall_us >
           totals[static_cast<std::size_t>(b)].excl_wall_us;
  });
  for (prof::Phase phase : phases) add(phase);
  for (std::size_t i = 0; i < prof::kPhaseCount; ++i) {
    const auto phase = static_cast<prof::Phase>(i);
    if (prof::phase_is_root(phase)) add(phase);
  }
  return table;
}

void print_profile(const prof::ProfileSnapshot& snapshot,
                   const std::string& title) {
  std::printf("\n%s:\n", title.c_str());
  std::string threads;
  for (const auto& thread : snapshot.threads) {
    if (!threads.empty()) threads += ", ";
    threads += thread.name;
  }
  std::printf("  enabled for %s across %zu thread(s): %s\n",
              format_duration_us(snapshot.enabled_for_us).c_str(),
              snapshot.threads.size(), threads.c_str());
  if (snapshot.scope_overflows > 0) {
    std::printf("  warning: %llu scope(s) dropped (nesting > %zu)\n",
                static_cast<unsigned long long>(snapshot.scope_overflows),
                prof::kMaxScopeDepth);
  }
  std::fputs(profile_table(snapshot).to_string().c_str(), stdout);
  std::printf("coverage: %.1f%% of bracketed time attributed (%s of %s)\n",
              100.0 * snapshot.coverage(),
              format_duration_us(snapshot.attributed_excl_wall_us()).c_str(),
              format_duration_us(snapshot.root_incl_wall_us()).c_str());
}

void print_trace_comparison(const trace::TraceComparison& comparison,
                            const std::string& title) {
  std::printf("\n%s:\n", title.c_str());
  std::fputs(comparison.to_string().c_str(), stdout);
}

namespace {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

std::string comparison_json(const trace::TraceComparison& c) {
  std::ostringstream os;
  os << "{\"real_makespan_us\":" << json_number(c.real_makespan_us)
     << ",\"sim_makespan_us\":" << json_number(c.sim_makespan_us)
     << ",\"makespan_error_pct\":" << json_number(c.makespan_error_pct)
     << ",\"start_order_tau\":" << json_number(c.start_order_tau)
     << ",\"matched_tasks\":" << c.matched_tasks << ",\"kernels\":{";
  bool first = true;
  for (const auto& [kernel, d] : c.kernels) {
    if (!first) os << ',';
    first = false;
    os << '"' << trace::escape_json(kernel)
       << "\":{\"ks\":" << json_number(d.ks_statistic)
       << ",\"mean_error_pct\":" << json_number(d.mean_error_pct)
       << ",\"n_real\":" << d.real_count << ",\"n_sim\":" << d.sim_count
       << '}';
  }
  os << "}}";
  return os.str();
}

}  // namespace

std::string run_result_json(const ExperimentConfig& config,
                            const RunResult& result) {
  std::ostringstream os;
  os << "{\"schema\":\"tasksim-run-v1\",\"config\":{\"scheduler\":\""
     << trace::escape_json(config.scheduler) << "\",\"algorithm\":\""
     << to_string(config.algorithm) << "\",\"n\":" << config.n
     << ",\"nb\":" << config.nb << ",\"workers\":" << config.workers
     << ",\"mitigation\":\"" << sim::to_string(config.mitigation)
     << "\",\"seed\":" << config.seed << "},\"makespan_us\":"
     << json_number(result.makespan_us)
     << ",\"wall_us\":" << json_number(result.wall_us)
     << ",\"gflops\":" << json_number(result.gflops)
     << ",\"tasks\":" << result.tasks
     << ",\"quiescence_timeouts\":" << result.quiescence_timeouts
     << ",\"failed_attempts\":" << result.failed_attempts
     << ",\"retries\":" << result.retries
     << ",\"hedges_launched\":" << result.hedges_launched
     << ",\"hedges_won\":" << result.hedges_won
     << ",\"hedges_cancelled\":" << result.hedges_cancelled
     << ",\"hedge_wasted_us\":" << result.hedge_wasted_us
     << ",\"deadline_breaches\":" << result.deadline_breaches
     << ",\"profile\":"
     << (result.profile ? result.profile->to_json() : std::string("null"))
     << ",\"comparison\":"
     << (result.comparison ? comparison_json(*result.comparison)
                           : std::string("null"))
     << ",\"blame\":"
     << (result.blame ? result.blame->to_json() : std::string("null"))
     << "}";
  return os.str();
}

void print_lifecycle_report(const trace::LifecycleLog& log,
                            const std::string& title) {
  std::printf("\n%s:\n", title.c_str());
  if (log.dropped_events > 0) {
    std::printf("  warning: %llu events dropped (stream incomplete)\n",
                static_cast<unsigned long long>(log.dropped_events));
  }
  std::fputs(trace::audit_races(log).to_string().c_str(), stdout);
  std::printf("\n");
  if (log.failed_attempts > 0 || log.retries > 0 || log.poisoned > 0 ||
      log.fault_stalls > 0 || log.quiescence_timeouts > 0 ||
      log.watchdog_stalls > 0) {
    std::printf(
        "faults: %llu failed attempts, %llu retries, %llu poisoned, "
        "%llu injected stalls, %llu quiescence timeouts, %llu watchdog "
        "stalls\n",
        static_cast<unsigned long long>(log.failed_attempts),
        static_cast<unsigned long long>(log.retries),
        static_cast<unsigned long long>(log.poisoned),
        static_cast<unsigned long long>(log.fault_stalls),
        static_cast<unsigned long long>(log.quiescence_timeouts),
        static_cast<unsigned long long>(log.watchdog_stalls));
  }
  std::fputs(attribution_table(attribute_makespan(log)).to_string().c_str(),
             stdout);
}

}  // namespace tasksim::harness
