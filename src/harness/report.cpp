#include "harness/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace tasksim::harness {

void TextTable::set_headers(std::vector<std::string> headers) {
  headers_ = std::move(headers);
}

void TextTable::add_row(std::vector<std::string> cells) {
  TS_REQUIRE(headers_.empty() || cells.size() == headers_.size(),
             "row width does not match headers");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(headers_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) os << "  ";
      os << cells[i];
      for (std::size_t pad = cells[i].size(); pad < widths[i]; ++pad) os << ' ';
    }
    os << '\n';
  };
  if (!headers_.empty()) {
    emit(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w;
    total += 2 * (widths.size() - 1);
    for (std::size_t i = 0; i < total; ++i) os << '-';
    os << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void print_banner(const std::string& title) {
  std::string bar(title.size() + 4, '=');
  std::printf("\n%s\n= %s =\n%s\n", bar.c_str(), title.c_str(), bar.c_str());
}

TextTable metrics_table(const metrics::Snapshot& snapshot, bool include_zero) {
  TextTable table;
  table.set_headers({"metric", "kind", "value", "detail"});
  for (const auto& [name, value] : snapshot.counters) {
    if (value == 0 && !include_zero) continue;
    table.add_row({name, "counter", std::to_string(value), ""});
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (value == 0.0 && !include_zero) continue;
    table.add_row({name, "gauge", strprintf("%g", value), ""});
  }
  for (const auto& [name, stats] : snapshot.histograms) {
    if (stats.count == 0 && !include_zero) continue;
    table.add_row({name, "histogram", std::to_string(stats.count),
                   strprintf("sum=%.1f mean=%.2f p50<=%.2f p95<=%.2f",
                             stats.sum, stats.mean(), stats.quantile(0.5),
                             stats.quantile(0.95))});
  }
  return table;
}

void print_metrics_snapshot(const std::string& title) {
  const metrics::Snapshot snap = metrics::snapshot();
  std::printf("\n%s:\n", title.c_str());
  std::fputs(metrics_table(snap).to_string().c_str(), stdout);
}

}  // namespace tasksim::harness
