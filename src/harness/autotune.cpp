#include "harness/autotune.hpp"

#include "support/error.hpp"
#include "support/timing.hpp"

namespace tasksim::harness {

AutotuneResult autotune_tile_size(const ExperimentConfig& base,
                                  const std::vector<int>& candidates,
                                  const AutotuneOptions& options) {
  TS_REQUIRE(!candidates.empty(), "no tile-size candidates");
  AutotuneResult result;
  Stopwatch total;

  for (int nb : candidates) {
    TS_REQUIRE(nb > 0, "tile size must be positive");
    AutotuneCandidate candidate;
    candidate.nb = nb;
    candidate.n_used = (base.n / nb) * nb;
    if (candidate.n_used < nb) {
      // Tile larger than the matrix: not usable.
      result.candidates.push_back(candidate);
      continue;
    }

    // Calibrate on a small problem with this tile size.
    ExperimentConfig calib_config = base;
    calib_config.nb = nb;
    calib_config.n = nb * options.calibration_tiles;
    Stopwatch calib_watch;
    const sim::KernelModelSet models = calibrate(calib_config, options.family);
    candidate.calibration_wall_us = calib_watch.elapsed_us();

    // Predict full-size performance with the simulator.
    ExperimentConfig sim_config = base;
    sim_config.nb = nb;
    sim_config.n = candidate.n_used;
    Stopwatch sim_watch;
    const RunResult sim = run_simulated(sim_config, models);
    candidate.simulation_wall_us = sim_watch.elapsed_us();
    candidate.predicted_gflops = sim.gflops;

    if (candidate.predicted_gflops > result.best_predicted_gflops) {
      result.best_predicted_gflops = candidate.predicted_gflops;
      result.best_nb = nb;
    }
    result.candidates.push_back(candidate);
  }

  result.total_wall_us = total.elapsed_us();
  return result;
}

}  // namespace tasksim::harness
