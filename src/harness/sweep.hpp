// sweep.hpp — the concurrent sweep driver: K simulations, one fleet view.
//
// ROADMAP item 3's "simulation-as-a-service" needs many SimEngine
// instances running at once — comparing scheduler policies or problem
// sizes at fleet scale, not one factorization at a time.  The telemetry
// contexts (support/telemetry) make that safe: run_sweep gives every
// engine its own TelemetryContext, runs the K configured simulations
// across a thread pool, and builds the fleet its own observability layer:
//
//   * SweepAggregator — merges the per-engine metric snapshots (counters
//     sum, gauges last-write, histograms bucket-merge) into one fleet
//     snapshot, and distills FleetStats: p50/p95/p99 of the per-engine
//     makespans, pooled queue-wait quantiles from the merged
//     sim.queue.wait_us histogram, and fleet throughput.
//   * a periodic JSONL time-series streamer ("tasksim-sweep-v1", one JSON
//     document per line, flushed per tick so `tail -f` works): per-tick
//     fleet task throughput, engines pending/running/done/failed, and —
//     when per-engine profiling is on — the aggregate share of wall time
//     per profiler phase across the fleet.
//   * a merged end-of-sweep report (sweep_report) and a stable JSON
//     document ("tasksim-sweep-report-v1", the payload of BENCH_sweep.json).
//
// Each engine's run is an ordinary run_simulated under its own bound
// scope, so everything single-run observability offers (profiler,
// lifecycle recorder, faults, watchdog) works per engine, and a stalled
// engine's SimulationStalled error names the engine that died.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "support/metrics.hpp"
#include "support/profiler.hpp"

namespace tasksim::harness {

struct SweepConfig {
  /// Per-engine run template.  Engine i runs this config with
  /// `seed = base.seed + i * seed_stride` (distinct DAG inputs and model
  /// draws per engine; stride 0 replicates one run K times).
  ExperimentConfig base;
  int engines = 8;
  /// Engines running concurrently; 0 derives min(engines,
  /// hardware_threads()).  Each engine additionally spawns its own
  /// base.workers worker threads.
  int concurrency = 0;
  std::uint64_t seed_stride = 7919;
  /// Engine labels: "<label_prefix>-<index>".
  std::string label_prefix = "sweep";
  /// Arm each engine's context profiler for its run (feeds the stream's
  /// aggregate phase shares and EngineRunResult::profile).  OR-ed with
  /// base.profile.
  bool profile_engines = false;
  /// Emit a "tasksim-sweep-v1" JSONL line to stream_path every this many
  /// µs of wall time (plus one final line when the fleet drains).
  /// 0 = no stream.  Requires stream_path when positive.
  double stream_interval_us = 0.0;
  std::string stream_path;

  /// Throws InvalidArgument on nonsense (and validates `base`).
  void validate() const;
};

/// One engine's outcome plus its isolated telemetry.
struct EngineRunResult {
  int index = -1;                 ///< position in the sweep [0, engines)
  std::uint64_t engine_id = 0;    ///< TelemetryContext id (process-unique)
  std::string label;              ///< "<label_prefix>-<index>"
  bool ok = false;
  std::string error;              ///< exception text when !ok
  double makespan_us = 0.0;
  double wall_us = 0.0;
  double gflops = 0.0;
  std::size_t tasks = 0;
  std::uint64_t quiescence_timeouts = 0;
  /// End-of-run snapshot of the engine's own registry (feed to
  /// SweepAggregator / metrics::Snapshot::merge).
  metrics::Snapshot metrics;
  /// The engine's phase profile when profiling was armed.
  std::shared_ptr<prof::ProfileSnapshot> profile;
  /// The engine's makespan blame decomposition when base.blame was set.
  std::shared_ptr<trace::BlameReport> blame;
};

/// Fleet-level statistics distilled from the per-engine results and the
/// merged snapshot.  Quantiles over makespans are exact sample quantiles
/// (completed engines only); queue-wait quantiles come from the merged
/// sim.queue.wait_us histogram (within one geometric bucket of exact).
struct FleetStats {
  int engines = 0;
  int completed = 0;
  int failed = 0;
  std::size_t tasks_total = 0;
  double wall_us = 0.0;  ///< whole-sweep wall time
  double makespan_p50_us = 0.0;
  double makespan_p95_us = 0.0;
  double makespan_p99_us = 0.0;
  double makespan_mean_us = 0.0;
  double makespan_min_us = 0.0;
  double makespan_max_us = 0.0;
  double queue_wait_p50_us = 0.0;
  double queue_wait_p95_us = 0.0;
  double queue_wait_p99_us = 0.0;
  double throughput_tasks_per_s = 0.0;   ///< fleet simulated tasks / wall s
  double throughput_engines_per_s = 0.0; ///< completed engines / wall s
};

/// Thread-safe collector for engine results; merge and distill at the end.
class SweepAggregator {
 public:
  void add(EngineRunResult result);
  std::size_t size() const;

  /// Cross-registry merge of every collected engine's snapshot, in sweep
  /// index order (deterministic gauge last-write).
  metrics::Snapshot merged_metrics() const;

  /// Fleet statistics for the collected results (`sweep_wall_us` is the
  /// whole-sweep wall time the throughputs are normalized by).
  FleetStats fleet_stats(double sweep_wall_us) const;

  /// Move the results out, sorted by sweep index.
  std::vector<EngineRunResult> take_results();

 private:
  mutable std::mutex mutex_;
  std::vector<EngineRunResult> results_;
};

struct SweepResult {
  std::vector<EngineRunResult> engines;  ///< sorted by index
  metrics::Snapshot fleet_metrics;       ///< merged across engines
  FleetStats stats;
  std::size_t stream_lines = 0;          ///< JSONL ticks emitted

  /// Stable single-document JSON ("tasksim-sweep-report-v1"): fleet
  /// stats + one row per engine.  The payload of BENCH_sweep.json.
  std::string to_json() const;
};

/// Human-readable fleet report (per-engine table + fleet summary).
std::string sweep_report(const SweepResult& result);

/// Run the sweep: K engines, each under its own TelemetryContext, across
/// a pool of `concurrency` driver threads.  Individual engine failures
/// (including watchdog stalls) are captured in their EngineRunResult, not
/// rethrown — the rest of the fleet keeps running.
SweepResult run_sweep(const SweepConfig& config,
                      const sim::KernelModelSet& models);

}  // namespace tasksim::harness
