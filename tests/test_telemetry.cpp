// Tests for per-engine telemetry contexts (support/telemetry) and the
// concurrent sweep driver (harness/sweep): scoped TLS binding, isolation
// of concurrent engines (zero cross-engine metric bleed), owner-tagged
// stall errors, and fleet aggregation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/sweep.hpp"
#include "linalg/tile_cholesky.hpp"
#include "sim/task_exec_queue.hpp"
#include "support/error.hpp"
#include "support/flight_recorder.hpp"
#include "support/metrics.hpp"
#include "support/profiler.hpp"
#include "support/telemetry.hpp"
#include "support/watchdog.hpp"

namespace tasksim {
namespace {

sim::KernelModelSet cholesky_models(double mean_us) {
  sim::KernelModelSet models;
  for (const char* kernel : {"dpotrf", "dtrsm", "dsyrk", "dgemm"}) {
    models.set_model(kernel, std::make_unique<stats::ConstantDist>(mean_us));
  }
  return models;
}

harness::ExperimentConfig engine_config(int tiles) {
  harness::ExperimentConfig config;
  config.algorithm = harness::Algorithm::cholesky;
  config.scheduler = "quark";
  config.nb = 24;
  config.n = 24 * tiles;
  config.workers = 2;
  config.verify_numerics = false;
  return config;
}

// ----------------------------------------------------------- context basics

TEST(Telemetry, ProcessDefaultWrapsTheGlobals) {
  telemetry::TelemetryContext& def = telemetry::TelemetryContext::process_default();
  EXPECT_TRUE(def.is_process_default());
  EXPECT_EQ(def.engine_id(), 0u);
  EXPECT_EQ(&def.metrics(), &metrics::Registry::global());
  EXPECT_EQ(&def.profiler(), &prof::Profiler::global());
  EXPECT_EQ(&def.recorder(), &flightrec::FlightRecorder::global());
  // Unbound threads resolve to the default.
  EXPECT_EQ(&telemetry::current(), &def);
  EXPECT_EQ(telemetry::current_if_bound(), nullptr);
}

TEST(Telemetry, ContextsOwnDistinctSubsystemsAndUniqueIds) {
  telemetry::TelemetryContext a("alpha");
  telemetry::TelemetryContext b;
  EXPECT_FALSE(a.is_process_default());
  EXPECT_GT(a.engine_id(), 0u);
  EXPECT_GT(b.engine_id(), a.engine_id());
  EXPECT_NE(&a.metrics(), &b.metrics());
  EXPECT_NE(&a.metrics(), &metrics::Registry::global());
  EXPECT_EQ(a.label(), "alpha");
  // describe() names the engine and its label — the sweep's error tag.
  EXPECT_NE(a.describe().find("engine"), std::string::npos);
  EXPECT_NE(a.describe().find("'alpha'"), std::string::npos);
  EXPECT_EQ(b.describe().find("'"), std::string::npos);  // no empty label
}

TEST(Telemetry, ScopeBindsAllSubsystemsAndNests) {
  telemetry::TelemetryContext outer("outer");
  telemetry::TelemetryContext inner("inner");
  {
    telemetry::TelemetryScope bind_outer(outer);
    EXPECT_EQ(&telemetry::current(), &outer);
    EXPECT_EQ(&metrics::current(), &outer.metrics());
    EXPECT_EQ(&prof::current(), &outer.profiler());
    EXPECT_EQ(&flightrec::current(), &outer.recorder());
    {
      telemetry::TelemetryScope bind_inner(inner);
      EXPECT_EQ(&telemetry::current(), &inner);
      EXPECT_EQ(&metrics::current(), &inner.metrics());
    }
    // Inner scope restored the outer binding (all subsystems in lockstep).
    EXPECT_EQ(&telemetry::current(), &outer);
    EXPECT_EQ(&metrics::current(), &outer.metrics());
    EXPECT_EQ(&prof::current(), &outer.profiler());
  }
  EXPECT_EQ(telemetry::current_if_bound(), nullptr);
  EXPECT_EQ(&metrics::current(), &metrics::Registry::global());
}

TEST(Telemetry, BindingIsPerThread) {
  telemetry::TelemetryContext context("main-only");
  telemetry::TelemetryScope scope(context);
  std::atomic<bool> other_thread_unbound{false};
  std::thread other([&] {
    other_thread_unbound = telemetry::current_if_bound() == nullptr;
  });
  other.join();
  EXPECT_TRUE(other_thread_unbound);
  EXPECT_EQ(&telemetry::current(), &context);
}

TEST(Telemetry, FreeFunctionMetricsResolveTheBoundContext) {
  telemetry::TelemetryContext context("counted");
  {
    telemetry::TelemetryScope scope(context);
    metrics::counter("telemetry.test.bound").inc(5);
  }
  metrics::counter("telemetry.test.bound").inc(2);  // unbound → global
  EXPECT_EQ(context.metrics().snapshot().counters.at("telemetry.test.bound"),
            5u);
  EXPECT_GE(metrics::Registry::global().snapshot().counters.at(
                "telemetry.test.bound"),
            2u);
}

// ------------------------------------------------------ owner-tagged errors

TEST(Telemetry, WatchdogStallReportCarriesOwner) {
  Watchdog dog;
  dog.set_owner("engine 7 ('stall-test')");
  dog.add_beacon("frozen", [] { return std::uint64_t{0}; });
  StallReport captured;
  std::atomic<bool> fired{false};
  dog.set_stall_handler([&](const StallReport& report) {
    captured = report;
    fired = true;
  });
  WatchdogOptions options;
  options.stall_timeout_us = 1000.0;
  options.poll_interval_us = 100.0;
  dog.start(options);
  while (!fired) std::this_thread::yield();
  dog.stop();
  EXPECT_EQ(captured.owner, "engine 7 ('stall-test')");
  // The rendering leads with the owner so log lines are attributable.
  EXPECT_NE(captured.to_string().find("engine 7 ('stall-test')"),
            std::string::npos);
}

TEST(Telemetry, WatchdogOwnerCannotChangeWhileRunning) {
  Watchdog dog;
  dog.add_beacon("b", [] { return std::uint64_t{0}; });
  dog.set_activity_gate([] { return false; });  // idle: never stalls
  WatchdogOptions options;
  options.stall_timeout_us = 1e6;
  dog.start(options);
  EXPECT_THROW(dog.set_owner("late"), InvalidArgument);
  dog.stop();
}

TEST(Telemetry, TeqCancelWeavesOwnerIntoTheStalledError) {
  sim::TaskExecQueue queue;
  queue.cancel("no beacon moved", "engine 3 ('sweep-3')");
  try {
    queue.enter(1.0);
    FAIL() << "cancelled queue must throw on enter";
  } catch (const SimulationStalled& e) {
    EXPECT_NE(std::string(e.what()).find("engine 3 ('sweep-3')"),
              std::string::npos);
    EXPECT_EQ(e.report(), "no beacon moved");
  }
}

// --------------------------------------------- concurrent engine isolation

// The tentpole acceptance test: 8 engines run concurrently, each under its
// own context, with *different* problem sizes.  Each engine's registry must
// count exactly its own tasks (zero cross-engine bleed), and each engine's
// virtual timeline must be deterministic (same seed → same makespan)
// regardless of what the other 7 are doing.  Run under TSan in CI.
TEST(Telemetry, EightConcurrentEnginesZeroBleedAndDeterministic) {
  constexpr int kEngines = 8;
  const sim::KernelModelSet models = cholesky_models(50.0);

  struct EngineOutcome {
    std::size_t expected_tasks = 0;
    std::size_t run_tasks = 0;
    std::uint64_t counted_tasks = 0;
    double makespan_us = 0.0;
    double repeat_makespan_us = 0.0;
    std::string error;
  };
  std::vector<EngineOutcome> outcomes(kEngines);

  std::vector<std::thread> threads;
  for (int i = 0; i < kEngines; ++i) {
    threads.emplace_back([i, &models, &outcomes] {
      EngineOutcome& out = outcomes[static_cast<std::size_t>(i)];
      try {
        // Engines differ: 2..5 tiles → distinct task counts, so any
        // cross-engine bleed breaks the per-engine equality below.
        const int tiles = 2 + (i % 4);
        const harness::ExperimentConfig config = engine_config(tiles);
        out.expected_tasks = linalg::cholesky_task_count(tiles);

        telemetry::TelemetryContext context("iso-" + std::to_string(i));
        telemetry::TelemetryScope scope(context);
        const harness::RunResult run = harness::run_simulated(config, models);
        out.run_tasks = run.tasks;
        out.makespan_us = run.makespan_us;
        out.counted_tasks = context.metrics().snapshot().counters.at(
            "sim.tasks_executed");

        // Repeat under a fresh context: the virtual timeline must be
        // identical — concurrency may not perturb simulation results.
        telemetry::TelemetryContext repeat_context("iso-r" + std::to_string(i));
        telemetry::TelemetryScope repeat_scope(repeat_context);
        out.repeat_makespan_us =
            harness::run_simulated(config, models).makespan_us;
      } catch (const std::exception& e) {
        out.error = e.what();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (int i = 0; i < kEngines; ++i) {
    const EngineOutcome& out = outcomes[static_cast<std::size_t>(i)];
    ASSERT_EQ(out.error, "") << "engine " << i;
    EXPECT_EQ(out.run_tasks, out.expected_tasks) << "engine " << i;
    EXPECT_EQ(out.counted_tasks, out.expected_tasks)
        << "engine " << i << ": its registry saw foreign (or lost) tasks";
    EXPECT_DOUBLE_EQ(out.makespan_us, out.repeat_makespan_us)
        << "engine " << i << ": concurrent runs were not deterministic";
  }
}

// ------------------------------------------------------------------- sweep

TEST(Sweep, ConfigValidates) {
  harness::SweepConfig config;
  config.base = engine_config(2);
  config.engines = 0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.engines = 2;
  config.stream_interval_us = 1000.0;  // interval without a path
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.stream_path = "x.jsonl";
  config.validate();
}

TEST(Sweep, RunSweepAggregatesAndStreams) {
  const std::string stream_path = "test_telemetry_stream.jsonl";
  harness::SweepConfig config;
  config.base = engine_config(3);
  config.engines = 4;
  config.concurrency = 2;
  config.label_prefix = "smoke";
  config.stream_interval_us = 1000.0;
  config.stream_path = stream_path;
  const harness::SweepResult result =
      harness::run_sweep(config, cholesky_models(25.0));

  ASSERT_EQ(result.engines.size(), 4u);
  const std::size_t per_engine = linalg::cholesky_task_count(3);
  std::uint64_t sum = 0;
  for (int i = 0; i < 4; ++i) {
    const harness::EngineRunResult& engine =
        result.engines[static_cast<std::size_t>(i)];
    EXPECT_EQ(engine.index, i);  // sorted by index
    EXPECT_TRUE(engine.ok) << engine.error;
    EXPECT_EQ(engine.label, "smoke-" + std::to_string(i));
    EXPECT_GT(engine.engine_id, 0u);
    EXPECT_EQ(engine.tasks, per_engine);
    const std::uint64_t counted =
        engine.metrics.counters.at("sim.tasks_executed");
    EXPECT_EQ(counted, per_engine);
    sum += counted;
  }
  // Aggregation coverage: the fleet merge is exactly the per-engine sum.
  EXPECT_EQ(result.fleet_metrics.counters.at("sim.tasks_executed"), sum);
  EXPECT_EQ(result.stats.completed, 4);
  EXPECT_EQ(result.stats.failed, 0);
  EXPECT_EQ(result.stats.tasks_total, 4 * per_engine);
  EXPECT_GT(result.stats.makespan_p50_us, 0.0);
  EXPECT_LE(result.stats.makespan_p50_us, result.stats.makespan_p99_us);
  EXPECT_GT(result.stats.throughput_tasks_per_s, 0.0);
  // Identical configs and seeds differing only by the stride: distinct
  // seeds, so not all makespans are equal — but min/max bracket p50.
  EXPECT_GE(result.stats.makespan_p50_us, result.stats.makespan_min_us);
  EXPECT_LE(result.stats.makespan_p50_us, result.stats.makespan_max_us);

  // The stream emitted at least the final line, every line carrying the
  // schema tag, parseable enough to find the engine totals.
  EXPECT_GE(result.stream_lines, 1u);
  std::ifstream in(stream_path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EXPECT_NE(line.find("\"schema\":\"tasksim-sweep-v1\""), std::string::npos);
    EXPECT_NE(line.find("\"engines\":{\"total\":4"), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, result.stream_lines);
  in.close();
  std::remove(stream_path.c_str());

  // The report JSON carries the schema tag and fleet quantiles.
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"tasksim-sweep-report-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"per_engine\""), std::string::npos);
  // The text report renders one row per engine.
  const std::string report = harness::sweep_report(result);
  EXPECT_NE(report.find("smoke-3"), std::string::npos);
  EXPECT_NE(report.find("fleet:"), std::string::npos);
}

TEST(Sweep, SeedStrideZeroReplicatesOneRun) {
  harness::SweepConfig config;
  config.base = engine_config(3);
  config.engines = 3;
  config.concurrency = 3;
  config.seed_stride = 0;
  const harness::SweepResult result =
      harness::run_sweep(config, cholesky_models(25.0));
  ASSERT_EQ(result.engines.size(), 3u);
  for (const harness::EngineRunResult& engine : result.engines) {
    ASSERT_TRUE(engine.ok) << engine.error;
    // Same seed, same models → bit-identical virtual timelines.
    EXPECT_DOUBLE_EQ(engine.makespan_us, result.engines[0].makespan_us);
  }
  EXPECT_DOUBLE_EQ(result.stats.makespan_min_us, result.stats.makespan_max_us);
}

TEST(Sweep, FailedEnginesAreReportedNotThrown) {
  harness::SweepConfig config;
  config.base = engine_config(2);
  config.base.scheduler = "no-such-scheduler";
  config.engines = 2;
  const harness::SweepResult result =
      harness::run_sweep(config, cholesky_models(25.0));
  ASSERT_EQ(result.engines.size(), 2u);
  for (const harness::EngineRunResult& engine : result.engines) {
    EXPECT_FALSE(engine.ok);
    EXPECT_NE(engine.error.find("no-such-scheduler"), std::string::npos);
  }
  EXPECT_EQ(result.stats.failed, 2);
  EXPECT_EQ(result.stats.completed, 0);
  // The JSON report carries the error strings.
  EXPECT_NE(result.to_json().find("\"error\""), std::string::npos);
}

}  // namespace
}  // namespace tasksim
