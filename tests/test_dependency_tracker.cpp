// Tests for the shared hazard-analysis engine of the schedulers.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "sched/dependency_tracker.hpp"
#include "support/rng.hpp"

namespace tasksim::sched {
namespace {

struct Fixture : ::testing::Test {
  TaskRecord* make_task(AccessList accesses) {
    auto rec = std::make_unique<TaskRecord>();
    rec->id = records.size();
    rec->desc.kernel = "k";
    rec->desc.accesses = std::move(accesses);
    records.push_back(std::move(rec));
    return records.back().get();
  }

  /// Completes the task and returns the ids of newly released tasks.
  std::vector<TaskId> complete(TaskRecord* task) {
    std::vector<TaskRecord*> released;
    tracker.on_complete(task, released);
    std::vector<TaskId> ids;
    for (TaskRecord* r : released) ids.push_back(r->id);
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  DependencyTracker tracker;
  std::vector<std::unique_ptr<TaskRecord>> records;
};

using DependencyTrackerTest = Fixture;

TEST_F(DependencyTrackerTest, IndependentTasksAreReadyImmediately) {
  double x, y;
  EXPECT_TRUE(tracker.register_task(make_task({inout(&x)})));
  EXPECT_TRUE(tracker.register_task(make_task({inout(&y)})));
}

TEST_F(DependencyTrackerTest, RawSerializesWriterThenReader) {
  double x;
  TaskRecord* writer = make_task({out(&x)});
  TaskRecord* reader = make_task({in(&x)});
  EXPECT_TRUE(tracker.register_task(writer));
  EXPECT_FALSE(tracker.register_task(reader));
  EXPECT_EQ(complete(writer), std::vector<TaskId>{reader->id});
}

TEST_F(DependencyTrackerTest, ConcurrentReadersAllReleasedTogether) {
  double x;
  TaskRecord* writer = make_task({out(&x)});
  tracker.register_task(writer);
  TaskRecord* r1 = make_task({in(&x)});
  TaskRecord* r2 = make_task({in(&x)});
  TaskRecord* r3 = make_task({in(&x)});
  EXPECT_FALSE(tracker.register_task(r1));
  EXPECT_FALSE(tracker.register_task(r2));
  EXPECT_FALSE(tracker.register_task(r3));
  const auto released = complete(writer);
  EXPECT_EQ(released, (std::vector<TaskId>{r1->id, r2->id, r3->id}));
}

TEST_F(DependencyTrackerTest, WarWriterWaitsForAllReaders) {
  double x;
  TaskRecord* w0 = make_task({out(&x)});
  tracker.register_task(w0);
  complete(w0);
  TaskRecord* r1 = make_task({in(&x)});
  TaskRecord* r2 = make_task({in(&x)});
  EXPECT_TRUE(tracker.register_task(r1));  // w0 already finished
  EXPECT_TRUE(tracker.register_task(r2));
  TaskRecord* w1 = make_task({out(&x)});
  EXPECT_FALSE(tracker.register_task(w1));
  EXPECT_TRUE(complete(r1).empty());  // one reader is not enough
  EXPECT_EQ(complete(r2), std::vector<TaskId>{w1->id});
}

TEST_F(DependencyTrackerTest, WawChainsWriters) {
  double x;
  TaskRecord* w0 = make_task({out(&x)});
  TaskRecord* w1 = make_task({out(&x)});
  TaskRecord* w2 = make_task({out(&x)});
  EXPECT_TRUE(tracker.register_task(w0));
  EXPECT_FALSE(tracker.register_task(w1));
  EXPECT_FALSE(tracker.register_task(w2));
  EXPECT_EQ(complete(w0), std::vector<TaskId>{w1->id});
  EXPECT_EQ(complete(w1), std::vector<TaskId>{w2->id});
}

TEST_F(DependencyTrackerTest, DuplicatePredecessorCountedOnce) {
  // A task reading two tiles produced by the same predecessor must wait
  // exactly once for it.
  double x, y;
  TaskRecord* producer = make_task({out(&x), out(&y)});
  tracker.register_task(producer);
  TaskRecord* consumer = make_task({in(&x), in(&y)});
  EXPECT_FALSE(tracker.register_task(consumer));
  EXPECT_EQ(consumer->remaining_deps.load(), 1);
  EXPECT_EQ(complete(producer), std::vector<TaskId>{consumer->id});
}

TEST_F(DependencyTrackerTest, SameAddressTwiceInOneTaskMerged) {
  double x;
  TaskRecord* t0 = make_task({in(&x), out(&x)});  // merged to RW
  EXPECT_TRUE(tracker.register_task(t0));
  TaskRecord* t1 = make_task({in(&x)});
  EXPECT_FALSE(tracker.register_task(t1));  // RaW on the merged write
  complete(t0);
  EXPECT_EQ(t1->remaining_deps.load(), 0);
}

TEST_F(DependencyTrackerTest, FinishedPredecessorsCreateNoDeps) {
  double x;
  TaskRecord* w = make_task({out(&x)});
  tracker.register_task(w);
  complete(w);
  TaskRecord* r = make_task({in(&x)});
  EXPECT_TRUE(tracker.register_task(r));
}

TEST_F(DependencyTrackerTest, ResetForgetsState) {
  double x;
  TaskRecord* w = make_task({out(&x)});
  tracker.register_task(w);
  complete(w);
  EXPECT_GT(tracker.tracked_objects(), 0u);
  tracker.reset();
  EXPECT_EQ(tracker.tracked_objects(), 0u);
  TaskRecord* r = make_task({in(&x)});
  EXPECT_TRUE(tracker.register_task(r));  // no memory of the old writer
}

// Property test: simulate a serial "immediately complete each ready task"
// executor over random access streams and verify against a brute-force
// oracle that orders task completion by per-object serial semantics.
TEST_F(DependencyTrackerTest, RandomStreamsMatchSerialOracle) {
  Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    DependencyTracker local;
    std::vector<std::unique_ptr<TaskRecord>> recs;
    double objects[5];

    // Oracle state: per object, the ids that must precede a new access.
    struct OracleObject {
      bool has_writer = false;
      TaskId last_writer = 0;
      std::vector<TaskId> readers;
    };
    OracleObject oracle[5];

    std::vector<int> expected_deps;
    for (int t = 0; t < 60; ++t) {
      AccessList accesses;
      std::set<std::size_t> used;
      const int nrefs = 1 + static_cast<int>(rng.uniform_index(2));
      for (int r = 0; r < nrefs; ++r) {
        const std::size_t obj = rng.uniform_index(5);
        if (used.count(obj)) continue;
        used.insert(obj);
        const double p = rng.uniform();
        AccessMode mode = p < 0.5   ? AccessMode::read
                          : p < 0.8 ? AccessMode::write
                                    : AccessMode::read_write;
        accesses.push_back(Access{&objects[obj], 8, mode});
      }

      // Oracle: count distinct predecessor ids among unfinished tasks
      // (here no task ever completes, so all predecessors are live).
      std::set<TaskId> preds;
      for (const Access& a : accesses) {
        const std::size_t obj =
            static_cast<std::size_t>(static_cast<const double*>(a.address) -
                                     objects);
        OracleObject& state = oracle[obj];
        if (reads(a.mode) && state.has_writer) preds.insert(state.last_writer);
        if (writes(a.mode)) {
          if (!state.readers.empty()) {
            preds.insert(state.readers.begin(), state.readers.end());
          } else if (state.has_writer) {
            preds.insert(state.last_writer);
          }
        }
      }
      for (const Access& a : accesses) {
        const std::size_t obj =
            static_cast<std::size_t>(static_cast<const double*>(a.address) -
                                     objects);
        OracleObject& state = oracle[obj];
        if (writes(a.mode)) {
          state.has_writer = true;
          state.last_writer = static_cast<TaskId>(t);
          state.readers.clear();
        } else {
          state.readers.push_back(static_cast<TaskId>(t));
        }
      }
      preds.erase(static_cast<TaskId>(t));
      expected_deps.push_back(static_cast<int>(preds.size()));

      auto rec = std::make_unique<TaskRecord>();
      rec->id = static_cast<TaskId>(t);
      rec->desc.accesses = accesses;
      local.register_task(rec.get());
      recs.push_back(std::move(rec));
    }

    for (int t = 0; t < 60; ++t) {
      EXPECT_EQ(recs[static_cast<std::size_t>(t)]->remaining_deps.load(),
                expected_deps[static_cast<std::size_t>(t)])
          << "trial " << trial << " task " << t;
    }
  }
}

}  // namespace
}  // namespace tasksim::sched
