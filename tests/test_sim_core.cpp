// Tests for the simulation primitives: SimClock, TaskExecQueue,
// KernelModelSet, CalibrationObserver.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <limits>
#include <thread>
#include <vector>

#include "sim/calibration.hpp"
#include "sim/kernel_model.hpp"
#include "sim/sim_clock.hpp"
#include "sim/task_exec_queue.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace tasksim::sim {
namespace {

// -------------------------------------------------------------- sim clock

TEST(SimClock, StartsAtZeroAndAdvancesMonotonically) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  EXPECT_DOUBLE_EQ(clock.advance_to(10.0), 10.0);
  EXPECT_DOUBLE_EQ(clock.advance_to(5.0), 10.0);  // never goes backwards
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(SimClock, ConcurrentAdvancesKeepMaximum) {
  SimClock clock;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&clock, t] {
      for (int i = 0; i < 1000; ++i) {
        clock.advance_to(static_cast<double>(t * 1000 + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(clock.now(), 3999.0);
}

// ------------------------------------------------------- task exec queue

TEST(TaskExecQueue, FrontIsMinimumCompletionTime) {
  TaskExecQueue q;
  const auto late = q.enter(100.0);
  const auto early = q.enter(50.0);
  EXPECT_FALSE(q.is_front(late));
  EXPECT_TRUE(q.is_front(early));
  EXPECT_EQ(q.size(), 2u);
  q.leave(early);
  EXPECT_TRUE(q.is_front(late));
  q.leave(late);
  EXPECT_EQ(q.size(), 0u);
}

TEST(TaskExecQueue, TiesBreakByEntryOrder) {
  TaskExecQueue q;
  const auto first = q.enter(10.0);
  const auto second = q.enter(10.0);
  EXPECT_TRUE(q.is_front(first));
  EXPECT_FALSE(q.is_front(second));
  q.leave(first);
  EXPECT_TRUE(q.is_front(second));
  q.leave(second);
}

TEST(TaskExecQueue, LeaveRequiresMembership) {
  TaskExecQueue q;
  const auto t = q.enter(1.0);
  q.leave(t);
  EXPECT_THROW(q.leave(t), InvalidArgument);
  TaskExecQueue::Ticket bogus{5.0, 99};
  EXPECT_THROW(q.wait_front(bogus), InvalidArgument);
}

TEST(TaskExecQueue, ThreadsLeaveInCompletionOrder) {
  // Property: N threads entering with random completion times must be
  // released in sorted order — the paper's §V-C invariant.
  TaskExecQueue q;
  Rng rng(7);
  constexpr int kThreads = 8;
  std::vector<double> completions;
  for (int i = 0; i < kThreads; ++i) {
    completions.push_back(rng.uniform(0.0, 1000.0));
  }
  std::mutex order_mutex;
  std::vector<double> leave_order;
  std::atomic<int> entered{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      const auto ticket = q.enter(completions[static_cast<std::size_t>(i)]);
      entered.fetch_add(1);
      // Hold until everyone is in so the ordering test is meaningful.
      while (entered.load() < kThreads) std::this_thread::yield();
      q.wait_front(ticket);
      {
        std::lock_guard<std::mutex> lock(order_mutex);
        leave_order.push_back(ticket.completion_us);
      }
      q.leave(ticket);
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(leave_order.size(), static_cast<std::size_t>(kThreads));
  for (std::size_t i = 1; i < leave_order.size(); ++i) {
    EXPECT_LE(leave_order[i - 1], leave_order[i]);
  }
}

TEST(TaskExecQueue, FrontDisplacementReblocksPreviousFront) {
  // Property (paper §V-C): a later enter() with an *earlier* virtual
  // completion time displaces the current front; a thread waiting on the
  // displaced ticket must not be released while the newcomer is present.
  // Random times, many rounds.
  Rng rng(11);
  for (int round = 0; round < 50; ++round) {
    TaskExecQueue q;
    const double front_time = rng.uniform(100.0, 200.0);
    const auto front = q.enter(front_time);
    ASSERT_TRUE(q.is_front(front));

    // A task entering with a strictly earlier completion time takes the
    // front away.  (Entered before the waiter thread starts: wait_front
    // legitimately early-returns when its ticket *is* the front, so the
    // displacement must be in place before anyone waits.)
    const auto usurper = q.enter(rng.uniform(0.0, front_time - 1.0));
    EXPECT_TRUE(q.is_front(usurper));
    EXPECT_FALSE(q.is_front(front));

    std::atomic<bool> front_released{false};
    std::thread waiter([&] {
      q.wait_front(front);
      front_released.store(true);
      q.leave(front);
    });

    // While the usurper is in the queue the displaced ticket is not the
    // front, so its waiter must stay blocked no matter how long we look.
    std::this_thread::yield();
    EXPECT_FALSE(front_released.load());

    q.wait_front(usurper);  // returns immediately: it is the front
    q.leave(usurper);
    waiter.join();
    EXPECT_TRUE(front_released.load());
    EXPECT_EQ(q.size(), 0u);
  }
}

TEST(TaskExecQueue, CountsEntersAndDisplacements) {
  using metrics::snapshot;
  const std::uint64_t enters0 =
      snapshot().counters.count("sim.queue.enters")
          ? snapshot().counters.at("sim.queue.enters") : 0;
  const std::uint64_t disp0 =
      snapshot().counters.count("sim.queue.displacements")
          ? snapshot().counters.at("sim.queue.displacements") : 0;
  TaskExecQueue q;
  const auto a = q.enter(100.0);
  const auto b = q.enter(50.0);   // displaces a
  const auto c = q.enter(200.0);  // does not displace
  const auto snap = snapshot();
  EXPECT_EQ(snap.counters.at("sim.queue.enters"), enters0 + 3);
  EXPECT_EQ(snap.counters.at("sim.queue.displacements"), disp0 + 1);
  q.leave(a);
  q.leave(b);
  q.leave(c);
}

TEST(TaskExecQueue, RejectsNonFiniteCompletionTimes) {
  TaskExecQueue q;
  EXPECT_THROW(q.enter(std::numeric_limits<double>::quiet_NaN()),
               InvalidArgument);
  EXPECT_THROW(q.enter(std::numeric_limits<double>::infinity()),
               InvalidArgument);
  EXPECT_THROW(q.enter(-std::numeric_limits<double>::infinity()),
               InvalidArgument);
  // Ticket-consuming paths apply the same guard: a forged non-finite key
  // must never probe the map (NaN breaks the strict weak ordering).
  TaskExecQueue::Ticket forged{std::numeric_limits<double>::quiet_NaN(), 0};
  EXPECT_THROW(q.is_front(forged), InvalidArgument);
  EXPECT_THROW(q.wait_front(forged), InvalidArgument);
  EXPECT_THROW(q.leave(forged), InvalidArgument);
  EXPECT_EQ(q.size(), 0u);  // nothing leaked in
  const auto ok = q.enter(1.0);  // queue still fully usable
  EXPECT_TRUE(q.is_front(ok));
  q.leave(ok);
}

TEST(TaskExecQueue, ClearCancelResetsTicketSequence) {
  TaskExecQueue q;
  const auto a = q.enter(10.0);
  const auto b = q.enter(20.0);
  EXPECT_EQ(b.seq, a.seq + 1);
  q.leave(a);
  q.leave(b);
  q.cancel("forced for test");
  EXPECT_THROW(q.enter(1.0), SimulationStalled);
  q.clear_cancel();
  // Seqs restart: back-to-back runs on one engine assign identical
  // (completion_us, seq) pairs, so flight-recorder teq_displaced events
  // stay byte-identical across runs — cross-run trace determinism.
  const auto c = q.enter(10.0);
  EXPECT_EQ(c.seq, a.seq);
  q.leave(c);
}

namespace {
std::uint64_t queue_counter(const char* name) {
  const auto snap = metrics::snapshot();
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? std::uint64_t{0} : it->second;
}
std::uint64_t wait_histogram_count() {
  const auto snap = metrics::snapshot();
  const auto it = snap.histograms.find("sim.queue.wait_us");
  return it == snap.histograms.end() ? std::uint64_t{0} : it->second.count;
}
}  // namespace

TEST(TaskExecQueue, LeaveWakesOnlyTheNewFrontsWaiter) {
  const std::uint64_t wake0 = queue_counter("sim.queue.wakeups");
  const std::uint64_t park0 = queue_counter("sim.queue.parks");

  TaskExecQueue q;
  constexpr int kWaiters = 6;
  const auto front = q.enter(0.0);
  std::atomic<int> released{0};
  std::vector<std::thread> waiters;
  for (int i = 1; i <= kWaiters; ++i) {
    waiters.emplace_back([&q, &released, i] {
      const auto t = q.enter(static_cast<double>(i));
      q.wait_front(t);
      released.fetch_add(1);
      q.leave(t);
    });
  }
  // The parks counter is bumped in the same critical section that registers
  // the parking slot, so observing +kWaiters means every waiter is blocked.
  while (queue_counter("sim.queue.parks") < park0 + kWaiters) {
    std::this_thread::yield();
  }
  // enter() never wakes anyone: an insert cannot make an existing waiter
  // the front.
  EXPECT_EQ(queue_counter("sim.queue.wakeups"), wake0);
  q.leave(front);  // promotes the first waiter — one targeted unpark
  for (auto& th : waiters) th.join();
  EXPECT_EQ(released.load(), kWaiters);
  // Exactly one unpark per promotion of a parked waiter.  The seed's
  // broadcast woke every blocked thread on every enter and leave
  // (O(waiters²) wakeups for this pattern).
  EXPECT_EQ(queue_counter("sim.queue.wakeups"), wake0 + kWaiters);
}

TEST(TaskExecQueue, CancelledWaitDoesNotObserveWaitHistogram) {
  const std::uint64_t park0 = queue_counter("sim.queue.parks");
  const std::uint64_t count0 = wait_histogram_count();
  TaskExecQueue q;
  const auto front = q.enter(1.0);
  const auto blocked = q.enter(2.0);
  (void)front;
  std::atomic<bool> threw{false};
  std::thread waiter([&] {
    try {
      q.wait_front(blocked);
    } catch (const SimulationStalled&) {
      threw.store(true);
    }
  });
  while (queue_counter("sim.queue.parks") < park0 + 1) {
    std::this_thread::yield();
  }
  q.cancel("forced for test");
  waiter.join();
  EXPECT_TRUE(threw.load());
  // The aborted wait is watchdog latency, not queue latency; recording it
  // would poison sim.queue.wait_us with the stall-detection window.
  EXPECT_EQ(wait_histogram_count(), count0);
}

// ------------------------------------------------------------ kernel model

TEST(KernelModelSet, SampleClampsAndIsDeterministic) {
  KernelModelSet models;
  models.set_model("neg", std::make_unique<stats::NormalDist>(-100.0, 1.0));
  models.set_model("pos", std::make_unique<stats::ConstantDist>(5.0));
  Rng rng(1);
  EXPECT_DOUBLE_EQ(models.sample("neg", rng, 0.5), 0.5);  // clamped
  EXPECT_DOUBLE_EQ(models.sample("pos", rng), 5.0);
  Rng a(2), b(2);
  models.set_model("n", std::make_unique<stats::NormalDist>(10.0, 2.0));
  EXPECT_DOUBLE_EQ(models.sample("n", a), models.sample("n", b));
}

TEST(KernelModelSet, UnknownKernelThrows) {
  KernelModelSet models;
  Rng rng(1);
  EXPECT_THROW(models.sample("missing", rng), InvalidArgument);
  EXPECT_THROW(models.model("missing"), InvalidArgument);
  EXPECT_FALSE(models.has_model("missing"));
}

TEST(KernelModelSet, SaveLoadRoundTrip) {
  KernelModelSet models;
  models.set_model("dgemm", std::make_unique<stats::LogNormalDist>(6.0, 0.1));
  models.set_model("dpotrf", std::make_unique<stats::GammaDist>(50.0, 2.0));
  models.set_model("emp", std::make_unique<stats::EmpiricalDist>(
                              std::vector<double>{1.0, 2.0, 3.0}));
  const std::string path = ::testing::TempDir() + "/tasksim_models_test.txt";
  models.save(path);
  const KernelModelSet loaded = KernelModelSet::load(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.model("dgemm").name(), "lognormal");
  EXPECT_NEAR(loaded.mean_us("dgemm"), models.mean_us("dgemm"), 1e-9);
  EXPECT_EQ(loaded.model("emp").parameters().size(), 3u);
}

TEST(KernelModelSet, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/tasksim_models_bad.txt";
  {
    FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("nonsense\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(KernelModelSet::load(path), InvalidArgument);
  std::remove(path.c_str());
  EXPECT_THROW(KernelModelSet::load("/no/such/file"), IoError);
}

TEST(KernelModelSet, CopyIsDeep) {
  KernelModelSet models;
  models.set_model("k", std::make_unique<stats::ConstantDist>(1.0));
  KernelModelSet copy(models);
  copy.set_model("k", std::make_unique<stats::ConstantDist>(2.0));
  EXPECT_DOUBLE_EQ(models.mean_us("k"), 1.0);
  EXPECT_DOUBLE_EQ(copy.mean_us("k"), 2.0);
}

TEST(FitModels, EachFamilyProducesRequestedShape) {
  Rng rng(3);
  std::map<std::string, std::vector<double>> samples;
  for (int i = 0; i < 500; ++i) {
    samples["k"].push_back(rng.normal(100.0, 5.0));
  }
  EXPECT_EQ(fit_models(samples, ModelFamily::constant).model("k").name(),
            "constant");
  EXPECT_EQ(fit_models(samples, ModelFamily::normal).model("k").name(),
            "normal");
  EXPECT_EQ(fit_models(samples, ModelFamily::gamma).model("k").name(),
            "gamma");
  EXPECT_EQ(fit_models(samples, ModelFamily::lognormal).model("k").name(),
            "lognormal");
  EXPECT_EQ(fit_models(samples, ModelFamily::empirical).model("k").name(),
            "empirical");
  const auto best = fit_models(samples, ModelFamily::best);
  EXPECT_NEAR(best.model("k").mean(), 100.0, 1.0);
}

TEST(ModelFamily, ParseRoundTrip) {
  for (ModelFamily f :
       {ModelFamily::constant, ModelFamily::normal, ModelFamily::gamma,
        ModelFamily::lognormal, ModelFamily::empirical, ModelFamily::best}) {
    EXPECT_EQ(parse_model_family(to_string(f)), f);
  }
  EXPECT_THROW(parse_model_family("weibull"), InvalidArgument);
}

// ------------------------------------------------------------ calibration

TEST(Calibration, RecordsDurationsPerKernel) {
  CalibrationOptions options;
  options.warmup_drop_per_worker = 0;
  CalibrationObserver calib(options);
  calib.on_finish(0, "dgemm", 0, 0.0, 100.0, 0.0, 90.0);
  calib.on_finish(1, "dgemm", 1, 0.0, 110.0, 0.0, 95.0);
  calib.on_finish(2, "dtrsm", 0, 0.0, 50.0, 0.0, 45.0);
  EXPECT_EQ(calib.total_samples(), 3u);
  const auto samples = calib.samples_for("dgemm");
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0], 90.0);  // thread_cpu clock by default
}

TEST(Calibration, WallClockOption) {
  CalibrationOptions options;
  options.clock = CalibrationOptions::Clock::wall;
  options.warmup_drop_per_worker = 0;
  CalibrationObserver calib(options);
  calib.on_finish(0, "k", 0, 10.0, 110.0, 0.0, 42.0);
  EXPECT_DOUBLE_EQ(calib.samples_for("k")[0], 100.0);
}

TEST(Calibration, WarmupDropsFirstSamplePerWorker) {
  CalibrationObserver calib;  // default drop = 1
  // Worker 0's first dgemm is the MKL-style outlier; dropped.
  calib.on_finish(0, "dgemm", 0, 0.0, 0.0, 0.0, 9999.0);
  calib.on_finish(1, "dgemm", 0, 0.0, 0.0, 0.0, 100.0);
  calib.on_finish(2, "dgemm", 1, 0.0, 0.0, 0.0, 8888.0);  // worker 1's first
  calib.on_finish(3, "dgemm", 1, 0.0, 0.0, 0.0, 101.0);
  const auto samples = calib.samples_for("dgemm");
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0], 100.0);
  EXPECT_DOUBLE_EQ(samples[1], 101.0);
  // Raw samples keep everything.
  EXPECT_EQ(calib.raw_samples().at("dgemm").size(), 4u);
}

TEST(Calibration, FitFallsBackForRareKernels) {
  CalibrationObserver calib;  // drop = 1 per worker
  // A kernel that ran exactly once: its only sample is a warm-up, but fit
  // must still produce a model (constant at the raw value).
  calib.on_finish(0, "rare", 0, 0.0, 0.0, 0.0, 123.0);
  // A kernel with plenty of data.
  for (int i = 0; i < 20; ++i) {
    calib.on_finish(static_cast<sched::TaskId>(10 + i), "common", 0, 0.0, 0.0,
                    0.0, 100.0 + i);
  }
  const KernelModelSet models = calib.fit(ModelFamily::best);
  EXPECT_TRUE(models.has_model("rare"));
  EXPECT_DOUBLE_EQ(models.mean_us("rare"), 123.0);
  EXPECT_TRUE(models.has_model("common"));
}

TEST(Calibration, ClearResets) {
  CalibrationObserver calib;
  calib.on_finish(0, "k", 0, 0.0, 0.0, 0.0, 1.0);
  calib.on_finish(1, "k", 0, 0.0, 0.0, 0.0, 2.0);
  calib.clear();
  EXPECT_EQ(calib.total_samples(), 0u);
  EXPECT_TRUE(calib.raw_samples().empty());
  EXPECT_TRUE(calib.warmup_samples().empty());
}

TEST(Calibration, ClearDiscardsWarmupSamplesToo) {
  // Regression: clear() used to leave warmup_samples_ populated, so an
  // observer reused across runs leaked the first run's warm-up outliers
  // into the second run's startup models.
  CalibrationObserver calib;  // default drop = 1 per (worker, kernel)
  calib.on_finish(0, "dgemm", 0, 0.0, 0.0, 0.0, 9999.0);  // run 1 warm-up
  calib.on_finish(1, "dgemm", 0, 0.0, 0.0, 0.0, 100.0);
  ASSERT_EQ(calib.warmup_samples().at("dgemm").size(), 1u);

  calib.clear();
  calib.on_finish(2, "dgemm", 0, 0.0, 0.0, 0.0, 5555.0);  // run 2 warm-up
  calib.on_finish(3, "dgemm", 0, 0.0, 0.0, 0.0, 101.0);

  const auto warmups = calib.warmup_samples();
  ASSERT_EQ(warmups.at("dgemm").size(), 1u);
  EXPECT_DOUBLE_EQ(warmups.at("dgemm")[0], 5555.0);  // second run only
  // And the startup-penalty models fit from them see only run 2.
  const KernelModelSet startup = calib.fit_startup(ModelFamily::constant);
  EXPECT_DOUBLE_EQ(startup.mean_us("dgemm"), 5555.0);
}

}  // namespace
}  // namespace tasksim::sim
