// Tests for distributions, fitting and the KS test (paper §V-B's kernel
// models).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "stats/distribution.hpp"
#include "stats/fitting.hpp"
#include "stats/ks_test.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace tasksim::stats {
namespace {

std::unique_ptr<Distribution> make_by_name(const std::string& name) {
  if (name == "uniform") return std::make_unique<UniformDist>(2.0, 6.0);
  if (name == "exponential") return std::make_unique<ExponentialDist>(0.25);
  if (name == "normal") return std::make_unique<NormalDist>(10.0, 2.0);
  if (name == "gamma") return std::make_unique<GammaDist>(3.0, 2.0);
  if (name == "lognormal") return std::make_unique<LogNormalDist>(1.0, 0.5);
  throw InvalidArgument("unknown test distribution " + name);
}

class DistributionFamily : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllFamilies, DistributionFamily,
                         ::testing::Values("uniform", "exponential", "normal",
                                           "gamma", "lognormal"));

TEST_P(DistributionFamily, SampleMomentsMatchAnalytic) {
  auto dist = make_by_name(GetParam());
  Rng rng(101);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = dist->sample(rng);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, dist->mean(), 0.02 * std::max(1.0, std::fabs(dist->mean())));
  EXPECT_NEAR(var, dist->variance(),
              0.05 * std::max(1.0, dist->variance()));
}

TEST_P(DistributionFamily, CdfIsMonotoneFromZeroToOne) {
  auto dist = make_by_name(GetParam());
  const double lo = dist->mean() - 6.0 * std::sqrt(dist->variance() + 1.0);
  const double hi = dist->mean() + 8.0 * std::sqrt(dist->variance() + 1.0);
  double prev = -1e-15;
  for (int i = 0; i <= 200; ++i) {
    const double x = lo + (hi - lo) * i / 200.0;
    const double c = dist->cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_LT(dist->cdf(lo), 0.01);
  EXPECT_GT(dist->cdf(hi), 0.99);
}

TEST_P(DistributionFamily, PdfIntegratesToCdf) {
  // Numerically integrate the PDF and compare against the CDF difference.
  auto dist = make_by_name(GetParam());
  const double a = std::max(0.001, dist->mean() - 2.0 * std::sqrt(dist->variance()));
  const double b = dist->mean() + 2.0 * std::sqrt(dist->variance());
  const int steps = 4000;
  double integral = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double x = a + (b - a) * (i + 0.5) / steps;
    integral += dist->pdf(x) * (b - a) / steps;
  }
  EXPECT_NEAR(integral, dist->cdf(b) - dist->cdf(a), 1e-3);
}

TEST_P(DistributionFamily, SerializationRoundTrips) {
  auto dist = make_by_name(GetParam());
  auto parsed = parse_distribution(dist->serialize());
  EXPECT_EQ(parsed->name(), dist->name());
  const auto p1 = dist->parameters();
  const auto p2 = parsed->parameters();
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_DOUBLE_EQ(p1[i], p2[i]);
  }
}

TEST_P(DistributionFamily, CloneIsIndependentCopy) {
  auto dist = make_by_name(GetParam());
  auto clone = dist->clone();
  EXPECT_EQ(clone->describe(), dist->describe());
  EXPECT_DOUBLE_EQ(clone->mean(), dist->mean());
}

TEST_P(DistributionFamily, LogPdfMatchesPdf) {
  auto dist = make_by_name(GetParam());
  for (double x : {0.5, 1.0, 3.0, 5.0, 9.0}) {
    const double p = dist->pdf(x);
    if (p > 0.0) {
      EXPECT_NEAR(dist->log_pdf(x), std::log(p), 1e-9);
    }
  }
}

// ----------------------------------------------------- specific behaviour

TEST(ConstantDist, PointMass) {
  ConstantDist d(5.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(d.sample(rng), 5.0);
  EXPECT_DOUBLE_EQ(d.mean(), 5.0);
  EXPECT_DOUBLE_EQ(d.variance(), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(4.999), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(5.0), 1.0);
}

TEST(EmpiricalDist, BootstrapsFromSample) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EmpiricalDist d(xs);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const double s = d.sample(rng);
    EXPECT_TRUE(s == 1.0 || s == 2.0 || s == 3.0);
  }
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
  EXPECT_NEAR(d.cdf(1.5), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(d.cdf(3.0), 1.0, 1e-12);
}

TEST(LogNormalDist, MeanUsesCorrection) {
  LogNormalDist d(0.0, 1.0);
  EXPECT_NEAR(d.mean(), std::exp(0.5), 1e-12);
}

TEST(Distributions, InvalidParametersRejected) {
  EXPECT_THROW(NormalDist(0.0, 0.0), InvalidArgument);
  EXPECT_THROW(GammaDist(-1.0, 1.0), InvalidArgument);
  EXPECT_THROW(LogNormalDist(0.0, -1.0), InvalidArgument);
  EXPECT_THROW(UniformDist(2.0, 2.0), InvalidArgument);
  EXPECT_THROW(ExponentialDist(0.0), InvalidArgument);
  EXPECT_THROW(EmpiricalDist(std::vector<double>{}), InvalidArgument);
}

TEST(Distributions, FactoryValidatesArity) {
  const double two[] = {1.0, 2.0};
  EXPECT_NO_THROW(make_distribution("normal", two));
  EXPECT_THROW(make_distribution("normal", std::span<const double>(two, 1)),
               InvalidArgument);
  EXPECT_THROW(make_distribution("cauchy", two), InvalidArgument);
}

// ---------------------------------------------------------------- fitting

TEST(Fitting, NormalRecoversParameters) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.normal(100.0, 7.0));
  auto fit = fit_normal(xs);
  EXPECT_NEAR(fit->parameters()[0], 100.0, 0.2);
  EXPECT_NEAR(fit->parameters()[1], 7.0, 0.15);
}

TEST(Fitting, LogNormalRecoversParameters) {
  Rng rng(12);
  LogNormalDist truth(2.0, 0.3);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(truth.sample(rng));
  auto fit = fit_lognormal(xs);
  EXPECT_NEAR(fit->parameters()[0], 2.0, 0.01);
  EXPECT_NEAR(fit->parameters()[1], 0.3, 0.01);
}

TEST(Fitting, GammaRecoversParameters) {
  Rng rng(13);
  GammaDist truth(4.0, 1.5);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(truth.sample(rng));
  auto fit = fit_gamma(xs);
  EXPECT_NEAR(fit->parameters()[0], 4.0, 0.15);
  EXPECT_NEAR(fit->parameters()[1], 1.5, 0.06);
}

TEST(Fitting, GammaHandlesNearConstantSample) {
  std::vector<double> xs(100, 42.0);
  xs[0] = 42.000001;
  auto fit = fit_gamma(xs);
  EXPECT_NEAR(fit->mean(), 42.0, 0.01);
}

TEST(Fitting, ExponentialAndConstantAndUniform) {
  Rng rng(14);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.exponential(0.1));
  EXPECT_NEAR(fit_exponential(xs)->parameters()[0], 0.1, 0.005);
  EXPECT_NEAR(fit_constant(xs)->mean(), 10.0, 0.3);
  auto uni = fit_uniform(xs);
  EXPECT_LE(uni->parameters()[0], *std::min_element(xs.begin(), xs.end()));
  EXPECT_GE(uni->parameters()[1], *std::max_element(xs.begin(), xs.end()));
}

TEST(Fitting, PositiveOnlyFamiliesRejectNegatives) {
  const std::vector<double> xs = {-1.0, 2.0, 3.0};
  EXPECT_THROW(fit_lognormal(xs), InvalidArgument);
  EXPECT_THROW(fit_gamma(xs), InvalidArgument);
  EXPECT_NO_THROW(fit_normal(xs));
}

TEST(Fitting, RequiresTwoSamples) {
  EXPECT_THROW(fit_normal(std::vector<double>{1.0}), InvalidArgument);
}

TEST(Fitting, AicSelectsTrueFamilyLogNormal) {
  // Strongly skewed log-normal data: the log-normal candidate must win
  // (the paper observed the log-normal slightly outperforming the others).
  Rng rng(15);
  LogNormalDist truth(1.0, 0.8);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(truth.sample(rng));
  auto results = fit_candidates(xs);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results.front().dist->name(), "lognormal");
  // Results must be sorted by ascending AIC.
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i - 1].aic, results[i].aic);
  }
}

TEST(Fitting, CandidatesSkipPositiveFamiliesOnNegativeData) {
  Rng rng(16);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.normal(0.0, 1.0));
  auto results = fit_candidates(xs);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results.front().dist->name(), "normal");
}

TEST(Fitting, FitBestReturnsLowestAic) {
  Rng rng(17);
  GammaDist truth(2.0, 3.0);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(truth.sample(rng));
  auto best = fit_best(xs);
  // Gamma data with shape 2 is clearly non-normal; best should be gamma or
  // lognormal, and its mean close to the truth.
  EXPECT_NE(best->name(), "normal");
  EXPECT_NEAR(best->mean(), 6.0, 0.2);
}

// ---------------------------------------------------------------- KS test

TEST(KsTest, MatchingDistributionScoresWell) {
  Rng rng(18);
  NormalDist truth(0.0, 1.0);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(truth.sample(rng));
  const KsResult r = ks_test(xs, truth);
  EXPECT_LT(r.statistic, 0.04);
  EXPECT_GT(r.p_value, 0.05);
}

TEST(KsTest, MismatchedDistributionRejected) {
  Rng rng(19);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.exponential(1.0));
  NormalDist wrong(1.0, 1.0);
  const KsResult r = ks_test(xs, wrong);
  EXPECT_GT(r.statistic, 0.1);
  EXPECT_LT(r.p_value, 0.001);
}

TEST(KsTest, TwoSampleSameSourceAgrees) {
  Rng rng(20);
  std::vector<double> a, b;
  for (int i = 0; i < 3000; ++i) a.push_back(rng.normal(5.0, 1.0));
  for (int i = 0; i < 3000; ++i) b.push_back(rng.normal(5.0, 1.0));
  const KsResult same = ks_test_two_sample(a, b);
  EXPECT_LT(same.statistic, 0.05);
  std::vector<double> c;
  for (int i = 0; i < 3000; ++i) c.push_back(rng.normal(6.0, 1.0));
  const KsResult diff = ks_test_two_sample(a, c);
  EXPECT_GT(diff.statistic, 0.2);
}

TEST(KsTest, KolmogorovQBoundaries) {
  EXPECT_DOUBLE_EQ(kolmogorov_q(0.0), 1.0);
  EXPECT_NEAR(kolmogorov_q(10.0), 0.0, 1e-12);
  // Known value: Q(1.0) ~= 0.27.
  EXPECT_NEAR(kolmogorov_q(1.0), 0.27, 0.01);
}

}  // namespace
}  // namespace tasksim::stats
